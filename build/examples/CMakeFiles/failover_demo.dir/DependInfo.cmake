
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/failover_demo.cpp" "examples/CMakeFiles/failover_demo.dir/failover_demo.cpp.o" "gcc" "examples/CMakeFiles/failover_demo.dir/failover_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdtest/CMakeFiles/dufs_mdtest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dufs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/dufs_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/zk/CMakeFiles/dufs_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/dufs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dufs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dufs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dufs_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dufs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
