file(REMOVE_RECURSE
  "CMakeFiles/fig10_native_compare.dir/fig10_native_compare.cc.o"
  "CMakeFiles/fig10_native_compare.dir/fig10_native_compare.cc.o.d"
  "fig10_native_compare"
  "fig10_native_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_native_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
