# Empty dependencies file for fig10_native_compare.
# This may be replaced when dependencies are built.
