# Empty dependencies file for fig08_zk_servers.
# This may be replaced when dependencies are built.
