file(REMOVE_RECURSE
  "CMakeFiles/fig08_zk_servers.dir/fig08_zk_servers.cc.o"
  "CMakeFiles/fig08_zk_servers.dir/fig08_zk_servers.cc.o.d"
  "fig08_zk_servers"
  "fig08_zk_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_zk_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
