# Empty dependencies file for fig07_zk_throughput.
# This may be replaced when dependencies are built.
