file(REMOVE_RECURSE
  "CMakeFiles/fig09_backends.dir/fig09_backends.cc.o"
  "CMakeFiles/fig09_backends.dir/fig09_backends.cc.o.d"
  "fig09_backends"
  "fig09_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
