# Empty compiler generated dependencies file for fig09_backends.
# This may be replaced when dependencies are built.
