file(REMOVE_RECURSE
  "libdufs_vfs.a"
)
