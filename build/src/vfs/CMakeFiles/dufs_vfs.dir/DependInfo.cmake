
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/fuse_mount.cc" "src/vfs/CMakeFiles/dufs_vfs.dir/fuse_mount.cc.o" "gcc" "src/vfs/CMakeFiles/dufs_vfs.dir/fuse_mount.cc.o.d"
  "/root/repo/src/vfs/memfs.cc" "src/vfs/CMakeFiles/dufs_vfs.dir/memfs.cc.o" "gcc" "src/vfs/CMakeFiles/dufs_vfs.dir/memfs.cc.o.d"
  "/root/repo/src/vfs/naive_mirror.cc" "src/vfs/CMakeFiles/dufs_vfs.dir/naive_mirror.cc.o" "gcc" "src/vfs/CMakeFiles/dufs_vfs.dir/naive_mirror.cc.o.d"
  "/root/repo/src/vfs/path.cc" "src/vfs/CMakeFiles/dufs_vfs.dir/path.cc.o" "gcc" "src/vfs/CMakeFiles/dufs_vfs.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dufs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dufs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dufs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dufs_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
