file(REMOVE_RECURSE
  "CMakeFiles/dufs_vfs.dir/fuse_mount.cc.o"
  "CMakeFiles/dufs_vfs.dir/fuse_mount.cc.o.d"
  "CMakeFiles/dufs_vfs.dir/memfs.cc.o"
  "CMakeFiles/dufs_vfs.dir/memfs.cc.o.d"
  "CMakeFiles/dufs_vfs.dir/naive_mirror.cc.o"
  "CMakeFiles/dufs_vfs.dir/naive_mirror.cc.o.d"
  "CMakeFiles/dufs_vfs.dir/path.cc.o"
  "CMakeFiles/dufs_vfs.dir/path.cc.o.d"
  "libdufs_vfs.a"
  "libdufs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
