# Empty dependencies file for dufs_vfs.
# This may be replaced when dependencies are built.
