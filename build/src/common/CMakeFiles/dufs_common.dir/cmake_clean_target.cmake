file(REMOVE_RECURSE
  "libdufs_common.a"
)
