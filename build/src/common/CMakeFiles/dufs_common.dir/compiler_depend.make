# Empty compiler generated dependencies file for dufs_common.
# This may be replaced when dependencies are built.
