file(REMOVE_RECURSE
  "CMakeFiles/dufs_common.dir/fid.cc.o"
  "CMakeFiles/dufs_common.dir/fid.cc.o.d"
  "CMakeFiles/dufs_common.dir/hex.cc.o"
  "CMakeFiles/dufs_common.dir/hex.cc.o.d"
  "CMakeFiles/dufs_common.dir/log.cc.o"
  "CMakeFiles/dufs_common.dir/log.cc.o.d"
  "CMakeFiles/dufs_common.dir/md5.cc.o"
  "CMakeFiles/dufs_common.dir/md5.cc.o.d"
  "CMakeFiles/dufs_common.dir/rng.cc.o"
  "CMakeFiles/dufs_common.dir/rng.cc.o.d"
  "CMakeFiles/dufs_common.dir/stats.cc.o"
  "CMakeFiles/dufs_common.dir/stats.cc.o.d"
  "CMakeFiles/dufs_common.dir/status.cc.o"
  "CMakeFiles/dufs_common.dir/status.cc.o.d"
  "libdufs_common.a"
  "libdufs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
