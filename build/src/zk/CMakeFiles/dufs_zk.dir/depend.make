# Empty dependencies file for dufs_zk.
# This may be replaced when dependencies are built.
