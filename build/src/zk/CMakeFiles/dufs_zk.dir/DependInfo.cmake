
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zk/client.cc" "src/zk/CMakeFiles/dufs_zk.dir/client.cc.o" "gcc" "src/zk/CMakeFiles/dufs_zk.dir/client.cc.o.d"
  "/root/repo/src/zk/database.cc" "src/zk/CMakeFiles/dufs_zk.dir/database.cc.o" "gcc" "src/zk/CMakeFiles/dufs_zk.dir/database.cc.o.d"
  "/root/repo/src/zk/proto.cc" "src/zk/CMakeFiles/dufs_zk.dir/proto.cc.o" "gcc" "src/zk/CMakeFiles/dufs_zk.dir/proto.cc.o.d"
  "/root/repo/src/zk/server.cc" "src/zk/CMakeFiles/dufs_zk.dir/server.cc.o" "gcc" "src/zk/CMakeFiles/dufs_zk.dir/server.cc.o.d"
  "/root/repo/src/zk/znode.cc" "src/zk/CMakeFiles/dufs_zk.dir/znode.cc.o" "gcc" "src/zk/CMakeFiles/dufs_zk.dir/znode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dufs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dufs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dufs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dufs_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
