file(REMOVE_RECURSE
  "CMakeFiles/dufs_zk.dir/client.cc.o"
  "CMakeFiles/dufs_zk.dir/client.cc.o.d"
  "CMakeFiles/dufs_zk.dir/database.cc.o"
  "CMakeFiles/dufs_zk.dir/database.cc.o.d"
  "CMakeFiles/dufs_zk.dir/proto.cc.o"
  "CMakeFiles/dufs_zk.dir/proto.cc.o.d"
  "CMakeFiles/dufs_zk.dir/server.cc.o"
  "CMakeFiles/dufs_zk.dir/server.cc.o.d"
  "CMakeFiles/dufs_zk.dir/znode.cc.o"
  "CMakeFiles/dufs_zk.dir/znode.cc.o.d"
  "libdufs_zk.a"
  "libdufs_zk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_zk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
