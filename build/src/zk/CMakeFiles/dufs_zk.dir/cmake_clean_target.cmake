file(REMOVE_RECURSE
  "libdufs_zk.a"
)
