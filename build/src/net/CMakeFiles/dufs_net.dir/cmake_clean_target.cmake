file(REMOVE_RECURSE
  "libdufs_net.a"
)
