file(REMOVE_RECURSE
  "CMakeFiles/dufs_net.dir/network.cc.o"
  "CMakeFiles/dufs_net.dir/network.cc.o.d"
  "CMakeFiles/dufs_net.dir/rpc.cc.o"
  "CMakeFiles/dufs_net.dir/rpc.cc.o.d"
  "libdufs_net.a"
  "libdufs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
