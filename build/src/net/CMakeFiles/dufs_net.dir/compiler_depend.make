# Empty compiler generated dependencies file for dufs_net.
# This may be replaced when dependencies are built.
