file(REMOVE_RECURSE
  "CMakeFiles/dufs_mdtest.dir/testbed.cc.o"
  "CMakeFiles/dufs_mdtest.dir/testbed.cc.o.d"
  "CMakeFiles/dufs_mdtest.dir/workload.cc.o"
  "CMakeFiles/dufs_mdtest.dir/workload.cc.o.d"
  "libdufs_mdtest.a"
  "libdufs_mdtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_mdtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
