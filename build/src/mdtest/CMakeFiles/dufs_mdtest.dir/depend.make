# Empty dependencies file for dufs_mdtest.
# This may be replaced when dependencies are built.
