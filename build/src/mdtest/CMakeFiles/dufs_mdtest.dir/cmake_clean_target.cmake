file(REMOVE_RECURSE
  "libdufs_mdtest.a"
)
