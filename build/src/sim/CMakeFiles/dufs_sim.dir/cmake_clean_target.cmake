file(REMOVE_RECURSE
  "libdufs_sim.a"
)
