# Empty dependencies file for dufs_sim.
# This may be replaced when dependencies are built.
