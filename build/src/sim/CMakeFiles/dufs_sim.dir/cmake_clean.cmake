file(REMOVE_RECURSE
  "CMakeFiles/dufs_sim.dir/simulation.cc.o"
  "CMakeFiles/dufs_sim.dir/simulation.cc.o.d"
  "libdufs_sim.a"
  "libdufs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
