# Empty dependencies file for dufs_core.
# This may be replaced when dependencies are built.
