file(REMOVE_RECURSE
  "CMakeFiles/dufs_core.dir/dufs_client.cc.o"
  "CMakeFiles/dufs_core.dir/dufs_client.cc.o.d"
  "CMakeFiles/dufs_core.dir/fsck.cc.o"
  "CMakeFiles/dufs_core.dir/fsck.cc.o.d"
  "CMakeFiles/dufs_core.dir/mapping.cc.o"
  "CMakeFiles/dufs_core.dir/mapping.cc.o.d"
  "CMakeFiles/dufs_core.dir/meta_schema.cc.o"
  "CMakeFiles/dufs_core.dir/meta_schema.cc.o.d"
  "CMakeFiles/dufs_core.dir/physical_path.cc.o"
  "CMakeFiles/dufs_core.dir/physical_path.cc.o.d"
  "CMakeFiles/dufs_core.dir/rebalancer.cc.o"
  "CMakeFiles/dufs_core.dir/rebalancer.cc.o.d"
  "libdufs_core.a"
  "libdufs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
