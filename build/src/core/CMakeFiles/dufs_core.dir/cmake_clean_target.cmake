file(REMOVE_RECURSE
  "libdufs_core.a"
)
