
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dufs_client.cc" "src/core/CMakeFiles/dufs_core.dir/dufs_client.cc.o" "gcc" "src/core/CMakeFiles/dufs_core.dir/dufs_client.cc.o.d"
  "/root/repo/src/core/fsck.cc" "src/core/CMakeFiles/dufs_core.dir/fsck.cc.o" "gcc" "src/core/CMakeFiles/dufs_core.dir/fsck.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/core/CMakeFiles/dufs_core.dir/mapping.cc.o" "gcc" "src/core/CMakeFiles/dufs_core.dir/mapping.cc.o.d"
  "/root/repo/src/core/meta_schema.cc" "src/core/CMakeFiles/dufs_core.dir/meta_schema.cc.o" "gcc" "src/core/CMakeFiles/dufs_core.dir/meta_schema.cc.o.d"
  "/root/repo/src/core/physical_path.cc" "src/core/CMakeFiles/dufs_core.dir/physical_path.cc.o" "gcc" "src/core/CMakeFiles/dufs_core.dir/physical_path.cc.o.d"
  "/root/repo/src/core/rebalancer.cc" "src/core/CMakeFiles/dufs_core.dir/rebalancer.cc.o" "gcc" "src/core/CMakeFiles/dufs_core.dir/rebalancer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dufs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dufs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dufs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/dufs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/zk/CMakeFiles/dufs_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dufs_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
