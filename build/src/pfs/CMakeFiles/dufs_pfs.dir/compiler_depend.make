# Empty compiler generated dependencies file for dufs_pfs.
# This may be replaced when dependencies are built.
