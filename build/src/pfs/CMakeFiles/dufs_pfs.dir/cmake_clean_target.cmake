file(REMOVE_RECURSE
  "libdufs_pfs.a"
)
