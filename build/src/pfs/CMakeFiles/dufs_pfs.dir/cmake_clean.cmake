file(REMOVE_RECURSE
  "CMakeFiles/dufs_pfs.dir/lustre.cc.o"
  "CMakeFiles/dufs_pfs.dir/lustre.cc.o.d"
  "CMakeFiles/dufs_pfs.dir/pvfs.cc.o"
  "CMakeFiles/dufs_pfs.dir/pvfs.cc.o.d"
  "libdufs_pfs.a"
  "libdufs_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
