# Empty compiler generated dependencies file for dufs_wire.
# This may be replaced when dependencies are built.
