file(REMOVE_RECURSE
  "CMakeFiles/dufs_wire.dir/buffer.cc.o"
  "CMakeFiles/dufs_wire.dir/buffer.cc.o.d"
  "libdufs_wire.a"
  "libdufs_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dufs_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
