file(REMOVE_RECURSE
  "libdufs_wire.a"
)
