# Empty compiler generated dependencies file for mdtest_test.
# This may be replaced when dependencies are built.
