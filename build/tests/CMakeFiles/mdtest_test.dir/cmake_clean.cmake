file(REMOVE_RECURSE
  "CMakeFiles/mdtest_test.dir/mdtest/workload_test.cc.o"
  "CMakeFiles/mdtest_test.dir/mdtest/workload_test.cc.o.d"
  "mdtest_test"
  "mdtest_test.pdb"
  "mdtest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdtest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
