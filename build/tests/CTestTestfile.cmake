# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/zk_test[1]_include.cmake")
include("/root/repo/build/tests/mdtest_test[1]_include.cmake")
