// Figure 7 — raw coordination-service throughput for the four basic
// operations (zoo_create / zoo_delete / zoo_set / zoo_get), varying the
// number of client processes and the ensemble size (1/4/8 servers).
//
// Expected shape (paper §V-A): mutation throughput FALLS as servers are
// added (quorum replication through the leader), read throughput RISES
// (each server answers its own sessions locally).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "net/rpc.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "sim/task.h"
#include "zk/client.h"
#include "zk/server.h"

namespace dufs {
namespace {

struct RawEnsemble {
  // Declared before everything that holds metric/span handles into it, so
  // it is destroyed last (same layout rule as mdtest::Testbed).
  obs::Observability obs;
  sim::Simulation sim;
  net::Network net{sim};
  zk::ZkEnsembleConfig config;
  std::vector<std::unique_ptr<net::RpcEndpoint>> server_eps;
  std::vector<std::unique_ptr<zk::ZkServer>> servers;
  std::vector<std::unique_ptr<net::RpcEndpoint>> client_eps;
  std::vector<std::unique_ptr<zk::ZkClient>> clients;

  RawEnsemble(std::size_t n_servers, std::size_t n_client_nodes,
              bool enable_trace = false) {
    obs.tracer().Bind(&sim);
    obs.tracer().SetEnabled(enable_trace);
    net.AttachObs(&obs);
    for (std::size_t i = 0; i < n_servers; ++i) {
      config.servers.push_back(net.AddNode("zk" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_servers; ++i) {
      server_eps.push_back(
          std::make_unique<net::RpcEndpoint>(net, config.servers[i]));
      servers.push_back(
          std::make_unique<zk::ZkServer>(*server_eps[i], config, i));
      servers[i]->AttachObs(obs.Node("zk" + std::to_string(i)));
      servers[i]->Start();
    }
    for (std::size_t i = 0; i < n_client_nodes; ++i) {
      const auto node = net.AddNode("client" + std::to_string(i));
      client_eps.push_back(std::make_unique<net::RpcEndpoint>(net, node));
      zk::ZkClientConfig cc;
      cc.servers = config.servers;
      cc.attach_index = i;
      clients.push_back(std::make_unique<zk::ZkClient>(*client_eps[i], cc));
      clients[i]->AttachObs(obs.Node("client" + std::to_string(i)));
    }
    sim::RunTask(sim, [](RawEnsemble& e) -> sim::Task<void> {
      for (auto& c : e.clients) {
        auto st = co_await c->Connect();
        DUFS_CHECK(st.ok());
      }
    }(*this));
  }
  ~RawEnsemble() { sim.Shutdown(); }
};

enum class ZkOp { kCreate, kDelete, kSet, kGet };

constexpr const char* kOpNames[] = {"zoo_create", "zoo_delete", "zoo_set",
                                    "zoo_get"};

// One measurement point: `procs` processes over 8 client nodes, each doing
// `items` back-to-back ops. Returns aggregate ops/sec. The `observed`
// point (one per run) additionally honours --trace / --timeline and dumps
// the registry for --metrics-json.
double Measure(ZkOp op, std::size_t n_servers, std::size_t procs,
               std::size_t items, std::size_t client_nodes,
               const bench::ObsOptions* obs_opts = nullptr,
               bool observed = false, std::string* registry_json = nullptr,
               std::string* timeline_json = nullptr,
               std::string* incidents_json = nullptr) {
  const bool traced =
      observed && obs_opts != nullptr && obs_opts->trace_enabled();
  RawEnsemble e(n_servers, client_nodes, traced);
  if (observed && obs_opts != nullptr) {
    e.obs.BindIncidents(&e.sim);
    DUFS_CHECK(bench::ConfigureIncidents(e.obs, *obs_opts));
  }
  obs::TimelineSampler timeline;
  if (observed && obs_opts != nullptr && obs_opts->timeline) {
    timeline.set_interval(obs_opts->timeline_interval_ns());
    timeline.WatchAllGauges(e.obs.metrics());
    timeline.Start(e.sim);
  }
  auto path_of = [](std::size_t proc, std::size_t i) {
    return "/bench/p" + std::to_string(proc) + "-n" + std::to_string(i);
  };
  // Untimed setup: parent znode; existing nodes for delete/set/get.
  sim::RunTask(e.sim, [](RawEnsemble& en, ZkOp o, std::size_t n_procs,
                         std::size_t n_items,
                         decltype(path_of)& pof) -> sim::Task<void> {
    (void)co_await en.clients[0]->Create("/bench", {});
    if (o == ZkOp::kCreate) co_return;
    const std::size_t per_node =
        (n_procs + en.clients.size() - 1) / en.clients.size();
    sim::Barrier done(en.sim, en.clients.size() + 1);
    for (std::size_t c = 0; c < en.clients.size(); ++c) {
      en.sim.Spawn([](RawEnsemble& e2, std::size_t node, std::size_t pn,
                      std::size_t n_procs2, std::size_t n_items2,
                      decltype(path_of)& pof2,
                      sim::Barrier b) -> sim::Task<void> {
        for (std::size_t p = node * pn;
             p < std::min((node + 1) * pn, n_procs2); ++p) {
          for (std::size_t i = 0; i < n_items2; ++i) {
            std::vector<std::uint8_t> data{1, 2, 3, 4};
            (void)co_await e2.clients[node]->Create(pof2(p, i),
                                                    std::move(data));
          }
        }
        co_await b.Arrive();
      }(en, c, per_node, n_procs, n_items, pof, done));
    }
    co_await done.Arrive();
  }(e, op, procs, items, path_of));

  const auto start = e.sim.now();
  sim::RunTask(e.sim, [](RawEnsemble& en, ZkOp o, std::size_t n_procs,
                         std::size_t n_items,
                         decltype(path_of)& pof) -> sim::Task<void> {
    sim::Barrier done(en.sim, n_procs + 1);
    for (std::size_t p = 0; p < n_procs; ++p) {
      en.sim.Spawn([](RawEnsemble& e2, ZkOp o2, std::size_t proc,
                      std::size_t n, decltype(path_of)& pof2,
                      sim::Barrier b) -> sim::Task<void> {
        auto& client = *e2.clients[proc % e2.clients.size()];
        for (std::size_t i = 0; i < n; ++i) {
          switch (o2) {
            case ZkOp::kCreate: {
              std::vector<std::uint8_t> data{1, 2, 3, 4};
              (void)co_await client.Create(pof2(proc, i), std::move(data));
              break;
            }
            case ZkOp::kDelete:
              (void)co_await client.Delete(pof2(proc, i));
              break;
            case ZkOp::kSet: {
              std::vector<std::uint8_t> data{9, 9, 9, 9};
              (void)co_await client.Set(pof2(proc, i), std::move(data));
              break;
            }
            case ZkOp::kGet:
              (void)co_await client.Get(pof2(proc, i % 4));
              break;
          }
        }
        co_await b.Arrive();
      }(en, o, p, n_items, pof, done));
    }
    co_await done.Arrive();
  }(e, op, procs, items, path_of));

  const double secs =
      static_cast<double>(e.sim.now() - start) / sim::kSecond;
  if (traced) {
    e.obs.tracer().WriteChromeJson(obs_opts->trace_path);
    std::fprintf(stderr, "[fig07] trace written: %s (%zu spans)\n",
                 obs_opts->trace_path.c_str(), e.obs.tracer().events().size());
  }
  if (observed && registry_json != nullptr) {
    *registry_json = e.obs.metrics().ToJson();
  }
  if (observed && timeline_json != nullptr && obs_opts != nullptr &&
      obs_opts->timeline) {
    *timeline_json = timeline.ToJson();
  }
  if (observed && incidents_json != nullptr && obs_opts != nullptr) {
    *incidents_json = bench::FinishIncidents(e.obs, *obs_opts);
  }
  return static_cast<double>(procs * items) / secs;
}

}  // namespace
}  // namespace dufs

int main(int argc, char** argv) {
  using namespace dufs;
  bench::Flags flags(argc, argv,
                     "fig07_zk_throughput [--procs=8,16,...] [--items=N] "
                     "[--servers=1,4,8] [--client-nodes=8] "
                     "[--metrics-json=PATH] [--trace=PATH] [--timeline] "
                     "[--timeline-us=200] [--slo=op:target:budget] "
                     "[--flight-dump-dir=DIR] [--slo-window-us=N] "
                     "[--flight-capacity=N]");
  const auto procs = flags.IntList("procs", {8, 16, 32, 64, 128, 192, 256});
  const auto servers = flags.IntList("servers", {1, 4, 8});
  const auto items = static_cast<std::size_t>(flags.Int("items", 40));
  const auto nodes = static_cast<std::size_t>(flags.Int("client-nodes", 8));
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);

  std::printf("Figure 7: ZooKeeper throughput for basic operations\n");
  std::printf("(ops/sec; %zu ops/process; 8 client nodes)\n", items);
  bench::MetricsJsonWriter out;
  std::string registry_json, timeline_json, incidents_json;
  for (int op = 0; op < 4; ++op) {
    std::vector<std::string> series;
    series.reserve(servers.size());
    for (long s : servers) {
      series.push_back(std::to_string(s) + " ZK server" + (s > 1 ? "s" : ""));
    }
    bench::SeriesTable table("procs", series);
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      const long p = procs[pi];
      std::vector<double> row;
      for (std::size_t si = 0; si < servers.size(); ++si) {
        const long s = servers[si];
        // Trace/timeline/registry follow the very last measurement point
        // (zoo_get, largest ensemble, most processes).
        const bool observed = op == 3 && pi + 1 == procs.size() &&
                              si + 1 == servers.size();
        row.push_back(Measure(static_cast<ZkOp>(op),
                              static_cast<std::size_t>(s),
                              static_cast<std::size_t>(p), items, nodes,
                              &obs_opts, observed, &registry_json,
                              &timeline_json, &incidents_json));
      }
      table.AddRow(p, std::move(row));
    }
    const std::string title = std::string("Fig 7") +
                              static_cast<char>('a' + op) + ": " +
                              kOpNames[op];
    table.Print(title);
    out.AddTable(title, table);
  }
  if (obs_opts.metrics_enabled()) {
    out.SetTimelineJson(timeline_json);
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(registry_json);
    out.WriteFile(obs_opts.metrics_path);
  }
  return 0;
}
