// Ablation — the metadata hot path, layer by layer:
//
//   (a) parallel lookup fan-out: ReadDir of a wide directory issues its
//       per-child znode Gets concurrently (sim::WhenAll) instead of
//       sequentially;
//   (b) client metadata cache: repeated stats of hot paths are served
//       locally, cutting ZooKeeper requests-per-op (watch-invalidated, so
//       coherence is preserved — see DESIGN.md "Metadata fast path");
//   (c) leader group commit: concurrent creates share one quorum round and
//       one journal fsync, lifting write throughput at high client counts.
//
// Every experiment is a deterministic simulation (fixed --seed); MemFs
// back-ends keep the back-end cost out of the picture so the metadata path
// is the only variable.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::BackendKind;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

TestbedConfig BaseConfig(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 2;
  return config;
}

// (a) ReadDir latency over a `width`-entry directory, sequential child
// lookups (fanout=1) vs concurrent (fanout=N).
double MeasureReadDirUs(std::uint64_t seed, std::size_t width,
                        std::size_t fanout) {
  auto config = BaseConfig(seed);
  config.dufs.lookup_fanout = fanout;
  // Pin the legacy readdir path: with compound ops the cold listing is one
  // ReadDirPlus RPC and the fan-out knob never engages, which would erase
  // the (a)-vs-(a) contrast this ablation measures (and shift its baseline).
  // The compound readdir has its own figure: bench/fig13_deep_tree.
  config.dufs.compound_ops = false;
  Testbed tb(config);
  tb.MountAll();
  double us = 0;
  sim::RunTask(tb.sim(), [](Testbed& t, std::size_t n,
                            double& out) -> sim::Task<void> {
    auto& writer = *t.client(0).dufs;
    DUFS_CHECK((co_await writer.Mkdir("/wide", 0755)).ok());
    for (std::size_t i = 0; i < n; ++i) {
      DUFS_CHECK(
          (co_await writer.Create("/wide/f" + std::to_string(i), 0644)).ok());
    }
    // Cold reader on the other node: every child Get goes to ZooKeeper.
    auto& reader = *t.client(1).dufs;
    const auto start = t.sim().now();
    auto entries = co_await reader.ReadDir("/wide");
    DUFS_CHECK(entries.ok());
    DUFS_CHECK(entries->size() == n + 0);
    out = static_cast<double>(t.sim().now() - start) / sim::kMicrosecond;
  }(tb, width, us));
  return us;
}

// (b) Requests-per-stat with the metadata cache on/off: `files` hot files,
// `rounds` stat sweeps over them from one client.
bench::HotPathCounters MeasureStats(std::uint64_t seed, bool cache,
                                    std::size_t files, std::size_t rounds) {
  auto config = BaseConfig(seed);
  config.dufs.enable_meta_cache = cache;
  Testbed tb(config);
  tb.MountAll();
  bench::HotPathCounters c;
  sim::RunTask(tb.sim(), [](Testbed& t, std::size_t nf, std::size_t nr,
                            bench::HotPathCounters& out) -> sim::Task<void> {
    auto& dufs = *t.client(0).dufs;
    for (std::size_t i = 0; i < nf; ++i) {
      DUFS_CHECK((co_await dufs.Create("/hot" + std::to_string(i), 0644)).ok());
    }
    const auto start_req = t.client(0).zk->requests_sent();
    const auto start_fo = t.client(0).zk->failovers();
    const auto start = t.sim().now();
    for (std::size_t r = 0; r < nr; ++r) {
      for (std::size_t i = 0; i < nf; ++i) {
        auto attr = co_await dufs.GetAttr("/hot" + std::to_string(i));
        DUFS_CHECK(attr.ok());
      }
    }
    out.ops = static_cast<double>(nf * nr);
    out.seconds =
        static_cast<double>(t.sim().now() - start) / sim::kSecond;
    out.zk_requests = t.client(0).zk->requests_sent() - start_req;
    out.zk_failovers = t.client(0).zk->failovers() - start_fo;
    const auto& stats = dufs.meta_cache().stats();
    out.cache_hits = stats.hits;
    out.cache_misses = stats.misses;
  }(tb, files, rounds, c));
  return c;
}

// (c) mdtest file-create throughput at `procs` processes, leader group
// commit on/off. When `obs` asks for a trace, spans are recorded and the
// Chrome JSON written after the run; `registry_json` (if non-null) receives
// the full metrics registry dump.
bench::HotPathCounters MeasureCreates(std::uint64_t seed, bool group_commit,
                                      std::size_t procs, std::size_t items,
                                      const bench::ObsOptions* obs = nullptr,
                                      std::string* registry_json = nullptr,
                                      std::string* timeline_json = nullptr,
                                      std::string* incidents_json = nullptr) {
  auto config = BaseConfig(seed);
  config.client_nodes = 4;
  config.zk_group_commit = group_commit;
  config.enable_trace = obs != nullptr && obs->trace_enabled();
  Testbed tb(config);
  if (obs != nullptr) {
    DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), *obs));
  }
  tb.MountAll();
  if (obs != nullptr && obs->timeline) {
    tb.StartTimeline(obs->timeline_interval_ns());
  }
  MdtestConfig mc;
  mc.processes = procs;
  mc.items_per_proc = items;
  MdtestRunner runner(tb, mc);
  std::uint64_t req0 = 0, fo0 = 0;
  for (std::size_t i = 0; i < tb.client_count(); ++i) {
    req0 += tb.client(i).zk->requests_sent();
    fo0 += tb.client(i).zk->failovers();
  }
  auto results = runner.Run(Target::kDufs, {Phase::kFileCreate});
  bench::HotPathCounters c;
  c.ops = static_cast<double>(results[0].ops);
  c.seconds = results[0].seconds;
  for (std::size_t i = 0; i < tb.client_count(); ++i) {
    c.zk_requests += tb.client(i).zk->requests_sent();
    c.zk_failovers += tb.client(i).zk->failovers();
    const auto& stats = tb.client(i).dufs->meta_cache().stats();
    c.cache_hits += stats.hits;
    c.cache_misses += stats.misses;
  }
  c.zk_requests -= req0;
  c.zk_failovers -= fo0;
  if (config.enable_trace) {
    tb.obs().tracer().WriteChromeJson(obs->trace_path);
    std::printf("trace written: %s (%zu spans)\n", obs->trace_path.c_str(),
                tb.obs().tracer().events().size());
  }
  if (registry_json != nullptr) {
    *registry_json = tb.obs().metrics().ToJson();
  }
  if (timeline_json != nullptr && obs != nullptr && obs->timeline) {
    *timeline_json = tb.timeline().ToJson();
  }
  if (incidents_json != nullptr && obs != nullptr) {
    *incidents_json = bench::FinishIncidents(tb.obs(), *obs);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(
      argc, argv,
      "ablation_fastpath [--seed=N] [--width=64] [--files=32] [--rounds=8] "
      "[--procs=128] [--items=10] [--ops=N] [--metrics-json=PATH] "
      "[--trace=PATH] [--timeline] [--timeline-us=200] [--baseline=PATH] "
      "[--slo=op:target:budget] [--flight-dump-dir=DIR] [--slo-window-us=N] "
      "[--flight-capacity=N]");
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 1));
  const auto width = static_cast<std::size_t>(flags.Int("width", 64));
  const auto files = static_cast<std::size_t>(flags.Int("files", 32));
  const auto rounds = static_cast<std::size_t>(flags.Int("rounds", 8));
  const auto procs = static_cast<std::size_t>(flags.Int("procs", 128));
  // --ops is a friendlier way to size experiment (c): total creates across
  // all processes; it overrides --items.
  const auto ops = static_cast<std::size_t>(flags.Int("ops", 0));
  const auto items = ops > 0
                         ? std::max<std::size_t>(1, ops / procs)
                         : static_cast<std::size_t>(flags.Int("items", 10));
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);

  std::printf("Ablation: metadata fast path (seed=%llu)\n",
              static_cast<unsigned long long>(seed));

  std::printf("\n## (a) ReadDir fan-out — %zu-entry directory, cold cache\n",
              width);
  const double seq_us = MeasureReadDirUs(seed, width, 1);
  const double par_us = MeasureReadDirUs(seed, width, 32);
  std::printf("%-28s %12.1f us\n", "fanout=1 (sequential)", seq_us);
  std::printf("%-28s %12.1f us   (%.1fx faster)\n", "fanout=32 (WhenAll)",
              par_us, seq_us / par_us);

  std::printf("\n## (b) metadata cache — %zu hot files x %zu stat rounds\n",
              files, rounds);
  bench::PrintHotPathHeader();
  const auto cache_off = MeasureStats(seed, false, files, rounds);
  const auto cache_on = MeasureStats(seed, true, files, rounds);
  bench::PrintHotPathRow("cache=off", cache_off);
  bench::PrintHotPathRow("cache=on", cache_on);
  const double off_per_op =
      static_cast<double>(cache_off.zk_requests) / cache_off.ops;
  const double on_per_op =
      static_cast<double>(cache_on.zk_requests) / cache_on.ops;
  std::printf("zk requests per stat: %.3f -> %.3f (%.1fx fewer)\n",
              off_per_op, on_per_op, off_per_op / on_per_op);

  std::printf("\n## (c) leader group commit — mdtest file-create, "
              "%zu processes x %zu items\n",
              procs, items);
  bench::PrintHotPathHeader();
  std::string registry_json, timeline_json, incidents_json;
  const auto gc_off = MeasureCreates(seed, false, procs, items);
  // The trace, timeline, and incident engine (if requested) cover the
  // group_commit=on run — the configuration whose span chain (op → zk-rpc →
  // quorum-round → fsync-batch) the ablation is about.
  const auto gc_on = MeasureCreates(seed, true, procs, items, &obs_opts,
                                    &registry_json, &timeline_json,
                                    &incidents_json);
  bench::PrintHotPathRow("group_commit=off", gc_off);
  bench::PrintHotPathRow("group_commit=on", gc_on);
  std::printf("create throughput: %.0f -> %.0f ops/s (%.2fx)\n",
              gc_off.ops / gc_off.seconds, gc_on.ops / gc_on.seconds,
              (gc_on.ops / gc_on.seconds) / (gc_off.ops / gc_off.seconds));

  if (obs_opts.metrics_enabled()) {
    bench::MetricsJsonWriter out;
    out.AddValue("readdir_seq_us", seq_us);
    out.AddValue("readdir_par_us", par_us);
    out.AddCounters("cache=off", cache_off);
    out.AddCounters("cache=on", cache_on);
    out.AddCounters("group_commit=off", gc_off);
    out.AddCounters("group_commit=on", gc_on);
    out.SetTimelineJson(timeline_json);
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(registry_json);
    if (out.WriteFile(obs_opts.metrics_path)) {
      std::printf("metrics written: %s\n", obs_opts.metrics_path.c_str());
    }
  }

  if (obs_opts.baseline_enabled()) {
    bench::BaselineWriter base("ablation_fastpath");
    base.AddLowerBetter("readdir.seq.us", seq_us);
    base.AddLowerBetter("readdir.par.us", par_us);
    base.AddLowerBetter("stat.cache_off.zk_req_per_op", off_per_op);
    base.AddLowerBetter("stat.cache_on.zk_req_per_op", on_per_op);
    base.AddHigherBetter("create.gc_off.ops_per_s",
                         gc_off.ops / gc_off.seconds);
    base.AddHigherBetter("create.gc_on.ops_per_s", gc_on.ops / gc_on.seconds);
    if (base.WriteFile(obs_opts.baseline_path)) {
      std::printf("baseline written: %s\n", obs_opts.baseline_path.c_str());
    }
  }

  std::printf("\nTakeaway: each layer attacks a different serial term — "
              "(a) per-child RPC\nlatency, (b) repeated-lookup request "
              "volume, (c) per-proposal quorum and\nfsync cost. All three "
              "compose on the same DUFS client.\n");
  return 0;
}
