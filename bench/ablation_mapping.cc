// Ablation — placement policies (paper §IV-F and the §VII future work):
// load balance across N back-ends and relocation volume when a back-end is
// added or removed, MD5-mod-N vs consistent hashing.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/mapping.h"

using namespace dufs;
using core::ConsistentHashPlacement;
using core::MakePlacement;
using core::Md5ModNPlacement;

namespace {

std::vector<Fid> MakeFids(std::size_t count) {
  std::vector<Fid> fids;
  fids.reserve(count);
  for (std::uint64_t c = 1; c <= 8; ++c) {
    for (std::uint64_t i = 0; i < count / 8; ++i) fids.push_back(Fid{c, i});
  }
  return fids;
}

// Max relative deviation from perfect balance, in percent.
double ImbalancePct(core::PlacementPolicy& policy,
                    const std::vector<Fid>& fids) {
  std::vector<std::size_t> buckets(policy.backend_count(), 0);
  for (const auto& fid : fids) ++buckets[policy.Place(fid)];
  const double ideal =
      static_cast<double>(fids.size()) /
      static_cast<double>(policy.backend_count());
  double worst = 0;
  for (auto b : buckets) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(b) - ideal) / ideal);
  }
  return worst * 100.0;
}

double MovedPct(core::PlacementPolicy& policy, const std::vector<Fid>& fids,
                std::size_t from, std::size_t to) {
  policy.SetBackendCount(from);
  std::vector<std::uint32_t> before;
  before.reserve(fids.size());
  for (const auto& fid : fids) before.push_back(policy.Place(fid));
  policy.SetBackendCount(to);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < fids.size(); ++i) {
    if (policy.Place(fids[i]) != before[i]) ++moved;
  }
  policy.SetBackendCount(from);
  return 100.0 * static_cast<double>(moved) /
         static_cast<double>(fids.size());
}

}  // namespace

int main(int argc, char** argv) {
  // No simulation here, so --trace would be empty by construction; only the
  // metrics export is wired.
  bench::Flags flags(argc, argv,
                     "ablation_mapping [--fids=N] [--metrics-json=PATH]");
  const auto fids = MakeFids(
      static_cast<std::size_t>(flags.Int("fids", 200'000)));
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);
  bench::MetricsJsonWriter out;

  std::printf("Ablation: FID placement policies over %zu FIDs\n",
              fids.size());
  std::printf("%-4s %22s %22s %20s %20s\n", "N", "md5 imbalance(%)",
              "chash imbalance(%)", "md5 moved N->N+1(%)",
              "chash moved N->N+1(%)");
  for (std::size_t n : {2, 3, 4, 8, 12, 16}) {
    Md5ModNPlacement md5(n);
    ConsistentHashPlacement chash(n);
    const double md5_imb = ImbalancePct(md5, fids);
    const double chash_imb = ImbalancePct(chash, fids);
    const double md5_moved = MovedPct(md5, fids, n, n + 1);
    const double chash_moved = MovedPct(chash, fids, n, n + 1);
    std::printf("%-4zu %22.2f %22.2f %20.1f %20.1f\n", n, md5_imb, chash_imb,
                md5_moved, chash_moved);
    const std::string suffix = "@" + std::to_string(n);
    out.AddValue("md5.imbalance_pct" + suffix, md5_imb);
    out.AddValue("chash.imbalance_pct" + suffix, chash_imb);
    out.AddValue("md5.moved_pct" + suffix, md5_moved);
    out.AddValue("chash.moved_pct" + suffix, chash_moved);
  }
  if (obs_opts.metrics_enabled()) {
    out.WriteFile(obs_opts.metrics_path);
  }
  std::printf("\nTakeaway: mod-N balances slightly better, but a back-end "
              "change relocates\nnearly all files; the ring bounds "
              "relocation near the ideal 100/(N+1)%%.\n");
  return 0;
}
