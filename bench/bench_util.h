// Shared helpers for the figure-reproduction benches: tiny flag parsing,
// aligned table printing matching the series the paper plots, and the
// machine-readable exports (--metrics-json / --trace) that make every bench
// row reproducible from artifacts alone.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <system_error>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace dufs::bench {

// --flag=value / --flag value / --flag (bool). Positional (non --) arguments
// abort with the usage string; unrecognized --flags are parsed but simply
// never read back, so benches can share command lines.
class Flags {
 public:
  Flags(int argc, char** argv, std::string usage)
      : usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) != 0) Fail("unexpected arg: " + args_[i]);
      std::string key = args_[i].substr(2);
      std::string value = "1";
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
        value = args_[++i];
      }
      values_.emplace_back(std::move(key), std::move(value));
    }
  }

  bool Bool(const std::string& key, bool fallback = false) const {
    const auto* v = Find(key);
    return v == nullptr ? fallback : (*v != "0" && *v != "false");
  }
  long Int(const std::string& key, long fallback) const {
    const auto* v = Find(key);
    return v == nullptr ? fallback : std::strtol(v->c_str(), nullptr, 10);
  }
  double Double(const std::string& key, double fallback) const {
    const auto* v = Find(key);
    return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
  }
  std::string Str(const std::string& key, std::string fallback) const {
    const auto* v = Find(key);
    // Two plain returns: a ternary mixing `std::move(fallback)` with `*v`
    // forms a prvalue from the const ref, silently copying — and pessimizes
    // the fallback path too.
    if (v != nullptr) return *v;
    return fallback;
  }
  // Comma-separated integer list. Empty segments (trailing comma, "a,,b")
  // are skipped rather than parsed as 0.
  std::vector<long> IntList(const std::string& key,
                            std::vector<long> fallback) const {
    const auto* v = Find(key);
    if (v == nullptr) return fallback;
    std::vector<long> out;
    std::size_t start = 0;
    while (start <= v->size()) {
      auto end = v->find(',', start);
      if (end == std::string::npos) end = v->size();
      if (end > start) {
        out.push_back(std::strtol(v->substr(start, end - start).c_str(),
                                  nullptr, 10));
      }
      start = end + 1;
    }
    return out;
  }

 private:
  const std::string* Find(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[noreturn]] void Fail(const std::string& message) const {
    std::fprintf(stderr, "%s\nusage: %s\n", message.c_str(), usage_.c_str());
    std::exit(2);
  }

  std::string usage_;
  std::vector<std::string> args_;
  std::vector<std::pair<std::string, std::string>> values_;
};

// Hot-path telemetry for one measured configuration: throughput plus the
// per-op ZooKeeper cost and client-cache behaviour that explain it
// (deltas of ZkClient::requests_sent()/failovers() and MetaCache::Stats
// summed over the participating clients).
struct HotPathCounters {
  double ops = 0;
  double seconds = 0;
  std::uint64_t zk_requests = 0;
  std::uint64_t zk_failovers = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

inline void PrintHotPathHeader() {
  std::printf("%-28s %12s %12s %10s %10s %10s %10s\n", "config", "ops/s",
              "zk-req/op", "failovers", "hits", "misses", "hit-rate");
}

inline void PrintHotPathRow(const std::string& label,
                            const HotPathCounters& c) {
  const double ops = c.ops > 0 ? c.ops : 1;
  const double probes =
      static_cast<double>(c.cache_hits + c.cache_misses);
  std::printf("%-28s %12.1f %12.3f %10llu %10llu %10llu %9.1f%%\n",
              label.c_str(), c.seconds > 0 ? c.ops / c.seconds : 0.0,
              static_cast<double>(c.zk_requests) / ops,
              static_cast<unsigned long long>(c.zk_failovers),
              static_cast<unsigned long long>(c.cache_hits),
              static_cast<unsigned long long>(c.cache_misses),
              probes > 0
                  ? 100.0 * static_cast<double>(c.cache_hits) / probes
                  : 0.0);
}

// Minimal JSON string escaping for the exports below (keys are identifiers;
// only values built from user flags need it).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void AppendJsonNumber(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// Prints a "series table": one row per x value, one column per series —
// mirroring the figures' curves.
class SeriesTable {
 public:
  SeriesTable(std::string x_label, std::vector<std::string> series)
      : x_label_(std::move(x_label)), series_(std::move(series)) {}

  void AddRow(long x, std::vector<double> values) {
    rows_.emplace_back(x, std::move(values));
  }

  void Print(const std::string& title) const {
    std::printf("\n## %s\n", title.c_str());
    std::printf("%-10s", x_label_.c_str());
    for (const auto& s : series_) std::printf(" %18s", s.c_str());
    std::printf("\n");
    for (const auto& [x, values] : rows_) {
      std::printf("%-10ld", x);
      for (double v : values) std::printf(" %18.1f", v);
      std::printf("\n");
    }
  }

  // Appends this table as one JSON object:
  //   {"x_label":"procs","series":["dufs","basic"],"rows":[[8,1.5,0.2],...]}
  void AppendJson(std::string* out) const {
    *out += "{\"x_label\":\"" + JsonEscape(x_label_) + "\",\"series\":[";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      if (i > 0) *out += ',';
      *out += '"' + JsonEscape(series_[i]) + '"';
    }
    *out += "],\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r > 0) *out += ',';
      *out += '[';
      *out += std::to_string(rows_[r].first);
      for (double v : rows_[r].second) {
        *out += ',';
        AppendJsonNumber(out, v);
      }
      *out += ']';
    }
    *out += "]}";
  }

 private:
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<std::pair<long, std::vector<double>>> rows_;
};

// "500us" / "2ms" / "1s" / "250" (bare = ns) -> nanoseconds; -1 on parse
// failure.
inline std::int64_t ParseDurationNs(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v < 0) return -1;
  const std::string unit(end);
  if (unit.empty() || unit == "ns") return static_cast<std::int64_t>(v);
  if (unit == "us") return static_cast<std::int64_t>(v * 1e3);
  if (unit == "ms") return static_cast<std::int64_t>(v * 1e6);
  if (unit == "s") return static_cast<std::int64_t>(v * 1e9);
  return -1;
}

// The observability flags every bench shares:
//   --metrics-json=PATH   write counters + the merged registry as JSON
//   --trace=PATH          record spans, write Chrome trace_event JSON
//   --timeline            sample gauges into a "timeline" metrics section
//   --timeline-us=N       sim-time sampling period (default 200us)
//   --baseline=PATH       write the BENCH_<name>.json regression baseline
//   --slo=SPEC[,SPEC...]  arm the SLO evaluator; SPEC = op:target:budget,
//                         e.g. create:2ms:0.01 (1% of creates may miss 2ms)
//   --flight-dump-dir=DIR arm the anomaly detectors; dumps the flight
//                         recorder to DIR/dump_<seq>_<type>.json on firing
//   --slo-window-us=N     detector/SLO window on sim time (default 10ms)
//   --flight-capacity=N   flight-recorder spans kept per node (default 512)
//   --profile=PATH        sample the CPU profiler, write folded stacks
//   --profile-hz=N        signal-mode sample rate (default 97)
//   --profile-every=N     N > 0: deterministic count mode, fold every Nth
//                         dispatch instead of using SIGPROF (CI gates)
//   --profile-digest=PATH also write the profiler's JSON digest
struct ObsOptions {
  std::string metrics_path;
  std::string trace_path;
  std::string baseline_path;
  bool timeline = false;
  long timeline_us = 200;
  std::string slo;
  std::string flight_dump_dir;
  long slo_window_us = 10000;
  long flight_capacity = 0;
  std::string profile_path;
  std::string profile_digest_path;
  long profile_hz = 97;
  long profile_every = 0;

  static ObsOptions FromFlags(const Flags& flags) {
    ObsOptions o;
    o.metrics_path = flags.Str("metrics-json", "");
    o.trace_path = flags.Str("trace", "");
    o.baseline_path = flags.Str("baseline", "");
    o.timeline = flags.Bool("timeline");
    o.timeline_us = flags.Int("timeline-us", 200);
    o.slo = flags.Str("slo", "");
    o.flight_dump_dir = flags.Str("flight-dump-dir", "");
    o.slo_window_us = flags.Int("slo-window-us", 10000);
    o.flight_capacity = flags.Int("flight-capacity", 0);
    o.profile_path = flags.Str("profile", "");
    o.profile_digest_path = flags.Str("profile-digest", "");
    o.profile_hz = flags.Int("profile-hz", 97);
    o.profile_every = flags.Int("profile-every", 0);
    return o;
  }
  bool trace_enabled() const { return !trace_path.empty(); }
  bool metrics_enabled() const { return !metrics_path.empty(); }
  bool baseline_enabled() const { return !baseline_path.empty(); }
  bool incidents_enabled() const {
    return !slo.empty() || !flight_dump_dir.empty();
  }
  bool profile_enabled() const { return !profile_path.empty(); }
  long timeline_interval_ns() const { return timeline_us * 1000; }
};

// RAII around the CPU profiler for a whole bench run: Start() from the
// shared flags at construction, Finish() (or destruction) stops, writes the
// folded export (+ optional digest), prints a one-line summary, and resets
// the accumulated profile. A default --profile-less run constructs and
// destroys this for free without ever starting the profiler.
class ProfileSession {
 public:
  explicit ProfileSession(const ObsOptions& o) : opts_(o) {
    if (!opts_.profile_enabled()) return;
    prof::Options po;
    if (opts_.profile_every > 0) {
      po.mode = prof::Options::Mode::kCount;
      po.every = static_cast<std::uint64_t>(opts_.profile_every);
    } else {
      po.mode = prof::Options::Mode::kSignal;
      po.hz = static_cast<int>(opts_.profile_hz);
    }
    std::string error;
    if (!prof::Start(po, &error)) {
      std::fprintf(stderr, "--profile: %s\n", error.c_str());
      ok_ = false;
      return;
    }
    running_ = true;
  }
  ~ProfileSession() { Finish(); }

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

  // False when the profiler failed to start or an export failed to write.
  bool ok() const { return ok_; }

  void Finish() {
    if (!running_) return;
    running_ = false;
    prof::Stop();
    const prof::Stats stats = prof::GetStats();
    if (!WriteText(opts_.profile_path, prof::ExportFolded())) ok_ = false;
    if (!opts_.profile_digest_path.empty() &&
        !WriteText(opts_.profile_digest_path, prof::ExportDigestJson())) {
      ok_ = false;
    }
    std::printf("[prof] %llu samples (%llu dropped, %llu truncated) -> %s\n",
                static_cast<unsigned long long>(stats.samples),
                static_cast<unsigned long long>(stats.dropped),
                static_cast<unsigned long long>(stats.truncated),
                opts_.profile_path.c_str());
    prof::Reset();
  }

 private:
  bool WriteText(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write profile: %s\n", path.c_str());
      return false;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return true;
  }

  ObsOptions opts_;
  bool running_ = false;
  bool ok_ = true;
};

// Arm the incident engine (detectors + SLOs) from the shared flags. The
// engine must already be bound to the sim (Testbed does this; standalone
// benches call obs.BindIncidents(&sim) first). Returns false after warning
// on a malformed --slo clause; a no-op (true) when incidents are off.
inline bool ConfigureIncidents(obs::Observability& obs, const ObsOptions& o) {
  if (!o.incidents_enabled()) return true;
  if (o.flight_capacity > 0) {
    obs.flight().SetCapacity(static_cast<std::uint32_t>(o.flight_capacity));
  }
  // Normalize the dump dir: `dumps`, `dumps/` and `dumps/.` must name the
  // same directory. The dump writer appends `/dump_<seq>_<type>.json`
  // verbatim and the resulting path is recorded (and embedded, as a
  // basename, in the metrics export), so a trailing or redundant separator
  // would leak `dumps//...` paths whose shape depends on how the flag was
  // spelled.
  std::string dump_dir = o.flight_dump_dir;
  if (!dump_dir.empty()) {
    dump_dir =
        std::filesystem::path(dump_dir).lexically_normal().generic_string();
    while (dump_dir.size() > 1 && dump_dir.back() == '/') dump_dir.pop_back();
    // The dump writer fopen()s into this directory and silently skips the
    // dump when it is missing; create it up front so a bare
    // --flight-dump-dir=dumps works without a pre-made directory.
    std::error_code ec;
    std::filesystem::create_directories(dump_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --flight-dump-dir %s: %s\n",
                   dump_dir.c_str(), ec.message().c_str());
      return false;
    }
  }
  obs::AnomalyConfig cfg;
  cfg.window_ns = o.slo_window_us * 1000;
  cfg.dump_dir = dump_dir;
  obs.incidents().Configure(cfg);
  // --slo=op:target:budget[,op:target:budget...]
  std::size_t start = 0;
  while (start < o.slo.size()) {
    auto end = o.slo.find(',', start);
    if (end == std::string::npos) end = o.slo.size();
    const std::string clause = o.slo.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;
    const auto c1 = clause.find(':');
    const auto c2 = c1 == std::string::npos ? std::string::npos
                                            : clause.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      std::fprintf(stderr, "--slo: want op:target:budget, got \"%s\"\n",
                   clause.c_str());
      return false;
    }
    const char* op = obs::Incidents::CanonicalOpName(clause.substr(0, c1));
    const std::int64_t target =
        ParseDurationNs(clause.substr(c1 + 1, c2 - c1 - 1));
    const double budget = std::strtod(clause.c_str() + c2 + 1, nullptr);
    if (op == nullptr || target < 0 || budget <= 0.0 || budget > 1.0) {
      std::fprintf(stderr, "--slo: bad clause \"%s\"\n", clause.c_str());
      return false;
    }
    obs.incidents().AddSlo(obs::SloSpec{op, target, budget});
  }
  return true;
}

// Close the final window, print a per-anomaly summary, and return the
// incident report JSON for MetricsJsonWriter::SetIncidentsJson. Returns ""
// (and prints nothing) when incidents are off.
inline std::string FinishIncidents(obs::Observability& obs,
                                   const ObsOptions& o) {
  if (!o.incidents_enabled()) return std::string();
  obs.incidents().Flush();
  const auto& anomalies = obs.incidents().anomalies();
  std::printf("[incidents] %zu anomalies (%llu suppressed by cooldown)\n",
              anomalies.size(),
              static_cast<unsigned long long>(obs.incidents().suppressed()));
  for (const auto& a : anomalies) {
    std::printf("[incidents]   #%llu t=%lldns %s on %s value=%lld "
                "threshold=%lld%s%s\n",
                static_cast<unsigned long long>(a.seq),
                static_cast<long long>(a.t), a.type, a.node.c_str(),
                static_cast<long long>(a.value),
                static_cast<long long>(a.threshold),
                a.dump_path.empty() ? "" : " dump=", a.dump_path.c_str());
  }
  return obs.incidents().ReportJson();
}

// Accumulates everything a bench prints into one machine-readable document:
//
//   {"configs":[{"label":...,"ops":...,"ops_per_s":...,"zk_requests":...},..],
//    "tables":{"fig10 dir create":{...}},
//    "registry":{"nodes":{...},"merged":{...}}}
//
// The "configs" rows carry exactly the fields PrintHotPathRow derives its
// columns from, so a table row is reproducible from the JSON alone.
class MetricsJsonWriter {
 public:
  void AddCounters(const std::string& label, const HotPathCounters& c) {
    std::string row = "{\"label\":\"" + JsonEscape(label) + "\",\"ops\":";
    AppendJsonNumber(&row, c.ops);
    row += ",\"seconds\":";
    AppendJsonNumber(&row, c.seconds);
    row += ",\"ops_per_s\":";
    AppendJsonNumber(&row, c.seconds > 0 ? c.ops / c.seconds : 0.0);
    row += ",\"zk_requests\":" + std::to_string(c.zk_requests);
    row += ",\"zk_failovers\":" + std::to_string(c.zk_failovers);
    row += ",\"cache_hits\":" + std::to_string(c.cache_hits);
    row += ",\"cache_misses\":" + std::to_string(c.cache_misses);
    row += '}';
    configs_.push_back(std::move(row));
  }

  void AddValue(const std::string& key, double value) {
    std::string kv = "\"" + JsonEscape(key) + "\":";
    AppendJsonNumber(&kv, value);
    values_.push_back(std::move(kv));
  }

  void AddTable(const std::string& title, const SeriesTable& table) {
    std::string entry = "\"" + JsonEscape(title) + "\":";
    table.AppendJson(&entry);
    tables_.push_back(std::move(entry));
  }

  // `json` is a complete JSON object (obs::MetricsRegistry::ToJson()).
  void SetRegistryJson(std::string json) { registry_ = std::move(json); }

  // `json` is a complete JSON object (obs::TimelineSampler::ToJson()).
  void SetTimelineJson(std::string json) { timeline_ = std::move(json); }

  // `json` is a complete JSON object (obs::Incidents::ReportJson()).
  void SetIncidentsJson(std::string json) { incidents_ = std::move(json); }

  std::string ToJson() const {
    std::string out = "{\"configs\":[";
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      if (i > 0) out += ',';
      out += configs_[i];
    }
    out += ']';
    for (const auto& kv : values_) {
      out += ',';
      out += kv;
    }
    if (!tables_.empty()) {
      out += ",\"tables\":{";
      for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (i > 0) out += ',';
        out += tables_[i];
      }
      out += '}';
    }
    if (!timeline_.empty()) {
      out += ",\"timeline\":";
      out += timeline_;
    }
    if (!incidents_.empty()) {
      out += ",\"incidents\":";
      out += incidents_;
    }
    if (!registry_.empty()) {
      out += ",\"registry\":";
      out += registry_;
    }
    out += '}';
    return out;
  }

  // Returns false (and warns) when the file cannot be opened.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics json: %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> configs_;
  std::vector<std::string> values_;
  std::vector<std::string> tables_;
  std::string timeline_;
  std::string incidents_;
  std::string registry_;
};

// The perf-regression baseline: a flat map of headline scalars with a
// direction, diffable by `tracestats --compare`. Keys sort (std::map) and
// numbers print with %.17g, so a re-run of the same commit with the same
// flags produces a byte-identical file.
//
//   {"bench":"ablation_fastpath","schema":1,
//    "metrics":{"create.gc_on.ops_per_s":{"value":...,"better":"higher"},..}}
class BaselineWriter {
 public:
  explicit BaselineWriter(std::string bench) : bench_(std::move(bench)) {}

  // `higher` == true: bigger is better (throughput); false: smaller is
  // better (latency, zk requests per op).
  void Add(const std::string& key, double value, bool higher) {
    metrics_[key] = {value, higher};
  }
  void AddHigherBetter(const std::string& key, double value) {
    Add(key, value, true);
  }
  void AddLowerBetter(const std::string& key, double value) {
    Add(key, value, false);
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"" + JsonEscape(bench_) +
                      "\",\"schema\":1,\"metrics\":{";
    bool first = true;
    for (const auto& [key, m] : metrics_) {
      if (!first) out += ',';
      first = false;
      out += '"' + JsonEscape(key) + "\":{\"value\":";
      AppendJsonNumber(&out, m.value);
      out += ",\"better\":\"";
      out += m.higher ? "higher" : "lower";
      out += "\"}";
    }
    out += "}}";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write baseline json: %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  struct Metric {
    double value = 0;
    bool higher = true;
  };
  std::string bench_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace dufs::bench
