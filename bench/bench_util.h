// Shared helpers for the figure-reproduction benches: tiny flag parsing and
// aligned table printing matching the series the paper plots.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace dufs::bench {

// --flag=value / --flag value / --flag (bool). Unknown flags abort with the
// usage string so typos never silently change an experiment.
class Flags {
 public:
  Flags(int argc, char** argv, std::string usage)
      : usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) != 0) Fail("unexpected arg: " + args_[i]);
      std::string key = args_[i].substr(2);
      std::string value = "1";
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
        value = args_[++i];
      }
      values_.emplace_back(std::move(key), std::move(value));
    }
  }

  bool Bool(const std::string& key, bool fallback = false) const {
    const auto* v = Find(key);
    return v == nullptr ? fallback : (*v != "0" && *v != "false");
  }
  long Int(const std::string& key, long fallback) const {
    const auto* v = Find(key);
    return v == nullptr ? fallback : std::strtol(v->c_str(), nullptr, 10);
  }
  double Double(const std::string& key, double fallback) const {
    const auto* v = Find(key);
    return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
  }
  std::string Str(const std::string& key, std::string fallback) const {
    const auto* v = Find(key);
    return v == nullptr ? std::move(fallback) : *v;
  }
  // Comma-separated integer list.
  std::vector<long> IntList(const std::string& key,
                            std::vector<long> fallback) const {
    const auto* v = Find(key);
    if (v == nullptr) return fallback;
    std::vector<long> out;
    std::size_t start = 0;
    while (start <= v->size()) {
      auto end = v->find(',', start);
      if (end == std::string::npos) end = v->size();
      out.push_back(std::strtol(v->substr(start, end - start).c_str(),
                                nullptr, 10));
      start = end + 1;
    }
    return out;
  }

 private:
  const std::string* Find(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[noreturn]] void Fail(const std::string& message) const {
    std::fprintf(stderr, "%s\nusage: %s\n", message.c_str(), usage_.c_str());
    std::exit(2);
  }

  std::string usage_;
  std::vector<std::string> args_;
  std::vector<std::pair<std::string, std::string>> values_;
};

// Hot-path telemetry for one measured configuration: throughput plus the
// per-op ZooKeeper cost and client-cache behaviour that explain it
// (deltas of ZkClient::requests_sent()/failovers() and MetaCache::Stats
// summed over the participating clients).
struct HotPathCounters {
  double ops = 0;
  double seconds = 0;
  std::uint64_t zk_requests = 0;
  std::uint64_t zk_failovers = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

inline void PrintHotPathHeader() {
  std::printf("%-28s %12s %12s %10s %10s %10s %10s\n", "config", "ops/s",
              "zk-req/op", "failovers", "hits", "misses", "hit-rate");
}

inline void PrintHotPathRow(const std::string& label,
                            const HotPathCounters& c) {
  const double ops = c.ops > 0 ? c.ops : 1;
  const double probes =
      static_cast<double>(c.cache_hits + c.cache_misses);
  std::printf("%-28s %12.1f %12.3f %10llu %10llu %10llu %9.1f%%\n",
              label.c_str(), c.seconds > 0 ? c.ops / c.seconds : 0.0,
              static_cast<double>(c.zk_requests) / ops,
              static_cast<unsigned long long>(c.zk_failovers),
              static_cast<unsigned long long>(c.cache_hits),
              static_cast<unsigned long long>(c.cache_misses),
              probes > 0
                  ? 100.0 * static_cast<double>(c.cache_hits) / probes
                  : 0.0);
}

// Prints a "series table": one row per x value, one column per series —
// mirroring the figures' curves.
class SeriesTable {
 public:
  SeriesTable(std::string x_label, std::vector<std::string> series)
      : x_label_(std::move(x_label)), series_(std::move(series)) {}

  void AddRow(long x, std::vector<double> values) {
    rows_.emplace_back(x, std::move(values));
  }

  void Print(const std::string& title) const {
    std::printf("\n## %s\n", title.c_str());
    std::printf("%-10s", x_label_.c_str());
    for (const auto& s : series_) std::printf(" %18s", s.c_str());
    std::printf("\n");
    for (const auto& [x, values] : rows_) {
      std::printf("%-10ld", x);
      for (double v : values) std::printf(" %18.1f", v);
      std::printf("\n");
    }
  }

 private:
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<std::pair<long, std::vector<double>>> rows_;
};

}  // namespace dufs::bench
