// Figure 10 — DUFS vs native parallel filesystems: Basic Lustre, DUFS over
// 2 Lustre mounts, Basic PVFS, DUFS over 2 PVFS mounts; all six mdtest
// operations vs the number of client processes.
//
// Expected shape (paper §V-D): Lustre wins at small scale but degrades with
// client count; DUFS stays flat and overtakes it by 256 procs (the paper
// quotes dir-create 1.9x over Lustre and 23x over PVFS, file-stat 1.3x /
// 3.0x at 256 procs — printed below as the headline ratios).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::BackendKind;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

struct System {
  std::string name;
  BackendKind backend;
  Target target;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "fig10_native_compare [--procs=16,...,256] [--items=N] "
                     "[--quick] [--metrics-json=PATH] [--trace=PATH] "
                     "[--timeline] [--timeline-us=200] [--baseline=PATH] "
                     "[--slo=op:target:budget] [--flight-dump-dir=DIR] "
                     "[--slo-window-us=N] [--flight-capacity=N]");
  std::vector<long> procs_list =
      flags.IntList("procs", {16, 32, 64, 128, 192, 256});
  std::size_t items = static_cast<std::size_t>(flags.Int("items", 25));
  if (flags.Bool("quick")) {
    procs_list = {64, 256};
    items = 10;
  }
  // --trace records the DUFS-over-Lustre system only (one span per op and
  // per RPC — pair it with --quick to keep the file reviewable).
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);

  const System systems[] = {
      {"Basic Lustre", BackendKind::kLustre, Target::kBaseline},
      {"DUFS 2xLustre", BackendKind::kLustre, Target::kDufs},
      {"Basic PVFS", BackendKind::kPvfs, Target::kBaseline},
      {"DUFS 2xPVFS", BackendKind::kPvfs, Target::kDufs},
  };
  const Phase order[] = {Phase::kDirCreate, Phase::kDirRemove,
                         Phase::kDirStat, Phase::kFileCreate,
                         Phase::kFileRemove, Phase::kFileStat};

  std::map<Phase, std::map<std::string, std::map<long, double>>> results;
  std::string registry_json, timeline_json, incidents_json;

  for (const auto& system : systems) {
    TestbedConfig config;
    config.backend = system.backend;
    config.backend_instances = 2;
    config.zk_servers = 8;
    const bool traced = obs_opts.trace_enabled() &&
                        system.target == Target::kDufs &&
                        system.backend == BackendKind::kLustre;
    // The timeline and registry dump follow the same designated system as
    // the trace: DUFS over Lustre.
    const bool observed = system.target == Target::kDufs &&
                          system.backend == BackendKind::kLustre;
    config.enable_trace = traced;
    Testbed tb(config);
    if (observed) {
      DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), obs_opts));
    }
    tb.MountAll();
    if (observed && obs_opts.timeline) {
      tb.StartTimeline(obs_opts.timeline_interval_ns());
    }
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/r" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      for (auto& r : runner.Run(system.target,
                                {Phase::kDirCreate, Phase::kDirStat,
                                 Phase::kDirRemove, Phase::kFileCreate,
                                 Phase::kFileStat, Phase::kFileRemove})) {
        results[r.phase][system.name][procs] = r.ops_per_sec;
        if (r.errors > 0) {
          std::fprintf(stderr, "%s %s errors=%llu\n", system.name.c_str(),
                       std::string(mdtest::PhaseName(r.phase)).c_str(),
                       static_cast<unsigned long long>(r.errors));
        }
      }
      std::fprintf(stderr, "[fig10] %s procs=%ld done\n",
                   system.name.c_str(), procs);
    }
    if (traced) {
      tb.obs().tracer().WriteChromeJson(obs_opts.trace_path);
      std::fprintf(stderr, "[fig10] trace written: %s (%zu spans)\n",
                   obs_opts.trace_path.c_str(),
                   tb.obs().tracer().events().size());
    }
    if (observed) {
      registry_json = tb.obs().metrics().ToJson();
      if (obs_opts.timeline) timeline_json = tb.timeline().ToJson();
      incidents_json = bench::FinishIncidents(tb.obs(), obs_opts);
    }
  }

  std::printf("Figure 10: DUFS vs native Lustre and PVFS2 (ops/sec)\n");
  bench::MetricsJsonWriter out;
  const char sub[] = {'a', 'b', 'c', 'd', 'e', 'f'};
  for (int i = 0; i < 6; ++i) {
    std::vector<std::string> series;
    for (const auto& s : systems) series.push_back(s.name);
    bench::SeriesTable table("procs", series);
    for (long procs : procs_list) {
      std::vector<double> row;
      for (const auto& s : series) row.push_back(results[order[i]][s][procs]);
      table.AddRow(procs, std::move(row));
    }
    const std::string title = std::string("Fig 10") + sub[i] + ": " +
                              std::string(mdtest::PhaseName(order[i]));
    table.Print(title);
    out.AddTable(title, table);
  }
  if (obs_opts.metrics_enabled()) {
    out.SetTimelineJson(timeline_json);
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(registry_json);
    out.WriteFile(obs_opts.metrics_path);
  }

  // The paper's §V-D headline ratios at the largest measured scale.
  const long top = procs_list.back();
  auto ratio = [&](Phase phase, const char* a, const char* b) {
    const double denominator = results[phase][b][top];
    return denominator > 0 ? results[phase][a][top] / denominator : 0.0;
  };
  std::printf("\n## Headline ratios at %ld processes (paper: 1.9x, 23x, "
              "1.3x, 3.0x)\n", top);
  std::printf("dir-create  DUFS/Lustre: %4.1fx  (paper  1.9x)\n",
              ratio(Phase::kDirCreate, "DUFS 2xLustre", "Basic Lustre"));
  std::printf("dir-create  DUFS/PVFS:   %4.1fx  (paper 23.0x)\n",
              ratio(Phase::kDirCreate, "DUFS 2xPVFS", "Basic PVFS"));
  std::printf("file-stat   DUFS/Lustre: %4.1fx  (paper  1.3x)\n",
              ratio(Phase::kFileStat, "DUFS 2xLustre", "Basic Lustre"));
  std::printf("file-stat   DUFS/PVFS:   %4.1fx  (paper  3.0x)\n",
              ratio(Phase::kFileStat, "DUFS 2xPVFS", "Basic PVFS"));

  if (obs_opts.baseline_enabled()) {
    bench::BaselineWriter base("fig10_native_compare");
    for (const Phase phase : order) {
      base.AddHigherBetter(
          "dufs_lustre." + std::string(mdtest::PhaseName(phase)) +
              ".ops_per_s",
          results[phase]["DUFS 2xLustre"][top]);
    }
    base.AddHigherBetter(
        "ratio.dir_create.dufs_over_lustre",
        ratio(Phase::kDirCreate, "DUFS 2xLustre", "Basic Lustre"));
    base.AddHigherBetter(
        "ratio.dir_create.dufs_over_pvfs",
        ratio(Phase::kDirCreate, "DUFS 2xPVFS", "Basic PVFS"));
    base.AddHigherBetter(
        "ratio.file_stat.dufs_over_lustre",
        ratio(Phase::kFileStat, "DUFS 2xLustre", "Basic Lustre"));
    base.AddHigherBetter(
        "ratio.file_stat.dufs_over_pvfs",
        ratio(Phase::kFileStat, "DUFS 2xPVFS", "Basic PVFS"));
    if (base.WriteFile(obs_opts.baseline_path)) {
      std::printf("baseline written: %s\n", obs_opts.baseline_path.c_str());
    }
  }
  return 0;
}
