// Figure 9 — file-operation throughput for different numbers of back-end
// storages merged by DUFS (2 vs 4 Lustre instances), against basic Lustre.
//
// Expected shape (paper §V-C): create/remove barely improve with more
// back-ends (the znode mutation dominates); file stat improves clearly
// (>35% at 256 procs) because the znode read is cheap and the physical
// stat spreads over more MDSes.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "fig09_backends [--procs=64,128,256] [--items=N] "
                     "[--backends=2,4] [--metrics-json=PATH] [--trace=PATH] "
                     "[--timeline] [--timeline-us=200] "
                     "[--slo=op:target:budget] [--flight-dump-dir=DIR] "
                     "[--slo-window-us=N] [--flight-capacity=N]");
  const auto procs_list = flags.IntList("procs", {64, 128, 256});
  const auto backends_list = flags.IntList("backends", {2, 4});
  const auto items = static_cast<std::size_t>(flags.Int("items", 30));
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);
  std::string registry_json, timeline_json, incidents_json;

  const std::vector<Phase> phases = {Phase::kFileCreate, Phase::kFileRemove,
                                     Phase::kFileStat};
  std::map<Phase, std::map<std::string, std::map<long, double>>> results;

  {
    TestbedConfig config;
    config.backend = mdtest::BackendKind::kLustre;
    config.backend_instances = 2;
    Testbed tb(config);
    tb.MountAll();
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/bl" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      // file phases need the skeleton + create before stat/remove: the
      // standard phase order within Run handles it.
      for (auto& r : runner.Run(
               Target::kBaseline,
               {Phase::kFileCreate, Phase::kFileStat, Phase::kFileRemove})) {
        results[r.phase]["Basic Lustre"][procs] = r.ops_per_sec;
      }
    }
  }

  for (std::size_t bi = 0; bi < backends_list.size(); ++bi) {
    const long n = backends_list[bi];
    // The widest merge (last in --backends) is the observed configuration.
    const bool observed = bi + 1 == backends_list.size();
    TestbedConfig config;
    config.backend = mdtest::BackendKind::kLustre;
    config.backend_instances = static_cast<std::size_t>(n);
    config.zk_servers = 8;
    config.enable_trace = observed && obs_opts.trace_enabled();
    Testbed tb(config);
    if (observed) {
      DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), obs_opts));
    }
    tb.MountAll();
    if (observed && obs_opts.timeline) {
      tb.StartTimeline(obs_opts.timeline_interval_ns());
    }
    const std::string series =
        "DUFS " + std::to_string(n) + " Lustre backends";
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/md" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      for (auto& r : runner.Run(
               Target::kDufs,
               {Phase::kFileCreate, Phase::kFileStat, Phase::kFileRemove})) {
        results[r.phase][series][procs] = r.ops_per_sec;
      }
    }
    if (config.enable_trace) {
      tb.obs().tracer().WriteChromeJson(obs_opts.trace_path);
      std::fprintf(stderr, "[fig09] trace written: %s (%zu spans)\n",
                   obs_opts.trace_path.c_str(),
                   tb.obs().tracer().events().size());
    }
    if (observed) {
      registry_json = tb.obs().metrics().ToJson();
      if (obs_opts.timeline) timeline_json = tb.timeline().ToJson();
      incidents_json = bench::FinishIncidents(tb.obs(), obs_opts);
    }
  }

  std::printf("Figure 9: file-op throughput vs #back-end storages "
              "(8 ZK servers; ops/sec)\n");
  const std::pair<Phase, const char*> figures[] = {
      {Phase::kFileCreate, "Fig 9a: file-create"},
      {Phase::kFileRemove, "Fig 9b: file-remove"},
      {Phase::kFileStat, "Fig 9c: file-stat"},
  };
  bench::MetricsJsonWriter out;
  for (const auto& [phase, title] : figures) {
    std::vector<std::string> series = {"Basic Lustre"};
    for (long n : backends_list) {
      series.push_back("DUFS " + std::to_string(n) + " Lustre backends");
    }
    bench::SeriesTable table("procs", series);
    for (long procs : procs_list) {
      std::vector<double> row;
      for (const auto& s : series) row.push_back(results[phase][s][procs]);
      table.AddRow(procs, std::move(row));
    }
    table.Print(title);
    out.AddTable(title, table);
  }
  if (obs_opts.metrics_enabled()) {
    out.SetTimelineJson(timeline_json);
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(registry_json);
    out.WriteFile(obs_opts.metrics_path);
  }
  return 0;
}
