// Micro-benchmarks (google-benchmark) for the hot paths everything else is
// built on: MD5, the wire codec, the znode tree, the event queue, and the
// FID physical-path codec.
#include <benchmark/benchmark.h>

#include "common/md5.h"
#include "core/physical_path.h"
#include "sim/task.h"
#include "wire/buffer.h"
#include "zk/database.h"

namespace dufs {
namespace {

void BM_Md5Small(benchmark::State& state) {
  const std::array<std::uint8_t, 16> fid_bytes{1, 2, 3, 4, 5, 6, 7, 8,
                                               9, 10, 11, 12, 13, 14, 15, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(fid_bytes.data(), fid_bytes.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Md5Small);

void BM_Md5Bulk(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Bulk)->Arg(1024)->Arg(64 * 1024);

void BM_WireRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    wire::BufferWriter w;
    w.WriteU64(0x123456789abcdef0ull);
    w.WriteString("/dufs/ns/some/virtual/path");
    w.WriteVarint(12345);
    wire::BufferReader r(w.data());
    benchmark::DoNotOptimize(r.ReadU64());
    benchmark::DoNotOptimize(r.ReadString());
    benchmark::DoNotOptimize(r.ReadVarint());
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_ZnodeCreate(benchmark::State& state) {
  zk::DataTree tree;
  zk::Zxid zxid = 0;
  (void)tree.Create("/d", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Create("/d/n" + std::to_string(i++), {},
                                         zk::CreateMode::kPersistent, 0,
                                         ++zxid, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZnodeCreate);

void BM_ZnodeLookup(benchmark::State& state) {
  zk::DataTree tree;
  zk::Zxid zxid = 0;
  (void)tree.Create("/a", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  (void)tree.Create("/a/b", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  (void)tree.Create("/a/b/c", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find("/a/b/c"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZnodeLookup);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleFn(i % 97, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    auto result = sim::RunTask(
        sim, [](sim::Simulation& s) -> sim::Task<int> {
          int sum = 0;
          for (int i = 0; i < 100; ++i) {
            co_await s.Delay(1);
            sum += i;
          }
          co_return sum;
        }(sim));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_PhysicalPathCodec(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    const Fid fid{42, ++counter};
    auto path = core::PhysicalPathForFid(fid);
    benchmark::DoNotOptimize(core::FidFromPhysicalPath(path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhysicalPathCodec);

}  // namespace
}  // namespace dufs

BENCHMARK_MAIN();
