// Micro-benchmarks for the hot paths everything else is built on, in two
// modes:
//
//  * default: the google-benchmark suite (MD5, wire codec, znode tree,
//    event queue, FID codec) — comparative micro numbers.
//  * --selfbench: the wall-clock engine self-bench. Drives the
//    discrete-event core (timing wheel + arena) through three phases —
//    timer churn, coroutine delay loops, spawn/teardown — and reports
//    events/sec and spawns/sec. `--baseline` writes the headline JSON that
//    rides the tracestats --compare perf gate (bench/baselines/
//    BENCH_micro_core.json); `--metrics-json` writes only *deterministic*
//    values (event counts, final sim clocks) so the determinism gate can
//    byte-compare two runs; `--audit-check` fails the process if the
//    DUFS_AUDIT registry is not clean after the phases (proof the arena
//    does not break frame-leak detection).
#include <benchmark/benchmark.h>

#include <chrono>  // dufs-lint: allow(sim-time-source) wall-clock self-bench measures real time by definition
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "common/md5.h"
#include "obs/prof.h"
#include "core/physical_path.h"
#include "sim/audit.h"
#include "sim/task.h"
#include "wire/buffer.h"
#include "zk/database.h"

namespace dufs {
namespace {

// ---------------------------------------------------------------------------
// Engine self-bench (--selfbench)
// ---------------------------------------------------------------------------

double WallSeconds() {
  using clock = std::chrono::steady_clock;  // dufs-lint: allow(sim-time-source) self-bench wall timer, never feeds sim state
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// Phase 1: timer churn. `timers` self-rescheduling callbacks are kept in
// flight until `budget` events have been scheduled, with delays drawn from
// the sim Rng across every wheel level (1ns .. ~1ms, and 1/64 of them
// 1s..90s to exercise the far-future overflow path and wheel reload).
struct ChurnState {
  sim::Simulation* sim = nullptr;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t budget = 0;
};

sim::Duration ChurnDelay(sim::Simulation& sim) {
  const std::uint64_t r = sim.rng().NextBelow(64);
  if (r == 0) {
    // Far future: beyond the wheel span, lands in the overflow level.
    return sim::Sec(1) + static_cast<sim::Duration>(
                             sim.rng().NextBelow(89) * sim::kSecond);
  }
  // 1ns .. ~1ms spread across all wheel levels.
  return 1 + static_cast<sim::Duration>(sim.rng().NextBelow(sim::Ms(1)));
}

void ChurnArm(ChurnState* st) {
  ++st->scheduled;
  st->sim->ScheduleFn(ChurnDelay(*st->sim), [st] {
    ++st->fired;
    if (st->scheduled < st->budget) ChurnArm(st);
  });
}

// Phase 2: coroutine delay loops — `procs` detached actors each awaiting
// `rounds` delays, like client processes pacing requests.
sim::Task<void> DelayLoop(sim::Simulation* sim, long rounds,
                          std::uint64_t salt) {
  for (long i = 0; i < rounds; ++i) {
    co_await sim->Delay(1 + static_cast<sim::Duration>(
                                (salt + static_cast<std::uint64_t>(i) * 31) %
                                977));
  }
}

// Phase 3: spawn/teardown churn — frames that complete at first resume,
// measuring coroutine frame allocation + registry cost.
sim::Task<void> NoopTask() { co_return; }

struct PhaseResult {
  std::uint64_t items = 0;      // events or spawns
  double best_seconds = 0;      // min over reps
  std::uint64_t end_ns = 0;     // final sim clock (deterministic)
  std::uint64_t events = 0;     // engine events processed (deterministic)
};

PhaseResult RunChurn(std::uint64_t seed, std::uint64_t budget, long timers) {
  prof::ProfScope phase_scope("selfbench.churn", prof::FrameKind::kComponent);
  PhaseResult out;
  out.best_seconds = 1e100;
  sim::Simulation sim(seed);
  ChurnState st;
  st.sim = &sim;
  st.budget = budget;
  for (long i = 0; i < timers && st.scheduled < st.budget; ++i) ChurnArm(&st);
  const double t0 = WallSeconds();
  const std::uint64_t processed = sim.Run();
  const double dt = WallSeconds() - t0;
  out.best_seconds = dt;
  out.items = st.fired;
  out.events = processed;
  out.end_ns = static_cast<std::uint64_t>(sim.now());
  return out;
}

PhaseResult RunCoro(std::uint64_t seed, long procs, long rounds) {
  prof::ProfScope phase_scope("selfbench.coro", prof::FrameKind::kComponent);
  PhaseResult out;
  sim::Simulation sim(seed);
  {
    sim::CurrentSimulationScope scope(&sim);
    for (long p = 0; p < procs; ++p) {
      sim.Spawn(DelayLoop(&sim, rounds,
                          static_cast<std::uint64_t>(p) * 1099511628211ull));
    }
  }
  const double t0 = WallSeconds();
  const std::uint64_t processed = sim.Run();
  out.best_seconds = WallSeconds() - t0;
  out.items = static_cast<std::uint64_t>(procs) *
              static_cast<std::uint64_t>(rounds);
  out.events = processed;
  out.end_ns = static_cast<std::uint64_t>(sim.now());
  return out;
}

PhaseResult RunSpawn(std::uint64_t seed, std::uint64_t spawns) {
  prof::ProfScope phase_scope("selfbench.spawn", prof::FrameKind::kComponent);
  PhaseResult out;
  sim::Simulation sim(seed);
  const double t0 = WallSeconds();
  {
    sim::CurrentSimulationScope scope(&sim);
    for (std::uint64_t i = 0; i < spawns; ++i) sim.Spawn(NoopTask());
  }
  out.best_seconds = WallSeconds() - t0;
  out.items = spawns;
  out.events = sim.events_processed();
  out.end_ns = static_cast<std::uint64_t>(sim.now());
  return out;
}

// Repeat `reps` times, keep the fastest wall time (the deterministic fields
// are identical across reps by construction — same seed, same engine).
template <typename Fn>
PhaseResult Best(long reps, Fn run) {
  PhaseResult best = run();
  for (long r = 1; r < reps; ++r) {
    PhaseResult next = run();
    if (next.best_seconds < best.best_seconds) best.best_seconds =
        next.best_seconds;
  }
  return best;
}

int SelfBenchMain(int argc, char** argv) {
  const bench::Flags flags(
      argc, argv,
      "micro_core --selfbench [--seed=N] [--reps=N] [--churn-events=N] "
      "[--churn-timers=N] [--coro-procs=N] [--coro-rounds=N] [--spawns=N] "
      "[--baseline=PATH] [--metrics-json=PATH] [--audit-check] "
      "[--profile=PATH] [--profile-hz=N] [--profile-every=N] "
      "[--profile-digest=PATH]");
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 1));
  const long reps = flags.Int("reps", 3);
  const auto churn_events =
      static_cast<std::uint64_t>(flags.Int("churn-events", 2'000'000));
  const long churn_timers = flags.Int("churn-timers", 1024);
  const long coro_procs = flags.Int("coro-procs", 256);
  const long coro_rounds = flags.Int("coro-rounds", 2000);
  const auto spawns = static_cast<std::uint64_t>(flags.Int("spawns", 500'000));
  const bench::ObsOptions obs = bench::ObsOptions::FromFlags(flags);
  // Constructed before the phases so the profiler covers them; its
  // destructor (end of main) writes the folded export.
  bench::ProfileSession prof_session(obs);

  sim::audit::Reset();

  const PhaseResult churn = Best(reps, [seed, churn_events, churn_timers] {
    return RunChurn(seed, churn_events, churn_timers);
  });
  const PhaseResult coro = Best(reps, [seed, coro_procs, coro_rounds] {
    return RunCoro(seed, coro_procs, coro_rounds);
  });
  const PhaseResult spawn = Best(reps, [seed, spawns] {
    return RunSpawn(seed, spawns);
  });

  const double churn_eps =
      static_cast<double>(churn.events) / churn.best_seconds;
  const double coro_eps = static_cast<double>(coro.events) / coro.best_seconds;
  const double spawn_ps =
      static_cast<double>(spawn.items) / spawn.best_seconds;

  std::printf("%-16s %14s %14s %12s %16s\n", "phase", "items", "events",
              "best-ms", "rate/s");
  std::printf("%-16s %14llu %14llu %12.2f %16.0f\n", "timer_churn",
              static_cast<unsigned long long>(churn.items),
              static_cast<unsigned long long>(churn.events),
              churn.best_seconds * 1e3, churn_eps);
  std::printf("%-16s %14llu %14llu %12.2f %16.0f\n", "coro_delay",
              static_cast<unsigned long long>(coro.items),
              static_cast<unsigned long long>(coro.events),
              coro.best_seconds * 1e3, coro_eps);
  std::printf("%-16s %14llu %14llu %12.2f %16.0f\n", "spawn",
              static_cast<unsigned long long>(spawn.items),
              static_cast<unsigned long long>(spawn.events),
              spawn.best_seconds * 1e3, spawn_ps);

  if (obs.baseline_enabled()) {
    bench::BaselineWriter baseline("micro_core");
    baseline.AddHigherBetter("engine.timer_churn.events_per_s", churn_eps);
    baseline.AddHigherBetter("engine.coro_delay.events_per_s", coro_eps);
    baseline.AddHigherBetter("engine.spawn.spawns_per_s", spawn_ps);
    if (!baseline.WriteFile(obs.baseline_path)) return 1;
  }
  if (obs.metrics_enabled()) {
    // Deterministic values only: two identically-seeded runs must produce a
    // byte-identical file (the determinism gate compares it), so wall-clock
    // rates stay out.
    bench::MetricsJsonWriter metrics;
    metrics.AddValue("timer_churn.events",
                     static_cast<double>(churn.events));
    metrics.AddValue("timer_churn.fired", static_cast<double>(churn.items));
    metrics.AddValue("timer_churn.end_ns", static_cast<double>(churn.end_ns));
    metrics.AddValue("coro_delay.events", static_cast<double>(coro.events));
    metrics.AddValue("coro_delay.end_ns", static_cast<double>(coro.end_ns));
    metrics.AddValue("spawn.events", static_cast<double>(spawn.events));
    metrics.AddValue("spawn.spawns", static_cast<double>(spawn.items));
    if (!metrics.WriteFile(obs.metrics_path)) return 1;
  }

  if (flags.Bool("audit-check")) {
    const sim::audit::Report report = sim::audit::Snapshot();
    std::printf(
        "audit: enabled=%d frames_allocated=%llu frames_freed=%llu "
        "live=%llu clean=%d\n",
        sim::audit::Enabled() ? 1 : 0,
        static_cast<unsigned long long>(report.frames_allocated),
        static_cast<unsigned long long>(report.frames_freed),
        static_cast<unsigned long long>(report.live_frames),
        report.clean() ? 1 : 0);
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "audit violation: %s\n", v.c_str());
    }
    if (!report.clean()) return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark suite (default mode)
// ---------------------------------------------------------------------------

void BM_Md5Small(benchmark::State& state) {
  const std::array<std::uint8_t, 16> fid_bytes{1, 2, 3, 4, 5, 6, 7, 8,
                                               9, 10, 11, 12, 13, 14, 15, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(fid_bytes.data(), fid_bytes.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Md5Small);

void BM_Md5Bulk(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Bulk)->Arg(1024)->Arg(64 * 1024);

void BM_WireRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    wire::BufferWriter w;
    w.WriteU64(0x123456789abcdef0ull);
    w.WriteString("/dufs/ns/some/virtual/path");
    w.WriteVarint(12345);
    wire::BufferReader r(w.data());
    benchmark::DoNotOptimize(r.ReadU64());
    benchmark::DoNotOptimize(r.ReadString());
    benchmark::DoNotOptimize(r.ReadVarint());
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_ZnodeCreate(benchmark::State& state) {
  zk::DataTree tree;
  zk::Zxid zxid = 0;
  (void)tree.Create("/d", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Create("/d/n" + std::to_string(i++), {},
                                         zk::CreateMode::kPersistent, 0,
                                         ++zxid, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZnodeCreate);

void BM_ZnodeLookup(benchmark::State& state) {
  zk::DataTree tree;
  zk::Zxid zxid = 0;
  (void)tree.Create("/a", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  (void)tree.Create("/a/b", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  (void)tree.Create("/a/b/c", {}, zk::CreateMode::kPersistent, 0, ++zxid, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find("/a/b/c"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZnodeLookup);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleFn(i % 97, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    auto result = sim::RunTask(
        sim, [](sim::Simulation& s) -> sim::Task<int> {
          int sum = 0;
          for (int i = 0; i < 100; ++i) {
            co_await s.Delay(1);
            sum += i;
          }
          co_return sum;
        }(sim));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_PhysicalPathCodec(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    const Fid fid{42, ++counter};
    auto path = core::PhysicalPathForFid(fid);
    benchmark::DoNotOptimize(core::FidFromPhysicalPath(path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhysicalPathCodec);

}  // namespace
}  // namespace dufs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfbench") == 0) {
      return dufs::SelfBenchMain(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
