// Figure 11 — memory usage as directories accumulate: the ZooKeeper server
// heap grows linearly (~417 MB per million znodes); the DUFS client and a
// dummy FUSE filesystem stay flat.
#include <cstdio>

#include "bench/bench_util.h"
#include "mdtest/testbed.h"
#include "vfs/memfs.h"

using namespace dufs;
using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "fig11_memory [--millions=1.0] [--samples=10] "
                     "[--metrics-json=PATH] [--trace=PATH] [--timeline] "
                     "[--timeline-us=200] [--slo=op:target:budget] "
                     "[--flight-dump-dir=DIR] [--slo-window-us=N] "
                     "[--flight-capacity=N]");
  const double millions = flags.Double("millions", 1.0);
  const long samples = flags.Int("samples", 10);
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);
  const std::size_t total =
      static_cast<std::size_t>(millions * 1'000'000.0);
  const std::size_t step = total / static_cast<std::size_t>(samples);

  // The paper runs everything on one node: 1 ZK server, 1 DUFS client.
  TestbedConfig config;
  config.zk_servers = 1;
  config.client_nodes = 1;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 1;
  config.enable_trace = obs_opts.trace_enabled();
  Testbed tb(config);
  DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), obs_opts));
  tb.MountAll();
  if (obs_opts.timeline) {
    tb.StartTimeline(obs_opts.timeline_interval_ns());
  }

  // Dummy FUSE baseline: a FUSE mount forwarding to a local filesystem.
  vfs::MemFs local(tb.sim(), "local");
  vfs::FuseMount dummy(tb.net().node(tb.client(0).node), local);

  std::printf("Figure 11: memory vs millions of directories created\n");
  std::printf("%-12s %14s %12s %14s\n", "dirs(M)", "Zookeeper(MB)",
              "DUFS(MB)", "DummyFUSE(MB)");

  const double mb = 1024.0 * 1024.0;
  bench::SeriesTable mem_table("dirs_k",
                               {"zookeeper_mb", "dufs_mb", "dummy_fuse_mb"});
  std::size_t created = 0;
  // Batch directory creation through the full stack, sampling at each step.
  for (long sample = 0; sample <= samples; ++sample) {
    if (sample > 0) {
      sim::RunTask(tb.sim(), [](Testbed& t, vfs::FuseMount& d,
                                std::size_t from,
                                std::size_t count) -> sim::Task<void> {
        auto& fuse = *t.client(0).fuse;
        // Fan the creates out over a two-level tree so no single znode has
        // millions of children (as mdtest does with its fan-out).
        for (std::size_t i = from; i < from + count; ++i) {
          const std::string parent = "/b" + std::to_string(i / 4096);
          if (i % 4096 == 0) {
            (void)co_await fuse.Mkdir(parent);
            (void)co_await d.Mkdir(parent);
          }
          const std::string path = parent + "/d" + std::to_string(i);
          auto st = co_await fuse.Mkdir(path);
          DUFS_CHECK(st.ok());
          (void)co_await d.Mkdir(path);
        }
      }(tb, dummy, created, step));
      created += step;
    }
    const double zk_mb = static_cast<double>(tb.ZkMemoryBytes()) / mb;
    const double dufs_mb =
        static_cast<double>(tb.client(0).dufs->EstimateMemoryBytes() +
                            tb.client(0).fuse->EstimateMemoryBytes()) /
        mb;
    const double dummy_mb =
        static_cast<double>(dummy.EstimateMemoryBytes()) / mb;
    std::printf("%-12.2f %14.1f %12.1f %14.1f\n",
                static_cast<double>(created) / 1e6, zk_mb, dufs_mb, dummy_mb);
    mem_table.AddRow(static_cast<long>(created / 1000),
                     {zk_mb, dufs_mb, dummy_mb});
  }

  const double per_znode =
      static_cast<double>(tb.ZkMemoryBytes()) / static_cast<double>(created);
  std::printf("\nZooKeeper bytes per znode: %.0f (paper: ~417 for 1M "
              "entries => 417 MB)\n", per_znode);

  if (obs_opts.trace_enabled()) {
    tb.obs().tracer().WriteChromeJson(obs_opts.trace_path);
    std::printf("trace written: %s (%zu spans)\n", obs_opts.trace_path.c_str(),
                tb.obs().tracer().events().size());
  }
  const std::string incidents_json = bench::FinishIncidents(tb.obs(), obs_opts);
  if (obs_opts.metrics_enabled()) {
    bench::MetricsJsonWriter out;
    out.AddValue("zk_bytes_per_znode", per_znode);
    out.AddTable("Fig 11: memory growth", mem_table);
    if (obs_opts.timeline) out.SetTimelineJson(tb.timeline().ToJson());
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(tb.obs().metrics().ToJson());
    if (out.WriteFile(obs_opts.metrics_path)) {
      std::printf("metrics written: %s\n", obs_opts.metrics_path.c_str());
    }
  }
  return 0;
}
