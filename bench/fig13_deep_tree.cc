// Fig. 13 (ours) — server-side path resolution vs tree depth.
//
// mdtest-style create/stat/unlink sweep over deep directory chains, depth
// {2,4,8,16} x concurrent client processes, with the compound-op fast path
// (DESIGN.md §13) as the ablation axis:
//
//   --compound=on    one ResolvePath/ResolveCreate/ResolveDelete RPC per
//                    cold operation, whatever the depth;
//   --compound=off   the FUSE-faithful walk the paper's prototype pays:
//                    one znode round trip per path component, so cold
//                    per-op cost grows linearly with depth;
//   --compound=both  (default) runs the ablation and prints speedups.
//
// Every timed operation touches a *distinct* chain (pre-created untimed by
// a builder client on another node), so the worker's metadata cache is cold
// for every op — the per-op ZooKeeper request count is the pure depth
// dependence, which is the figure's point: flat at 1 with compound ops on,
// O(depth) off.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/log.h"
#include "mdtest/testbed.h"
#include "sim/gather.h"

using namespace dufs;
using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

struct PhaseCounters {
  bench::HotPathCounters create;
  bench::HotPathCounters stat;
  bench::HotPathCounters unlink;
};

// The unique depth-D directory for (phase tag, proc, item): components are
// /deep/<tag><proc>_<item>/l3/l4/.../lD — exactly `depth` levels.
std::string ChainDir(char tag, std::size_t proc, std::size_t item,
                     std::size_t depth) {
  std::string p = "/deep/";
  p.push_back(tag);
  p += std::to_string(proc) + "_" + std::to_string(item);
  for (std::size_t level = 3; level <= depth; ++level) {
    p += "/l" + std::to_string(level);
  }
  return p;
}

sim::Task<void> BuildChains(Testbed& t, char tag, std::size_t procs,  // dufs-lint: allow(coro-ref-param)
                            std::size_t items, std::size_t depth,
                            bool with_file) {
  auto& builder = *t.client(0).dufs;
  auto mkdir_ok = [](Status st) {
    return st.ok() || st.code() == StatusCode::kAlreadyExists;
  };
  DUFS_CHECK(mkdir_ok(co_await builder.Mkdir("/deep", 0755)));
  for (std::size_t i = 0; i < procs; ++i) {
    for (std::size_t j = 0; j < items; ++j) {
      // Create the chain level by level (Mkdir has no -p).
      const std::string leaf = ChainDir(tag, i, j, depth);
      std::size_t pos = leaf.find('/', 6);  // after "/deep/"
      while (pos != std::string::npos) {
        DUFS_CHECK(mkdir_ok(co_await builder.Mkdir(leaf.substr(0, pos), 0755)));
        pos = leaf.find('/', pos + 1);
      }
      DUFS_CHECK(mkdir_ok(co_await builder.Mkdir(leaf, 0755)));
      if (with_file) {
        DUFS_CHECK((co_await builder.Create(leaf + "/f", 0644)).ok());
      }
    }
  }
}

enum class DeepOp { kCreate, kStat, kUnlink };

// One timed phase: `procs` concurrent processes on the worker node, each
// performing `items` operations against its own cold chains.
bench::HotPathCounters RunPhase(Testbed& tb, DeepOp op, char tag,
                                std::size_t procs, std::size_t items,
                                std::size_t depth) {
  bench::HotPathCounters c;
  sim::RunTask(tb.sim(), [](Testbed& t, DeepOp what, char tg, std::size_t np,
                            std::size_t ni, std::size_t d,
                            bench::HotPathCounters& out) -> sim::Task<void> {
    auto& worker = *t.client(1).dufs;
    const auto cache0 = worker.meta_cache().stats();
    const auto req0 = t.client(1).zk->requests_sent();
    const auto fo0 = t.client(1).zk->failovers();
    const auto start = t.sim().now();
    auto proc_body = [](Testbed& tb2, DeepOp w, char tg2, std::size_t proc,  // dufs-lint: allow(coro-capture-ref)
                        std::size_t n, std::size_t dd) -> sim::Task<void> {
      auto& fs = *tb2.client(1).dufs;
      for (std::size_t j = 0; j < n; ++j) {
        const std::string dir = ChainDir(tg2, proc, j, dd);
        switch (w) {
          case DeepOp::kCreate:
            DUFS_CHECK((co_await fs.Create(dir + "/f", 0644)).ok());
            break;
          case DeepOp::kStat:
            DUFS_CHECK((co_await fs.GetAttr(dir)).ok());
            break;
          case DeepOp::kUnlink:
            DUFS_CHECK((co_await fs.Unlink(dir + "/f")).ok());
            break;
        }
      }
    };
    std::vector<sim::Task<void>> tasks;
    tasks.reserve(np);
    for (std::size_t i = 0; i < np; ++i) {
      tasks.push_back(proc_body(t, what, tg, i, ni, d));
    }
    co_await sim::WhenAll(std::move(tasks));
    out.ops = static_cast<double>(np * ni);
    out.seconds = static_cast<double>(t.sim().now() - start) / sim::kSecond;
    out.zk_requests = t.client(1).zk->requests_sent() - req0;
    out.zk_failovers = t.client(1).zk->failovers() - fo0;
    const auto& stats = t.client(1).dufs->meta_cache().stats();
    out.cache_hits = stats.hits - cache0.hits;
    out.cache_misses = stats.misses - cache0.misses;
  }(tb, op, tag, procs, items, depth, c));
  return c;
}

// One measured cell: fresh testbed, pre-built chains, three timed phases.
// `obs` (when non-null) arms tracing/timeline/incidents on this cell and
// the export sinks receive its registry/timeline/incident JSON.
PhaseCounters MeasureCell(std::uint64_t seed, std::size_t depth,
                          std::size_t procs, std::size_t items, bool compound,
                          const bench::ObsOptions* obs = nullptr,
                          std::string* registry_json = nullptr,
                          std::string* timeline_json = nullptr,
                          std::string* incidents_json = nullptr) {
  TestbedConfig config;
  config.seed = seed;
  config.zk_servers = 3;
  config.client_nodes = 2;  // 0 = untimed builder, 1 = timed cold worker
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 2;
  config.dufs.compound_ops = compound;
  config.enable_trace = obs != nullptr && obs->trace_enabled();
  Testbed tb(config);
  if (obs != nullptr) {
    DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), *obs));
  }
  tb.MountAll();
  if (obs != nullptr && obs->timeline) {
    tb.StartTimeline(obs->timeline_interval_ns());
  }

  // Stat and unlink phases need their chains (and files) in advance; the
  // create phase's chains exist but its files do not.
  sim::RunTask(tb.sim(), [](Testbed& t, std::size_t np, std::size_t ni,
                            std::size_t d) -> sim::Task<void> {
    co_await BuildChains(t, 'c', np, ni, d, /*with_file=*/false);
    co_await BuildChains(t, 's', np, ni, d, /*with_file=*/false);
    co_await BuildChains(t, 'u', np, ni, d, /*with_file=*/true);
  }(tb, procs, items, depth));

  PhaseCounters out;
  out.create = RunPhase(tb, DeepOp::kCreate, 'c', procs, items, depth);
  out.stat = RunPhase(tb, DeepOp::kStat, 's', procs, items, depth);
  out.unlink = RunPhase(tb, DeepOp::kUnlink, 'u', procs, items, depth);

  if (config.enable_trace) {
    tb.obs().tracer().WriteChromeJson(obs->trace_path);
    std::printf("trace written: %s (%zu spans)\n", obs->trace_path.c_str(),
                tb.obs().tracer().events().size());
  }
  if (registry_json != nullptr) *registry_json = tb.obs().metrics().ToJson();
  if (timeline_json != nullptr && obs != nullptr && obs->timeline) {
    *timeline_json = tb.timeline().ToJson();
  }
  if (incidents_json != nullptr && obs != nullptr) {
    *incidents_json = bench::FinishIncidents(tb.obs(), *obs);
  }
  return out;
}

double OpsPerSec(const bench::HotPathCounters& c) {
  return c.seconds > 0 ? c.ops / c.seconds : 0;
}

double ZkPerOp(const bench::HotPathCounters& c) {
  return c.ops > 0 ? static_cast<double>(c.zk_requests) / c.ops : 0;
}

std::string CellLabel(const char* phase, std::size_t depth, std::size_t procs,
                      bool compound) {
  return std::string(phase) + " d=" + std::to_string(depth) +
         " p=" + std::to_string(procs) +
         (compound ? " compound=on" : " compound=off");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(
      argc, argv,
      "fig13_deep_tree [--seed=N] [--depths=2,4,8,16] [--procs=1,8] "
      "[--items=4] [--compound=on|off|both] [--metrics-json=PATH] "
      "[--trace=PATH] [--timeline] [--timeline-us=200] [--baseline=PATH] "
      "[--slo=op:target:budget] [--flight-dump-dir=DIR] [--slo-window-us=N] "
      "[--flight-capacity=N]");
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 1));
  const auto depths = flags.IntList("depths", {2, 4, 8, 16});
  const auto procs_list = flags.IntList("procs", {1, 8});
  const auto items = static_cast<std::size_t>(flags.Int("items", 4));
  const std::string mode = flags.Str("compound", "both");
  const bool run_on = mode == "both" || mode == "on";
  const bool run_off = mode == "both" || mode == "off";
  DUFS_CHECK(run_on || run_off);
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);

  const std::size_t max_depth =
      static_cast<std::size_t>(*std::max_element(depths.begin(), depths.end()));
  const std::size_t max_procs = static_cast<std::size_t>(
      *std::max_element(procs_list.begin(), procs_list.end()));
  const std::size_t min_depth =
      static_cast<std::size_t>(*std::min_element(depths.begin(), depths.end()));

  std::printf("Fig. 13: deep-tree metadata ops vs path depth (seed=%llu, "
              "items/proc=%zu)\n",
              static_cast<unsigned long long>(seed), items);

  bench::MetricsJsonWriter metrics;
  std::string registry_json, timeline_json, incidents_json;
  // Indexed [depth][procs], filled per mode below.
  struct Cell {
    PhaseCounters on;
    PhaseCounters off;
  };
  std::vector<std::vector<Cell>> cells(
      depths.size(), std::vector<Cell>(procs_list.size()));

  for (std::size_t di = 0; di < depths.size(); ++di) {
    const auto depth = static_cast<std::size_t>(depths[di]);
    DUFS_CHECK(depth >= 2);
    for (std::size_t pi = 0; pi < procs_list.size(); ++pi) {
      const auto procs = static_cast<std::size_t>(procs_list[pi]);
      // The trace/timeline/incident sinks cover the compound=on cell at the
      // sweep's corner (max depth, max procs) — the configuration §13 and
      // EXPERIMENTS.md attribute.
      const bool instrumented = depth == max_depth && procs == max_procs;
      if (run_on) {
        cells[di][pi].on = MeasureCell(
            seed, depth, procs, items, /*compound=*/true,
            instrumented ? &obs_opts : nullptr,
            instrumented ? &registry_json : nullptr,
            instrumented ? &timeline_json : nullptr,
            instrumented ? &incidents_json : nullptr);
      }
      if (run_off) {
        cells[di][pi].off =
            MeasureCell(seed, depth, procs, items, /*compound=*/false);
      }
    }
  }

  const char* phase_names[] = {"create", "stat", "unlink"};
  auto phase_of = [](const PhaseCounters& p,
                     std::size_t idx) -> const bench::HotPathCounters& {
    return idx == 0 ? p.create : (idx == 1 ? p.stat : p.unlink);
  };

  for (std::size_t pi = 0; pi < procs_list.size(); ++pi) {
    for (std::size_t ph = 0; ph < 3; ++ph) {
      std::vector<std::string> series;
      if (run_on) {
        series.push_back("on ops/s");
        series.push_back("on zk/op");
      }
      if (run_off) {
        series.push_back("off ops/s");
        series.push_back("off zk/op");
      }
      bench::SeriesTable table("depth", series);
      for (std::size_t di = 0; di < depths.size(); ++di) {
        std::vector<double> row;
        if (run_on) {
          const auto& c = phase_of(cells[di][pi].on, ph);
          row.push_back(OpsPerSec(c));
          row.push_back(ZkPerOp(c));
        }
        if (run_off) {
          const auto& c = phase_of(cells[di][pi].off, ph);
          row.push_back(OpsPerSec(c));
          row.push_back(ZkPerOp(c));
        }
        table.AddRow(depths[di], std::move(row));
      }
      const std::string title = std::string(phase_names[ph]) + ", procs=" +
                                std::to_string(procs_list[pi]) +
                                " (cold cache)";
      table.Print(title);
      metrics.AddTable(title, table);
    }
  }

  // Per-cell counter rows for the metrics export (zk/op, cache behaviour).
  for (std::size_t di = 0; di < depths.size(); ++di) {
    for (std::size_t pi = 0; pi < procs_list.size(); ++pi) {
      for (std::size_t ph = 0; ph < 3; ++ph) {
        const auto depth = static_cast<std::size_t>(depths[di]);
        const auto procs = static_cast<std::size_t>(procs_list[pi]);
        if (run_on) {
          metrics.AddCounters(CellLabel(phase_names[ph], depth, procs, true),
                              phase_of(cells[di][pi].on, ph));
        }
        if (run_off) {
          metrics.AddCounters(CellLabel(phase_names[ph], depth, procs, false),
                              phase_of(cells[di][pi].off, ph));
        }
      }
    }
  }

  // Headline numbers at the sweep corner (max depth, max procs).
  const std::size_t dmax_i = [&] {
    for (std::size_t i = 0; i < depths.size(); ++i) {
      if (static_cast<std::size_t>(depths[i]) == max_depth) return i;
    }
    return std::size_t{0};
  }();
  const std::size_t dmin_i = [&] {
    for (std::size_t i = 0; i < depths.size(); ++i) {
      if (static_cast<std::size_t>(depths[i]) == min_depth) return i;
    }
    return std::size_t{0};
  }();
  const Cell& corner = cells[dmax_i][procs_list.size() - 1];
  const Cell& shallow = cells[dmin_i][procs_list.size() - 1];

  if (run_on) {
    // Depth independence: cold per-op ZooKeeper round trips must be flat in
    // depth with compound ops on (the walk ablation grows linearly).
    const double flat_stat =
        ZkPerOp(shallow.on.stat) > 0
            ? ZkPerOp(corner.on.stat) / ZkPerOp(shallow.on.stat)
            : 0;
    std::printf("\ncompound=on zk-req/op stat d=%zu vs d=%zu: %.3f vs %.3f "
                "(ratio %.2f)\n",
                max_depth, min_depth, ZkPerOp(corner.on.stat),
                ZkPerOp(shallow.on.stat), flat_stat);
    DUFS_CHECK(flat_stat <= 1.5);
  }
  if (run_on && run_off) {
    const double stat_speedup =
        OpsPerSec(corner.on.stat) / OpsPerSec(corner.off.stat);
    const double create_speedup =
        OpsPerSec(corner.on.create) / OpsPerSec(corner.off.create);
    const double unlink_speedup =
        OpsPerSec(corner.on.unlink) / OpsPerSec(corner.off.unlink);
    std::printf("d=%zu p=%zu speedup (on/off): stat %.2fx, create %.2fx, "
                "unlink %.2fx\n",
                max_depth, max_procs, stat_speedup, create_speedup,
                unlink_speedup);
    if (max_depth >= 16) {
      // The acceptance bar: depth-16 stat/create at least double the
      // per-component-walk ablation. Shallower sweeps skip it — create is
      // dominated by the replicated write either way, so the walk's few
      // extra reads legitimately buy less than 2x below depth ~16.
      DUFS_CHECK(stat_speedup >= 2.0);
      DUFS_CHECK(create_speedup >= 2.0);
    }
  }

  if (obs_opts.metrics_enabled()) {
    metrics.SetTimelineJson(timeline_json);
    metrics.SetIncidentsJson(incidents_json);
    metrics.SetRegistryJson(registry_json);
    if (metrics.WriteFile(obs_opts.metrics_path)) {
      std::printf("metrics written: %s\n", obs_opts.metrics_path.c_str());
    }
  }

  if (obs_opts.baseline_enabled()) {
    bench::BaselineWriter base("fig13_deep_tree");
    const auto add_phase = [&](const char* name,
                               const bench::HotPathCounters& on,
                               const bench::HotPathCounters& off) {
      const std::string prefix(name);
      if (run_on) {
        base.AddHigherBetter(prefix + ".compound.ops_per_s", OpsPerSec(on));
        base.AddLowerBetter(prefix + ".compound.zk_per_op", ZkPerOp(on));
      }
      if (run_off) {
        base.AddHigherBetter(prefix + ".walk.ops_per_s", OpsPerSec(off));
        base.AddLowerBetter(prefix + ".walk.zk_per_op", ZkPerOp(off));
      }
      if (run_on && run_off) {
        base.AddHigherBetter(prefix + ".speedup",
                             OpsPerSec(on) / OpsPerSec(off));
      }
    };
    add_phase("create", corner.on.create, corner.off.create);
    add_phase("stat", corner.on.stat, corner.off.stat);
    add_phase("unlink", corner.on.unlink, corner.off.unlink);
    if (run_on && ZkPerOp(shallow.on.stat) > 0) {
      base.AddLowerBetter("stat.compound.zk_per_op_flatness",
                          ZkPerOp(corner.on.stat) / ZkPerOp(shallow.on.stat));
    }
    if (base.WriteFile(obs_opts.baseline_path)) {
      std::printf("baseline written: %s\n", obs_opts.baseline_path.c_str());
    }
  }

  std::printf("\nTakeaway: with server-side resolution the metadata service "
              "answers a cold\ndeep-path op in one round trip, so cost is "
              "flat in depth; the per-component\nwalk the paper's prototype "
              "pays grows linearly and falls behind by depth 8.\n");
  return 0;
}
