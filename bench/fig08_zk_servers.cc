// Figure 8 — mdtest operation throughput with DUFS over 2 Lustre back-end
// storages, varying the ZooKeeper ensemble size (1/4/8), against a basic
// Lustre configuration with one metadata server.
//
// Expected shape (paper §V-B): read phases (dir/file stat) improve markedly
// with more ZooKeeper servers; mutation phases react less; 8 servers is a
// good compromise; DUFS beats basic Lustre at 256 processes.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "fig08_zk_servers [--procs=64,128,256] [--items=N] "
                     "[--zk=1,4,8]");
  const auto procs_list = flags.IntList("procs", {64, 128, 256});
  const auto zk_list = flags.IntList("zk", {1, 4, 8});
  const auto items = static_cast<std::size_t>(flags.Int("items", 30));

  const std::vector<Phase> phases = {Phase::kDirCreate, Phase::kDirRemove,
                                     Phase::kDirStat, Phase::kFileCreate,
                                     Phase::kFileRemove, Phase::kFileStat};
  // results[phase][series][procs]
  std::map<Phase, std::map<std::string, std::map<long, double>>> results;

  // Basic Lustre baseline.
  {
    TestbedConfig config;
    config.zk_servers = 1;  // unused by the baseline path
    config.backend = mdtest::BackendKind::kLustre;
    config.backend_instances = 2;
    Testbed tb(config);
    tb.MountAll();
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/bl" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      for (auto& r : runner.Run(Target::kBaseline, phases)) {
        results[r.phase]["Basic Lustre"][procs] = r.ops_per_sec;
        if (r.errors > 0) {
          std::fprintf(stderr, "baseline %s errors=%llu\n",
                       std::string(mdtest::PhaseName(r.phase)).c_str(),
                       static_cast<unsigned long long>(r.errors));
        }
      }
    }
  }

  for (long zk : zk_list) {
    TestbedConfig config;
    config.zk_servers = static_cast<std::size_t>(zk);
    config.backend = mdtest::BackendKind::kLustre;
    config.backend_instances = 2;
    Testbed tb(config);
    tb.MountAll();
    const std::string series = std::to_string(zk) + " Zookeeper";
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/md" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      for (auto& r : runner.Run(Target::kDufs, phases)) {
        results[r.phase][series][procs] = r.ops_per_sec;
        if (r.errors > 0) {
          std::fprintf(stderr, "dufs zk=%ld %s errors=%llu\n", zk,
                       std::string(mdtest::PhaseName(r.phase)).c_str(),
                       static_cast<unsigned long long>(r.errors));
        }
      }
    }
  }

  std::printf("Figure 8: throughput vs #Zookeeper servers, DUFS over 2 "
              "Lustre back-ends (ops/sec)\n");
  const char sub[] = {'a', 'b', 'c', 'd', 'e', 'f'};
  const Phase order[] = {Phase::kDirCreate, Phase::kDirRemove,
                         Phase::kDirStat, Phase::kFileCreate,
                         Phase::kFileRemove, Phase::kFileStat};
  for (int i = 0; i < 6; ++i) {
    std::vector<std::string> series = {"Basic Lustre"};
    for (long zk : zk_list) series.push_back(std::to_string(zk) + " Zookeeper");
    bench::SeriesTable table("procs", series);
    for (long procs : procs_list) {
      std::vector<double> row;
      for (const auto& s : series) row.push_back(results[order[i]][s][procs]);
      table.AddRow(procs, std::move(row));
    }
    table.Print(std::string("Fig 8") + sub[i] + ": " +
                std::string(mdtest::PhaseName(order[i])));
  }
  return 0;
}
