// Figure 8 — mdtest operation throughput with DUFS over 2 Lustre back-end
// storages, varying the ZooKeeper ensemble size (1/4/8), against a basic
// Lustre configuration with one metadata server.
//
// Expected shape (paper §V-B): read phases (dir/file stat) improve markedly
// with more ZooKeeper servers; mutation phases react less; 8 servers is a
// good compromise; DUFS beats basic Lustre at 256 processes.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "fig08_zk_servers [--procs=64,128,256] [--items=N] "
                     "[--zk=1,4,8] [--metrics-json=PATH] [--trace=PATH] "
                     "[--timeline] [--timeline-us=200] "
                     "[--slo=op:target:budget] [--flight-dump-dir=DIR] "
                     "[--slo-window-us=N] [--flight-capacity=N]");
  const auto procs_list = flags.IntList("procs", {64, 128, 256});
  const auto zk_list = flags.IntList("zk", {1, 4, 8});
  const auto items = static_cast<std::size_t>(flags.Int("items", 30));
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);
  std::string registry_json, timeline_json, incidents_json;

  const std::vector<Phase> phases = {Phase::kDirCreate, Phase::kDirRemove,
                                     Phase::kDirStat, Phase::kFileCreate,
                                     Phase::kFileRemove, Phase::kFileStat};
  // results[phase][series][procs]
  std::map<Phase, std::map<std::string, std::map<long, double>>> results;

  // Basic Lustre baseline.
  {
    TestbedConfig config;
    config.zk_servers = 1;  // unused by the baseline path
    config.backend = mdtest::BackendKind::kLustre;
    config.backend_instances = 2;
    Testbed tb(config);
    tb.MountAll();
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/bl" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      for (auto& r : runner.Run(Target::kBaseline, phases)) {
        results[r.phase]["Basic Lustre"][procs] = r.ops_per_sec;
        if (r.errors > 0) {
          std::fprintf(stderr, "baseline %s errors=%llu\n",
                       std::string(mdtest::PhaseName(r.phase)).c_str(),
                       static_cast<unsigned long long>(r.errors));
        }
      }
    }
  }

  for (std::size_t zi = 0; zi < zk_list.size(); ++zi) {
    const long zk = zk_list[zi];
    // The largest ensemble (last in --zk) is the observed configuration:
    // it gets the trace, the timeline, and the registry dump.
    const bool observed = zi + 1 == zk_list.size();
    TestbedConfig config;
    config.zk_servers = static_cast<std::size_t>(zk);
    config.backend = mdtest::BackendKind::kLustre;
    config.backend_instances = 2;
    config.enable_trace = observed && obs_opts.trace_enabled();
    Testbed tb(config);
    if (observed) {
      DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), obs_opts));
    }
    tb.MountAll();
    if (observed && obs_opts.timeline) {
      tb.StartTimeline(obs_opts.timeline_interval_ns());
    }
    const std::string series = std::to_string(zk) + " Zookeeper";
    for (long procs : procs_list) {
      MdtestConfig mc;
      mc.processes = static_cast<std::size_t>(procs);
      mc.items_per_proc = items;
      mc.root = "/md" + std::to_string(procs);
      MdtestRunner runner(tb, mc);
      for (auto& r : runner.Run(Target::kDufs, phases)) {
        results[r.phase][series][procs] = r.ops_per_sec;
        if (r.errors > 0) {
          std::fprintf(stderr, "dufs zk=%ld %s errors=%llu\n", zk,
                       std::string(mdtest::PhaseName(r.phase)).c_str(),
                       static_cast<unsigned long long>(r.errors));
        }
      }
    }
    if (config.enable_trace) {
      tb.obs().tracer().WriteChromeJson(obs_opts.trace_path);
      std::fprintf(stderr, "[fig08] trace written: %s (%zu spans)\n",
                   obs_opts.trace_path.c_str(),
                   tb.obs().tracer().events().size());
    }
    if (observed) {
      registry_json = tb.obs().metrics().ToJson();
      if (obs_opts.timeline) timeline_json = tb.timeline().ToJson();
      incidents_json = bench::FinishIncidents(tb.obs(), obs_opts);
    }
  }

  std::printf("Figure 8: throughput vs #Zookeeper servers, DUFS over 2 "
              "Lustre back-ends (ops/sec)\n");
  const char sub[] = {'a', 'b', 'c', 'd', 'e', 'f'};
  const Phase order[] = {Phase::kDirCreate, Phase::kDirRemove,
                         Phase::kDirStat, Phase::kFileCreate,
                         Phase::kFileRemove, Phase::kFileStat};
  bench::MetricsJsonWriter out;
  for (int i = 0; i < 6; ++i) {
    std::vector<std::string> series = {"Basic Lustre"};
    for (long zk : zk_list) series.push_back(std::to_string(zk) + " Zookeeper");
    bench::SeriesTable table("procs", series);
    for (long procs : procs_list) {
      std::vector<double> row;
      for (const auto& s : series) row.push_back(results[order[i]][s][procs]);
      table.AddRow(procs, std::move(row));
    }
    const std::string title = std::string("Fig 8") + sub[i] + ": " +
                              std::string(mdtest::PhaseName(order[i]));
    table.Print(title);
    out.AddTable(title, table);
  }
  if (obs_opts.metrics_enabled()) {
    out.SetTimelineJson(timeline_json);
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(registry_json);
    out.WriteFile(obs_opts.metrics_path);
  }
  return 0;
}
