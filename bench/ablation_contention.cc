// Ablation — the Lustre DLM contention model. DESIGN.md calls out the
// per-in-flight lock-management cost as the term that makes native Lustre
// *degrade* with client count (and hence determines where DUFS overtakes
// it). This bench sweeps that constant and reports the Basic-Lustre
// dir-create curve and the DUFS/Lustre crossover.
#include <cstdio>
#include <iterator>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

double MeasureDirCreate(double dlm_us, long procs, std::size_t items,
                        Target target,
                        const bench::ObsOptions* obs_opts = nullptr,
                        bool observed = false,
                        std::string* registry_json = nullptr,
                        std::string* timeline_json = nullptr) {
  TestbedConfig config;
  config.backend = mdtest::BackendKind::kLustre;
  config.backend_instances = 2;
  config.lustre_perf.dlm_cpu_per_inflight = sim::Us(dlm_us);
  config.enable_trace =
      observed && obs_opts != nullptr && obs_opts->trace_enabled();
  Testbed tb(config);
  tb.MountAll();
  if (observed && obs_opts != nullptr && obs_opts->timeline) {
    tb.StartTimeline(obs_opts->timeline_interval_ns());
  }
  MdtestConfig mc;
  mc.processes = static_cast<std::size_t>(procs);
  mc.items_per_proc = items;
  MdtestRunner runner(tb, mc);
  auto results = runner.Run(target, {Phase::kDirCreate});
  if (config.enable_trace) {
    tb.obs().tracer().WriteChromeJson(obs_opts->trace_path);
    std::fprintf(stderr, "[ablation_contention] trace written: %s (%zu "
                         "spans)\n",
                 obs_opts->trace_path.c_str(),
                 tb.obs().tracer().events().size());
  }
  if (observed && registry_json != nullptr) {
    *registry_json = tb.obs().metrics().ToJson();
  }
  if (observed && timeline_json != nullptr && obs_opts != nullptr &&
      obs_opts->timeline) {
    *timeline_json = tb.timeline().ToJson();
  }
  return results[0].ops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "ablation_contention [--items=N] [--procs=64,256] "
                     "[--metrics-json=PATH] [--trace=PATH] [--timeline] "
                     "[--timeline-us=200]");
  const auto items = static_cast<std::size_t>(flags.Int("items", 25));
  const auto procs_list = flags.IntList("procs", {64, 256});
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);
  bench::MetricsJsonWriter out;
  std::string registry_json, timeline_json;

  std::printf("Ablation: Lustre DLM lock-management cost "
              "(us CPU per in-flight request)\n");
  std::printf("dir-create ops/s; DUFS rows use the same Lustre back-ends\n");
  std::printf("%-10s", "dlm_us");
  for (long p : procs_list) {
    std::printf(" %14s", ("lustre@" + std::to_string(p)).c_str());
  }
  for (long p : procs_list) {
    std::printf(" %14s", ("dufs@" + std::to_string(p)).c_str());
  }
  std::printf("\n");
  const double dlm_values[] = {0.0, 1.1, 2.2, 4.4};
  const std::size_t n_dlm = std::size(dlm_values);
  for (std::size_t di = 0; di < n_dlm; ++di) {
    const double dlm = dlm_values[di];
    char dlm_key[32];
    std::snprintf(dlm_key, sizeof(dlm_key), "dlm_%.1f", dlm);
    std::printf("%-10.1f", dlm);
    for (long p : procs_list) {
      const double v = MeasureDirCreate(dlm, p, items, Target::kBaseline);
      std::printf(" %14.1f", v);
      out.AddValue(std::string(dlm_key) + ".lustre@" + std::to_string(p), v);
    }
    for (std::size_t pi = 0; pi < procs_list.size(); ++pi) {
      const long p = procs_list[pi];
      // Observed run: the default DLM cost at the highest client count —
      // the configuration the paper's crossover argument rests on.
      const bool observed =
          di + 1 == n_dlm && pi + 1 == procs_list.size();
      const double v =
          MeasureDirCreate(dlm, p, items, Target::kDufs, &obs_opts, observed,
                           &registry_json, &timeline_json);
      std::printf(" %14.1f", v);
      out.AddValue(std::string(dlm_key) + ".dufs@" + std::to_string(p), v);
    }
    std::printf("\n");
  }
  if (obs_opts.metrics_enabled()) {
    out.SetTimelineJson(timeline_json);
    out.SetRegistryJson(registry_json);
    out.WriteFile(obs_opts.metrics_path);
  }
  std::printf("\nTakeaway: without the DLM term (row 0.0) native Lustre "
              "would not degrade\nwith client count and the paper's "
              "crossover would not exist; DUFS dir ops\nnever touch the "
              "MDS, so its rows barely move.\n");
  return 0;
}
