// Ablation — the Lustre DLM contention model. DESIGN.md calls out the
// per-in-flight lock-management cost as the term that makes native Lustre
// *degrade* with client count (and hence determines where DUFS overtakes
// it). This bench sweeps that constant and reports the Basic-Lustre
// dir-create curve and the DUFS/Lustre crossover.
#include <cstdio>

#include "bench/bench_util.h"
#include "mdtest/workload.h"

using namespace dufs;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

double MeasureDirCreate(double dlm_us, long procs, std::size_t items,
                        Target target) {
  TestbedConfig config;
  config.backend = mdtest::BackendKind::kLustre;
  config.backend_instances = 2;
  config.lustre_perf.dlm_cpu_per_inflight = sim::Us(dlm_us);
  Testbed tb(config);
  tb.MountAll();
  MdtestConfig mc;
  mc.processes = static_cast<std::size_t>(procs);
  mc.items_per_proc = items;
  MdtestRunner runner(tb, mc);
  auto results = runner.Run(target, {Phase::kDirCreate});
  return results[0].ops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv,
                     "ablation_contention [--items=N] [--procs=64,256]");
  const auto items = static_cast<std::size_t>(flags.Int("items", 25));
  const auto procs_list = flags.IntList("procs", {64, 256});

  std::printf("Ablation: Lustre DLM lock-management cost "
              "(us CPU per in-flight request)\n");
  std::printf("dir-create ops/s; DUFS rows use the same Lustre back-ends\n");
  std::printf("%-10s", "dlm_us");
  for (long p : procs_list) {
    std::printf(" %14s", ("lustre@" + std::to_string(p)).c_str());
  }
  for (long p : procs_list) {
    std::printf(" %14s", ("dufs@" + std::to_string(p)).c_str());
  }
  std::printf("\n");
  for (double dlm : {0.0, 1.1, 2.2, 4.4}) {
    std::printf("%-10.1f", dlm);
    for (long p : procs_list) {
      std::printf(" %14.1f", MeasureDirCreate(dlm, p, items,
                                              Target::kBaseline));
    }
    for (long p : procs_list) {
      std::printf(" %14.1f", MeasureDirCreate(dlm, p, items, Target::kDufs));
    }
    std::printf("\n");
  }
  std::printf("\nTakeaway: without the DLM term (row 0.0) native Lustre "
              "would not degrade\nwith client count and the paper's "
              "crossover would not exist; DUFS dir ops\nnever touch the "
              "MDS, so its rows barely move.\n");
  return 0;
}
