// Anomaly injection — a ZooKeeper journal disk that degrades mid-run.
//
// A standalone (1-server) ensemble runs a steady stream of creates; at
// --degrade-at-us the server's journal fsync latency is multiplied by
// --degrade-factor. With one server the leader's self-ack keeps its own
// fsync on the commit critical path (a quorum majority of faster peers
// would mask it), so the fault surfaces directly in create latency.
//
// This is the incident-observability gate's workload: the fsync-stall
// detector must fire, dump the flight recorder, and
// `tracestats --explain-dump` must attribute the latency growth to fsync —
// byte-identically across runs (tests/determinism/slo_gate.cmake).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "mdtest/testbed.h"

using namespace dufs;
using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

int main(int argc, char** argv) {
  bench::Flags flags(
      argc, argv,
      "anomaly_slowfsync [--seed=N] [--files=60] [--degrade-at-us=150000] "
      "[--degrade-factor=15] [--expect-anomaly=TYPE] [--metrics-json=PATH] "
      "[--trace=PATH] [--slo=op:target:budget] [--flight-dump-dir=DIR] "
      "[--slo-window-us=N] [--flight-capacity=N]");
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 1));
  // Creates per client; sized so the run extends well past the fault.
  const auto files = static_cast<std::size_t>(flags.Int("files", 120));
  const auto degrade_at = sim::Us(flags.Int("degrade-at-us", 150000));
  const double factor = flags.Double("degrade-factor", 15.0);
  const std::string expect = flags.Str("expect-anomaly", "");
  const auto obs_opts = bench::ObsOptions::FromFlags(flags);
  bench::ProfileSession prof_session(obs_opts);

  TestbedConfig config;
  config.seed = seed;
  config.zk_servers = 1;
  // One client stream: concurrent writers would queue behind each other's
  // journal batch and smear the attribution across quorum wait; a single
  // stream pins the injected latency on the fsync category itself.
  config.client_nodes = 1;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 1;
  config.zk_group_commit = false;  // one fsync per create
  config.enable_trace = obs_opts.trace_enabled();
  Testbed tb(config);
  DUFS_CHECK(bench::ConfigureIncidents(tb.obs(), obs_opts));
  tb.MountAll();

  // The fault: DiskWrite reads the node model at call time, so mutating it
  // mid-run takes effect on the next journal batch.
  tb.sim().Spawn([](Testbed& t, sim::Duration at,
                    double mult) -> sim::Task<void> {
    co_await t.sim().Delay(at);
    auto& disk = t.net().node(t.zk_nodes()[0]).mutable_model().disk;
    disk.sync_latency = static_cast<sim::Duration>(
        static_cast<double>(disk.sync_latency) * mult);
    std::printf("[anomaly] t=%lldns zk0 fsync degraded %.1fx\n",
                static_cast<long long>(t.sim().now()), mult);
  }(tb, degrade_at, factor));

  const auto start = tb.sim().now();
  sim::RunTask(tb.sim(), [](Testbed& t, std::size_t n) -> sim::Task<void> {
    sim::Barrier done(t.sim(), t.client_count() + 1);
    for (std::size_t c = 0; c < t.client_count(); ++c) {
      t.sim().Spawn([](Testbed& t2, std::size_t client, std::size_t n2,
                       sim::Barrier b) -> sim::Task<void> {
        auto& dufs = *t2.client(client).dufs;
        const std::string dir = "/c" + std::to_string(client);
        DUFS_CHECK((co_await dufs.Mkdir(dir, 0755)).ok());
        for (std::size_t i = 0; i < n2; ++i) {
          auto r = co_await dufs.Create(dir + "/f" + std::to_string(i), 0644);
          DUFS_CHECK(r.ok());
        }
        co_await b.Arrive();
      }(t, c, n, done));
    }
    co_await done.Arrive();
  }(tb, files));
  const double secs =
      static_cast<double>(tb.sim().now() - start) / sim::kSecond;
  const double ops = static_cast<double>(files * tb.client_count());
  std::printf("creates: %.0f in %.3f s sim (%.0f ops/s)\n", ops, secs,
              ops / secs);

  if (obs_opts.trace_enabled()) {
    tb.obs().tracer().WriteChromeJson(obs_opts.trace_path);
    std::printf("trace written: %s (%zu spans)\n", obs_opts.trace_path.c_str(),
                tb.obs().tracer().events().size());
  }
  const std::string incidents_json = bench::FinishIncidents(tb.obs(), obs_opts);
  if (obs_opts.metrics_enabled()) {
    bench::MetricsJsonWriter out;
    out.AddValue("create_ops_per_s", ops / secs);
    out.SetIncidentsJson(incidents_json);
    out.SetRegistryJson(tb.obs().metrics().ToJson());
    if (out.WriteFile(obs_opts.metrics_path)) {
      std::printf("metrics written: %s\n", obs_opts.metrics_path.c_str());
    }
  }

  if (!expect.empty()) {
    bool fired = false;
    for (const auto& a : tb.obs().incidents().anomalies()) {
      if (expect == a.type) fired = true;
    }
    if (!fired) {
      std::fprintf(stderr,
                   "anomaly_slowfsync: expected a %s anomaly; none fired\n",
                   expect.c_str());
      return 1;
    }
    std::printf("expected anomaly fired: %s\n", expect.c_str());
  }
  return 0;
}
