// Figure 1 made runnable: two clients race `mkdir d1` against `mv d1 d2`
// over two metadata replicas.
//
//  * With the paper's strawman — each client updates both replicas itself,
//    with no coordination (NaiveMirrorFs) — the replicas can apply the two
//    operations in different orders and END UP INCONSISTENT.
//  * With DUFS, ZooKeeper linearizes the operations: every replica of the
//    namespace agrees, whatever the interleaving.
//
//   $ ./consistency_demo
#include <cstdio>

#include "mdtest/testbed.h"
#include "sim/task.h"
#include "vfs/memfs.h"
#include "vfs/naive_mirror.h"

using namespace dufs;

namespace {

// --- strawman ---------------------------------------------------------

// Returns true if the two metadata replicas diverged.
bool RaceNaive(std::uint64_t seed) {
  sim::Simulation sim(seed);
  // Two metadata replicas; per-op latency creates the Fig. 1 interleaving
  // window (requests from different clients arrive in different orders).
  vfs::MemFs replica_a(sim, "mdsA", {sim::Us(80)});
  vfs::MemFs replica_b(sim, "mdsB", {sim::Us(120)});
  vfs::NaiveMirrorFs client1({&replica_a, &replica_b});
  vfs::NaiveMirrorFs client2({&replica_b, &replica_a});  // opposite order!

  sim::RunTask(sim, [](vfs::NaiveMirrorFs& c) -> sim::Task<void> {
    (void)co_await c.Mkdir("/d1", 0755);
  }(client1));

  // The race of Fig. 1a: client 1 re-creates /d1 while client 2 renames
  // /d1 to /d2.
  {
    sim::CurrentSimulationScope scope(&sim);
    sim.Spawn([](sim::Simulation& s, vfs::NaiveMirrorFs& c) -> sim::Task<void> {
      co_await s.Delay(sim::Us(10));
      (void)co_await c.Rename("/d1", "/d2");
    }(sim, client2));
    sim.Spawn([](sim::Simulation& s, vfs::NaiveMirrorFs& c) -> sim::Task<void> {
      co_await s.Delay(sim::Us(30));
      (void)co_await c.Rmdir("/d1");
      (void)co_await c.Mkdir("/d1", 0755);
    }(sim, client1));
  }
  sim.Run();

  bool diverged = false;
  sim::RunTask(sim, [](vfs::MemFs& a, vfs::MemFs& b,
                       bool& out) -> sim::Task<void> {
    for (const char* path : {"/d1", "/d2"}) {
      const bool in_a = (co_await a.GetAttr(path)).ok();
      const bool in_b = (co_await b.GetAttr(path)).ok();
      if (in_a != in_b) {
        std::printf("    %s: replicaA=%s replicaB=%s   <-- INCONSISTENT\n",
                    path, in_a ? "exists" : "absent",
                    in_b ? "exists" : "absent");
        out = true;
      }
    }
  }(replica_a, replica_b, diverged));
  return diverged;
}

// --- DUFS -------------------------------------------------------------

bool RaceDufs(std::uint64_t seed) {
  mdtest::TestbedConfig config;
  config.seed = seed;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = mdtest::BackendKind::kMemFs;
  mdtest::Testbed tb(config);
  tb.MountAll();

  sim::RunTask(tb.sim(), [](mdtest::Testbed& t) -> sim::Task<void> {
    (void)co_await t.client(0).dufs->Mkdir("/d1", 0755);
  }(tb));
  {
    sim::CurrentSimulationScope scope(&tb.sim());
    tb.sim().Spawn([](mdtest::Testbed& t) -> sim::Task<void> {
      co_await t.sim().Delay(sim::Us(10));
      (void)co_await t.client(1).dufs->Rename("/d1", "/d2");
    }(tb));
    tb.sim().Spawn([](mdtest::Testbed& t) -> sim::Task<void> {
      co_await t.sim().Delay(sim::Us(30));
      (void)co_await t.client(0).dufs->Rmdir("/d1");
      (void)co_await t.client(0).dufs->Mkdir("/d1", 0755);
    }(tb));
  }
  tb.sim().Run();

  // Compare the replicated namespace across all ZooKeeper servers.
  std::uint64_t fp = tb.zk_server(0).db().Fingerprint();
  for (std::size_t i = 1; i < tb.zk_server_count(); ++i) {
    if (tb.zk_server(i).db().Fingerprint() != fp) return true;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("== Figure 1: the consistency race ==\n\n");
  std::printf("Strawman (uncoordinated replicas, NaiveMirrorFs):\n");
  int naive_diverged = 0;
  constexpr int kRounds = 8;
  for (std::uint64_t seed = 1; seed <= kRounds; ++seed) {
    if (RaceNaive(seed)) ++naive_diverged;
  }
  std::printf("  -> replicas diverged in %d/%d rounds\n\n", naive_diverged,
              kRounds);

  std::printf("DUFS (operations linearized by the coordination service):\n");
  int dufs_diverged = 0;
  for (std::uint64_t seed = 1; seed <= kRounds; ++seed) {
    if (RaceDufs(seed)) ++dufs_diverged;
  }
  std::printf("  -> replicas diverged in %d/%d rounds\n\n", dufs_diverged,
              kRounds);

  std::printf("%s\n", dufs_diverged == 0 && naive_diverged > 0
                          ? "DUFS resolves the Fig. 1 race; the strawman "
                            "does not."
                          : "unexpected outcome — investigate!");
  return dufs_diverged == 0 ? 0 : 1;
}
