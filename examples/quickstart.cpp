// Quickstart: bring up a simulated cluster (ZooKeeper ensemble + two Lustre
// instances + client nodes), mount DUFS, and walk the public API:
// directories, files, data IO, rename, symlinks, readdir, statfs.
//
//   $ ./quickstart
#include <cstdio>

#include "mdtest/testbed.h"
#include "sim/task.h"

using namespace dufs;
using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

const char* OkStr(const Status& s) { return s.ok() ? "ok" : "FAILED"; }

sim::Task<void> Tour(Testbed& tb) {
  auto& fuse = *tb.client(0).fuse;  // the POSIX-style mount applications use

  std::printf("== DUFS quickstart ==\n");
  std::printf("cluster: %zu ZooKeeper servers, %zu Lustre instances, "
              "%zu client nodes\n\n",
              tb.zk_server_count(), tb.config().backend_instances,
              tb.client_count());

  // Directories are metadata-only: they live entirely in the coordination
  // service and never touch a back-end.
  auto st = co_await fuse.Mkdir("/projects");
  std::printf("mkdir /projects                -> %s\n", OkStr(st));
  st = co_await fuse.Mkdir("/projects/dufs");
  std::printf("mkdir /projects/dufs           -> %s\n", OkStr(st));

  // Files: the znode stores the FID; contents land on one back-end chosen
  // by MD5(fid) mod N.
  auto fd = co_await fuse.Creat("/projects/dufs/notes.txt");
  std::printf("creat /projects/dufs/notes.txt -> fd %d\n", fd.value_or(-1));
  auto wrote = co_await fuse.Write(*fd, 0,
                                   vfs::ToBytes("decentralized metadata!"));
  std::printf("write 23 bytes                 -> %llu bytes\n",
              static_cast<unsigned long long>(wrote.value_or(0)));
  st = co_await fuse.Close(*fd);

  auto attr = co_await fuse.Stat("/projects/dufs/notes.txt");
  std::printf("stat                           -> size=%llu mode=%o\n",
              static_cast<unsigned long long>(attr->size), attr->mode);

  // Rename never moves data: only the znode changes (the FID indirection).
  st = co_await fuse.Rename("/projects/dufs/notes.txt",
                            "/projects/dufs/README");
  std::printf("rename notes.txt -> README     -> %s\n", OkStr(st));

  auto fd2 = co_await fuse.Open("/projects/dufs/README", vfs::kRead);
  auto data = co_await fuse.Read(*fd2, 0, 64);
  std::printf("read back                      -> \"%s\"\n",
              vfs::FromBytes(*data).c_str());
  (void)co_await fuse.Close(*fd2);

  st = co_await fuse.Symlink("/projects/dufs/README", "/projects/link");
  auto target = co_await fuse.ReadLink("/projects/link");
  std::printf("symlink + readlink             -> %s\n", target->c_str());

  // A second client node sees everything instantly (one namespace).
  auto& other = *tb.client(1).fuse;
  auto entries = co_await other.ReadDir("/projects/dufs");
  std::printf("readdir from another client    -> %zu entries:",
              entries->size());
  for (const auto& e : *entries) std::printf(" %s", e.name.c_str());
  std::printf("\n");

  auto stats = co_await fuse.StatFs();
  std::printf("statfs                         -> %llu physical files across "
              "%zu back-ends\n",
              static_cast<unsigned long long>(stats->files),
              tb.config().backend_instances);

  (void)co_await fuse.Unlink("/projects/link");
  (void)co_await fuse.Unlink("/projects/dufs/README");
  (void)co_await fuse.Rmdir("/projects/dufs");
  st = co_await fuse.Rmdir("/projects");
  std::printf("cleanup                        -> %s\n", OkStr(st));
}

}  // namespace

int main() {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = BackendKind::kLustre;
  config.backend_instances = 2;
  Testbed tb(config);
  tb.MountAll();
  sim::RunTask(tb.sim(), Tour(tb));
  std::printf("\nsimulated time: %.3f ms, events: %llu\n",
              static_cast<double>(tb.sim().now()) / sim::kMillisecond,
              static_cast<unsigned long long>(tb.sim().events_processed()));
  return 0;
}
