// Reliability demo (paper §IV-I): DUFS keeps serving while coordination
// servers fail, as long as a majority survives.
//
//  1. steady workload against a 5-server ensemble;
//  2. crash a follower  -> writes keep committing (quorum 3/5... 4/5 alive);
//  3. crash the leader  -> election; clients fail over and continue;
//  4. crash to minority -> writes block (reads still served);
//  5. restart a server from its snapshot -> it resyncs and quorum returns.
//
//   $ ./failover_demo
#include <cstdio>

#include "mdtest/testbed.h"
#include "sim/task.h"

using namespace dufs;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

// Performs `n` mkdir ops and reports how many succeeded.
sim::Task<int> Burst(Testbed& tb, int round, int n) {
  int ok = 0;
  for (int i = 0; i < n; ++i) {
    auto st = co_await tb.client(0).dufs->Mkdir(
        "/r" + std::to_string(round) + "-" + std::to_string(i), 0755);
    if (st.ok()) ++ok;
  }
  co_return ok;
}

void Report(const char* stage, int ok, int total) {
  std::printf("%-46s %d/%d writes committed\n", stage, ok, total);
}

}  // namespace

int main() {
  TestbedConfig config;
  config.zk_servers = 5;
  config.client_nodes = 2;
  config.backend = mdtest::BackendKind::kMemFs;
  config.zk_failure_detection = true;
  Testbed tb(config);
  tb.MountAll();

  std::printf("== DUFS failover demo (5-server ensemble) ==\n\n");

  Report("baseline", sim::RunTask(tb.sim(), Burst(tb, 0, 20)), 20);

  tb.net().node(tb.zk_nodes()[4]).Crash();
  Report("follower 4 crashed (4/5 alive)",
         sim::RunTask(tb.sim(), Burst(tb, 1, 20)), 20);

  // Take a snapshot of server 3 before killing it, to restart from later.
  auto snapshot = tb.zk_server(3).TakeSnapshot();
  tb.net().node(tb.zk_nodes()[3]).Crash();
  Report("follower 3 crashed (3/5 alive, bare quorum)",
         sim::RunTask(tb.sim(), Burst(tb, 2, 20)), 20);

  const std::size_t old_leader = tb.zk_server(0).leader_index();
  tb.net().node(tb.zk_nodes()[old_leader]).Crash();
  // Allow failure detection + election to run.
  tb.sim().Run(tb.sim().now() + sim::Sec(2));
  Report("leader crashed -> 2/5 alive: writes blocked",
         sim::RunTask(tb.sim(), Burst(tb, 3, 5)), 5);

  // Reads from a surviving replica still work.
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto attr = co_await t.client(0).dufs->GetAttr("/r0-0");
    std::printf("%-46s %s\n", "stale-tolerant read of /r0-0",
                attr.ok() ? "ok" : "failed");
  }(tb));

  // Restart server 3 from its snapshot: quorum (3/5) returns; after the
  // election settles, writes flow again.
  tb.net().node(tb.zk_nodes()[3]).Restart();
  auto st = tb.zk_server(3).RestoreSnapshot(snapshot);
  DUFS_CHECK(st.ok());
  tb.zk_server(3).OnRestart();
  tb.sim().Run(tb.sim().now() + sim::Sec(3));
  Report("server 3 restarted from snapshot (3/5 alive)",
         sim::RunTask(tb.sim(), Burst(tb, 4, 20)), 20);

  // Let in-flight commits and the resync finish before comparing replicas.
  tb.sim().Run(tb.sim().now() + sim::Sec(2));

  // Every surviving replica converged to the same namespace.
  std::uint64_t fp = 0;
  bool first = true, converged = true;
  for (std::size_t i = 0; i < tb.zk_server_count(); ++i) {
    if (!tb.net().node(tb.zk_nodes()[i]).up()) continue;
    const auto f = tb.zk_server(i).db().Fingerprint();
    if (first) {
      fp = f;
      first = false;
    } else if (f != fp) {
      converged = false;
    }
  }
  std::printf("\nsurviving replicas converged: %s\n",
              converged ? "yes" : "NO");
  return converged ? 0 : 1;
}
