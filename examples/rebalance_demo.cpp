// Future-work demo (paper §VII): replacing the MD5-mod-N mapping with
// consistent hashing so back-ends can be added or removed while "the amount
// of data to relocate stays bounded".
//
// The demo creates files through DUFS with each placement policy, then
// simulates growing the back-end pool and reports how many existing files
// would have to move.
//
//   $ ./rebalance_demo
#include <cstdio>

#include "core/mapping.h"
#include "core/rebalancer.h"
#include "mdtest/testbed.h"
#include "sim/task.h"

using namespace dufs;
using mdtest::Testbed;
using mdtest::TestbedConfig;

namespace {

void Demo(const std::string& policy_name) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = mdtest::BackendKind::kMemFs;
  config.backend_instances = 4;
  config.placement = policy_name;
  Testbed tb(config);
  tb.MountAll();

  // Create files through the real stack and record each file's placement.
  constexpr int kFiles = 3000;
  std::vector<Fid> fids;
  sim::RunTask(tb.sim(), [](Testbed& t, std::vector<Fid>& out,
                            int n) -> sim::Task<void> {
    auto& dufs = *t.client(0).dufs;
    for (int i = 0; i < n; ++i) {
      auto created = co_await dufs.Create("/f" + std::to_string(i), 0644);
      DUFS_CHECK(created.ok());
    }
    // FIDs are (client id, 1..n) for this client.
    for (int i = 1; i <= n; ++i) {
      out.push_back(Fid{t.client(0).dufs->client_id(),
                        static_cast<std::uint64_t>(i)});
    }
  }(tb, fids, kFiles));

  auto& placement = tb.client(0).dufs->placement();
  std::vector<std::uint32_t> before;
  before.reserve(fids.size());
  for (const auto& fid : fids) before.push_back(placement.Place(fid));

  std::size_t counts[5] = {0};
  for (auto b : before) ++counts[b];
  std::printf("%-18s placement over 4 back-ends: %zu/%zu/%zu/%zu\n",
              policy_name.c_str(), counts[0], counts[1], counts[2],
              counts[3]);

  // Grow the pool 4 -> 5 and count relocations.
  placement.SetBackendCount(5);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < fids.size(); ++i) {
    if (placement.Place(fids[i]) != before[i]) ++moved;
  }
  std::printf("%-18s add a 5th back-end: %zu/%d files must move (%.0f%%)\n\n",
              policy_name.c_str(), moved, kFiles,
              100.0 * static_cast<double>(moved) / kFiles);
}

}  // namespace

// Actually move the data: switch a live volume from MD5-mod-N to the ring
// using core::Rebalancer, then verify every file still reads back.
void LiveRebalance() {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 1;
  config.backend = mdtest::BackendKind::kMemFs;
  config.backend_instances = 4;
  Testbed tb(config);
  tb.MountAll();

  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    constexpr int kFiles = 500;
    for (int i = 0; i < kFiles; ++i) {
      const std::string path = "/data" + std::to_string(i);
      (void)co_await fs.Create(path, 0644);
      auto h = co_await fs.Open(path, vfs::kWrite);
      (void)co_await fs.Write(*h, 0,
                              vfs::ToBytes("v" + std::to_string(i)));
      (void)co_await fs.Release(*h);
    }

    core::Md5ModNPlacement old_policy(4);
    core::ConsistentHashPlacement new_policy(4);
    std::vector<vfs::FileSystem*> backends;
    for (auto& m : t.client(0).backend_mounts) backends.push_back(m.get());
    core::Rebalancer rebalancer(*t.client(0).zk, backends, old_policy,
                                new_policy);
    auto stats = co_await rebalancer.Run();
    std::printf("live rebalance (mod-N -> ring over the same 4 back-ends):\n"
                "  scanned=%llu moved=%llu bytes=%llu errors=%llu\n",
                static_cast<unsigned long long>(stats->files_scanned),
                static_cast<unsigned long long>(stats->files_moved),
                static_cast<unsigned long long>(stats->bytes_moved),
                static_cast<unsigned long long>(stats->errors));

    // Every file still readable through the new policy.
    int intact = 0;
    for (int i = 0; i < kFiles; ++i) {
      const Fid fid{t.client(0).dufs->client_id(),
                          static_cast<std::uint64_t>(i + 1)};
      const auto where = new_policy.Place(fid);
      auto h = co_await backends[where]->Open(
          core::PhysicalPathForFid(fid), vfs::kRead);
      if (!h.ok()) continue;
      auto data = co_await backends[where]->Read(*h, 0, 32);
      if (data.ok() && vfs::FromBytes(*data) == "v" + std::to_string(i)) {
        ++intact;
      }
      (void)co_await backends[where]->Release(*h);
    }
    std::printf("  %d/%d files intact at their new homes\n", intact, kFiles);
  }(tb));
}

int main() {
  std::printf("== Back-end rebalancing: MD5 mod N vs consistent hashing ==\n");
  std::printf("(ideal relocation when growing 4 -> 5 back-ends: 20%%)\n\n");
  Demo("md5-mod-n");
  Demo("consistent-hash");
  LiveRebalance();
  std::printf("\nTakeaway: with consistent hashing DUFS can grow its "
              "back-end pool while\nrelocating only ~1/N of the files (the "
              "paper's planned extension); the\nRebalancer migrates exactly "
              "the affected files with no namespace change.\n");
  return 0;
}
