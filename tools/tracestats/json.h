// Minimal JSON parser for the tracestats analyzer — self-contained, same
// philosophy as tools/lint: no third-party deps, tolerant of nothing the
// repo's own exporters don't emit (objects, arrays, strings, numbers,
// true/false/null; no comments, no trailing commas).
//
// Numbers keep their raw source text alongside the double: trace timestamps
// are microseconds with exactly three decimals ("12.345"), and the raw text
// lets the analyzer reconstruct integer nanoseconds exactly instead of
// trusting double rounding.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dufs::tracestats {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // number source text, e.g. "12.345"
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Convenience getters with fallbacks (no error — absent means fallback).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback = 0) const;
};

// Parses `text` into `*out`. On failure returns false and sets `*error` to
// a message with a byte offset.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Slurps a file; false (with message) when unreadable.
bool ReadFile(const std::string& path, std::string* out, std::string* error);

// "12.345" (µs with exactly 3 decimals, as the tracer prints) -> 12345 ns.
// Falls back to rounding the double for any other numeric shape.
std::int64_t MicrosRawToNanos(const JsonValue& v);

}  // namespace dufs::tracestats
