#include "analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace dufs::tracestats {

namespace {

struct RawEvent {
  std::string name;
  std::string cat;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t trace = 0;
  std::int64_t wait_ns = -1;  // nic-tx/nic-rx arg; -1 when absent
  std::string path;
};

// One attributable interval with its category; built from spans, possibly
// split (NIC events contribute a wait part and a wire part).
struct Piece {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  Category cat = Category::kClient;
};

Category Classify(const RawEvent& e) {
  if (e.name == "fsync-batch") return Category::kFsync;
  if (e.name == "quorum-round") return Category::kQuorum;
  if (e.name == "zk-write" || e.name == "zk-read") return Category::kZkQueue;
  if (e.name == "pvfs-call" || e.name == "mds-call" || e.name == "oss-call") {
    return Category::kBackend;
  }
  if (e.name == "zk-rpc" || e.cat == "backend") return Category::kRpcWait;
  return Category::kOther;
}

void AddClipped(std::vector<Piece>* pieces, std::int64_t begin,
                std::int64_t end, std::int64_t lo, std::int64_t hi,
                Category cat) {
  begin = std::max(begin, lo);
  end = std::min(end, hi);
  if (begin < end) pieces->push_back(Piece{begin, end, cat});
}

// Decompose one op: every nanosecond of [root.ts, root.ts+dur) goes to the
// highest-priority piece covering it, so the categories sum to the root
// duration exactly.
OpBreakdown DecomposeOp(const RawEvent& root,
                        const std::vector<const RawEvent*>& children) {
  OpBreakdown op;
  op.op = root.name;
  op.trace_id = root.trace;
  op.start_ns = root.ts_ns;
  op.dur_ns = root.dur_ns;
  op.path = root.path;

  const std::int64_t lo = root.ts_ns;
  const std::int64_t hi = root.ts_ns + root.dur_ns;
  std::vector<Piece> pieces;
  pieces.push_back(Piece{lo, hi, Category::kClient});
  for (const RawEvent* e : children) {
    const std::int64_t b = e->ts_ns;
    const std::int64_t t = e->ts_ns + e->dur_ns;
    if (e->name == "nic-tx" || e->name == "nic-rx") {
      const std::int64_t wait =
          e->wait_ns >= 0 ? std::min(e->wait_ns, e->dur_ns) : 0;
      AddClipped(&pieces, b, b + wait, lo, hi, Category::kNicWait);
      AddClipped(&pieces, b + wait, t, lo, hi, Category::kWire);
    } else {
      AddClipped(&pieces, b, t, lo, hi, Classify(*e));
    }
  }

  // Interval sweep over the elementary segments between span boundaries.
  std::vector<std::int64_t> bounds;
  bounds.reserve(pieces.size() * 2);
  for (const Piece& p : pieces) {
    bounds.push_back(p.begin);
    bounds.push_back(p.end);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const std::int64_t b = bounds[i];
    const std::int64_t t = bounds[i + 1];
    Category best = Category::kClient;
    for (const Piece& p : pieces) {
      if (p.begin <= b && t <= p.end && p.cat > best) best = p.cat;
    }
    op.ns[static_cast<std::size_t>(best)] += t - b;
    if (!op.segments.empty() && op.segments.back().first == best) {
      op.segments.back().second += t - b;
    } else {
      op.segments.emplace_back(best, t - b);
    }
  }
  return op;
}

std::string Percent(std::int64_t part, std::int64_t whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%",
                whole > 0 ? 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole)
                          : 0.0);
  return buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    }
  }
  return out;
}

struct BaselineMetric {
  double value = 0;
  bool higher = true;
};

bool LoadBaseline(const JsonValue& doc,
                  std::map<std::string, BaselineMetric>* out,
                  std::string* error) {
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    *error = "baseline has no \"metrics\" object";
    return false;
  }
  for (const auto& [key, v] : metrics->members) {
    BaselineMetric m;
    m.value = v.GetNumber("value", 0.0);
    m.higher = v.GetString("better", "higher") != "lower";
    (*out)[key] = m;
  }
  return true;
}

// Shared pass for Analyze and ExplainDump: pull "X" events out of a trace
// (or dump) document, group by trace id, and decompose every op that has a
// root. Ops come out in trace-id order (deterministic).
bool CollectOps(const JsonValue& trace, std::vector<OpBreakdown>* ops,
                std::uint64_t* orphan_events, std::string* error) {
  const JsonValue* events = trace.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "trace has no \"traceEvents\" array";
    return false;
  }
  std::map<std::int64_t, std::vector<RawEvent>> by_trace;
  for (const JsonValue& ev : events->items) {
    if (!ev.is_object() || ev.GetString("ph") != "X") continue;
    RawEvent e;
    e.name = ev.GetString("name");
    e.cat = ev.GetString("cat");
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* dur = ev.Find("dur");
    if (ts == nullptr || dur == nullptr) continue;
    e.ts_ns = MicrosRawToNanos(*ts);
    e.dur_ns = MicrosRawToNanos(*dur);
    if (const JsonValue* args = ev.Find("args"); args != nullptr) {
      e.trace = args->GetInt("trace", 0);
      e.wait_ns = args->GetInt("wait_ns", -1);
      e.path = args->GetString("path");
    }
    if (e.trace == 0) {
      ++*orphan_events;
      continue;
    }
    by_trace[e.trace].push_back(std::move(e));
  }
  for (const auto& [trace_id, group] : by_trace) {
    const RawEvent* root = nullptr;
    for (const RawEvent& e : group) {
      if (e.cat == "op" && (root == nullptr || e.ts_ns < root->ts_ns)) {
        root = &e;
      }
    }
    if (root == nullptr) {
      *orphan_events += group.size();
      continue;
    }
    std::vector<const RawEvent*> children;
    for (const RawEvent& e : group) {
      if (&e != root) children.push_back(&e);
    }
    ops->push_back(DecomposeOp(*root, children));
  }
  return true;
}

}  // namespace

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kClient: return "client";
    case Category::kOther: return "other";
    case Category::kRpcWait: return "rpc_wait";
    case Category::kBackend: return "backend";
    case Category::kNicWait: return "nic_wait";
    case Category::kWire: return "wire";
    case Category::kZkQueue: return "zk_queue";
    case Category::kQuorum: return "quorum";
    case Category::kFsync: return "fsync";
    case Category::kCount: break;
  }
  return "?";
}

bool Analyze(const JsonValue& trace, const JsonValue* metrics, int top_k,
             double check_tol, AnalyzeResult* out, std::string* error) {
  std::vector<OpBreakdown> ops;
  if (!CollectOps(trace, &ops, &out->orphan_events, error)) return false;

  // Aggregate per class, keep the slowest ops.
  std::map<std::string, ClassStats> classes;
  for (OpBreakdown& op : ops) {
    ClassStats& cs = classes[op.op];
    cs.op = op.op;
    ++cs.count;
    cs.total_ns += op.dur_ns;
    for (int i = 0; i < kCategoryCount; ++i) {
      cs.ns[static_cast<std::size_t>(i)] += op.ns[static_cast<std::size_t>(i)];
    }
    ++out->total_ops;
    out->slowest.push_back(std::move(op));
  }

  // Top-K slowest, deterministic tie-breaks (start time, then trace id).
  std::sort(out->slowest.begin(), out->slowest.end(),
            [](const OpBreakdown& a, const OpBreakdown& b) {
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.trace_id < b.trace_id;
            });
  if (top_k >= 0 &&
      out->slowest.size() > static_cast<std::size_t>(top_k)) {
    out->slowest.resize(static_cast<std::size_t>(top_k));
  }

  // Cross-check against the registry's merged op histograms.
  const JsonValue* hists = nullptr;
  if (metrics != nullptr) {
    if (const JsonValue* reg = metrics->Find("registry"); reg != nullptr) {
      if (const JsonValue* merged = reg->Find("merged"); merged != nullptr) {
        hists = merged->Find("hists");
      }
    }
  }
  for (auto& [op_name, cs] : classes) {
    if (hists != nullptr) {
      if (const JsonValue* h = hists->Find("op." + op_name + "_ns");
          h != nullptr) {
        cs.hist_sum_ns = h->GetInt("sum", -1);
        cs.hist_count = static_cast<std::uint64_t>(h->GetInt("count", 0));
      }
    }
    if (cs.hist_sum_ns >= 0) {
      const double sum = static_cast<double>(cs.hist_sum_ns);
      const double delta =
          std::fabs(static_cast<double>(cs.total_ns) - sum);
      if (delta > check_tol * std::max(sum, 1.0)) {
        out->check_ok = false;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s: trace total %lld ns vs histogram sum %lld ns "
                      "differ by more than %.2f%%",
                      op_name.c_str(), static_cast<long long>(cs.total_ns),
                      static_cast<long long>(cs.hist_sum_ns),
                      100.0 * check_tol);
        out->check_messages.push_back(buf);
      }
    }
    out->classes.push_back(cs);
  }
  return true;
}

std::string ResultToText(const AnalyzeResult& r) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "Trace analytics: %llu ops across %zu classes (%llu orphan "
                "events)\n",
                static_cast<unsigned long long>(r.total_ops),
                r.classes.size(),
                static_cast<unsigned long long>(r.orphan_events));
  out += buf;

  out += "\n## Latency decomposition by op class\n";
  std::snprintf(buf, sizeof(buf), "%-10s %8s %14s", "class", "count",
                "total_ns");
  out += buf;
  for (int c = 0; c < kCategoryCount; ++c) {
    std::snprintf(buf, sizeof(buf), " %9s",
                  CategoryName(static_cast<Category>(c)));
    out += buf;
  }
  out += '\n';
  for (const ClassStats& cs : r.classes) {
    std::snprintf(buf, sizeof(buf), "%-10s %8llu %14lld", cs.op.c_str(),
                  static_cast<unsigned long long>(cs.count),
                  static_cast<long long>(cs.total_ns));
    out += buf;
    for (int c = 0; c < kCategoryCount; ++c) {
      out += "   ";
      out += Percent(cs.ns[static_cast<std::size_t>(c)], cs.total_ns);
    }
    out += '\n';
  }

  out += "\n## Cross-check vs op.<class>_ns histograms\n";
  for (const ClassStats& cs : r.classes) {
    if (cs.hist_sum_ns < 0) {
      std::snprintf(buf, sizeof(buf), "%-10s (no histogram in registry)\n",
                    cs.op.c_str());
    } else {
      const double sum = static_cast<double>(cs.hist_sum_ns);
      const double pct =
          sum > 0
              ? 100.0 * (static_cast<double>(cs.total_ns) - sum) / sum
              : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "%-10s trace=%lld hist=%lld (count %llu/%llu) "
                    "delta=%+.3f%%\n",
                    cs.op.c_str(), static_cast<long long>(cs.total_ns),
                    static_cast<long long>(cs.hist_sum_ns),
                    static_cast<unsigned long long>(cs.count),
                    static_cast<unsigned long long>(cs.hist_count), pct);
    }
    out += buf;
  }
  for (const std::string& msg : r.check_messages) {
    out += "CHECK FAILED: " + msg + "\n";
  }

  out += "\n## Slowest ops (critical path)\n";
  int rank = 1;
  for (const OpBreakdown& op : r.slowest) {
    std::snprintf(buf, sizeof(buf), "%2d. %-8s %10lld ns  trace=%lld%s%s\n",
                  rank++, op.op.c_str(), static_cast<long long>(op.dur_ns),
                  static_cast<long long>(op.trace_id),
                  op.path.empty() ? "" : "  path=",
                  op.path.c_str());
    out += buf;
    out += "    ";
    bool first = true;
    for (const auto& [cat, ns] : op.segments) {
      if (!first) out += " -> ";
      first = false;
      std::snprintf(buf, sizeof(buf), "%s %lld", CategoryName(cat),
                    static_cast<long long>(ns));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string ResultToJson(const AnalyzeResult& r) {
  std::string out = "{\"total_ops\":" + std::to_string(r.total_ops);
  out += ",\"orphan_events\":" + std::to_string(r.orphan_events);
  out += ",\"check_ok\":";
  out += r.check_ok ? "true" : "false";
  out += ",\"classes\":{";
  bool first = true;
  for (const ClassStats& cs : r.classes) {
    if (!first) out += ',';
    first = false;
    out += '"' + EscapeJson(cs.op) + "\":{\"count\":" +
           std::to_string(cs.count) +
           ",\"total_ns\":" + std::to_string(cs.total_ns);
    out += ",\"hist_sum_ns\":" + std::to_string(cs.hist_sum_ns);
    out += ",\"hist_count\":" + std::to_string(cs.hist_count);
    out += ",\"by_category\":{";
    for (int c = 0; c < kCategoryCount; ++c) {
      if (c > 0) out += ',';
      out += '"';
      out += CategoryName(static_cast<Category>(c));
      out += "\":" + std::to_string(cs.ns[static_cast<std::size_t>(c)]);
    }
    out += "}}";
  }
  out += "},\"slowest\":[";
  first = true;
  for (const OpBreakdown& op : r.slowest) {
    if (!first) out += ',';
    first = false;
    out += "{\"op\":\"" + EscapeJson(op.op) + "\"";
    out += ",\"trace\":" + std::to_string(op.trace_id);
    out += ",\"start_ns\":" + std::to_string(op.start_ns);
    out += ",\"dur_ns\":" + std::to_string(op.dur_ns);
    if (!op.path.empty()) out += ",\"path\":\"" + EscapeJson(op.path) + "\"";
    out += ",\"critical_path\":[";
    for (std::size_t i = 0; i < op.segments.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"category\":\"";
      out += CategoryName(op.segments[i].first);
      out += "\",\"ns\":" + std::to_string(op.segments[i].second) + "}";
    }
    out += "]}";
  }
  out += "],\"check_messages\":[";
  first = true;
  for (const std::string& msg : r.check_messages) {
    if (!first) out += ',';
    first = false;
    out += '"' + EscapeJson(msg) + '"';
  }
  out += "]}";
  return out;
}

bool CategoryFromName(const std::string& name, Category* out) {
  for (int c = 0; c < kCategoryCount; ++c) {
    if (name == CategoryName(static_cast<Category>(c))) {
      *out = static_cast<Category>(c);
      return true;
    }
  }
  return false;
}

bool ExplainDump(const JsonValue& dump, std::int64_t window_override_ns,
                 ExplainResult* out, std::string* error) {
  const JsonValue* anomaly = dump.Find("anomaly");
  if (anomaly == nullptr || !anomaly->is_object()) {
    *error = "dump has no \"anomaly\" object (is this a flight-recorder "
             "dump?)";
    return false;
  }
  out->type = anomaly->GetString("type");
  out->node = anomaly->GetString("node");
  out->detail = anomaly->GetString("detail");
  out->anomaly_t_ns = anomaly->GetInt("t_ns", 0);
  out->window_ns = window_override_ns > 0
                       ? window_override_ns
                       : anomaly->GetInt("window_ns", 0);
  if (out->window_ns <= 0) {
    *error = "dump records no window_ns and no --window given";
    return false;
  }
  out->split_ns = out->anomaly_t_ns - out->window_ns;

  std::vector<OpBreakdown> ops;
  std::uint64_t orphans = 0;
  if (!CollectOps(dump, &ops, &orphans, error)) return false;

  for (const OpBreakdown& op : ops) {
    const bool in_window = op.start_ns >= out->split_ns;
    if (in_window) {
      ++out->window_ops;
      out->window_total_ns += op.dur_ns;
    } else {
      ++out->baseline_ops;
      out->baseline_total_ns += op.dur_ns;
    }
    for (int c = 0; c < kCategoryCount; ++c) {
      const auto i = static_cast<std::size_t>(c);
      (in_window ? out->window_cat_ns : out->baseline_ns)[i] += op.ns[i];
    }
  }
  if (out->window_ops == 0) {
    *error = "no ops start inside the anomaly window — widen --window or "
             "grow the flight-recorder capacity";
    return false;
  }
  if (out->baseline_ops == 0) {
    *error = "no healthy-baseline ops precede the anomaly window in this "
             "dump — grow the flight-recorder capacity";
    return false;
  }

  out->baseline_mean_ns = static_cast<double>(out->baseline_total_ns) /
                          static_cast<double>(out->baseline_ops);
  out->window_mean_ns = static_cast<double>(out->window_total_ns) /
                        static_cast<double>(out->window_ops);
  out->mean_growth_ns = out->window_mean_ns - out->baseline_mean_ns;
  out->have_growth = out->mean_growth_ns > 0.0;
  double best = -1.0;
  for (int c = 0; c < kCategoryCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    const double growth =
        static_cast<double>(out->window_cat_ns[i]) /
            static_cast<double>(out->window_ops) -
        static_cast<double>(out->baseline_ns[i]) /
            static_cast<double>(out->baseline_ops);
    out->growth_share[i] =
        out->have_growth ? growth / out->mean_growth_ns : 0.0;
    if (out->growth_share[i] > best) {
      best = out->growth_share[i];
      out->dominant = static_cast<Category>(c);
    }
  }
  return true;
}

std::string ExplainToText(const ExplainResult& r) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "Anomaly explain: %s on %s at t=%lld ns (window %lld ns)\n",
                r.type.c_str(), r.node.c_str(),
                static_cast<long long>(r.anomaly_t_ns),
                static_cast<long long>(r.window_ns));
  out += buf;
  if (!r.detail.empty()) out += "  detail: " + r.detail + "\n";
  std::snprintf(buf, sizeof(buf),
                "  baseline: %llu ops, mean %.0f ns | window: %llu ops, "
                "mean %.0f ns | growth %+.0f ns\n",
                static_cast<unsigned long long>(r.baseline_ops),
                r.baseline_mean_ns,
                static_cast<unsigned long long>(r.window_ops),
                r.window_mean_ns, r.mean_growth_ns);
  out += buf;
  if (!r.have_growth) {
    out += "  no mean-latency growth in the anomaly window; attribution "
           "not meaningful\n";
    return out;
  }
  out += "\n## Growth attribution (share of mean-latency growth)\n";
  for (int c = 0; c < kCategoryCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    std::snprintf(buf, sizeof(buf), "  %-9s %+7.1f%%%s\n",
                  CategoryName(static_cast<Category>(c)),
                  100.0 * r.growth_share[i],
                  static_cast<Category>(c) == r.dominant ? "  <-- dominant"
                                                         : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\nVerdict: the anomaly is %.0f%% %s\n",
                100.0 * r.growth_share[static_cast<std::size_t>(r.dominant)],
                CategoryName(r.dominant));
  out += buf;
  return out;
}

std::string ExplainToJson(const ExplainResult& r) {
  std::string out = "{\"type\":\"" + EscapeJson(r.type) + "\"";
  out += ",\"node\":\"" + EscapeJson(r.node) + "\"";
  if (!r.detail.empty()) {
    out += ",\"detail\":\"" + EscapeJson(r.detail) + "\"";
  }
  out += ",\"t_ns\":" + std::to_string(r.anomaly_t_ns);
  out += ",\"window_ns\":" + std::to_string(r.window_ns);
  out += ",\"baseline_ops\":" + std::to_string(r.baseline_ops);
  out += ",\"window_ops\":" + std::to_string(r.window_ops);
  out += ",\"baseline_mean_ns\":";
  AppendDouble(&out, r.baseline_mean_ns);
  out += ",\"window_mean_ns\":";
  AppendDouble(&out, r.window_mean_ns);
  out += ",\"mean_growth_ns\":";
  AppendDouble(&out, r.mean_growth_ns);
  out += ",\"have_growth\":";
  out += r.have_growth ? "true" : "false";
  out += ",\"growth_share\":{";
  for (int c = 0; c < kCategoryCount; ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += CategoryName(static_cast<Category>(c));
    out += "\":";
    AppendDouble(&out, r.growth_share[static_cast<std::size_t>(c)]);
  }
  out += "},\"dominant\":\"";
  out += CategoryName(r.dominant);
  out += "\"}";
  return out;
}

bool Compare(const JsonValue& old_base, const JsonValue& new_base, double tol,
             CompareResult* out, std::string* error) {
  std::map<std::string, BaselineMetric> old_metrics, new_metrics;
  if (!LoadBaseline(old_base, &old_metrics, error)) {
    *error = "old baseline: " + *error;
    return false;
  }
  if (!LoadBaseline(new_base, &new_metrics, error)) {
    *error = "new baseline: " + *error;
    return false;
  }
  char buf[320];
  for (const auto& [key, old_m] : old_metrics) {
    const auto it = new_metrics.find(key);
    if (it == new_metrics.end()) {
      ++out->regressions;
      out->ok = false;
      std::snprintf(buf, sizeof(buf), "REGRESSION %-44s missing from new",
                    key.c_str());
      out->lines.push_back(buf);
      continue;
    }
    const BaselineMetric& new_m = it->second;
    const double delta_pct =
        old_m.value != 0.0
            ? 100.0 * (new_m.value - old_m.value) / std::fabs(old_m.value)
            : (new_m.value == 0.0 ? 0.0 : 100.0);
    const bool regressed =
        old_m.higher ? new_m.value < old_m.value * (1.0 - tol)
                     : new_m.value > old_m.value * (1.0 + tol);
    if (regressed) {
      ++out->regressions;
      out->ok = false;
    }
    std::snprintf(buf, sizeof(buf),
                  "%-10s %-44s %14.6g -> %14.6g  %+7.2f%% (%s better)",
                  regressed ? "REGRESSION" : "ok", key.c_str(), old_m.value,
                  new_m.value, delta_pct, old_m.higher ? "higher" : "lower");
    out->lines.push_back(buf);
  }
  for (const auto& [key, new_m] : new_metrics) {
    if (old_metrics.find(key) != old_metrics.end()) continue;
    std::snprintf(buf, sizeof(buf), "%-10s %-44s (new metric, %14.6g)", "new",
                  key.c_str(), new_m.value);
    out->lines.push_back(buf);
  }
  return true;
}

std::string CompareToText(const CompareResult& r, double tol) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Baseline comparison (tolerance %.1f%%): %s (%d regressions, "
                "%zu metrics)\n",
                100.0 * tol, r.ok ? "OK" : "FAILED", r.regressions,
                r.lines.size());
  out += buf;
  for (const std::string& line : r.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string CompareToMarkdown(const CompareResult& r, double tol) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "### perf-compare gate: %s (%d regressions, tolerance "
                "%.1f%%)\n\n",
                r.ok ? "PASS" : "FAIL", r.regressions, 100.0 * tol);
  out += buf;
  // The lines are pre-formatted fixed-width text; a fenced block keeps the
  // columns aligned in the rendered summary.
  out += "```text\n";
  for (const std::string& line : r.lines) {
    out += line;
    out += '\n';
  }
  out += "```\n";
  return out;
}

std::string CompareToJson(const CompareResult& r, double tol) {
  std::string out = "{\"ok\":";
  out += r.ok ? "true" : "false";
  out += ",\"regressions\":" + std::to_string(r.regressions);
  out += ",\"tolerance\":";
  AppendDouble(&out, tol);
  out += ",\"lines\":[";
  for (std::size_t i = 0; i < r.lines.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + EscapeJson(r.lines[i]) + '"';
  }
  out += "]}";
  return out;
}

}  // namespace dufs::tracestats
