#include "json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dufs::tracestats {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing data");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    *error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f': return ParseBool(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Our exporters only \u-escape control characters; encode the
          // BMP code point as UTF-8 and move on (no surrogate handling).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->raw = text_.substr(start, pos_ - start);
    out->number = std::strtod(out->raw.c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->str : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::int64_t JsonValue::GetInt(const std::string& key,
                               std::int64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return static_cast<std::int64_t>(v->number);
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

std::int64_t MicrosRawToNanos(const JsonValue& v) {
  // Fast path for the tracer's own "<int>.<3 digits>" shape.
  const std::string& raw = v.raw;
  const auto dot = raw.find('.');
  if (dot != std::string::npos && raw.size() - dot - 1 == 3 &&
      raw.find_first_of("eE") == std::string::npos) {
    bool digits = dot > 0;
    for (std::size_t i = (raw[0] == '-' ? 1 : 0); i < raw.size() && digits;
         ++i) {
      if (i == dot) continue;
      if (raw[i] < '0' || raw[i] > '9') digits = false;
    }
    if (digits) {
      const bool neg = raw[0] == '-';
      const std::int64_t whole =
          std::strtoll(raw.substr(0, dot).c_str(), nullptr, 10);
      const std::int64_t frac =
          std::strtoll(raw.substr(dot + 1).c_str(), nullptr, 10);
      const std::int64_t mag = std::llabs(whole) * 1000 + frac;
      return neg ? -mag : mag;
    }
  }
  return static_cast<std::int64_t>(std::llround(v.number * 1000.0));
}

}  // namespace dufs::tracestats
