// Trace analytics over the repo's own exports: latency decomposition and
// critical-path extraction from the Chrome trace_event JSON (obs::Tracer),
// cross-checked against the metrics registry JSON, plus the BENCH_*.json
// baseline comparison used by the perf-regression gate.
//
// Everything here is deterministic: integer nanoseconds throughout, sorted
// aggregation maps, fixed output ordering — identical inputs produce
// byte-identical reports.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "json.h"

namespace dufs::tracestats {

// Where a nanosecond of an op's latency is attributed. Declaration order is
// attribution priority: when spans overlap, the highest-priority covering
// span wins the segment (an op nanosecond inside both a zk-rpc and a
// quorum-round belongs to the quorum round).
enum class Category : int {
  kClient = 0,  // root op span with nothing deeper covering it
  kOther,       // unrecognized span
  kRpcWait,     // zk-rpc / backend round trip not explained deeper (mostly
                // network propagation + server dispatch)
  kBackend,     // pvfs-call / mds-call / oss-call service time
  kNicWait,     // NIC serialization queue wait (nic-tx/rx wait_ns prefix)
  kWire,        // NIC serialization (transfer active on the link)
  kZkQueue,     // zk-read / zk-write server-side queue + processing
  kQuorum,      // quorum-round (ZAB proposal to quorum ack)
  kFsync,       // journal fsync-batch
  kCount
};
inline constexpr int kCategoryCount = static_cast<int>(Category::kCount);
const char* CategoryName(Category c);

using CategoryNs = std::array<std::int64_t, kCategoryCount>;

// One analyzed op: the root span, its decomposition, and the merged
// time-ordered critical-path segments.
struct OpBreakdown {
  std::string op;  // root span name == op class ("create", "stat", ...)
  std::int64_t trace_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::string path;  // root span "path" arg, when recorded
  CategoryNs ns{};
  std::vector<std::pair<Category, std::int64_t>> segments;
};

struct ClassStats {
  std::string op;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  CategoryNs ns{};
  // From the metrics registry's merged "op.<op>_ns" histogram; -1 when the
  // registry was not provided or has no such histogram.
  std::int64_t hist_sum_ns = -1;
  std::uint64_t hist_count = 0;
};

struct AnalyzeResult {
  std::vector<ClassStats> classes;   // sorted by op name
  std::vector<OpBreakdown> slowest;  // top-K by duration, descending
  std::uint64_t total_ops = 0;
  std::uint64_t orphan_events = 0;  // "X" events with no/unknown trace id
  // Decomposition-vs-histogram cross-check (runs when a registry histogram
  // exists for the class). A failure message per violated class.
  bool check_ok = true;
  std::vector<std::string> check_messages;
};

// `metrics` may be null (no cross-check). `check_tol` is the allowed
// relative difference between the per-class trace total and the histogram
// sum (acceptance criterion: 0.01).
bool Analyze(const JsonValue& trace, const JsonValue* metrics, int top_k,
             double check_tol, AnalyzeResult* out, std::string* error);

std::string ResultToJson(const AnalyzeResult& r);
std::string ResultToText(const AnalyzeResult& r);

// --explain-dump: root-cause an anomaly dump written by the flight recorder
// (obs::FlightRecorder::DumpJson via the incident engine). The dump's rings
// hold spans both before and during the incident; ops whose root starts in
// the anomaly window [t_anomaly - window, t_anomaly] are compared against
// the older "healthy baseline" ops in the same dump, and the growth in mean
// latency is attributed per category ("the spike is 86% fsync").
struct ExplainResult {
  // From the dump's "anomaly" object.
  std::string type;
  std::string node;
  std::string detail;
  std::int64_t anomaly_t_ns = 0;
  std::int64_t window_ns = 0;  // effective (override or dump value)
  std::int64_t split_ns = 0;   // roots at/after this are anomaly-window ops

  std::uint64_t baseline_ops = 0;
  std::uint64_t window_ops = 0;
  std::int64_t baseline_total_ns = 0;
  std::int64_t window_total_ns = 0;
  CategoryNs baseline_ns{};
  CategoryNs window_cat_ns{};

  // Mean-latency growth (window mean − baseline mean) and its attribution.
  // growth_share[c] = per-category mean growth / total mean growth; shares
  // sum to 1 but an individual share may exceed 1 when another category
  // shrank. Only meaningful when have_growth.
  double baseline_mean_ns = 0.0;
  double window_mean_ns = 0.0;
  double mean_growth_ns = 0.0;
  bool have_growth = false;
  std::array<double, kCategoryCount> growth_share{};
  Category dominant = Category::kClient;
};

// `window_override_ns` > 0 replaces the dump's recorded window size.
bool ExplainDump(const JsonValue& dump, std::int64_t window_override_ns,
                 ExplainResult* out, std::string* error);

std::string ExplainToText(const ExplainResult& r);
std::string ExplainToJson(const ExplainResult& r);

// Category lookup by report name ("fsync"); false when unknown.
bool CategoryFromName(const std::string& name, Category* out);

// --compare: diff two BENCH_*.json baselines.
struct CompareResult {
  bool ok = true;  // no regressions
  int regressions = 0;
  std::vector<std::string> lines;  // one per metric, sorted by key
};

bool Compare(const JsonValue& old_base, const JsonValue& new_base, double tol,
             CompareResult* out, std::string* error);

std::string CompareToText(const CompareResult& r, double tol);
std::string CompareToJson(const CompareResult& r, double tol);
// GitHub-flavored markdown (PASS/FAIL header + the per-metric lines in a
// fenced block); tracestats appends it to $GITHUB_STEP_SUMMARY in compare
// mode so the perf gate's verdict shows on the workflow run page.
std::string CompareToMarkdown(const CompareResult& r, double tol);

}  // namespace dufs::tracestats
