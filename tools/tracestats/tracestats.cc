// tracestats — offline analyzer for the repo's observability exports.
//
// Analyze mode (default):
//   tracestats --trace=trace.json [--metrics=metrics.json] [--top=10]
//              [--check] [--json] [--out=PATH]
// reads the Chrome trace_event JSON written by --trace and (optionally) the
// metrics JSON written by --metrics-json, prints the per-op-class latency
// decomposition, the histogram cross-check, and the slowest-ops critical
// paths. --check exits 1 when a class's decomposition total drifts more
// than 1% from its op.<class>_ns histogram sum.
//
// Compare mode (the perf-regression gate):
//   tracestats --compare BENCH_old.json BENCH_new.json [--tolerance=0.05]
//              [--json]
// diffs two bench baselines; exits 1 when any metric regressed beyond the
// tolerance in its "better" direction (or disappeared), 0 when clean.
//
// Explain-dump mode (anomaly root-causing):
//   tracestats --explain-dump=dump.json [--window=NS] [--expect=CAT:SHARE]
//              [--json] [--out=PATH]
// reads a flight-recorder anomaly dump, splits its ops into the anomaly
// window vs the healthy baseline before it, and attributes the mean-latency
// growth per category. --window overrides the dump's recorded window size
// (ns). --expect=fsync:0.5 exits 1 unless that category explains at least
// that share of the growth (the slow-fsync injection gate uses this).
//
// Exit codes: 0 ok, 1 check/regression/expectation failure, 2 usage or
// input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyze.h"
#include "json.h"

namespace {

constexpr char kUsage[] =
    "usage: tracestats --trace=PATH [--metrics=PATH] [--top=N] [--check]\n"
    "                  [--json] [--out=PATH]\n"
    "       tracestats --compare OLD.json NEW.json [--tolerance=0.05]\n"
    "                  [--json]\n"
    "       tracestats --explain-dump=DUMP.json [--window=NS]\n"
    "                  [--expect=CATEGORY:SHARE] [--json] [--out=PATH]\n";

[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "tracestats: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

bool LoadJson(const std::string& path, dufs::tracestats::JsonValue* out) {
  std::string text, error;
  if (!dufs::tracestats::ReadFile(path, &text, &error)) {
    std::fprintf(stderr, "tracestats: %s\n", error.c_str());
    return false;
  }
  if (!dufs::tracestats::ParseJson(text, out, &error)) {
    std::fprintf(stderr, "tracestats: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

bool WriteOutput(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tracestats: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

// CI visibility: surface the gate verdict on the workflow run page.
void AppendStepSummary(const std::string& markdown) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fwrite(markdown.data(), 1, markdown.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, out_path, dump_path, expect;
  std::vector<std::string> compare_paths;
  bool compare_mode = false;
  bool json_out = false;
  bool check = false;
  int top_k = 10;
  double tolerance = 0.05;
  long long window_ns = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--trace=")) {
      trace_path = v;
    } else if (const char* v2 = value("--metrics=")) {
      metrics_path = v2;
    } else if (const char* v3 = value("--out=")) {
      out_path = v3;
    } else if (const char* v4 = value("--top=")) {
      top_k = std::atoi(v4);
    } else if (const char* v5 = value("--tolerance=")) {
      tolerance = std::atof(v5);
    } else if (const char* v6 = value("--explain-dump=")) {
      dump_path = v6;
    } else if (const char* v7 = value("--window=")) {
      window_ns = std::atoll(v7);
    } else if (const char* v8 = value("--expect=")) {
      expect = v8;
    } else if (arg == "--compare") {
      compare_mode = true;
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--", 0) == 0) {
      UsageError("unknown flag: " + arg);
    } else if (compare_mode && compare_paths.size() < 2) {
      compare_paths.push_back(arg);
    } else {
      UsageError("unexpected argument: " + arg);
    }
  }

  if (compare_mode) {
    if (compare_paths.size() != 2) {
      UsageError("--compare needs exactly two baseline paths");
    }
    dufs::tracestats::JsonValue old_base, new_base;
    if (!LoadJson(compare_paths[0], &old_base) ||
        !LoadJson(compare_paths[1], &new_base)) {
      return 2;
    }
    dufs::tracestats::CompareResult result;
    std::string error;
    if (!dufs::tracestats::Compare(old_base, new_base, tolerance, &result,
                                   &error)) {
      std::fprintf(stderr, "tracestats: %s\n", error.c_str());
      return 2;
    }
    const std::string report =
        json_out ? dufs::tracestats::CompareToJson(result, tolerance)
                 : dufs::tracestats::CompareToText(result, tolerance);
    if (!WriteOutput(out_path, report)) return 2;
    AppendStepSummary(dufs::tracestats::CompareToMarkdown(result, tolerance));
    return result.ok ? 0 : 1;
  }

  if (!dump_path.empty()) {
    dufs::tracestats::JsonValue dump;
    if (!LoadJson(dump_path, &dump)) return 2;
    dufs::tracestats::ExplainResult result;
    std::string error;
    if (!dufs::tracestats::ExplainDump(dump, window_ns, &result, &error)) {
      std::fprintf(stderr, "tracestats: %s\n", error.c_str());
      return 2;
    }
    const std::string report =
        json_out ? dufs::tracestats::ExplainToJson(result)
                 : dufs::tracestats::ExplainToText(result);
    if (!WriteOutput(out_path, report)) return 2;
    if (!expect.empty()) {
      const std::size_t colon = expect.find(':');
      if (colon == std::string::npos) {
        UsageError("--expect wants CATEGORY:SHARE, e.g. fsync:0.5");
      }
      dufs::tracestats::Category cat;
      if (!dufs::tracestats::CategoryFromName(expect.substr(0, colon),
                                              &cat)) {
        UsageError("--expect: unknown category " + expect.substr(0, colon));
      }
      const double want = std::atof(expect.c_str() + colon + 1);
      const double got =
          result.growth_share[static_cast<std::size_t>(cat)];
      if (!result.have_growth || got < want) {
        std::fprintf(stderr,
                     "tracestats: --expect failed: %s explains %.1f%% of "
                     "the growth, wanted >= %.1f%%\n",
                     expect.substr(0, colon).c_str(), 100.0 * got,
                     100.0 * want);
        return 1;
      }
    }
    return 0;
  }

  if (trace_path.empty()) UsageError("--trace is required (or --compare)");
  dufs::tracestats::JsonValue trace;
  if (!LoadJson(trace_path, &trace)) return 2;
  dufs::tracestats::JsonValue metrics;
  bool have_metrics = false;
  if (!metrics_path.empty()) {
    if (!LoadJson(metrics_path, &metrics)) return 2;
    have_metrics = true;
  }

  dufs::tracestats::AnalyzeResult result;
  std::string error;
  if (!dufs::tracestats::Analyze(trace, have_metrics ? &metrics : nullptr,
                                 top_k, 0.01, &result, &error)) {
    std::fprintf(stderr, "tracestats: %s\n", error.c_str());
    return 2;
  }
  const std::string report = json_out
                                 ? dufs::tracestats::ResultToJson(result)
                                 : dufs::tracestats::ResultToText(result);
  if (!WriteOutput(out_path, report)) return 2;
  if (check && !result.check_ok) {
    std::fprintf(stderr, "tracestats: --check failed (%zu classes out of "
                         "tolerance)\n",
                 result.check_messages.size());
    return 1;
  }
  return 0;
}
