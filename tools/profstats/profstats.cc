#include "profstats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace dufs::profstats {

namespace {

// Stable double formatting for the JSON outputs (same idiom as tracestats:
// %.17g round-trips and prints integers without an exponent).
void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

double Share(std::uint64_t self, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(self) /
                                static_cast<double>(total);
}

// Sort key shared by Diff and CompareProfiles: biggest movement first, name
// as the deterministic tiebreak.
template <typename Row>
void SortByDelta(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    const double da = std::fabs(a.delta), db = std::fabs(b.delta);
    if (da != db) return da > db;
    return a.name < b.name;
  });
}

}  // namespace

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = "read error on " + path;
  return ok;
}

bool ParseFolded(const std::string& text, Profile* out, std::string* error) {
  out->stacks.clear();
  out->total = 0;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++lineno;
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    // Last space splits the path from the count.
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      *error = "line " + std::to_string(lineno) + ": want \"a;b;c N\"";
      return false;
    }
    Stack s;
    char* end = nullptr;
    s.count = std::strtoull(line.c_str() + sp + 1, &end, 10);
    if (end == nullptr || *end != '\0') {
      *error = "line " + std::to_string(lineno) + ": bad sample count";
      return false;
    }
    std::size_t start = 0;
    while (start <= sp) {
      std::size_t semi = line.find(';', start);
      if (semi == std::string::npos || semi > sp) semi = sp;
      if (semi == start) {
        *error = "line " + std::to_string(lineno) + ": empty frame name";
        return false;
      }
      s.frames.push_back(line.substr(start, semi - start));
      start = semi + 1;
    }
    out->total += s.count;
    out->stacks.push_back(std::move(s));
  }
  return true;
}

void AggregateProfile(const Profile& p, Aggregate* out) {
  out->total_samples = p.total;
  out->frames.clear();
  std::map<std::string, FrameStats> by_name;
  for (const Stack& s : p.stacks) {
    if (s.frames.empty()) continue;
    FrameStats& leaf = by_name[s.frames.back()];
    leaf.self += s.count;
    // `total` counts each frame once per stack — a recursive name must not
    // double-count the stack it repeats on.
    std::set<std::string> seen;
    for (const std::string& f : s.frames) {
      if (!seen.insert(f).second) continue;
      by_name[f].total += s.count;
    }
  }
  out->frames.reserve(by_name.size());
  for (auto& [name, fs] : by_name) {
    fs.name = name;
    out->frames.push_back(std::move(fs));
  }
}

namespace {

// Top-K rows of `a.frames` by the chosen field (self or total), sample
// count descending then name. K <= 0 keeps everything.
std::vector<const FrameStats*> TopBy(const Aggregate& a, bool by_self,
                                     int top_k) {
  std::vector<const FrameStats*> rows;
  rows.reserve(a.frames.size());
  for (const FrameStats& f : a.frames) rows.push_back(&f);
  std::sort(rows.begin(), rows.end(),
            [by_self](const FrameStats* x, const FrameStats* y) {
              const std::uint64_t xv = by_self ? x->self : x->total;
              const std::uint64_t yv = by_self ? y->self : y->total;
              if (xv != yv) return xv > yv;
              return x->name < y->name;
            });
  if (top_k > 0 && rows.size() > static_cast<std::size_t>(top_k)) {
    rows.resize(static_cast<std::size_t>(top_k));
  }
  return rows;
}

}  // namespace

std::string ReportText(const Aggregate& a, int top_k) {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "profile: %llu samples, %zu frames\n",
                static_cast<unsigned long long>(a.total_samples),
                a.frames.size());
  out += buf;
  for (const bool by_self : {true, false}) {
    std::snprintf(buf, sizeof(buf), "\ntop frames by %s:\n",
                  by_self ? "self" : "total");
    out += buf;
    for (const FrameStats* f : TopBy(a, by_self, top_k)) {
      const std::uint64_t v = by_self ? f->self : f->total;
      std::snprintf(buf, sizeof(buf), "  %-40s %12llu  %6.2f%%\n",
                    f->name.c_str(), static_cast<unsigned long long>(v),
                    100.0 * Share(v, a.total_samples));
      out += buf;
    }
  }
  return out;
}

std::string ReportJson(const Aggregate& a, int top_k) {
  std::string out = "{\"samples\":" + std::to_string(a.total_samples) +
                    ",\"frames\":[";
  bool first = true;
  for (const FrameStats* f : TopBy(a, /*by_self=*/true, top_k)) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, f->name);
    out += "\",\"self\":" + std::to_string(f->self) +
           ",\"total\":" + std::to_string(f->total) + "}";
  }
  out += "]}";
  return out;
}

void Diff(const Aggregate& old_a, const Aggregate& new_a, DiffResult* out) {
  out->old_total = old_a.total_samples;
  out->new_total = new_a.total_samples;
  out->rows.clear();
  std::map<std::string, DiffRow> rows;
  for (const FrameStats& f : old_a.frames) {
    rows[f.name].old_share = Share(f.self, old_a.total_samples);
  }
  for (const FrameStats& f : new_a.frames) {
    rows[f.name].new_share = Share(f.self, new_a.total_samples);
  }
  for (auto& [name, row] : rows) {
    row.name = name;
    row.delta = row.new_share - row.old_share;
    out->rows.push_back(std::move(row));
  }
  SortByDelta(&out->rows);
}

std::string DiffToText(const DiffResult& d, int top_k) {
  std::string out;
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "profile diff: %llu -> %llu samples (self-share, pts)\n",
                static_cast<unsigned long long>(d.old_total),
                static_cast<unsigned long long>(d.new_total));
  out += buf;
  int shown = 0;
  for (const DiffRow& r : d.rows) {
    if (top_k > 0 && shown >= top_k) break;
    ++shown;
    std::snprintf(buf, sizeof(buf), "  %-40s %6.2f%% -> %6.2f%%  %+6.2f\n",
                  r.name.c_str(), 100.0 * r.old_share, 100.0 * r.new_share,
                  100.0 * r.delta);
    out += buf;
  }
  return out;
}

const char* FrameDirection(const std::string& name) {
  // Scheduler/profiler overhead must not creep up; everything else is
  // workload attribution where any drift signals a distribution change.
  if (name.rfind("engine.", 0) == 0 || name == "unattributed") {
    return "lower";
  }
  return "stable";
}

void CompareProfiles(const Aggregate& old_a, const Aggregate& new_a,
                     const CompareOptions& opts, CompareResult* out) {
  out->ok = true;
  out->regressions = 0;
  out->rows.clear();
  DiffResult d;
  Diff(old_a, new_a, &d);
  for (DiffRow& r : d.rows) {
    CompareRow row;
    row.name = std::move(r.name);
    row.direction = FrameDirection(row.name);
    row.old_share = r.old_share;
    row.new_share = r.new_share;
    row.delta = r.delta;
    const bool noise =
        row.old_share < opts.min_share && row.new_share < opts.min_share;
    if (!noise) {
      if (row.direction[0] == 'l') {  // "lower": only growth regresses
        row.regressed = row.delta > opts.tolerance;
      } else {  // "stable": drift either way regresses
        row.regressed = std::fabs(row.delta) > opts.tolerance;
      }
    }
    if (row.regressed) {
      ++out->regressions;
      out->ok = false;
    }
    out->rows.push_back(std::move(row));
  }
}

std::string CompareToText(const CompareResult& r,
                          const CompareOptions& opts) {
  std::string out;
  char buf[280];
  std::snprintf(buf, sizeof(buf),
                "Profile comparison (tolerance %.1f pts, min share %.1f%%): "
                "%s (%d regressions, %zu frames)\n",
                100.0 * opts.tolerance, 100.0 * opts.min_share,
                r.ok ? "OK" : "FAILED", r.regressions, r.rows.size());
  out += buf;
  for (const CompareRow& row : r.rows) {
    std::snprintf(buf, sizeof(buf),
                  "%-10s %-40s %6.2f%% -> %6.2f%%  %+6.2f (%s)\n",
                  row.regressed ? "REGRESSION" : "ok", row.name.c_str(),
                  100.0 * row.old_share, 100.0 * row.new_share,
                  100.0 * row.delta, row.direction.c_str());
    out += buf;
  }
  return out;
}

std::string CompareToJson(const CompareResult& r,
                          const CompareOptions& opts) {
  std::string out = "{\"ok\":";
  out += r.ok ? "true" : "false";
  out += ",\"regressions\":" + std::to_string(r.regressions);
  out += ",\"tolerance\":";
  AppendDouble(&out, opts.tolerance);
  out += ",\"min_share\":";
  AppendDouble(&out, opts.min_share);
  out += ",\"rows\":[";
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const CompareRow& row = r.rows[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    AppendEscaped(&out, row.name);
    out += "\",\"direction\":\"" + row.direction + "\",\"old_share\":";
    AppendDouble(&out, row.old_share);
    out += ",\"new_share\":";
    AppendDouble(&out, row.new_share);
    out += ",\"delta\":";
    AppendDouble(&out, row.delta);
    out += ",\"regressed\":";
    out += row.regressed ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

std::string CompareToMarkdown(const CompareResult& r,
                              const CompareOptions& opts, int top_k) {
  std::string out;
  char buf[280];
  std::snprintf(buf, sizeof(buf),
                "### cpu-profile gate: %s (%d regressions, tolerance %.1f "
                "pts)\n\n",
                r.ok ? "PASS" : "FAIL", r.regressions,
                100.0 * opts.tolerance);
  out += buf;
  out += "| status | frame | old self | new self | drift (pts) | "
         "direction |\n";
  out += "|---|---|---:|---:|---:|---|\n";
  // Regressions always make the table; the rest fills up to top_k rows.
  int shown = 0;
  for (const CompareRow& row : r.rows) {
    if (!row.regressed && top_k > 0 && shown >= top_k) continue;
    ++shown;
    std::snprintf(buf, sizeof(buf),
                  "| %s | `%s` | %.2f%% | %.2f%% | %+.2f | %s |\n",
                  row.regressed ? "REGRESSION" : "ok", row.name.c_str(),
                  100.0 * row.old_share, 100.0 * row.new_share,
                  100.0 * row.delta, row.direction.c_str());
    out += buf;
  }
  return out;
}

}  // namespace dufs::profstats
