// profstats — offline analyzer for folded-stack CPU profiles (the
// --profile exports from the bench harness; see DESIGN.md §14).
//
// Aggregate mode (default):
//   profstats PROF.folded [--top=N] [--json] [--out=PATH]
// prints the top-N frames by self and by total samples.
//
// Diff mode (where did the CPU move?):
//   profstats --diff OLD.folded NEW.folded [--top=N] [--out=PATH]
// per-frame self-share deltas, biggest movement first.
//
// Compare mode (the CI cpu-profile gate):
//   profstats --compare OLD.folded NEW.folded [--tolerance=0.02]
//             [--min-share=0.005] [--top=N] [--json] [--out=PATH]
// exits 1 when any frame's self-share drifted beyond the tolerance in its
// "worse" direction (overhead frames only regress by growing; workload
// frames regress on drift either way). When $GITHUB_STEP_SUMMARY is set, a
// markdown summary table is appended to it.
//
// Exit codes: 0 ok, 1 regression, 2 usage or input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "profstats.h"

namespace {

constexpr char kUsage[] =
    "usage: profstats PROF.folded [--top=N] [--json] [--out=PATH]\n"
    "       profstats --diff OLD.folded NEW.folded [--top=N] [--out=PATH]\n"
    "       profstats --compare OLD.folded NEW.folded [--tolerance=0.02]\n"
    "                 [--min-share=0.005] [--top=N] [--json] [--out=PATH]\n";

[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "profstats: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

bool LoadProfile(const std::string& path, dufs::profstats::Profile* out) {
  std::string text, error;
  if (!dufs::profstats::ReadFile(path, &text, &error) ||
      !dufs::profstats::ParseFolded(text, out, &error)) {
    std::fprintf(stderr, "profstats: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

bool WriteOutput(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "profstats: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

// CI visibility: surface the gate verdict on the workflow run page.
void AppendStepSummary(const std::string& markdown) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fwrite(markdown.data(), 1, markdown.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> paths;
  bool diff_mode = false;
  bool compare_mode = false;
  bool json_out = false;
  int top_k = 20;
  dufs::profstats::CompareOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--top=")) {
      top_k = std::atoi(v);
    } else if (const char* v2 = value("--tolerance=")) {
      opts.tolerance = std::atof(v2);
    } else if (const char* v3 = value("--min-share=")) {
      opts.min_share = std::atof(v3);
    } else if (const char* v4 = value("--out=")) {
      out_path = v4;
    } else if (arg == "--diff") {
      diff_mode = true;
    } else if (arg == "--compare") {
      compare_mode = true;
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg.rfind("--", 0) == 0) {
      UsageError("unknown flag: " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (diff_mode && compare_mode) UsageError("--diff and --compare conflict");

  if (diff_mode || compare_mode) {
    if (paths.size() != 2) {
      UsageError("two folded profiles required (old, new)");
    }
    dufs::profstats::Profile old_p, new_p;
    if (!LoadProfile(paths[0], &old_p) || !LoadProfile(paths[1], &new_p)) {
      return 2;
    }
    dufs::profstats::Aggregate old_a, new_a;
    dufs::profstats::AggregateProfile(old_p, &old_a);
    dufs::profstats::AggregateProfile(new_p, &new_a);
    if (diff_mode) {
      dufs::profstats::DiffResult d;
      dufs::profstats::Diff(old_a, new_a, &d);
      return WriteOutput(out_path, dufs::profstats::DiffToText(d, top_k))
                 ? 0
                 : 2;
    }
    dufs::profstats::CompareResult result;
    dufs::profstats::CompareProfiles(old_a, new_a, opts, &result);
    const std::string report =
        json_out ? dufs::profstats::CompareToJson(result, opts)
                 : dufs::profstats::CompareToText(result, opts);
    if (!WriteOutput(out_path, report)) return 2;
    AppendStepSummary(
        dufs::profstats::CompareToMarkdown(result, opts, top_k));
    return result.ok ? 0 : 1;
  }

  if (paths.size() != 1) UsageError("one folded profile required");
  dufs::profstats::Profile p;
  if (!LoadProfile(paths[0], &p)) return 2;
  dufs::profstats::Aggregate a;
  dufs::profstats::AggregateProfile(p, &a);
  const std::string report = json_out ? dufs::profstats::ReportJson(a, top_k)
                                      : dufs::profstats::ReportText(a, top_k);
  return WriteOutput(out_path, report) ? 0 : 2;
}
