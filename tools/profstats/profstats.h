// Folded-stack profile analytics for the prof layer's exports (DESIGN.md
// §14): aggregation (top-N self/total), profile-to-profile diffs, and the
// share-drift comparison used by the CI cpu-profile gate.
//
// Input format is flamegraph.pl's folded text — one `a;b;c N` line per
// distinct stack, frames joined by ';', sample count last. Everything here
// is deterministic: sorted maps, integer sample counts, fixed output
// ordering — identical inputs produce byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dufs::profstats {

// One distinct stack (root first) and its sample count.
struct Stack {
  std::vector<std::string> frames;
  std::uint64_t count = 0;
};

struct Profile {
  std::vector<Stack> stacks;  // file order
  std::uint64_t total = 0;    // sum of counts
};

bool ReadFile(const std::string& path, std::string* out, std::string* error);
bool ParseFolded(const std::string& text, Profile* out, std::string* error);

// Per-frame rollup. `self` counts stacks where the frame is the leaf;
// `total` counts every stack the frame appears on (once per stack, even if
// the name repeats along the path).
struct FrameStats {
  std::string name;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

struct Aggregate {
  std::uint64_t total_samples = 0;
  std::vector<FrameStats> frames;  // sorted by name
};

void AggregateProfile(const Profile& p, Aggregate* out);

// Top-K tables by self and by total (K <= 0 means all frames).
std::string ReportText(const Aggregate& a, int top_k);
std::string ReportJson(const Aggregate& a, int top_k);

// --diff: where did the CPU move? Shares are self-samples / total-samples,
// so two profiles of different lengths compare cleanly.
struct DiffRow {
  std::string name;
  double old_share = 0.0;  // 0..1; 0 when the frame is absent on that side
  double new_share = 0.0;
  double delta = 0.0;  // new_share - old_share
};

struct DiffResult {
  std::uint64_t old_total = 0;
  std::uint64_t new_total = 0;
  std::vector<DiffRow> rows;  // by |delta| descending, then name
};

void Diff(const Aggregate& old_a, const Aggregate& new_a, DiffResult* out);
std::string DiffToText(const DiffResult& d, int top_k);

// --compare: the regression gate. Per-frame better-direction, like the
// tracestats baseline gate: frames that are pure overhead (engine.*,
// unattributed) only regress when their self-share *grows* past the
// tolerance; workload frames regress on drift in either direction (the
// count-mode profile is deterministic, so drift means the CPU distribution
// actually changed). Frames under `min_share` on both sides are noise and
// reported as "ok" regardless.
struct CompareOptions {
  double tolerance = 0.02;   // allowed |share drift|, absolute (0.02 = 2pts)
  double min_share = 0.005;  // ignore frames below this share on both sides
};

// "lower" for overhead frames (growth is a regression), "stable" otherwise
// (any drift past tolerance is one).
const char* FrameDirection(const std::string& name);

struct CompareRow {
  std::string name;
  std::string direction;  // FrameDirection(name)
  double old_share = 0.0;
  double new_share = 0.0;
  double delta = 0.0;
  bool regressed = false;
};

struct CompareResult {
  bool ok = true;
  int regressions = 0;
  std::vector<CompareRow> rows;  // by |delta| descending, then name
};

void CompareProfiles(const Aggregate& old_a, const Aggregate& new_a,
                     const CompareOptions& opts, CompareResult* out);

std::string CompareToText(const CompareResult& r, const CompareOptions& opts);
std::string CompareToJson(const CompareResult& r, const CompareOptions& opts);
// GitHub-flavored markdown table, appended to $GITHUB_STEP_SUMMARY by main.
std::string CompareToMarkdown(const CompareResult& r,
                              const CompareOptions& opts, int top_k);

}  // namespace dufs::profstats
