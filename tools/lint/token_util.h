// Token-stream helpers shared by the per-file rules (rules.cc) and the
// declaration parser (symtab.cc). Header-only; everything is cheap inline
// scanning over the lexer's token vector.
#pragma once

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace dufs::lint {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

inline bool IsId(const Token& t, const char* s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}
inline bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

inline bool IsCoroKeyword(const Token& t) {
  return t.kind == TokKind::kIdentifier &&
         (t.text == "co_await" || t.text == "co_return" ||
          t.text == "co_yield");
}

// Keywords that can directly precede a call expression; an identifier from
// this set before `Name(` does not make `Name` a declaration.
inline bool IsExprKeyword(const std::string& s) {
  static const std::set<std::string> kSet = {
      "return", "co_return", "co_await", "co_yield", "throw", "new",
      "delete", "else",      "case",     "do",       "sizeof", "typedef",
      "using",  "if",        "while",    "for",      "switch", "operator",
      "goto",   "not",       "and",      "or"};
  return kSet.count(s) > 0;
}

// Control/declaration keywords that look like `kw (...)` but are never
// function names or call sites.
inline bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kSet = {
      "if",     "while",    "for",          "switch", "catch",
      "sizeof", "alignof",  "decltype",     "static_assert",
      "return", "co_await", "co_return",    "co_yield",
      "throw",  "new",      "delete",       "static_cast",
      "const_cast",         "dynamic_cast", "reinterpret_cast"};
  return kSet.count(s) > 0;
}

// Index just past the `>` matching tokens[open] == `<`, or kNpos when the
// angles do not close within the statement (then `<` was a comparison).
// `>>` closes two levels.
inline std::size_t MatchAngle(const std::vector<Token>& toks,
                              std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), open + 400);
  for (std::size_t i = open; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

// Index just past the `)` matching tokens[open] == `(`, or kNpos.
inline std::size_t MatchParen(const std::vector<Token>& toks,
                              std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++depth;
    if (t.text == ")" && --depth == 0) return i + 1;
  }
  return kNpos;
}

// Index just past the `}` matching tokens[open] == `{`, or kNpos.
inline std::size_t MatchBrace(const std::vector<Token>& toks,
                              std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "{") ++depth;
    if (t.text == "}" && --depth == 0) return i + 1;
  }
  return kNpos;
}

}  // namespace dufs::lint
