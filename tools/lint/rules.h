// Repo-specific static-analysis rules for the DUFS tree.
//
// The rules encode the two invariants the simulator's credibility rests on:
// coroutine lifetime safety (nothing captured or referenced across a
// co_await may die before the frame does) and determinism (no wall-clock or
// process-global entropy in sim code). See `dufs_lint --explain` or
// DESIGN.md §8 for the rule-by-rule rationale.
//
// Suppression: append `// dufs-lint: allow(<rule>[, <rule>...])` to the
// offending line, or place it alone on the line directly above. The rule
// name `all` suppresses every rule.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace dufs::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
};

struct RuleDoc {
  const char* id;
  const char* summary;
  const char* rationale;
  const char* bad;   // minimal example that fires
  const char* good;  // the conforming rewrite
};

// Every rule the linter knows, in stable order (the --explain output).
const std::vector<RuleDoc>& RuleDocs();

// Two-pass linter: AddFile() lexes and collects cross-file facts (the set of
// Task-returning function names for task-discard); Run() applies every rule
// to every added file and returns suppression-filtered findings sorted by
// (file, line, rule). Paths should be repo-relative ("src/zk/server.cc") so
// path-scoped rules (sim-time-source's rng exemption, header rules) work.
class Linter {
 public:
  void AddFile(std::string path, const std::string& content);
  std::vector<Finding> Run();

  // Names that pass 1 decided are Task/Future-returning functions (minus
  // names that also appear with non-coroutine-looking declarations).
  // Exposed for tests.
  std::vector<std::string> TaskFunctionNames() const;

 private:
  struct FileFacts {
    LexedFile lexed;
    // Token indices pass 1 identified as Task-fn declaration names; the
    // ambiguity scan must not re-classify them.
    std::vector<std::size_t> task_decl_name_tokens;
  };

  void CollectDeclarations(FileFacts& facts);

  std::vector<FileFacts> files_;
  std::vector<std::string> task_fn_names_;       // sorted unique
  std::vector<std::string> non_task_fn_names_;   // sorted unique
};

}  // namespace dufs::lint
