// Repo-specific static-analysis rules for the DUFS tree.
//
// The rules encode the two invariants the simulator's credibility rests on:
// coroutine lifetime safety (nothing captured or referenced across a
// co_await may die before the frame does) and determinism (no wall-clock or
// process-global entropy in sim code; no hash-order-dependent bytes in the
// compared exports). See `dufs_lint --explain` or DESIGN.md §8/§12 for the
// rule-by-rule rationale.
//
// The analyzer is two-stage. Stage A (AnalyzeFile) is strictly per-file:
// lexing, the local token rules, and FileSummary extraction for the
// cross-TU passes — its output (FileArtifacts) depends only on the file's
// own bytes, which is what makes the on-disk parse cache (cache.h) sound.
// Stage B (Linter::Run) builds the symbol table and call graph over every
// added file's summary and runs the interprocedural dataflow rules
// (dataflow.h), then merges, suppression-filters, and sorts.
//
// Suppression: append `// dufs-lint: allow(<rule>[, <rule>...])` to the
// offending line, or place it alone on the line directly above. The rule
// name `all` suppresses every rule.
#pragma once

#include <string>
#include <vector>

#include "finding.h"
#include "lexer.h"
#include "symtab.h"

namespace dufs::lint {

// Everything stage A produces for one file.
struct FileArtifacts {
  std::string path;
  // Per-file rule findings, already suppression-filtered.
  std::vector<Finding> local;
  // Declaration/body facts for the cross-TU passes.
  FileSummary summary;
  // Kept so stage B can suppression-filter the dataflow findings it
  // attributes to this file.
  std::vector<Suppression> suppressions;
  // Historical task-discard declaration scan (`Task<...> Name(` and the
  // same-shape ambiguity set); drives Linter::TaskFunctionNames().
  std::vector<std::string> task_decl_names;
  std::vector<std::string> non_task_decl_names;
};

// Stage A: lex + local rules + summary extraction. Pure in (path, content).
// Paths should be repo-relative ("src/zk/server.cc") so path-scoped rules
// (sim-time-source's rng exemption, header rules) work.
FileArtifacts AnalyzeFile(std::string path, const std::string& content);

// Whole-tree linter: add every file (parsed fresh or from the cache), then
// Run() applies the per-file results plus the interprocedural rules and
// returns suppression-filtered findings sorted by (file, line, rule).
class Linter {
 public:
  void AddFile(std::string path, const std::string& content);
  void AddArtifacts(FileArtifacts artifacts);
  std::vector<Finding> Run();

  // Names the declaration scan decided are Task/Future-returning functions
  // (minus names that also appear with non-coroutine-looking declarations).
  // Exposed for tests.
  std::vector<std::string> TaskFunctionNames() const;

 private:
  std::vector<FileArtifacts> files_;
};

}  // namespace dufs::lint
