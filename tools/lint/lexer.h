// Lightweight C++ lexer for dufs_lint. Not a full front end — just enough
// token structure (identifiers, literals, multi-char punctuators, comment and
// preprocessor tracking) for the repo-specific rules in rules.h. No libclang
// dependency by design: the linter must build everywhere the tree builds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dufs::lint {

enum class TokKind {
  kIdentifier,  // foo, co_await, int (keywords are identifiers to the lexer)
  kNumber,      // 0x1f, 1.5e3, 42ull
  kString,      // "...", R"(...)", 'c' (char literals included)
  kPunct,       // ::, ->, &&, >>, single chars
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

// One `#include` directive, as written (quotes/brackets stripped).
struct Include {
  std::string path;
  bool angled = false;  // <...> vs "..."
  int line = 0;
};

// One `// dufs-lint: allow(rule-a, rule-b)` suppression comment.
struct Suppression {
  std::vector<std::string> rules;
  int line = 0;        // line the comment appears on
  bool alone = false;  // comment is the only thing on its line
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
  // First line carrying anything other than comments/whitespace; 0 if none.
  int first_code_line = 0;
  bool has_pragma_once = false;
  int pragma_once_line = 0;
};

// Tokenizes `content`. Preprocessor directives are consumed whole (with
// continuation-line handling) and surfaced only through `includes` /
// `has_pragma_once`; comments only through `suppressions`.
LexedFile Lex(std::string path, const std::string& content);

}  // namespace dufs::lint
