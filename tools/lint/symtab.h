// Per-file fact extraction for the cross-TU analysis passes.
//
// BuildFileSummary runs a lightweight declaration parser over a lexed file
// and produces a FileSummary: every function declaration/definition it can
// recognize (name, qualifier, return-type class, parameters, coroutine-ness)
// together with the body facts the dataflow rules consume (call sites with
// bare-identifier arguments, container iterations, references/iterators held
// across co_await, statement-level discard sites) and the file-level
// declaration sets (entities of unordered type, non-Task function names).
//
// The summary is deliberately token-derived and heuristic — no headers are
// expanded, no templates instantiated — but it is self-contained per file,
// which is what makes the on-disk parse cache (cache.h) sound: a file's
// summary depends only on its own bytes; every cross-file judgement happens
// later, in SymbolTable/CallGraph/dataflow over the collected summaries.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace dufs::lint {

struct Param {
  std::string name;
  bool is_ref = false;
  bool is_ptr = false;
  // `Simulation&` parameters are exempt from the coroutine-lifetime rules:
  // no frame outlives the Simulation that drives it (see rules.cc).
  bool is_simulation = false;
  int line = 0;
};

// One call expression inside a function body. `bare_args` holds, per
// depth-1 argument, the identifier name when the argument is a lone
// identifier (or "&name" for a lone address-of), else "".
struct CallSite {
  std::string callee;  // unqualified name immediately before the `(`
  int line = 0;
  bool awaited = false;   // `co_await [chain] callee(...)`
  bool returned = false;  // `return [chain] callee(...)`
  std::vector<std::string> bare_args;
};

// One loop that iterates a named container (`for (x : c)` or
// `for (auto it = c.begin(); ...)`). `body_calls` lists the callee names
// invoked inside the loop body, for sink-feeding detection.
struct Iteration {
  std::string container;  // last identifier of the iterated entity
  int line = 0;
  bool range_for = false;
  std::vector<std::string> body_calls;
};

// A reference or iterator into a container, declared in a coroutine body and
// used again after an intervening co_await. The extraction already resolves
// the temporal question (is there a use after a suspension point?); the
// dataflow pass only decides whether to report it.
struct HeldRef {
  std::string name;
  int line = 0;            // declaration line
  bool iterator = false;   // `auto it = c.find(...)` vs `auto& r = c[...]`
  std::string container;   // "" when not recognizable
  int await_line = 0;      // first co_await between the decl and a later use
  int use_line = 0;        // first use after that co_await
};

// A statement of the form `[chain.]Name(...);` whose result is discarded.
// Whether that is a Task discard is decided cross-TU.
struct DiscardSite {
  std::string callee;
  int line = 0;
};

struct FunctionSummary {
  std::string name;       // unqualified declarator name
  std::string qualifier;  // "C" when declared as C::name, else ""
  int line = 0;
  bool returns_task = false;  // sim::Task<...> / sim::Future<...>
  bool returns_auto = false;  // `auto` return type (wrapper candidates)
  bool is_coroutine = false;  // body contains co_await/co_return/co_yield
  bool has_body = false;
  std::vector<Param> params;
  std::vector<CallSite> calls;        // body only
  std::vector<Iteration> iterations;  // body only
  std::vector<HeldRef> held_refs;     // body only, coroutines only
};

struct FileSummary {
  std::string path;
  std::vector<FunctionSummary> functions;
  // Entities (members, locals, globals) declared with an unordered type
  // (std::unordered_map/set/multimap/multiset, directly or via a `using`
  // alias declared in the same file).
  std::vector<std::string> unordered_names;
  // Names declared as ordinary (non-Task) functions — the task-discard
  // ambiguity set.
  std::vector<std::string> non_task_decl_names;
  std::vector<DiscardSite> discard_sites;
};

FileSummary BuildFileSummary(const LexedFile& f);

// Cross-TU symbol table: every FileSummary in the tree, indexed by
// unqualified function name, plus the union of unordered-entity names and
// the Task-returning / ambiguous name sets.
class SymbolTable {
 public:
  void Add(const FileSummary* file);

  // Functions declared with this unqualified name, across all files.
  const std::vector<const FunctionSummary*>& Lookup(
      const std::string& name) const;

  bool IsUnorderedEntity(const std::string& name) const {
    return unordered_.count(name) > 0;
  }

  // Names declared (somewhere) with a Task/Future return type and never
  // with an ordinary one — the direct task-discard set.
  const std::set<std::string>& DirectTaskNames() const { return task_names_; }
  // Names that also appear as ordinary functions (ambiguous, never flagged).
  const std::set<std::string>& AmbiguousNames() const { return non_task_; }

  const std::vector<const FileSummary*>& files() const { return files_; }

 private:
  std::vector<const FileSummary*> files_;
  std::map<std::string, std::vector<const FunctionSummary*>> by_name_;
  std::set<std::string> unordered_;
  std::set<std::string> task_names_;
  std::set<std::string> non_task_;
};

}  // namespace dufs::lint
