#include "callgraph.h"

#include <deque>

namespace dufs::lint {

bool IsExportSinkName(const std::string& name) {
  if (name.find("Json") != std::string::npos) return true;
  if (name.find("Sarif") != std::string::npos) return true;
  if (name.find("Snapshot") != std::string::npos) return true;
  if (name.find("Serialize") != std::string::npos) return true;
  static const std::set<std::string> kWriters = {
      "WriteFile", "ExportTrace", "ExportMetrics", "WriteReport", "DumpState"};
  return kWriters.count(name) > 0;
}

CallGraph::CallGraph(const SymbolTable& sym) {
  for (const FileSummary* file : sym.files()) {
    for (const FunctionSummary& fn : file->functions) {
      if (!fn.has_body) continue;
      std::set<std::string>& out = callees_[fn.name];
      for (const CallSite& c : fn.calls) out.insert(c.callee);
      for (const Iteration& it : fn.iterations) {
        for (const std::string& c : it.body_calls) out.insert(c);
      }
    }
  }

  // reaches_sink_: fixpoint over f → callee edges. Seed with every function
  // that names a sink or directly calls a sink-named callee (the callee need
  // not have a parsed body).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, callees] : callees_) {
      if (reaches_sink_.count(name) > 0) continue;
      bool hit = IsExportSinkName(name);
      for (const std::string& c : callees) {
        if (hit) break;
        hit = IsExportSinkName(c) || reaches_sink_.count(c) > 0;
      }
      if (hit) {
        reaches_sink_.insert(name);
        changed = true;
      }
    }
  }

  // from_sink_: BFS downward from every sink-named function with a body.
  std::deque<std::string> work;
  for (const auto& [name, callees] : callees_) {
    if (IsExportSinkName(name) && from_sink_.insert(name).second) {
      work.push_back(name);
    }
  }
  while (!work.empty()) {
    const std::string cur = std::move(work.front());
    work.pop_front();
    const auto it = callees_.find(cur);
    if (it == callees_.end()) continue;
    for (const std::string& c : it->second) {
      if (from_sink_.insert(c).second) work.push_back(c);
    }
  }
}

const std::set<std::string>& CallGraph::Callees(const std::string& name) const {
  static const std::set<std::string> kEmpty;
  const auto it = callees_.find(name);
  return it == callees_.end() ? kEmpty : it->second;
}

}  // namespace dufs::lint
