// dufs_lint — repo-specific static analysis for the DUFS tree.
//
//   dufs_lint [--root=DIR] [--format=text|json] [--rule=a,b] [--explain]
//             [paths...]
//
// With no explicit paths, walks src/, bench/, and tests/ under --root
// (default: current directory) over *.h/*.cc, applies every rule in
// rules.cc, and prints findings. Exit status: 0 clean, 1 findings, 2 usage
// or I/O error. `--format=json` emits a machine-readable findings array;
// `--explain` documents each rule with a bad/good example and exits.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"

namespace {

namespace fs = std::filesystem;
using dufs::lint::Finding;
using dufs::lint::Linter;
using dufs::lint::RuleDocs;

struct Options {
  std::string root = ".";
  std::string format = "text";
  std::set<std::string> rule_filter;  // empty = all rules
  bool explain = false;
  std::vector<std::string> paths;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: dufs_lint [--root=DIR] [--format=text|json] [--rule=a,b] "
      "[--explain] [paths...]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      if (arg.compare(0, n, key) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--root")) {
      opt->root = v;
    } else if (const char* v = value("--format")) {
      opt->format = v;
      if (opt->format != "text" && opt->format != "json") return false;
    } else if (const char* v = value("--rule")) {
      std::string rule;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!rule.empty()) opt->rule_filter.insert(rule);
          rule.clear();
          if (*p == '\0') break;
        } else {
          rule += *p;
        }
      }
    } else if (arg == "--explain") {
      opt->explain = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      opt->paths.push_back(arg);
    }
  }
  return true;
}

void Explain() {
  std::printf("dufs_lint rules\n===============\n");
  for (const auto& doc : RuleDocs()) {
    std::printf("\n%s — %s\n", doc.id, doc.summary);
    std::printf("  %s\n", doc.rationale);
    std::printf("  bad:  %s\n", doc.bad);
    std::printf("  good: %s\n", doc.good);
  }
  std::printf(
      "\nSuppress a finding with `// dufs-lint: allow(<rule>)` on the "
      "offending line or alone on the line above (give a reason).\n");
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Repo-relative with forward slashes, so findings and path-scoped rules are
// stable regardless of how the tool was invoked.
std::string RelativePath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  while (s.rfind("./", 0) == 0) s = s.substr(2);
  return s;
}

std::vector<std::string> CollectFiles(const Options& opt) {
  const fs::path root(opt.root);
  std::vector<std::string> files;
  auto add_tree = [&files](const fs::path& dir) {
    if (!fs::exists(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path().string());
      }
    }
  };
  if (opt.paths.empty()) {
    add_tree(root / "src");
    add_tree(root / "bench");
    add_tree(root / "tests");
  } else {
    for (const auto& p : opt.paths) {
      if (fs::is_directory(p)) {
        add_tree(p);
      } else {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return Usage();
  if (opt.explain) {
    Explain();
    return 0;
  }

  const fs::path root(opt.root);
  Linter linter;
  const std::vector<std::string> files = CollectFiles(opt);
  if (files.empty()) {
    std::fprintf(stderr, "dufs_lint: no source files under %s\n",
                 opt.root.c_str());
    return 2;
  }
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "dufs_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    linter.AddFile(RelativePath(file, root), content.str());
  }

  std::vector<Finding> findings = linter.Run();
  if (!opt.rule_filter.empty()) {
    std::erase_if(findings, [&opt](const Finding& f) {
      return opt.rule_filter.count(f.rule) == 0;
    });
  }

  if (opt.format == "json") {
    std::string out = "{\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) out += ',';
      out += "{\"file\":\"" + JsonEscape(f.file) + "\"";
      out += ",\"line\":" + std::to_string(f.line);
      out += ",\"rule\":\"" + JsonEscape(f.rule) + "\"";
      out += ",\"message\":\"" + JsonEscape(f.message) + "\"}";
    }
    out += "],\"files_scanned\":" + std::to_string(files.size()) + "}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    for (const Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::fprintf(stderr, "dufs_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), files.size());
  }
  return findings.empty() ? 0 : 1;
}
