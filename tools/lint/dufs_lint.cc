// dufs_lint — repo-specific static analysis for the DUFS tree.
//
//   dufs_lint [--root=DIR] [--format=text|json] [--rule=a,b] [--explain]
//             [--sarif=FILE] [--baseline=FILE] [--write-baseline=FILE]
//             [--cache-dir=DIR] [--werror] [paths...]
//
// With no explicit paths, walks src/, bench/, and tests/ under --root
// (default: current directory) over *.h/*.cc, applies the per-file rules
// plus the cross-TU dataflow rules (see DESIGN.md §12), and prints
// findings. Exit status: 0 clean (warn-severity findings do not fail unless
// --werror), 1 error findings, 2 usage or I/O error.
//
// `--cache-dir=DIR` memoizes the per-file parse on disk keyed by content
// hash; the cross-TU pass always runs fresh, so results are identical warm
// or cold. `--baseline=FILE` suppresses findings whose `file:line:rule`
// fingerprint is listed (intentional debt); `--write-baseline=FILE`
// snapshots the current findings into that format. `--sarif=FILE` writes a
// SARIF 2.1.0 log alongside the normal output. `--format=json` emits a
// machine-readable findings array; `--explain` documents each rule with a
// bad/good example and exits.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cache.h"
#include "finding.h"
#include "rules.h"

namespace {

namespace fs = std::filesystem;
using dufs::lint::FileArtifacts;
using dufs::lint::Finding;
using dufs::lint::Linter;
using dufs::lint::RuleDocs;
using dufs::lint::RuleSeverity;
using dufs::lint::Severity;
using dufs::lint::SeverityName;

struct Options {
  std::string root = ".";
  std::string format = "text";
  std::set<std::string> rule_filter;  // empty = all rules
  bool explain = false;
  bool werror = false;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string cache_dir;
  std::vector<std::string> paths;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: dufs_lint [--root=DIR] [--format=text|json] [--rule=a,b] "
      "[--explain]\n"
      "                 [--sarif=FILE] [--baseline=FILE] "
      "[--write-baseline=FILE]\n"
      "                 [--cache-dir=DIR] [--werror] [paths...]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      if (arg.compare(0, n, key) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--root")) {
      opt->root = v;
    } else if (const char* v = value("--format")) {
      opt->format = v;
      if (opt->format != "text" && opt->format != "json") return false;
    } else if (const char* v = value("--rule")) {
      std::string rule;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!rule.empty()) opt->rule_filter.insert(rule);
          rule.clear();
          if (*p == '\0') break;
        } else {
          rule += *p;
        }
      }
    } else if (const char* v = value("--sarif")) {
      opt->sarif_path = v;
    } else if (const char* v = value("--baseline")) {
      opt->baseline_path = v;
    } else if (const char* v = value("--write-baseline")) {
      opt->write_baseline_path = v;
    } else if (const char* v = value("--cache-dir")) {
      opt->cache_dir = v;
    } else if (arg == "--werror") {
      opt->werror = true;
    } else if (arg == "--explain") {
      opt->explain = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      opt->paths.push_back(arg);
    }
  }
  return true;
}

void Explain() {
  std::printf("dufs_lint rules\n===============\n");
  for (const auto& doc : RuleDocs()) {
    std::printf("\n%s — %s [%s]\n", doc.id, doc.summary,
                SeverityName(doc.severity));
    std::printf("  %s\n", doc.rationale);
    std::printf("  bad:  %s\n", doc.bad);
    std::printf("  good: %s\n", doc.good);
  }
  std::printf(
      "\nSuppress a finding with `// dufs-lint: allow(<rule>)` on the "
      "offending line or alone on the line above (give a reason). "
      "Intentional debt lives in the baseline file "
      "(tools/lint/baseline.txt); refresh it with "
      "tools/lint/update_baseline.sh.\n");
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Repo-relative with forward slashes, so findings and path-scoped rules are
// stable regardless of how the tool was invoked.
std::string RelativePath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  while (s.rfind("./", 0) == 0) s = s.substr(2);
  return s;
}

std::vector<std::string> CollectFiles(const Options& opt) {
  const fs::path root(opt.root);
  std::vector<std::string> files;
  auto add_tree = [&files, &root](const fs::path& dir) {
    if (!fs::exists(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      // The lint fixture mini-tree is intentionally-violating *input* for
      // the analyzer (tests/lint/lint_v2_test.cc, dufs_lint_fixtures); it
      // is linted through --root=.../fixtures/tree, never as tree code.
      std::error_code ec;
      const std::string rel =
          fs::relative(entry.path(), root, ec).generic_string();
      if (!ec && rel.rfind("tests/lint/fixtures/", 0) == 0) continue;
      files.push_back(entry.path().string());
    }
  };
  if (opt.paths.empty()) {
    add_tree(root / "src");
    add_tree(root / "bench");
    add_tree(root / "tests");
  } else {
    for (const auto& p : opt.paths) {
      if (fs::is_directory(p)) {
        add_tree(p);
      } else {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Fingerprint(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule;
}

// Baseline format: one `file:line:rule` fingerprint per line; blank lines
// and `#` comments ignored.
bool LoadBaseline(const std::string& path, std::set<std::string>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    out->insert(line);
  }
  return true;
}

bool WriteBaseline(const std::string& path,
                   const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# dufs_lint findings baseline — intentional debt only.\n"
      << "# One `file:line:rule` fingerprint per line; regenerate with\n"
      << "# tools/lint/update_baseline.sh after deliberate changes.\n";
  std::set<std::string> prints;
  for (const auto& f : findings) prints.insert(Fingerprint(f));
  for (const auto& p : prints) out << p << '\n';
  return static_cast<bool>(out);
}

// Minimal valid SARIF 2.1.0: one run, rule metadata from RuleDocs(), one
// result per finding with a physical location.
bool WriteSarif(const std::string& path,
                const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"dufs_lint\",\"version\":\"2.0.0\","
      "\"informationUri\":\"https://github.com/\",\"rules\":[";
  const auto& docs = RuleDocs();
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"id\":\"" + JsonEscape(docs[i].id) + "\"";
    out += ",\"shortDescription\":{\"text\":\"" +
           JsonEscape(docs[i].summary) + "\"}";
    out += ",\"fullDescription\":{\"text\":\"" +
           JsonEscape(docs[i].rationale) + "\"}";
    out += ",\"defaultConfiguration\":{\"level\":\"";
    out += docs[i].severity == Severity::kWarn ? "warning" : "error";
    out += "\"}}";
  }
  out += "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ',';
    out += "{\"ruleId\":\"" + JsonEscape(f.rule) + "\"";
    out += ",\"level\":\"";
    out += RuleSeverity(f.rule) == Severity::kWarn ? "warning" : "error";
    out += "\",\"message\":{\"text\":\"" + JsonEscape(f.message) + "\"}";
    out += ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{";
    out += "\"uri\":\"" + JsonEscape(f.file) + "\"}";
    out += ",\"region\":{\"startLine\":" +
           std::to_string(f.line > 0 ? f.line : 1) + "}}}]}";
  }
  out += "]}]}\n";
  std::ofstream file(path, std::ios::trunc | std::ios::binary);
  if (!file) return false;
  file << out;
  return static_cast<bool>(file);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return Usage();
  if (opt.explain) {
    Explain();
    return 0;
  }

  const fs::path root(opt.root);
  Linter linter;
  const std::vector<std::string> files = CollectFiles(opt);
  if (files.empty()) {
    std::fprintf(stderr, "dufs_lint: no source files under %s\n",
                 opt.root.c_str());
    return 2;
  }
  std::size_t cache_hits = 0;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "dufs_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const std::string rel = RelativePath(file, root);
    if (opt.cache_dir.empty()) {
      linter.AddFile(rel, content.str());
      continue;
    }
    const std::string key = dufs::lint::CacheKey(rel, content.str());
    if (auto cached = dufs::lint::LoadCachedArtifacts(opt.cache_dir, key)) {
      ++cache_hits;
      linter.AddArtifacts(std::move(*cached));
      continue;
    }
    FileArtifacts fresh = dufs::lint::AnalyzeFile(rel, content.str());
    dufs::lint::StoreCachedArtifacts(opt.cache_dir, key, fresh);
    linter.AddArtifacts(std::move(fresh));
  }

  std::vector<Finding> findings = linter.Run();
  if (!opt.rule_filter.empty()) {
    std::erase_if(findings, [&opt](const Finding& f) {
      return opt.rule_filter.count(f.rule) == 0;
    });
  }

  if (!opt.write_baseline_path.empty()) {
    if (!WriteBaseline(opt.write_baseline_path, findings)) {
      std::fprintf(stderr, "dufs_lint: cannot write baseline %s\n",
                   opt.write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "dufs_lint: wrote %zu fingerprint(s) to %s\n",
                 findings.size(), opt.write_baseline_path.c_str());
    return 0;
  }

  std::size_t baselined = 0;
  if (!opt.baseline_path.empty()) {
    std::set<std::string> baseline;
    if (!LoadBaseline(opt.baseline_path, &baseline)) {
      std::fprintf(stderr, "dufs_lint: cannot read baseline %s\n",
                   opt.baseline_path.c_str());
      return 2;
    }
    std::erase_if(findings, [&baseline, &baselined](const Finding& f) {
      const bool hit = baseline.count(Fingerprint(f)) > 0;
      baselined += hit ? 1 : 0;
      return hit;
    });
  }

  if (!opt.sarif_path.empty() && !WriteSarif(opt.sarif_path, findings)) {
    std::fprintf(stderr, "dufs_lint: cannot write SARIF %s\n",
                 opt.sarif_path.c_str());
    return 2;
  }

  std::size_t errors = 0, warns = 0;
  for (const Finding& f : findings) {
    if (RuleSeverity(f.rule) == Severity::kWarn) {
      ++warns;
    } else {
      ++errors;
    }
  }

  if (opt.format == "json") {
    std::string out = "{\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) out += ',';
      out += "{\"file\":\"" + JsonEscape(f.file) + "\"";
      out += ",\"line\":" + std::to_string(f.line);
      out += ",\"rule\":\"" + JsonEscape(f.rule) + "\"";
      out += ",\"severity\":\"";
      out += SeverityName(RuleSeverity(f.rule));
      out += "\",\"message\":\"" + JsonEscape(f.message) + "\"}";
    }
    out += "],\"files_scanned\":" + std::to_string(files.size()) + "}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    for (const Finding& f : findings) {
      std::printf("%s:%d: [%s] %s: %s\n", f.file.c_str(), f.line,
                  SeverityName(RuleSeverity(f.rule)), f.rule.c_str(),
                  f.message.c_str());
    }
    std::fprintf(stderr, "dufs_lint: %zu finding(s) in %zu file(s)",
                 findings.size(), files.size());
    if (baselined > 0) std::fprintf(stderr, ", %zu baselined", baselined);
    if (!opt.cache_dir.empty()) {
      std::fprintf(stderr, ", cache %zu/%zu", cache_hits, files.size());
    }
    std::fprintf(stderr, "\n");
  }
  if (errors > 0) return 1;
  if (opt.werror && warns > 0) return 1;
  return 0;
}
