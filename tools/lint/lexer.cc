#include "lexer.h"

#include <cctype>

namespace dufs::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators the rules care about. Longest-match-first; anything
// else is emitted as a single character. `->` and `>>` matter for template
// angle matching; the rest keep operator text from splitting confusingly.
const char* const kPuncts3[] = {"<=>", "->*", "...", "<<=", ">>="};
const char* const kPuncts2[] = {"::", "->", "&&", "||", ">>", "<<", "<=",
                                ">=", "==", "!=", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "++", "--", "##"};

class Lexer {
 public:
  Lexer(std::string path, const std::string& src) : src_(src) {
    out_.path = std::move(path);
  }

  LexedFile Run() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && Peek(1) == '/') {
        LineComment();
      } else if (c == '/' && Peek(1) == '*') {
        BlockComment();
      } else if (c == '#' && LineIsBlankBefore()) {
        Preprocessor();
      } else if (c == '"') {
        NoteCode();
        String();
      } else if (c == '\'') {
        NoteCode();
        CharLiteral();
      } else if (c == 'R' && Peek(1) == '"') {
        NoteCode();
        RawString();
      } else if (IsIdentStart(c)) {
        NoteCode();
        Identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        NoteCode();
        Number();
      } else {
        NoteCode();
        Punct();
      }
    }
    return std::move(out_);
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  bool StartsWith(const char* s) const {
    return src_.compare(pos_, std::char_traits<char>::length(s), s) == 0;
  }

  void NoteCode() {
    if (out_.first_code_line == 0) out_.first_code_line = line_;
  }

  // True if only whitespace precedes pos_ on the current line (so `#` starts
  // a preprocessor directive, not `operator#` in a macro body — close enough).
  bool LineIsBlankBefore() const {
    std::size_t i = pos_;
    while (i > 0 && src_[i - 1] != '\n') {
      if (!std::isspace(static_cast<unsigned char>(src_[i - 1]))) return false;
      --i;
    }
    return true;
  }

  void Emit(TokKind kind, std::string text, int at_line) {
    out_.tokens.push_back(Token{kind, std::move(text), at_line});
  }

  void LineComment() {
    const int at = line_;
    std::size_t start = pos_;
    while (!AtEnd() && Peek() != '\n') ++pos_;
    HandleComment(src_.substr(start, pos_ - start), at);
  }

  void BlockComment() {
    const int at = line_;
    std::size_t start = pos_;
    pos_ += 2;
    while (!AtEnd() && !StartsWith("*/")) {
      if (Peek() == '\n') ++line_;
      ++pos_;
    }
    if (!AtEnd()) pos_ += 2;
    HandleComment(src_.substr(start, pos_ - start), at);
  }

  void HandleComment(const std::string& text, int at_line) {
    const std::string kTag = "dufs-lint:";
    const auto tag = text.find(kTag);
    if (tag == std::string::npos) return;
    auto open = text.find("allow(", tag);
    if (open == std::string::npos) return;
    auto close = text.find(')', open);
    if (close == std::string::npos) return;
    Suppression sup;
    sup.line = at_line;
    sup.alone = CommentAloneOnLine(at_line);
    std::string rule;
    for (std::size_t i = open + 6; i < close; ++i) {
      const char c = text[i];
      if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
        if (!rule.empty()) sup.rules.push_back(std::move(rule));
        rule.clear();
      } else {
        rule += c;
      }
    }
    if (!rule.empty()) sup.rules.push_back(std::move(rule));
    if (!sup.rules.empty()) out_.suppressions.push_back(std::move(sup));
  }

  // Whether any code token was already emitted for `line`.
  bool CommentAloneOnLine(int line) const {
    for (auto it = out_.tokens.rbegin(); it != out_.tokens.rend(); ++it) {
      if (it->line < line) break;
      if (it->line == line) return false;
    }
    return true;
  }

  void Preprocessor() {
    NoteCode();
    const int at = line_;
    std::size_t start = pos_;
    // Consume the whole logical line, honoring backslash continuations and
    // skipping comments (a // in a directive ends it; /* may span).
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
      } else if (c == '/' && Peek(1) == '/') {
        break;
      } else if (c == '/' && Peek(1) == '*') {
        BlockComment();
      } else if (c == '\n') {
        break;
      } else {
        ++pos_;
      }
    }
    ParseDirective(src_.substr(start, pos_ - start), at);
  }

  void ParseDirective(const std::string& text, int at_line) {
    std::size_t i = 1;  // past '#'
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t kw_start = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    const std::string kw = text.substr(kw_start, i - kw_start);
    if (kw == "pragma") {
      if (text.find("once", i) != std::string::npos && !out_.has_pragma_once) {
        out_.has_pragma_once = true;
        out_.pragma_once_line = at_line;
      }
    } else if (kw == "include") {
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
      if (i >= text.size()) return;
      const char open = text[i];
      const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
      if (close == '\0') return;
      const auto end = text.find(close, i + 1);
      if (end == std::string::npos) return;
      out_.includes.push_back(
          Include{text.substr(i + 1, end - i - 1), open == '<', at_line});
    }
  }

  void String() {
    const int at = line_;
    std::size_t start = pos_;
    ++pos_;
    while (!AtEnd() && Peek() != '"') {
      if (Peek() == '\\') ++pos_;
      if (Peek() == '\n') ++line_;  // ill-formed anyway; keep lines right
      ++pos_;
    }
    if (!AtEnd()) ++pos_;
    Emit(TokKind::kString, src_.substr(start, pos_ - start), at);
  }

  void CharLiteral() {
    const int at = line_;
    std::size_t start = pos_;
    ++pos_;
    while (!AtEnd() && Peek() != '\'') {
      if (Peek() == '\\') ++pos_;
      ++pos_;
    }
    if (!AtEnd()) ++pos_;
    Emit(TokKind::kString, src_.substr(start, pos_ - start), at);
  }

  void RawString() {
    const int at = line_;
    std::size_t start = pos_;
    pos_ += 2;  // R"
    std::string delim;
    while (!AtEnd() && Peek() != '(') delim += src_[pos_++];
    const std::string closer = ")" + delim + "\"";
    while (!AtEnd() && !StartsWith(closer.c_str())) {
      if (Peek() == '\n') ++line_;
      ++pos_;
    }
    if (!AtEnd()) pos_ += closer.size();
    Emit(TokKind::kString, src_.substr(start, pos_ - start), at);
  }

  void Identifier() {
    const int at = line_;
    std::size_t start = pos_;
    while (!AtEnd() && IsIdentChar(Peek())) ++pos_;
    std::string text = src_.substr(start, pos_ - start);
    // String-literal prefixes (u8"...", L"...") — treat as one string token.
    if ((Peek() == '"' || Peek() == '\'') &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      if (Peek() == '"') {
        String();
      } else {
        CharLiteral();
      }
      return;
    }
    Emit(TokKind::kIdentifier, std::move(text), at);
  }

  void Number() {
    const int at = line_;
    std::size_t start = pos_;
    while (!AtEnd()) {
      const char c = Peek();
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    Emit(TokKind::kNumber, src_.substr(start, pos_ - start), at);
  }

  void Punct() {
    const int at = line_;
    for (const char* p : kPuncts3) {
      if (StartsWith(p)) {
        pos_ += 3;
        Emit(TokKind::kPunct, p, at);
        return;
      }
    }
    for (const char* p : kPuncts2) {
      if (StartsWith(p)) {
        pos_ += 2;
        Emit(TokKind::kPunct, p, at);
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]), at);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(std::string path, const std::string& content) {
  return Lexer(std::move(path), content).Run();
}

}  // namespace dufs::lint
