#!/usr/bin/env sh
# Regenerates tools/lint/baseline.txt from the current tree.
#
# The baseline records intentional debt as `file:line:rule` fingerprints;
# the dufs_lint_tree_v2 ctest (and the `lint` build target) fail on any
# finding not listed here. Prefer fixing or `// dufs-lint: allow(...)`
# annotations — only baseline findings you mean to keep.
#
# Usage: tools/lint/update_baseline.sh [BUILD_DIR]   (default: ./build)
set -eu

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD="${1:-$ROOT/build}"

cmake --build "$BUILD" --target dufs_lint
"$BUILD/tools/lint/dufs_lint" --root="$ROOT" \
  --write-baseline="$ROOT/tools/lint/baseline.txt"
echo "updated $ROOT/tools/lint/baseline.txt"
