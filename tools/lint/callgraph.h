// Cross-TU call graph over the symbol table, plus the reachability sets the
// dataflow rules consume.
//
// Edges are name → name (unqualified): every function body's call sites
// contribute edges from the containing function's name to each callee name.
// Overloads and same-named methods on different classes collapse into one
// node — that over-approximation is deliberate (it can only widen
// reachability, never miss it) and is documented in DESIGN.md §12.
//
// "Sinks" are the export surface the determinism gates byte-compare: JSON /
// SARIF serialization, snapshots, file writers. Sink-ness is a pure name
// predicate so that calls into code the parser never saw (std::, external
// helpers) still register.
#pragma once

#include <map>
#include <set>
#include <string>

#include "symtab.h"

namespace dufs::lint {

// True when `name` is an export-serialization entry point by naming
// convention: contains "Json"/"Sarif"/"Snapshot"/"Serialize", or is one of
// the known writer names.
bool IsExportSinkName(const std::string& name);

class CallGraph {
 public:
  explicit CallGraph(const SymbolTable& sym);

  // Direct callee names of every body declared with `name`.
  const std::set<std::string>& Callees(const std::string& name) const;

  // `name` is a sink or transitively calls one.
  bool ReachesSink(const std::string& name) const {
    return reaches_sink_.count(name) > 0;
  }
  // Some sink transitively calls `name` (i.e. `name` runs while an export
  // is being produced). Includes the sinks themselves.
  bool CalledFromSink(const std::string& name) const {
    return from_sink_.count(name) > 0;
  }

 private:
  std::map<std::string, std::set<std::string>> callees_;
  std::set<std::string> reaches_sink_;
  std::set<std::string> from_sink_;
};

}  // namespace dufs::lint
