#include "dataflow.h"

#include <cstddef>
#include <map>
#include <utility>

namespace dufs::lint {

namespace {

bool EndsWithUnderscore(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

// A definition whose frame can outlive the caller's scope once it
// suspends.
bool CoroLike(const FunctionSummary& fn) {
  return fn.is_coroutine || fn.returns_task;
}

// Unqualified-name resolution with a same-file-first policy: when the
// caller's own file defines `name`, those definitions shadow same-named
// functions elsewhere in the tree (the common collision: several benches
// each defining their own static `Measure` with different signatures).
// Only names the file does not define fall back to the whole-tree table.
class Resolver {
 public:
  explicit Resolver(const SymbolTable& sym) : sym_(sym) {
    for (const FileSummary* file : sym.files()) {
      auto& names = local_[file];
      for (const FunctionSummary& fn : file->functions) {
        names[fn.name].push_back(&fn);
      }
    }
  }

  const std::vector<const FunctionSummary*>& Resolve(
      const FileSummary* file, const std::string& name) const {
    const auto fit = local_.find(file);
    if (fit != local_.end()) {
      const auto nit = fit->second.find(name);
      if (nit != fit->second.end()) return nit->second;
    }
    return sym_.Lookup(name);
  }

 private:
  const SymbolTable& sym_;
  std::map<const FileSummary*,
           std::map<std::string, std::vector<const FunctionSummary*>>>
      local_;
};

// ---------------------------------------------------------------------------
// coro-ref-escape
// ---------------------------------------------------------------------------

// hazard[fn] = parameter positions that end up stored in a coroutine
// frame. Base case: every non-Simulation ref/ptr parameter of a coroutine.
// Propagation: a non-coroutine wrapper that forwards its own ref/ptr
// parameter into a hazardous position (without awaiting the call) makes
// that parameter hazardous too. Keyed per definition (not per name) so a
// hazardous `Measure` in one bench does not taint every other `Measure`.
std::map<const FunctionSummary*, std::set<std::size_t>> HazardParams(
    const SymbolTable& sym, const Resolver& res) {
  std::map<const FunctionSummary*, std::set<std::size_t>> hazard;
  for (const FileSummary* file : sym.files()) {
    for (const FunctionSummary& fn : file->functions) {
      if (!CoroLike(fn)) continue;
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        const Param& p = fn.params[i];
        if ((p.is_ref || p.is_ptr) && !p.is_simulation) {
          hazard[&fn].insert(i);
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FileSummary* file : sym.files()) {
      for (const FunctionSummary& fn : file->functions) {
        if (!fn.has_body || CoroLike(fn)) continue;
        for (const CallSite& c : fn.calls) {
          if (c.awaited) continue;
          for (const FunctionSummary* target : res.Resolve(file, c.callee)) {
            const auto hit = hazard.find(target);
            if (hit == hazard.end()) continue;
            for (std::size_t j = 0; j < c.bare_args.size(); ++j) {
              if (hit->second.count(j) == 0) continue;
              const std::string& arg = c.bare_args[j];
              if (arg.empty() || arg[0] == '&' || arg == "[&]") continue;
              for (std::size_t i = 0; i < fn.params.size(); ++i) {
                const Param& p = fn.params[i];
                if (p.name != arg || !(p.is_ref || p.is_ptr) ||
                    p.is_simulation) {
                  continue;
                }
                if (hazard[&fn].insert(i).second) changed = true;
              }
            }
          }
        }
      }
    }
  }
  return hazard;
}

void CoroRefEscape(const SymbolTable& sym, const Resolver& res,
                   std::vector<Finding>* out) {
  const auto hazard = HazardParams(sym, res);
  for (const FileSummary* file : sym.files()) {
    for (const FunctionSummary& fn : file->functions) {
      for (const CallSite& c : fn.calls) {
        if (c.awaited || c.returned) continue;
        bool callee_coro = false;
        std::set<std::size_t> pos;  // union over the resolved definitions
        for (const FunctionSummary* t : res.Resolve(file, c.callee)) {
          if (CoroLike(*t)) callee_coro = true;
          const auto hit = hazard.find(t);
          if (hit != hazard.end()) {
            pos.insert(hit->second.begin(), hit->second.end());
          }
        }
        if (!callee_coro && pos.empty()) continue;
        for (std::size_t j = 0; j < c.bare_args.size(); ++j) {
          const std::string& arg = c.bare_args[j];
          if (arg.empty()) continue;
          const bool pos_hazard = pos.count(j) > 0;
          if (arg == "[&]") {
            if (callee_coro || !pos.empty()) {
              out->push_back(Finding{
                  file->path, c.line, "coro-ref-escape",
                  "`[&]` lambda passed into coroutine `" + c.callee +
                      "`: by-reference captures dangle once the frame "
                      "suspends past the caller's scope; capture by value "
                      "or co_await the call"});
            }
            continue;
          }
          if (!pos_hazard) continue;
          if (arg[0] == '&') {
            const std::string local = arg.substr(1);
            if (EndsWithUnderscore(local)) continue;  // member: object-lived
            out->push_back(Finding{
                file->path, c.line, "coro-ref-escape",
                "address of `" + local + "` escapes into the frame of `" +
                    c.callee +
                    "`, which suspends and can outlive the caller's scope; "
                    "pass by value or co_await the call"});
            continue;
          }
          // Plain identifier forwarded into a hazardous position. Only the
          // wrapper (indirect) case is reported here: direct calls into a
          // coroutine with a ref param are the callee declaration's problem
          // and already flagged by coro-ref-param.
          if (callee_coro) continue;
          if (EndsWithUnderscore(arg)) continue;  // member: object-lived
          out->push_back(Finding{
              file->path, c.line, "coro-ref-escape",
              "`" + arg + "` is forwarded by reference through `" + c.callee +
                  "` into a coroutine frame that outlives this call; pass "
                  "by value or await the chain"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// task-discard / task-discard-transitive
// ---------------------------------------------------------------------------

// True when `name` is also declared as an ordinary function (neither `auto`
// nor Task-returning) somewhere — genuinely ambiguous, never flagged.
bool TrulyAmbiguous(const SymbolTable& sym, const std::string& name) {
  for (const FunctionSummary* fn : sym.Lookup(name)) {
    if (!fn->returns_auto && !fn->returns_task) return true;
  }
  return false;
}

void TaskDiscards(const SymbolTable& sym,
                  const std::set<std::string>& direct_task,
                  std::vector<Finding>* out) {
  // Fixpoint: `auto` wrappers whose body returns a task-like call are
  // task-like themselves. `via` records the underlying callee for messages.
  std::set<std::string> task_like = direct_task;
  std::map<std::string, std::string> via;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FileSummary* file : sym.files()) {
      for (const FunctionSummary& fn : file->functions) {
        if (!fn.returns_auto || !fn.has_body) continue;
        if (task_like.count(fn.name) > 0) continue;
        if (TrulyAmbiguous(sym, fn.name)) continue;
        for (const CallSite& c : fn.calls) {
          if (!c.returned || task_like.count(c.callee) == 0) continue;
          task_like.insert(fn.name);
          via[fn.name] = c.callee;
          changed = true;
          break;
        }
      }
    }
  }

  for (const FileSummary* file : sym.files()) {
    for (const DiscardSite& d : file->discard_sites) {
      if (direct_task.count(d.callee) > 0) {
        out->push_back(Finding{
            file->path, d.line, "task-discard",
            "result of Task-returning `" + d.callee +
                "` is discarded: the coroutine frame is destroyed before "
                "it runs; co_await it, Spawn() it, or hold it"});
      } else if (via.count(d.callee) > 0) {
        out->push_back(Finding{
            file->path, d.line, "task-discard-transitive",
            "`" + d.callee + "` returns the sim::Task of `" +
                via[d.callee] +
                "` through a wrapper chain; discarding it destroys the "
                "frame before it runs — co_await it, Spawn() it, or hold "
                "it"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// det-export-order
// ---------------------------------------------------------------------------

// Completing promises / notifying waiters per element makes downstream
// resumption order follow the container's hash order.
bool IsCompletionName(const std::string& s) {
  return s == "Set" || s == "SetValue" || s == "SetResult" ||
         s == "Resolve" || s == "Complete" || s == "Notify" || s == "Fire" ||
         s == "Post" || s == "Resume";
}

void DetExportOrder(const SymbolTable& sym, const CallGraph& graph,
                    std::vector<Finding>* out) {
  for (const FileSummary* file : sym.files()) {
    for (const FunctionSummary& fn : file->functions) {
      for (const Iteration& it : fn.iterations) {
        if (!sym.IsUnorderedEntity(it.container)) continue;
        bool on_export =
            IsExportSinkName(fn.name) || graph.CalledFromSink(fn.name);
        for (std::size_t i = 0; !on_export && i < it.body_calls.size(); ++i) {
          on_export = IsExportSinkName(it.body_calls[i]) ||
                      graph.ReachesSink(it.body_calls[i]);
        }
        if (on_export) {
          out->push_back(Finding{
              file->path, it.line, "det-export-order",
              "iteration over unordered container `" + it.container +
                  "` on an export path (in/under `" + fn.name +
                  "`): serialized bytes would depend on hash order — sort "
                  "keys first or use an ordered container"});
          continue;
        }
        for (const std::string& call : it.body_calls) {
          if (!IsCompletionName(call)) continue;
          out->push_back(Finding{
              file->path, it.line, "det-export-order",
              "iteration over unordered container `" + it.container +
                  "` completes/notifies waiters (`" + call +
                  "`) in hash order, so resumption order is "
                  "stdlib-dependent — drain in sorted key order"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// await-holding-ref
// ---------------------------------------------------------------------------

void AwaitHoldingRef(const SymbolTable& sym, std::vector<Finding>* out) {
  for (const FileSummary* file : sym.files()) {
    for (const FunctionSummary& fn : file->functions) {
      for (const HeldRef& r : fn.held_refs) {
        const std::string what =
            r.iterator ? "iterator" : "reference";
        const std::string where =
            r.container.empty() ? "a container"
                                : "`" + r.container + "`";
        out->push_back(Finding{
            file->path, r.use_line, "await-holding-ref",
            "`" + r.name + "` (" + what + " into " + where +
                ", obtained on line " + std::to_string(r.line) +
                ") is used after the co_await on line " +
                std::to_string(r.await_line) +
                "; the container can mutate while suspended — re-acquire "
                "it after resuming"});
      }
    }
  }
}

}  // namespace

void RunDataflow(const SymbolTable& sym, const CallGraph& graph,
                 const std::set<std::string>& direct_task,
                 std::vector<Finding>* out) {
  const Resolver res(sym);
  CoroRefEscape(sym, res, out);
  TaskDiscards(sym, direct_task, out);
  DetExportOrder(sym, graph, out);
  AwaitHoldingRef(sym, out);
}

}  // namespace dufs::lint
