#include "rules.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <utility>

#include "callgraph.h"
#include "dataflow.h"
#include "token_util.h"

namespace dufs::lint {

namespace {

// Wall-clock / entropy identifiers that are banned on sight in sim code.
bool IsBannedTimeSourceType(const std::string& s) {
  static const std::set<std::string> kSet = {
      "random_device",   "system_clock", "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime",
      "timespec_get",    "localtime",    "gmtime",
      "mktime",          "mt19937",      "mt19937_64",
      "default_random_engine"};
  return kSet.count(s) > 0;
}

// Banned only when called (`rand()`), since the bare names are common as
// fields and locals (`Txn::time`).
bool IsBannedTimeSourceCall(const std::string& s) {
  return s == "rand" || s == "srand" || s == "clock" || s == "time";
}

// Allocating std:: types banned (as `std::X`) in src/sim/ hot-path code:
// type-erased callables and node/map containers whose construction or
// insertion heap-allocates per operation. The event loop runs these methods
// millions of times per simulated second; use the slab arena (sim/arena.h),
// SmallQueue (sim/small_queue.h), or intrusive lists instead — or suppress
// with a reason for genuinely cold paths.
bool IsHotAllocBannedType(const std::string& s) {
  static const std::set<std::string> kSet = {
      "function",      "deque",         "list",
      "forward_list",  "priority_queue", "queue",
      "map",           "multimap",      "set",
      "multiset",      "unordered_map", "unordered_multimap",
      "unordered_set", "unordered_multiset"};
  return kSet.count(s) > 0;
}

// First `&` in the parameter list `tokens[open]=='('` .. its matching `)`
// that binds a parameter by reference (prev token is a type-ish identifier
// or `>`), at paren depth 1. Returns its line, or 0 when none.
// `Simulation&` parameters are exempt: a coroutine frame cannot outlive the
// Simulation that drives it (RunTask runs it to completion; Shutdown()
// destroys detached frames before the Simulation dies).
int FindRefParamLine(const std::vector<Token>& toks, std::size_t open,
                     std::size_t close) {
  int depth = 0;
  for (std::size_t i = open; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++depth;
      if (t.text == ")") --depth;
    }
    if (depth != 1 || i == open) continue;
    if (IsPunct(t, "&")) {
      const Token& prev = toks[i - 1];
      if (prev.kind == TokKind::kIdentifier && prev.text == "Simulation") {
        continue;
      }
      if ((prev.kind == TokKind::kIdentifier && !IsExprKeyword(prev.text)) ||
          IsPunct(prev, ">") || IsPunct(prev, ">>")) {
        return t.line;
      }
    }
  }
  return 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& p) { return EndsWith(p, ".h"); }

// Strips quotes/prefix from a lexed string token ("x", u8"x", R"(x)").
std::string StringValue(const std::string& raw) {
  std::size_t b = raw.find('"');
  if (b == std::string::npos) return raw;
  if (b > 0 && raw[b - 1] == 'R') {
    const auto open = raw.find('(', b);
    const auto close = raw.rfind(')');
    if (open != std::string::npos && close != std::string::npos &&
        close > open) {
      return raw.substr(open + 1, close - open - 1);
    }
  }
  std::size_t e = raw.rfind('"');
  if (e <= b) return raw;
  return raw.substr(b + 1, e - b - 1);
}

bool IsValidObsName(const std::string& name) {
  if (name.empty()) return false;
  if (name[0] < 'a' || name[0] > 'z') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Lambda structure
// ---------------------------------------------------------------------------

struct Lambda {
  int line = 0;
  bool default_ref_capture = false;    // [&] or [&, x]
  bool default_copy_capture = false;   // [=] or [=, &x]
  bool explicit_ref_capture = false;   // [&x] (incl. [&x = init])
  bool captures_this = false;          // [this]
  int ref_param_line = 0;              // 0 = none
  bool returns_task = false;           // -> sim::Task<...> / Future
  bool body_has_co = false;            // co_await / co_return / co_yield
  bool IsCoroutine() const { return returns_task || body_has_co; }
};

// True when the `[` at `i` opens a lambda capture list (vs subscript or
// attribute). Heuristic: a subscript follows a value (identifier, `)`, `]`,
// literal); an attribute is `[[`.
bool IsLambdaIntro(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 < toks.size() && IsPunct(toks[i + 1], "[")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  switch (prev.kind) {
    case TokKind::kIdentifier:
      return IsExprKeyword(prev.text);
    case TokKind::kNumber:
    case TokKind::kString:
      return false;
    case TokKind::kPunct:
      return !(prev.text == ")" || prev.text == "]");
  }
  return false;
}

// Parses the lambda whose `[` is at `i`; advances to just past its body so
// nested lambdas are only reported once (the caller recurses via re-scan of
// body tokens — body token range is returned through `body_begin/end`).
bool ParseLambda(const std::vector<Token>& toks, std::size_t i, Lambda* out,
                 std::size_t* body_begin, std::size_t* body_end) {
  out->line = toks[i].line;
  // Capture list.
  std::size_t j = i + 1;
  int depth = 1;
  bool at_item_start = true;  // just after `[` or a top-level `,`
  for (; j < toks.size() && depth > 0; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "[" || t.text == "(") ++depth;
      if (t.text == "]" || t.text == ")") {
        --depth;
        continue;
      }
    }
    if (depth != 1) continue;
    if (IsPunct(t, ",")) {
      at_item_start = true;
      continue;
    }
    if (at_item_start) {
      if (IsPunct(t, "&")) {
        const bool bare = j + 1 < toks.size() &&
                          (IsPunct(toks[j + 1], ",") ||
                           IsPunct(toks[j + 1], "]"));
        if (bare) {
          out->default_ref_capture = true;
        } else {
          out->explicit_ref_capture = true;
        }
      } else if (IsPunct(t, "=")) {
        const bool bare = j + 1 < toks.size() &&
                          (IsPunct(toks[j + 1], ",") ||
                           IsPunct(toks[j + 1], "]"));
        if (bare) out->default_copy_capture = true;
      } else if (IsId(t, "this")) {
        out->captures_this = true;
      }
      at_item_start = false;
    }
  }
  if (depth > 0) return false;  // unterminated; not a lambda after all

  // Optional parameter list.
  if (j < toks.size() && IsPunct(toks[j], "(")) {
    const std::size_t close = MatchParen(toks, j);
    if (close == kNpos) return false;
    out->ref_param_line = FindRefParamLine(toks, j, close - 1);
    j = close;
  }
  // Specifiers / trailing return type, up to the body `{`.
  for (; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (IsPunct(t, "{")) break;
    if (IsPunct(t, ";") || IsPunct(t, ")") || IsPunct(t, ",") ||
        IsPunct(t, "]") || IsPunct(t, "}")) {
      return false;  // e.g. `[]` used as an empty attribute-like construct
    }
    if (IsId(t, "Task") || IsId(t, "Future")) out->returns_task = true;
  }
  if (j >= toks.size()) return false;
  const std::size_t end = MatchBrace(toks, j);
  if (end == kNpos) return false;
  *body_begin = j + 1;
  *body_end = end - 1;
  for (std::size_t k = *body_begin; k < *body_end; ++k) {
    if (IsCoroKeyword(toks[k])) {
      out->body_has_co = true;
      break;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule documentation (--explain)
// ---------------------------------------------------------------------------

const std::vector<RuleDoc>& RuleDocs() {
  static const std::vector<RuleDoc> kDocs = {
      {"coro-capture-default",
       "no [&]/[=] default captures in coroutine lambdas",
       "A lambda coroutine stores its captures in the closure object, not in "
       "the coroutine frame. If the closure is destroyed before the frame "
       "finishes (it usually is: temporaries die at the end of the full "
       "expression that started the coroutine), every capture dangles after "
       "the first co_await. Default captures make the hazard invisible at "
       "the call site, so they are banned outright in any lambda that "
       "contains co_await/co_return/co_yield or returns sim::Task/"
       "sim::Future.",
       "sim->Spawn([&]() -> sim::Task<void> { co_await sim->Delay(d); }());",
       "pass state as coroutine parameters: "
       "sim->Spawn([](Simulation* s, Duration d) -> sim::Task<void> { "
       "co_await s->Delay(d); }(sim, d));"},
      {"coro-capture-ref",
       "no by-reference or `this` captures in coroutine lambdas",
       "Same lifetime hazard as coro-capture-default, with the reference "
       "spelled out: `[&x]` and `[this]` live in the closure object, which "
       "rarely outlives the first suspension point. Capture by value, or "
       "pass the object as an explicit coroutine parameter (parameters are "
       "copied/moved into the frame and live exactly as long as it does).",
       "auto t = [&cfg]() -> sim::Task<int> { co_return cfg.n; }();",
       "auto t = [](const Config cfg) -> sim::Task<int> { co_return cfg.n; "
       "}(cfg);"},
      {"coro-ref-param",
       "no reference parameters on named coroutine functions",
       "A coroutine's reference parameter is stored in the frame as a "
       "reference; the referent must outlive every suspension of the frame, "
       "which the caller cannot see from the signature. Take parameters by "
       "value (strings and small structs move cheaply) so the frame owns "
       "them. Out-parameters that provably outlive the frame may be "
       "annotated `// dufs-lint: allow(coro-ref-param)` with a reason. "
       "Two exemptions: lambda parameters (an immediately-invoked coroutine "
       "lambda whose caller drives it to completion is the blessed way to "
       "pass state without capturing) and `Simulation&` (no frame outlives "
       "the Simulation that drives it).",
       "sim::Task<Status> Lookup(const std::string& path);",
       "sim::Task<Status> Lookup(std::string path);"},
      {"sim-time-source",
       "no wall-clock or process entropy in sim code",
       "The simulator must replay bit-for-bit from a seed: metrics and trace "
       "exports are compared byte-for-byte in CI. std::random_device, "
       "rand()/srand(), system_clock/steady_clock and friends smuggle "
       "process-global nondeterminism into the run. Use the owning "
       "Simulation's Rng (src/common/rng.h) and sim time "
       "(Simulation::now()) instead; src/common/rng.* is the only file "
       "allowed to touch platform entropy.",
       "auto jitter = rand() % 10;",
       "auto jitter = sim.rng().NextBelow(10);"},
      {"task-discard",
       "no discarded sim::Task return values",
       "A sim::Task is lazy: dropping one on the floor destroys the frame "
       "before it ever runs, silently skipping the work ([[nodiscard]] "
       "catches plain calls; this rule also covers member calls and macro "
       "expansions the attribute misses). co_await it, Spawn() it, or hold "
       "it.",
       "client.Mkdir(\"/a\", 0755);",
       "co_await client.Mkdir(\"/a\", 0755);  // or sim.Spawn(...)"},
      {"include-hygiene",
       "#pragma once in headers, self-include first, no ../ includes",
       "Headers must open with #pragma once before any code. A src/ .cc "
       "file that has a same-named header must include it first (proves the "
       "header is self-contained). Includes must not path-escape with "
       "\"../\" — spell the project-relative path. Headers must not contain "
       "`using namespace`.",
       "#include \"../common/log.h\"",
       "#include \"common/log.h\""},
      {"trace-span-name",
       "span/metric names are lower-case dotted literals",
       "Span and metric names are compared byte-for-byte across runs and "
       "land in exported JSON keys; they follow [a-z][a-z0-9._-]* "
       "(\"zk-rpc\", \"op.stat_ns\"). Upper case, spaces, or empty names "
       "break the convention and the export diffing tools.",
       "obs::Span span(obs_, \"ZK RPC\", \"zk\");",
       "obs::Span span(obs_, \"zk-rpc\", \"zk\");"},
      {"obs-key-literal",
       "metric/span keys are string literals at the call site",
       "Registry keys and span names land in byte-compared JSON exports and "
       "are grepped by offline tooling (tracestats classifies spans by "
       "name). A key assembled at runtime — concatenation, to_string(), "
       "c_str() — makes the key set data-dependent, so neither the linter "
       "nor a reader of the call site can enumerate it, and one stray value "
       "explodes export cardinality. Pass a fixed literal to counter()/"
       "gauge()/histogram()/timer(), to span constructors, and to "
       "prof::ProfScope frames (whose names additionally feed the "
       "async-signal-safe profiler, which stores the pointer — a temporary "
       "from c_str() would dangle inside a sample); put the variable part "
       "in a span arg, a per-node Scope, or prof::InternName(). "
       "(src/obs/ itself is exempt: its forwarding shims take the key as a "
       "parameter by design.)",
       "obs_.counter(\"op.\" + phase + \"_count\").Inc();",
       "obs_.counter(\"op.stat_count\").Inc();  // one literal per phase"},
      {"sim-hot-alloc",
       "no std::function or node/heap containers in src/sim/",
       "The simulator core executes tens of millions of events per wall "
       "second; a std::function construction, deque block, or map/set node "
       "per event puts a general-purpose heap allocation on the hot path "
       "and erases the gains of the slab arena. In src/sim/, use the arena "
       "(sim/arena.h), SmallQueue (sim/small_queue.h), intrusive lists, or "
       "a template parameter for callables. Genuinely cold uses (teardown, "
       "far-future overflow levels) may suppress with a stated reason.",
       "std::deque<std::coroutine_handle<>> waiters;  // in src/sim/",
       "SmallQueue<std::coroutine_handle<>, 4> waiters;"},
      {"obs-hot-path-alloc",
       "no heap containers or std::string in flight-recorder/SLO code",
       "The flight recorder and sliding-window digests run on every span "
       "completion and every op sample in UNTRACED runs — their whole point "
       "is being cheap enough to leave always-on. A std::string key, map "
       "node, or std::function there puts a heap allocation on that path "
       "and invalidates the overhead budget (DESIGN.md §11). In src/obs/"
       "flight* and src/obs/slo*, keep records POD, use `const char*` "
       "literals for names, and fixed arrays or pre-reserved flat vectors "
       "for storage. Cold paths (dump serialization) suppress with a stated "
       "reason.",
       "std::string name;  // in FlightRecorder::Record",
       "const char* name;  // literal owned by the call site"},
      {"coro-ref-escape",
       "no reference escapes into a coroutine frame across a wrapper",
       "A coroutine frame can outlive the caller's scope the moment it "
       "suspends. Passing `&local`, a `[&]` lambda, or forwarding a "
       "reference parameter through a non-coroutine wrapper into a "
       "Task-returning callee stores a dangling pointer in that frame. The "
       "per-file coro-ref-param rule sees only the callee's signature; this "
       "interprocedural rule follows the argument through the call graph. "
       "Pass by value, or co_await the call so the frame dies before the "
       "referent does.",
       "void Kick(Client& c, std::string& p) { StartRename(c, p); }  "
       "// StartRename -> Task RenameLoop(Client&, std::string& path)",
       "void Kick(Client& c, std::string p) { StartRename(c, std::move(p)); "
       "}"},
      {"task-discard-transitive",
       "no discarded sim::Task through wrapper call chains",
       "task-discard catches `client.Mkdir(...);`. But a Task smuggled "
       "through `auto Retry() { return Mkdir(...); }` is just as lazy: "
       "discarding `Retry();` destroys the frame before it ever runs. This "
       "rule propagates Task-ness through `auto`-returning wrappers that "
       "return a Task-returning call, then flags discards of any name in "
       "the closure.",
       "auto Retry() { return client.Mkdir(\"/a\", 0755); }\nRetry();",
       "co_await Retry();  // or sim.Spawn(...), or hold the Task"},
      {"det-export-order",
       "no unordered-container iteration on byte-compared export paths",
       "CI byte-compares metrics.json, trace exports, incident dumps, and "
       "wire snapshots across runs and stdlib implementations. "
       "std::unordered_map/set iteration order is an implementation detail "
       "of the hash table: the same data serializes to different bytes on "
       "libstdc++ vs libc++ (or across versions). Any loop over an "
       "unordered container that feeds a serialization sink — directly, "
       "inside a sink, or anywhere a sink can reach through the call graph "
       "— must sort keys first or use an ordered container.",
       "for (SessionId s : sessions_) w.WriteU64(s);  "
       "// sessions_ is unordered_set, inside Snapshot()",
       "std::vector<SessionId> ids(sessions_.begin(), sessions_.end());\n"
       "std::sort(ids.begin(), ids.end());\n"
       "for (SessionId s : ids) w.WriteU64(s);"},
      {"await-holding-ref",
       "no container reference/iterator held across a co_await",
       "While a coroutine is suspended, anything else may run: the "
       "container behind an iterator or element reference can rehash, "
       "reallocate, or erase. Using the handle after resuming is "
       "use-after-free that ASan only catches on the unlucky interleaving. "
       "Re-acquire the iterator/reference after the co_await (and handle "
       "the element having vanished), or copy the value out before "
       "suspending. Warn-severity: flagged code is suspect, not always "
       "wrong — suppress with a reason when the container is provably "
       "quiescent.",
       "auto it = map_.find(k);\nco_await gate_.Wait();\nUse(it->second);",
       "co_await gate_.Wait();\nauto it = map_.find(k);\nif (it != "
       "map_.end()) Use(it->second);",
       Severity::kWarn},
  };
  return kDocs;
}

Severity RuleSeverity(const std::string& rule) {
  for (const RuleDoc& doc : RuleDocs()) {
    if (rule == doc.id) return doc.severity;
  }
  return Severity::kError;
}

const char* SeverityName(Severity s) {
  return s == Severity::kWarn ? "warn" : "error";
}

// ---------------------------------------------------------------------------
// Pass 1: declaration collection
// ---------------------------------------------------------------------------

namespace {

// Historical task-discard declaration scan, kept verbatim so the
// TaskFunctionNames() set (and with it the task-discard findings) is
// unchanged by the cross-TU rework.
void CollectTaskDecls(const LexedFile& lexed, FileArtifacts* a) {
  const auto& toks = lexed.tokens;
  std::set<std::size_t> claimed;

  // Task/Future-returning function declarations:
  //   [sim::] Task < ... > [Qualified::]Name ( params ) {;|{|const|...}
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(IsId(toks[i], "Task") || IsId(toks[i], "Future"))) continue;
    if (!IsPunct(toks[i + 1], "<")) continue;
    std::size_t j = MatchAngle(toks, i + 1);
    if (j == kNpos || j >= toks.size()) continue;
    // Qualified declarator name.
    std::size_t name_tok = kNpos;
    while (j + 1 < toks.size() && toks[j].kind == TokKind::kIdentifier &&
           !IsExprKeyword(toks[j].text)) {
      name_tok = j;
      if (IsPunct(toks[j + 1], "::")) {
        j += 2;
      } else {
        ++j;
        break;
      }
    }
    if (name_tok == kNpos || j >= toks.size() || !IsPunct(toks[j], "(")) {
      continue;
    }
    claimed.insert(name_tok);
    a->task_decl_names.push_back(toks[name_tok].text);
  }

  // Non-Task declarations of the same shape (`Type Name(`): names seen here
  // are ambiguous for task-discard and get dropped from the set.
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || IsExprKeyword(toks[i].text)) {
      continue;
    }
    if (!IsPunct(toks[i + 1], "(")) continue;
    if (claimed.count(i) > 0) continue;
    const Token& prev = toks[i - 1];
    const bool type_before =
        (prev.kind == TokKind::kIdentifier && !IsExprKeyword(prev.text)) ||
        IsPunct(prev, ">") || IsPunct(prev, ">>") || IsPunct(prev, "*") ||
        IsPunct(prev, "&");
    if (type_before) a->non_task_decl_names.push_back(toks[i].text);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 2: per-file rules
// ---------------------------------------------------------------------------

namespace {

class FileLint {
 public:
  explicit FileLint(const LexedFile& f) : f_(f) {}

  void Run(std::vector<Finding>* out) {
    Lambdas();
    CoroutineSignatures();
    TimeSources();
    IncludeHygiene();
    ObsNames();
    ObsKeyLiterals();
    SimHotAllocs();
    ObsHotPathAllocs();
    Filter(out);
  }

 private:
  void Add(int line, const char* rule, std::string message) {
    raw_.push_back(Finding{f_.path, line, rule, std::move(message)});
  }

  void Lambdas() {
    const auto& toks = f_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!IsPunct(toks[i], "[") || !IsLambdaIntro(toks, i)) continue;
      Lambda lam;
      std::size_t body_begin = 0, body_end = 0;
      if (!ParseLambda(toks, i, &lam, &body_begin, &body_end)) continue;
      if (!lam.IsCoroutine()) continue;
      if (lam.default_ref_capture) {
        Add(lam.line, "coro-capture-default",
            "[&] default capture in a coroutine lambda: captures live in "
            "the closure object and dangle after the first suspension");
      }
      if (lam.default_copy_capture) {
        Add(lam.line, "coro-capture-default",
            "[=] default capture in a coroutine lambda: the closure object "
            "(and its copies) dies before the frame; capture nothing and "
            "pass parameters instead");
      }
      if (lam.explicit_ref_capture) {
        Add(lam.line, "coro-capture-ref",
            "by-reference capture in a coroutine lambda: the reference "
            "lives in the closure object, not the frame");
      }
      if (lam.captures_this) {
        Add(lam.line, "coro-capture-ref",
            "`this` capture in a coroutine lambda: the closure object dies "
            "before the frame; pass the object as a parameter");
      }
      // Lambda parameters are deliberately exempt from coro-ref-param:
      // the repo's blessed pattern is an immediately-invoked lambda whose
      // referents are pinned by the caller that drives it (RunTask), and
      // parameters are exactly where the capture rules send state.
    }
  }

  void CoroutineSignatures() {
    const auto& toks = f_.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(IsId(toks[i], "Task") || IsId(toks[i], "Future"))) continue;
      if (!IsPunct(toks[i + 1], "<")) continue;
      std::size_t j = MatchAngle(toks, i + 1);
      if (j == kNpos || j >= toks.size()) continue;
      std::size_t name_tok = kNpos;
      while (j + 1 < toks.size() && toks[j].kind == TokKind::kIdentifier &&
             !IsExprKeyword(toks[j].text)) {
        name_tok = j;
        if (IsPunct(toks[j + 1], "::")) {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      if (name_tok == kNpos || j >= toks.size() || !IsPunct(toks[j], "(")) {
        continue;
      }
      const std::size_t close = MatchParen(toks, j);
      if (close == kNpos) continue;
      const int ref_line = FindRefParamLine(toks, j, close - 1);
      if (ref_line != 0) {
        Add(ref_line, "coro-ref-param",
            "reference parameter on coroutine function `" +
                toks[name_tok].text +
                "`: the referent must outlive every suspension of the "
                "frame; take it by value (or annotate a provably-safe "
                "out-param)");
      }
    }
  }

  void TimeSources() {
    if (f_.path.find("common/rng.") != std::string::npos) return;
    const auto& toks = f_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;
      if (IsBannedTimeSourceType(t.text)) {
        Add(t.line, "sim-time-source",
            "`" + t.text +
                "` is wall-clock/process entropy; sim code must use "
                "Simulation::now()/rng() (src/common/rng.h)");
        continue;
      }
      if (IsBannedTimeSourceCall(t.text) && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")) {
        const bool member_call =
            i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
        if (!member_call) {
          Add(t.line, "sim-time-source",
              "`" + t.text +
                  "()` is wall-clock/process entropy; sim code must use "
                  "Simulation::now()/rng() (src/common/rng.h)");
        }
      }
    }
  }

  void IncludeHygiene() {
    const bool is_header = IsHeaderPath(f_.path);
    if (is_header) {
      if (!f_.has_pragma_once) {
        Add(1, "include-hygiene", "header is missing #pragma once");
      } else if (f_.first_code_line != 0 &&
                 f_.pragma_once_line > f_.first_code_line) {
        Add(f_.pragma_once_line, "include-hygiene",
            "#pragma once must precede all code in the header");
      }
      const auto& toks = f_.tokens;
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (IsId(toks[i], "using") && IsId(toks[i + 1], "namespace")) {
          Add(toks[i].line, "include-hygiene",
              "`using namespace` in a header leaks into every includer");
        }
      }
    }
    for (const auto& inc : f_.includes) {
      if (inc.path.find("../") != std::string::npos) {
        Add(inc.line, "include-hygiene",
            "include path escapes with \"../\"; spell the project-relative "
            "path");
      }
    }
    // Self-include-first for src/ implementation files.
    if (!is_header && EndsWith(f_.path, ".cc") &&
        f_.path.rfind("src/", 0) == 0 && !f_.includes.empty()) {
      std::string self = f_.path.substr(4);  // drop "src/"
      self.replace(self.size() - 3, 3, ".h");
      for (std::size_t k = 0; k < f_.includes.size(); ++k) {
        if (f_.includes[k].path == self && k != 0) {
          Add(f_.includes[k].line, "include-hygiene",
              "self header \"" + self +
                  "\" must be the first include (proves it is "
                  "self-contained)");
        }
      }
    }
  }

  void ObsNames() {
    const auto& toks = f_.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;
      std::size_t open = kNpos;
      if (t.text == "counter" || t.text == "timer" || t.text == "gauge" ||
          t.text == "histogram") {
        if (IsPunct(toks[i + 1], "(")) open = i + 1;
      } else if (t.text == "Span" || t.text == "Root" ||
                 t.text == "ProfScope") {
        if (t.text == "Root" &&
            !(i >= 2 && IsPunct(toks[i - 1], "::") && IsId(toks[i - 2], "Span"))) {
          continue;
        }
        if (IsPunct(toks[i + 1], "(")) {
          open = i + 1;  // direct construction / Span::Root call
        } else if (i + 2 < toks.size() &&
                   toks[i + 1].kind == TokKind::kIdentifier &&
                   IsPunct(toks[i + 2], "(")) {
          open = i + 2;  // `Span span(...)` variable declaration
        }
      }
      if (open == kNpos) continue;
      const std::size_t close = MatchParen(toks, open);
      if (close == kNpos) continue;
      int depth = 0;
      for (std::size_t k = open; k < close; ++k) {
        const Token& a = toks[k];
        if (a.kind == TokKind::kPunct) {
          if (a.text == "(") ++depth;
          if (a.text == ")") --depth;
        }
        if (depth != 1 || a.kind != TokKind::kString) continue;
        if (a.text.empty() || a.text[0] == '\'') continue;  // char literal
        const std::string value = StringValue(a.text);
        if (!IsValidObsName(value)) {
          Add(a.line, "trace-span-name",
              "span/metric name \"" + value +
                  "\" must match [a-z][a-z0-9._-]* (lower-case dotted)");
        }
      }
    }
  }

  // Metric/span keys must be literals at the call site. Two shapes:
  //  - registry lookups `x.counter("k")` / `->timer("k")` etc.: the first
  //    argument must be exactly one string literal;
  //  - span construction: no runtime-name indicators (`+`, c_str(),
  //    to_string(), append(), format()) at depth 1 of the argument list.
  //    A bare identifier is tolerated there because the blessed OpScope
  //    helper forwards a `const char* name` parameter that is itself
  //    always a literal at ITS call sites.
  // src/obs/ is exempt: its shims forward `key` parameters by design.
  void ObsKeyLiterals() {
    if (f_.path.find("src/obs/") != std::string::npos) return;
    const auto& toks = f_.tokens;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text == "counter" || t.text == "gauge" || t.text == "timer" ||
          t.text == "histogram") {
        // Member calls only: `Counter counter(...)` declarations and free
        // functions that happen to share the name are not registry lookups.
        if (!IsPunct(toks[i - 1], ".") && !IsPunct(toks[i - 1], "->")) {
          continue;
        }
        if (!IsPunct(toks[i + 1], "(")) continue;
        const std::size_t open = i + 1;
        const std::size_t close = MatchParen(toks, open);
        if (close == kNpos) continue;
        // First depth-1 argument: tokens in (open, first depth-1 comma).
        std::size_t first_end = close - 1;
        int depth = 0;
        for (std::size_t k = open; k < close - 1; ++k) {
          const Token& a = toks[k];
          if (a.kind != TokKind::kPunct) continue;
          if (a.text == "(" || a.text == "[" || a.text == "{") ++depth;
          if (a.text == ")" || a.text == "]" || a.text == "}") --depth;
          if (depth == 1 && a.text == "," && k > open) {
            first_end = k;
            break;
          }
        }
        if (first_end == open + 1) continue;  // no-arg call: not a lookup
        const bool single_literal =
            first_end == open + 2 && toks[open + 1].kind == TokKind::kString &&
            !toks[open + 1].text.empty() && toks[open + 1].text[0] != '\'';
        if (!single_literal) {
          Add(t.line, "obs-key-literal",
              "key passed to `" + t.text +
                  "()` must be a single string literal: runtime-built keys "
                  "make the export key set data-dependent");
        }
      } else if (t.text == "Span" || t.text == "Root" ||
                 t.text == "ProfScope") {
        // ProfScope frame names are held by pointer inside profiler samples,
        // so a runtime-assembled name is not just unenumerable — it dangles.
        if (t.text == "Root" &&
            !(i >= 2 && IsPunct(toks[i - 1], "::") &&
              IsId(toks[i - 2], "Span"))) {
          continue;
        }
        std::size_t open = kNpos;
        if (IsPunct(toks[i + 1], "(")) {
          open = i + 1;
        } else if (i + 2 < toks.size() &&
                   toks[i + 1].kind == TokKind::kIdentifier &&
                   IsPunct(toks[i + 2], "(")) {
          open = i + 2;
        }
        if (open == kNpos) continue;
        const std::size_t close = MatchParen(toks, open);
        if (close == kNpos) continue;
        int depth = 0;
        for (std::size_t k = open; k < close; ++k) {
          const Token& a = toks[k];
          if (a.kind == TokKind::kPunct) {
            if (a.text == "(") ++depth;
            if (a.text == ")") --depth;
          }
          if (depth != 1) continue;
          const bool builder =
              IsPunct(a, "+") ||
              (a.kind == TokKind::kIdentifier &&
               (a.text == "c_str" || a.text == "to_string" ||
                a.text == "append" || a.text == "format"));
          if (builder) {
            Add(a.line, "obs-key-literal",
                "span name assembled at runtime (`" + a.text +
                    "`): span names must be fixed literals; put the "
                    "variable part in a span arg");
            break;
          }
        }
      }
    }
  }

  // std::function / allocating-container use inside the simulator core.
  // Path-scoped: every method in src/sim/ is hot-path by default (the event
  // loop or something it inlines); cold spots suppress with a reason.
  void SimHotAllocs() {
    if (f_.path.find("src/sim/") == std::string::npos) return;
    const auto& toks = f_.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsId(toks[i], "std") || !IsPunct(toks[i + 1], "::")) continue;
      const Token& t = toks[i + 2];
      if (t.kind != TokKind::kIdentifier || !IsHotAllocBannedType(t.text)) {
        continue;
      }
      Add(t.line, "sim-hot-alloc",
          "`std::" + t.text +
              "` heap-allocates per operation; in src/sim/ use the slab "
              "arena (sim/arena.h), SmallQueue (sim/small_queue.h), an "
              "intrusive list, or a template callable parameter");
    }
  }

  // Always-on observability hot path: the flight recorder admits a record
  // per completed span and the SLO digests observe every op sample, in
  // untraced runs too. Same banned set as src/sim/, plus std::string —
  // names there must be `const char*` literals. Dump serialization is the
  // sanctioned cold path and suppresses with a reason.
  void ObsHotPathAllocs() {
    const bool scoped = f_.path.find("src/obs/flight") != std::string::npos ||
                        f_.path.find("src/obs/slo") != std::string::npos;
    if (!scoped) return;
    const auto& toks = f_.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsId(toks[i], "std") || !IsPunct(toks[i + 1], "::")) continue;
      const Token& t = toks[i + 2];
      if (t.kind != TokKind::kIdentifier) continue;
      if (!IsHotAllocBannedType(t.text) && t.text != "string") continue;
      Add(t.line, "obs-hot-path-alloc",
          "`std::" + t.text +
              "` on the always-on flight-recorder/SLO path: records are "
              "POD, names are `const char*` literals, storage is fixed "
              "arrays or pre-reserved flat vectors (see src/obs/flight.h); "
              "dump serialization may suppress with a reason");
    }
  }

  // Applies `// dufs-lint: allow(...)` suppressions: a trailing comment
  // covers its own line; a comment alone on a line covers the next line.
  void Filter(std::vector<Finding>* out) {
    for (auto& finding : raw_) {
      bool suppressed = false;
      for (const auto& sup : f_.suppressions) {
        const int covered = sup.alone ? sup.line + 1 : sup.line;
        if (covered != finding.line) continue;
        for (const auto& rule : sup.rules) {
          if (rule == "all" || rule == finding.rule) {
            suppressed = true;
            break;
          }
        }
        if (suppressed) break;
      }
      if (!suppressed) out->push_back(std::move(finding));
    }
  }

  const LexedFile& f_;
  std::vector<Finding> raw_;
};

bool IsSuppressed(const Finding& finding,
                  const std::vector<Suppression>& sups) {
  for (const auto& sup : sups) {
    const int covered = sup.alone ? sup.line + 1 : sup.line;
    if (covered != finding.line) continue;
    for (const auto& rule : sup.rules) {
      if (rule == "all" || rule == finding.rule) return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Stage A: per-file analysis
// ---------------------------------------------------------------------------

FileArtifacts AnalyzeFile(std::string path, const std::string& content) {
  FileArtifacts a;
  const LexedFile lexed = Lex(std::move(path), content);
  a.path = lexed.path;
  CollectTaskDecls(lexed, &a);
  FileLint(lexed).Run(&a.local);
  a.summary = BuildFileSummary(lexed);
  a.suppressions = lexed.suppressions;
  return a;
}

// ---------------------------------------------------------------------------
// Stage B: whole-tree run
// ---------------------------------------------------------------------------

void Linter::AddFile(std::string path, const std::string& content) {
  files_.push_back(AnalyzeFile(std::move(path), content));
}

void Linter::AddArtifacts(FileArtifacts artifacts) {
  files_.push_back(std::move(artifacts));
}

std::vector<std::string> Linter::TaskFunctionNames() const {
  std::set<std::string> names;
  for (const auto& a : files_) {
    names.insert(a.task_decl_names.begin(), a.task_decl_names.end());
  }
  for (const auto& a : files_) {
    for (const auto& n : a.non_task_decl_names) names.erase(n);
  }
  return {names.begin(), names.end()};
}

std::vector<Finding> Linter::Run() {
  std::vector<Finding> out;
  for (const auto& a : files_) {
    out.insert(out.end(), a.local.begin(), a.local.end());
  }

  SymbolTable sym;
  for (const auto& a : files_) sym.Add(&a.summary);
  const CallGraph graph(sym);
  const auto names = TaskFunctionNames();
  const std::set<std::string> direct_task(names.begin(), names.end());

  std::vector<Finding> flow;
  RunDataflow(sym, graph, direct_task, &flow);

  std::map<std::string, const std::vector<Suppression>*> sups;
  for (const auto& a : files_) sups[a.path] = &a.suppressions;
  for (auto& finding : flow) {
    const auto it = sups.find(finding.file);
    if (it != sups.end() && IsSuppressed(finding, *it->second)) continue;
    out.push_back(std::move(finding));
  }

  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dufs::lint
