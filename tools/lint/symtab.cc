#include "symtab.h"

#include <map>
#include <utility>

#include "token_util.h"

namespace dufs::lint {

namespace {

bool IsUnorderedTypeName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

bool IsIteratorMethod(const std::string& s) {
  return s == "begin" || s == "cbegin" || s == "rbegin" || s == "find" ||
         s == "lower_bound" || s == "upper_bound" || s == "equal_range";
}

bool IsElementAccessMethod(const std::string& s) {
  return s == "at" || s == "front" || s == "back";
}

// `using NAME = ... unordered_xxx ...;` aliases plus every entity declared
// with an unordered type (directly or via such an alias).
void CollectUnorderedNames(const std::vector<Token>& toks,
                           std::vector<std::string>* out) {
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!IsId(toks[i], "using")) continue;
    if (toks[i + 1].kind != TokKind::kIdentifier) continue;
    if (!IsPunct(toks[i + 2], "=")) continue;
    for (std::size_t j = i + 3; j < toks.size(); ++j) {
      if (IsPunct(toks[j], ";")) break;
      if (toks[j].kind == TokKind::kIdentifier &&
          IsUnorderedTypeName(toks[j].text)) {
        aliases.insert(toks[i + 1].text);
        break;
      }
    }
  }
  std::set<std::string> seen;
  auto record = [out, &seen](const std::string& name) {
    if (seen.insert(name).second) out->push_back(name);
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (IsUnorderedTypeName(toks[i].text) && IsPunct(toks[i + 1], "<")) {
      const std::size_t j = MatchAngle(toks, i + 1);
      if (j != kNpos && j < toks.size() &&
          toks[j].kind == TokKind::kIdentifier &&
          !(j + 1 < toks.size() && IsPunct(toks[j + 1], "("))) {
        record(toks[j].text);
      }
    } else if (aliases.count(toks[i].text) > 0 &&
               toks[i + 1].kind == TokKind::kIdentifier &&
               i + 2 < toks.size() &&
               (IsPunct(toks[i + 2], ";") || IsPunct(toks[i + 2], "=") ||
                IsPunct(toks[i + 2], "{"))) {
      record(toks[i + 1].text);
    }
  }
}

// Splits the argument/parameter list `(open..close)` into depth-1 item
// ranges (begin, end) excluding the enclosing parens and separating commas.
std::vector<std::pair<std::size_t, std::size_t>> SplitDepthOne(
    const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> items;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<") {
        // `<` is unreliable (less-than); only treat it as nesting when it
        // closes within the list — otherwise ignore it.
        if (t.text != "<") ++depth;
      }
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth == 1 && t.text == ",") {
        items.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  if (close > 0 && begin < close - 1) items.emplace_back(begin, close - 1);
  if (begin == open + 1 && items.empty() && close - 1 > begin) {
    items.emplace_back(begin, close - 1);
  }
  return items;
}

void ParseParams(const std::vector<Token>& toks, std::size_t open,
                 std::size_t close, std::vector<Param>* out) {
  for (const auto& [b, e] : SplitDepthOne(toks, open, close)) {
    if (b >= e) continue;
    Param p;
    p.line = toks[b].line;
    std::size_t stop = e;  // default values are not part of the type/name
    for (std::size_t i = b; i < e; ++i) {
      if (IsPunct(toks[i], "=")) {
        stop = i;
        break;
      }
    }
    std::vector<std::size_t> idents;
    for (std::size_t i = b; i < stop; ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kIdentifier) {
        if (t.text == "Simulation") p.is_simulation = true;
        if (!IsExprKeyword(t.text)) idents.push_back(i);
        continue;
      }
      if (t.kind != TokKind::kPunct || i == b) continue;
      const Token& prev = toks[i - 1];
      const bool after_type =
          (prev.kind == TokKind::kIdentifier && !IsExprKeyword(prev.text)) ||
          IsPunct(prev, ">") || IsPunct(prev, ">>") || IsPunct(prev, "*");
      if (t.text == "&" && after_type) p.is_ref = true;
      if (t.text == "*" && after_type) p.is_ptr = true;
    }
    // With two or more identifiers the last one is the parameter name;
    // a single identifier is an unnamed `(T)` parameter.
    if (idents.size() >= 2) p.name = toks[idents.back()].text;
    out->push_back(std::move(p));
  }
}

// Local `auto NAME = other;` / `auto NAME = std::move(other);` bindings:
// iterating NAME iterates (the moved/copied contents of) `other`, so
// container identity resolves through them — `auto p = std::move(map_);
// for (auto& kv : p)` is still a hash-order walk of `map_`'s contents.
std::map<std::string, std::string> LocalAliases(const std::vector<Token>& toks,
                                                std::size_t b, std::size_t e) {
  std::map<std::string, std::string> out;
  for (std::size_t k = b; k + 3 < e; ++k) {
    if (!IsId(toks[k], "auto")) continue;
    std::size_t m = k + 1;
    if (IsPunct(toks[m], "&")) ++m;
    if (m + 1 >= e || toks[m].kind != TokKind::kIdentifier ||
        !IsPunct(toks[m + 1], "=")) {
      continue;
    }
    std::size_t r = m + 2;
    if (r + 4 < e && IsId(toks[r], "std") && IsPunct(toks[r + 1], "::") &&
        IsId(toks[r + 2], "move") && IsPunct(toks[r + 3], "(")) {
      r += 4;
      if (toks[r].kind == TokKind::kIdentifier && r + 1 < e &&
          IsPunct(toks[r + 1], ")")) {
        out[toks[m].text] = toks[r].text;
      }
    } else if (r + 1 < e && toks[r].kind == TokKind::kIdentifier &&
               IsPunct(toks[r + 1], ";")) {
      out[toks[m].text] = toks[r].text;
    }
  }
  return out;
}

// The identifier a (range-)for iterates: last identifier in [b, e) that is
// not a call and not inside a subscript.
std::string Iterated(const std::vector<Token>& toks, std::size_t b,
                     std::size_t e) {
  std::string name;
  int bracket = 0;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "[") ++bracket;
      if (t.text == "]") --bracket;
      continue;
    }
    if (bracket != 0 || t.kind != TokKind::kIdentifier) continue;
    if (IsExprKeyword(t.text) || t.text == "auto" || t.text == "const" ||
        t.text == "std") {
      continue;
    }
    if (i + 1 < e && IsPunct(toks[i + 1], "(")) continue;  // call result
    name = t.text;
  }
  return name;
}

// Collects the callee names of every call expression in [b, e).
void CollectCallNames(const std::vector<Token>& toks, std::size_t b,
                      std::size_t e, std::vector<std::string>* out) {
  for (std::size_t k = b; k + 1 < e; ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdentifier || IsControlKeyword(t.text) ||
        IsExprKeyword(t.text)) {
      continue;
    }
    if (!IsPunct(toks[k + 1], "(")) continue;
    if (k > b) {
      const Token& prev = toks[k - 1];
      // `Type name(...)` is a declaration, not a call.
      if ((prev.kind == TokKind::kIdentifier && !IsExprKeyword(prev.text)) ||
          IsPunct(prev, ">")) {
        continue;
      }
    }
    out->push_back(t.text);
  }
}

class Extractor {
 public:
  explicit Extractor(const LexedFile& f) : f_(f), toks_(f.tokens) {}

  FileSummary Run() {
    FileSummary out;
    out.path = f_.path;
    CollectUnorderedNames(toks_, &out.unordered_names);
    CollectFunctions(&out);
    CollectNonTaskDecls(&out);
    CollectDiscardSites(&out);
    return out;
  }

 private:
  // --- function declarations/definitions ---------------------------------

  void CollectFunctions(FileSummary* out) {
    for (std::size_t i = 1; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdentifier || IsExprKeyword(t.text) ||
          IsControlKeyword(t.text)) {
        continue;
      }
      if (!IsPunct(toks_[i + 1], "(")) continue;

      // Walk back over `ns::C::` qualification to the return-type end.
      std::string qualifier;
      std::size_t ret_end = i;
      while (ret_end >= 2 && IsPunct(toks_[ret_end - 1], "::") &&
             toks_[ret_end - 2].kind == TokKind::kIdentifier) {
        if (qualifier.empty()) qualifier = toks_[ret_end - 2].text;
        ret_end -= 2;
      }
      if (ret_end == 0) continue;
      const Token& before = toks_[ret_end - 1];
      const bool type_before =
          (before.kind == TokKind::kIdentifier &&
           !IsExprKeyword(before.text) && !IsControlKeyword(before.text)) ||
          IsPunct(before, ">") || IsPunct(before, ">>") ||
          IsPunct(before, "*") || IsPunct(before, "&");
      if (!type_before) continue;

      const std::size_t close = MatchParen(toks_, i + 1);
      if (close == kNpos) continue;

      FunctionSummary fn;
      fn.name = t.text;
      fn.qualifier = std::move(qualifier);
      fn.line = t.line;
      ScanReturnType(ret_end, &fn);
      ParseParams(toks_, i + 1, close, &fn.params);

      std::size_t body_open = kNpos;
      if (!ScanSpecifiers(close, &fn, &body_open)) continue;
      if (body_open != kNpos) {
        const std::size_t body_end = MatchBrace(toks_, body_open);
        if (body_end == kNpos) continue;
        fn.has_body = true;
        AnalyzeBody(body_open + 1, body_end - 1, &fn);
      }
      if (fn.returns_task) task_decl_tokens_.insert(i);
      out->functions.push_back(std::move(fn));
    }
  }

  void ScanReturnType(std::size_t ret_end, FunctionSummary* fn) {
    std::size_t lo = ret_end > 50 ? ret_end - 50 : 0;
    // Stop at the previous statement/definition boundary.
    for (std::size_t i = ret_end; i-- > lo;) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":" ||
           t.text == "(" || t.text == ")" || t.text == ",")) {
        lo = i + 1;
        break;
      }
    }
    for (std::size_t i = lo; i < ret_end; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdentifier) continue;
      if ((t.text == "Task" || t.text == "Future") && i + 1 < ret_end &&
          IsPunct(toks_[i + 1], "<")) {
        fn->returns_task = true;
      }
      if (t.text == "auto") fn->returns_auto = true;
    }
  }

  // From the `)` closing the parameter list to the body `{` or the decl
  // `;`. Returns false when the shape cannot be a function (e.g. a comma
  // follows — `int x(5), y(6);`). Handles constructor init lists.
  bool ScanSpecifiers(std::size_t j, FunctionSummary* fn,
                      std::size_t* body_open) {
    bool ctor_init = false;
    int guard = 0;
    while (j < toks_.size() && guard++ < 200) {
      const Token& t = toks_[j];
      if (IsPunct(t, ";")) return true;  // declaration without body
      if (IsPunct(t, "{")) {
        // In an init list, `b_{y}` braces belong to a member initializer;
        // the body brace follows a `)` or `}`.
        if (ctor_init && j > 0 && !IsPunct(toks_[j - 1], ")") &&
            !IsPunct(toks_[j - 1], "}")) {
          const std::size_t end = MatchBrace(toks_, j);
          if (end == kNpos) return false;
          j = end;
          continue;
        }
        *body_open = j;
        return true;
      }
      if (IsPunct(t, ":")) {
        ctor_init = true;
        ++j;
        continue;
      }
      if (IsPunct(t, "(")) {
        if (!ctor_init) return false;
        const std::size_t end = MatchParen(toks_, j);
        if (end == kNpos) return false;
        j = end;
        continue;
      }
      if (IsPunct(t, ",")) {
        if (!ctor_init) return false;
        ++j;
        continue;
      }
      if (IsPunct(t, "=")) {
        // `= 0;` / `= default;` / `= delete;` — a bodiless declaration.
        while (j < toks_.size() && !IsPunct(toks_[j], ";")) ++j;
        return true;
      }
      if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) return false;
      if (IsPunct(t, "<")) {
        const std::size_t end = MatchAngle(toks_, j);
        if (end == kNpos) return false;
        j = end;
        continue;
      }
      // Trailing return type / specifiers: identifiers, `->`, `::`, `&`...
      if ((t.text == "Task" || t.text == "Future") && j + 1 < toks_.size() &&
          IsPunct(toks_[j + 1], "<")) {
        fn->returns_task = true;
      }
      ++j;
    }
    return false;
  }

  // --- body facts ---------------------------------------------------------

  // Token ranges of nested lambda bodies in [b, e): a co_await inside a
  // lambda suspends the lambda's own frame, not the enclosing function's,
  // so lambda bodies don't make the enclosing function a coroutine.
  std::vector<std::pair<std::size_t, std::size_t>> LambdaBodies(
      std::size_t b, std::size_t e) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (std::size_t k = b; k < e; ++k) {
      if (!IsPunct(toks_[k], "[")) continue;
      int depth = 0;
      std::size_t close = kNpos;
      for (std::size_t i = k; i < e; ++i) {
        if (IsPunct(toks_[i], "[")) ++depth;
        if (IsPunct(toks_[i], "]") && --depth == 0) {
          close = i;
          break;
        }
      }
      if (close == kNpos) continue;
      std::size_t j = close + 1;
      if (j < e && IsPunct(toks_[j], "(")) {
        const std::size_t pe = MatchParen(toks_, j);
        if (pe == kNpos || pe > e) continue;
        j = pe;
      }
      // Skip specifiers / a trailing return type (a handful of tokens).
      std::size_t guard = 0;
      while (j < e && !IsPunct(toks_[j], "{") && guard++ < 12) {
        if (IsPunct(toks_[j], ";") || IsPunct(toks_[j], ")") ||
            IsPunct(toks_[j], ",") || IsPunct(toks_[j], "]")) {
          j = e;  // subscript expression, not a lambda
        } else {
          ++j;
        }
      }
      if (j >= e || !IsPunct(toks_[j], "{")) continue;
      const std::size_t end = MatchBrace(toks_, j);
      if (end == kNpos || end > e) continue;
      out.emplace_back(j, end);
      k = j;  // nested lambdas fall inside this range anyway
    }
    return out;
  }

  void AnalyzeBody(std::size_t b, std::size_t e, FunctionSummary* fn) {
    const auto lambdas = LambdaBodies(b, e);
    auto in_lambda = [&lambdas](std::size_t k) {
      for (const auto& [lb, le] : lambdas) {
        if (k > lb && k < le) return true;
      }
      return false;
    };
    for (std::size_t k = b; k < e; ++k) {
      if (IsCoroKeyword(toks_[k]) && !in_lambda(k)) {
        fn->is_coroutine = true;
        break;
      }
    }
    CollectCalls(b, e, fn);
    CollectIterations(b, e, fn);
    if (fn->is_coroutine) CollectHeldRefs(b, e, fn);
  }

  void CollectCalls(std::size_t b, std::size_t e, FunctionSummary* fn) {
    for (std::size_t k = b; k + 1 < e; ++k) {
      const Token& t = toks_[k];
      if (t.kind != TokKind::kIdentifier || IsControlKeyword(t.text) ||
          IsExprKeyword(t.text)) {
        continue;
      }
      if (!IsPunct(toks_[k + 1], "(")) continue;
      if (k > b) {
        const Token& prev = toks_[k - 1];
        if ((prev.kind == TokKind::kIdentifier &&
             !IsExprKeyword(prev.text)) ||
            IsPunct(prev, ">")) {
          continue;  // `Type name(...)` declaration
        }
      }
      const std::size_t close = MatchParen(toks_, k + 1);
      if (close == kNpos) continue;

      CallSite call;
      call.callee = t.text;
      call.line = t.line;
      // Walk back over the `a.b->c::` chain to see what drives the call.
      std::size_t start = k;
      while (start >= b + 2 &&
             (IsPunct(toks_[start - 1], ".") ||
              IsPunct(toks_[start - 1], "->") ||
              IsPunct(toks_[start - 1], "::")) &&
             toks_[start - 2].kind == TokKind::kIdentifier) {
        start -= 2;
      }
      if (start > b) {
        call.awaited = IsId(toks_[start - 1], "co_await");
        call.returned = IsId(toks_[start - 1], "return");
      }
      for (const auto& [ab, ae] : SplitDepthOne(toks_, k + 1, close)) {
        std::string bare;
        if (ae == ab + 1 && toks_[ab].kind == TokKind::kIdentifier) {
          bare = toks_[ab].text;
        } else if (ae == ab + 2 && IsPunct(toks_[ab], "&") &&
                   toks_[ab + 1].kind == TokKind::kIdentifier) {
          bare = "&" + toks_[ab + 1].text;
        } else if (ae > ab + 2 && IsPunct(toks_[ab], "[") &&
                   IsPunct(toks_[ab + 1], "&") && IsPunct(toks_[ab + 2], "]")) {
          bare = "[&]";  // by-reference-capturing lambda argument
        }
        call.bare_args.push_back(std::move(bare));
      }
      fn->calls.push_back(std::move(call));
    }
  }

  void CollectIterations(std::size_t b, std::size_t e, FunctionSummary* fn) {
    const std::map<std::string, std::string> aliases =
        LocalAliases(toks_, b, e);
    for (std::size_t k = b; k + 1 < e; ++k) {
      if (!IsId(toks_[k], "for") || !IsPunct(toks_[k + 1], "(")) continue;
      const std::size_t open = k + 1;
      const std::size_t close = MatchParen(toks_, open);
      if (close == kNpos || close > e) continue;

      Iteration it;
      it.line = toks_[k].line;
      // Range-for: a depth-1 `:`.
      std::size_t colon = kNpos;
      int depth = 0;
      for (std::size_t i = open; i < close - 1; ++i) {
        const Token& t = toks_[i];
        if (t.kind != TokKind::kPunct) continue;
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        if (depth == 1 && t.text == ":") {
          colon = i;
          break;
        }
      }
      if (colon != kNpos) {
        it.range_for = true;
        it.container = Iterated(toks_, colon + 1, close - 1);
      } else {
        // Iterator loop: `c.begin()` / `c.find()` in the init clause.
        for (std::size_t i = open + 1; i + 2 < close; ++i) {
          if ((IsPunct(toks_[i], ".") || IsPunct(toks_[i], "->")) &&
              toks_[i + 1].kind == TokKind::kIdentifier &&
              IsIteratorMethod(toks_[i + 1].text) &&
              IsPunct(toks_[i + 2], "(") &&
              toks_[i - 1].kind == TokKind::kIdentifier) {
            it.container = toks_[i - 1].text;
            break;
          }
        }
      }
      if (it.container.empty()) continue;
      for (int hop = 0; hop < 4; ++hop) {
        const auto a = aliases.find(it.container);
        if (a == aliases.end() || a->second == it.container) break;
        it.container = a->second;
      }

      std::size_t body_b = close, body_e = close;
      if (close < e && IsPunct(toks_[close], "{")) {
        const std::size_t bend = MatchBrace(toks_, close);
        if (bend != kNpos && bend <= e + 1) {
          body_b = close + 1;
          body_e = bend - 1;
        }
      } else {
        body_b = close;
        while (body_e < e && !IsPunct(toks_[body_e], ";")) ++body_e;
      }
      CollectCallNames(toks_, body_b, body_e, &it.body_calls);
      fn->iterations.push_back(std::move(it));
    }
  }

  void CollectHeldRefs(std::size_t b, std::size_t e, FunctionSummary* fn) {
    std::vector<std::size_t> awaits;
    for (std::size_t k = b; k < e; ++k) {
      if (IsId(toks_[k], "co_await")) awaits.push_back(k);
    }
    if (awaits.empty()) return;

    for (std::size_t k = b; k + 3 < e; ++k) {
      HeldRef ref;
      std::size_t name_tok = kNpos;
      bool by_ref = false;
      if (IsId(toks_[k], "auto")) {
        std::size_t m = k + 1;
        if (m < e && IsPunct(toks_[m], "&")) {
          by_ref = true;
          ++m;
        }
        if (m + 1 >= e || toks_[m].kind != TokKind::kIdentifier ||
            !IsPunct(toks_[m + 1], "=")) {
          continue;
        }
        name_tok = m;
      } else if (toks_[k].kind == TokKind::kIdentifier &&
                 !IsExprKeyword(toks_[k].text) && IsPunct(toks_[k + 1], "&") &&
                 toks_[k + 2].kind == TokKind::kIdentifier &&
                 IsPunct(toks_[k + 3], "=")) {
        by_ref = true;
        name_tok = k + 2;
      } else {
        continue;
      }

      // RHS of the initializer, up to the statement's `;`.
      std::size_t semi = name_tok + 2;
      int depth = 0;
      for (; semi < e; ++semi) {
        const Token& t = toks_[semi];
        if (t.kind != TokKind::kPunct) continue;
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        if (depth == 0 && t.text == ";") break;
      }
      if (semi >= e) continue;

      bool rhs_has_await = false;
      bool iterator = false, element_ref = false;
      std::string container;
      for (std::size_t i = name_tok + 2; i < semi; ++i) {
        const Token& t = toks_[i];
        if (IsId(t, "co_await")) rhs_has_await = true;
        if ((IsPunct(t, ".") || IsPunct(t, "->")) && i + 2 < semi &&
            toks_[i + 1].kind == TokKind::kIdentifier &&
            IsPunct(toks_[i + 2], "(") && i > name_tok + 2 &&
            toks_[i - 1].kind == TokKind::kIdentifier) {
          if (IsIteratorMethod(toks_[i + 1].text)) {
            iterator = true;
            container = toks_[i - 1].text;
          } else if (IsElementAccessMethod(toks_[i + 1].text)) {
            element_ref = true;
            container = toks_[i - 1].text;
          }
        }
        if (IsPunct(t, "[") && i > name_tok + 2 &&
            toks_[i - 1].kind == TokKind::kIdentifier) {
          element_ref = true;
          if (container.empty()) container = toks_[i - 1].text;
        }
      }
      if (rhs_has_await) continue;  // the awaited value is a fresh copy
      if (!iterator && !(by_ref && element_ref)) continue;

      ref.name = toks_[name_tok].text;
      ref.line = toks_[name_tok].line;
      ref.iterator = iterator;
      ref.container = std::move(container);

      // First use in a LATER statement than an intervening co_await: a use
      // inside the awaiting statement itself (call arguments, the awaited
      // expression) is evaluated before the frame suspends and is safe, so
      // a `;` must separate the await from the use. Rebinding the name
      // (`it = ...`, or a fresh `auto it = ...`) ends the tracked lifetime.
      std::vector<std::size_t> semis;
      for (std::size_t s = semi; s < e; ++s) {
        if (IsPunct(toks_[s], ";")) semis.push_back(s);
      }
      for (std::size_t u = semi + 1; u < e && ref.await_line == 0; ++u) {
        if (toks_[u].kind != TokKind::kIdentifier ||
            toks_[u].text != ref.name) {
          continue;
        }
        if (u + 1 < e && IsPunct(toks_[u + 1], "=")) break;  // rebound
        for (std::size_t a : awaits) {
          if (!(a > semi && a < u)) continue;
          bool stmt_boundary = false;
          for (std::size_t s : semis) {
            if (s > a && s < u) {
              stmt_boundary = true;
              break;
            }
          }
          if (!stmt_boundary) continue;
          ref.await_line = toks_[a].line;
          ref.use_line = toks_[u].line;
          break;
        }
      }
      if (ref.await_line != 0) fn->held_refs.push_back(std::move(ref));
    }
  }

  // --- file-level sets ----------------------------------------------------

  // Loose scan matching the historical task-discard ambiguity pass: every
  // `Type Name(` whose name token was not claimed as a Task declaration.
  void CollectNonTaskDecls(FileSummary* out) {
    for (std::size_t i = 1; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdentifier ||
          IsExprKeyword(toks_[i].text)) {
        continue;
      }
      if (!IsPunct(toks_[i + 1], "(")) continue;
      if (task_decl_tokens_.count(i) > 0) continue;
      const Token& prev = toks_[i - 1];
      const bool type_before =
          (prev.kind == TokKind::kIdentifier && !IsExprKeyword(prev.text)) ||
          IsPunct(prev, ">") || IsPunct(prev, ">>") || IsPunct(prev, "*") ||
          IsPunct(prev, "&");
      if (type_before) out->non_task_decl_names.push_back(toks_[i].text);
    }
  }

  // Statement-level `[chain.]Name(...);` whose result is discarded.
  void CollectDiscardSites(FileSummary* out) {
    const auto& toks = toks_;
    bool at_stmt_start = true;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}") ||
          IsId(t, "else")) {
        at_stmt_start = true;
        continue;
      }
      if (!at_stmt_start) continue;
      at_stmt_start = false;
      std::size_t j = i;
      std::size_t last_name = kNpos;
      while (j < toks.size()) {
        if (toks[j].kind == TokKind::kIdentifier &&
            !IsExprKeyword(toks[j].text)) {
          last_name = j;
          ++j;
          if (j < toks.size() &&
              (IsPunct(toks[j], ".") || IsPunct(toks[j], "->") ||
               IsPunct(toks[j], "::"))) {
            ++j;
            continue;
          }
        }
        break;
      }
      if (last_name == kNpos || j != last_name + 1) continue;
      if (j >= toks.size() || !IsPunct(toks[j], "(")) continue;
      const std::size_t close = MatchParen(toks, j);
      if (close == kNpos || close >= toks.size()) continue;
      if (IsPunct(toks[close], ";")) {
        out->discard_sites.push_back(
            DiscardSite{toks[last_name].text, toks[last_name].line});
      }
    }
  }

  const LexedFile& f_;
  const std::vector<Token>& toks_;
  std::set<std::size_t> task_decl_tokens_;
};

}  // namespace

FileSummary BuildFileSummary(const LexedFile& f) { return Extractor(f).Run(); }

// ---------------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------------

void SymbolTable::Add(const FileSummary* file) {
  files_.push_back(file);
  for (const FunctionSummary& fn : file->functions) {
    by_name_[fn.name].push_back(&fn);
    if (fn.returns_task) task_names_.insert(fn.name);
  }
  for (const std::string& n : file->unordered_names) unordered_.insert(n);
  for (const std::string& n : file->non_task_decl_names) non_task_.insert(n);
}

const std::vector<const FunctionSummary*>& SymbolTable::Lookup(
    const std::string& name) const {
  static const std::vector<const FunctionSummary*> kEmpty;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

}  // namespace dufs::lint
