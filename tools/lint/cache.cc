#include "cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace dufs::lint {

namespace {

// Joins rule names with ','; no rule name contains a comma.
std::string JoinRules(const std::vector<std::string>& rules) {
  std::string out;
  for (const auto& r : rules) {
    if (!out.empty()) out += ',';
    out += r;
  }
  return out;
}

std::vector<std::string> SplitRules(const std::string& s) {
  std::vector<std::string> out;
  std::size_t b = 0;
  while (b <= s.size()) {
    const std::size_t e = s.find(',', b);
    if (e == std::string::npos) {
      if (b < s.size()) out.push_back(s.substr(b));
      break;
    }
    out.push_back(s.substr(b, e - b));
    b = e + 1;
  }
  return out;
}

// Bare-identifier argument slots can be "" — encode as "-"; "-" is not a
// valid identifier so the mapping is unambiguous.
std::string EncodeArg(const std::string& s) { return s.empty() ? "-" : s; }
std::string DecodeArg(const std::string& s) { return s == "-" ? "" : s; }

}  // namespace

std::uint64_t Fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string CacheKey(const std::string& path, const std::string& content) {
  std::string blob = kCacheFormatVersion;
  blob += '\0';
  blob += path;
  blob += '\0';
  blob += content;
  std::ostringstream hex;
  hex << std::hex << Fnv1a64(blob);
  return hex.str();
}

std::string SerializeArtifacts(const FileArtifacts& a) {
  std::ostringstream out;
  out << kCacheFormatVersion << '\n';
  out << "path " << a.path << '\n';
  for (const auto& f : a.local) {
    out << "finding " << f.line << ' ' << f.rule << ' ' << f.message << '\n';
  }
  for (const auto& s : a.suppressions) {
    out << "sup " << s.line << ' ' << (s.alone ? 1 : 0) << ' '
        << JoinRules(s.rules) << '\n';
  }
  for (const auto& n : a.task_decl_names) out << "taskdecl " << n << '\n';
  for (const auto& n : a.non_task_decl_names) out << "plaindecl " << n << '\n';
  for (const auto& n : a.summary.unordered_names) {
    out << "unordered " << n << '\n';
  }
  for (const auto& n : a.summary.non_task_decl_names) {
    out << "sumplain " << n << '\n';
  }
  for (const auto& d : a.summary.discard_sites) {
    out << "discard " << d.callee << ' ' << d.line << '\n';
  }
  for (const auto& fn : a.summary.functions) {
    out << "func " << fn.name << ' '
        << (fn.qualifier.empty() ? "-" : fn.qualifier) << ' ' << fn.line
        << ' ' << fn.returns_task << fn.returns_auto << fn.is_coroutine
        << fn.has_body << '\n';
    for (const auto& p : fn.params) {
      out << "param " << EncodeArg(p.name) << ' ' << p.is_ref << p.is_ptr
          << p.is_simulation << ' ' << p.line << '\n';
    }
    for (const auto& c : fn.calls) {
      out << "call " << c.callee << ' ' << c.line << ' ' << c.awaited
          << c.returned;
      for (const auto& arg : c.bare_args) out << ' ' << EncodeArg(arg);
      out << '\n';
    }
    for (const auto& it : fn.iterations) {
      out << "iter " << it.container << ' ' << it.line << ' ' << it.range_for;
      for (const auto& c : it.body_calls) out << ' ' << c;
      out << '\n';
    }
    for (const auto& r : fn.held_refs) {
      out << "held " << r.name << ' ' << r.line << ' ' << r.iterator << ' '
          << EncodeArg(r.container) << ' ' << r.await_line << ' '
          << r.use_line << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

std::optional<FileArtifacts> ParseArtifacts(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCacheFormatVersion) {
    return std::nullopt;
  }
  FileArtifacts a;
  FunctionSummary* fn = nullptr;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "path") {
      ls >> a.path;
    } else if (tag == "finding") {
      Finding f;
      f.file = a.path;
      ls >> f.line >> f.rule;
      std::getline(ls, f.message);
      if (!f.message.empty() && f.message[0] == ' ') f.message.erase(0, 1);
      a.local.push_back(std::move(f));
    } else if (tag == "sup") {
      Suppression s;
      int alone = 0;
      std::string rules;
      ls >> s.line >> alone >> rules;
      s.alone = alone != 0;
      s.rules = SplitRules(rules);
      a.suppressions.push_back(std::move(s));
    } else if (tag == "taskdecl") {
      std::string n;
      ls >> n;
      a.task_decl_names.push_back(std::move(n));
    } else if (tag == "plaindecl") {
      std::string n;
      ls >> n;
      a.non_task_decl_names.push_back(std::move(n));
    } else if (tag == "unordered") {
      std::string n;
      ls >> n;
      a.summary.unordered_names.push_back(std::move(n));
    } else if (tag == "sumplain") {
      std::string n;
      ls >> n;
      a.summary.non_task_decl_names.push_back(std::move(n));
    } else if (tag == "discard") {
      DiscardSite d;
      ls >> d.callee >> d.line;
      a.summary.discard_sites.push_back(std::move(d));
    } else if (tag == "func") {
      FunctionSummary f;
      std::string qual, bits;
      ls >> f.name >> qual >> f.line >> bits;
      if (bits.size() != 4) return std::nullopt;
      if (qual != "-") f.qualifier = qual;
      f.returns_task = bits[0] == '1';
      f.returns_auto = bits[1] == '1';
      f.is_coroutine = bits[2] == '1';
      f.has_body = bits[3] == '1';
      a.summary.functions.push_back(std::move(f));
      fn = &a.summary.functions.back();
    } else if (tag == "param") {
      if (fn == nullptr) return std::nullopt;
      Param p;
      std::string name, bits;
      ls >> name >> bits >> p.line;
      if (bits.size() != 3) return std::nullopt;
      p.name = DecodeArg(name);
      p.is_ref = bits[0] == '1';
      p.is_ptr = bits[1] == '1';
      p.is_simulation = bits[2] == '1';
      fn->params.push_back(std::move(p));
    } else if (tag == "call") {
      if (fn == nullptr) return std::nullopt;
      CallSite c;
      std::string bits, arg;
      ls >> c.callee >> c.line >> bits;
      if (bits.size() != 2) return std::nullopt;
      c.awaited = bits[0] == '1';
      c.returned = bits[1] == '1';
      if (ls.fail()) return std::nullopt;
      while (ls >> arg) c.bare_args.push_back(DecodeArg(arg));
      ls.clear();  // the list runs to end-of-line; EOF is not corruption
      fn->calls.push_back(std::move(c));
    } else if (tag == "iter") {
      if (fn == nullptr) return std::nullopt;
      Iteration it;
      int range = 0;
      std::string call;
      ls >> it.container >> it.line >> range;
      it.range_for = range != 0;
      if (ls.fail()) return std::nullopt;
      while (ls >> call) it.body_calls.push_back(std::move(call));
      ls.clear();  // the list runs to end-of-line; EOF is not corruption
      fn->iterations.push_back(std::move(it));
    } else if (tag == "held") {
      if (fn == nullptr) return std::nullopt;
      HeldRef r;
      int iter = 0;
      std::string container;
      ls >> r.name >> r.line >> iter >> container >> r.await_line >>
          r.use_line;
      r.iterator = iter != 0;
      r.container = DecodeArg(container);
      fn->held_refs.push_back(std::move(r));
    } else {
      return std::nullopt;  // unknown record: treat as corrupt
    }
    if (ls.fail()) return std::nullopt;
  }
  if (!saw_end) return std::nullopt;
  a.summary.path = a.path;
  for (auto& f : a.local) f.file = a.path;
  return a;
}

std::optional<FileArtifacts> LoadCachedArtifacts(const std::string& dir,
                                                 const std::string& key) {
  std::ifstream in(dir + "/" + key + ".lint", std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseArtifacts(buf.str());
}

void StoreCachedArtifacts(const std::string& dir, const std::string& key,
                          const FileArtifacts& a) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  // Write-then-rename so a crashed run never leaves a torn entry behind.
  const std::string final_path = dir + "/" + key + ".lint";
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << SerializeArtifacts(a);
    if (!out) {
      out.close();
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

}  // namespace dufs::lint
