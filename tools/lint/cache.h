// On-disk per-file parse cache for the analyzer's stage A.
//
// AnalyzeFile() is pure in (path, content), so its FileArtifacts can be
// memoized on disk keyed by a content hash. An entry is the serialized
// artifacts; the key is FNV-1a(64) over a format-version salt, the
// repo-relative path (path-scoped rules make two identical files at
// different paths analyze differently), and the file bytes. Stage B (the
// cross-TU dataflow) always runs fresh over the loaded summaries, so a warm
// cache changes nothing but wall-clock time.
//
// Failure policy: a missing/corrupt/stale entry is a cache miss, never an
// error — Load returns nullopt and the caller re-analyzes; Store is
// best-effort.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rules.h"

namespace dufs::lint {

// Bump whenever stage A's output semantics change, so entries written by an
// older analyzer can never be mistaken for current ones.
inline constexpr const char* kCacheFormatVersion = "dufs-lint-cache-v2";

std::uint64_t Fnv1a64(const std::string& bytes);

// Hex cache key for (path, content).
std::string CacheKey(const std::string& path, const std::string& content);

// In-memory (de)serialization, exposed for tests.
std::string SerializeArtifacts(const FileArtifacts& a);
std::optional<FileArtifacts> ParseArtifacts(const std::string& text);

// Entries live at <dir>/<key>.lint; <dir> is created on first store.
std::optional<FileArtifacts> LoadCachedArtifacts(const std::string& dir,
                                                 const std::string& key);
void StoreCachedArtifacts(const std::string& dir, const std::string& key,
                          const FileArtifacts& a);

}  // namespace dufs::lint
