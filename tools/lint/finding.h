// Finding/severity/doc types shared by the per-file rule pass (rules.cc) and
// the cross-TU dataflow pass (dataflow.cc). Split out of rules.h so the
// symbol-table layer can be used without pulling in the rule engine.
#pragma once

#include <string>
#include <vector>

namespace dufs::lint {

// Severity of a rule. `kError` findings fail the run (exit 1); `kWarn`
// findings are reported (and land in SARIF as "warning") but only fail under
// --werror. The tree gate runs with --werror, so the live tree is held at
// zero unbaselined findings of either severity.
enum class Severity {
  kError,
  kWarn,
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
};

struct RuleDoc {
  const char* id;
  const char* summary;
  const char* rationale;
  const char* bad;   // minimal example that fires
  const char* good;  // the conforming rewrite
  Severity severity = Severity::kError;
};

// Every rule the linter knows, in stable order (the --explain output).
const std::vector<RuleDoc>& RuleDocs();

// Severity for `rule`; unknown rules default to kError.
Severity RuleSeverity(const std::string& rule);

const char* SeverityName(Severity s);  // "error" / "warn"

}  // namespace dufs::lint
