// Interprocedural dataflow rules over the cross-TU symbol table and call
// graph. This is stage B of the analyzer: stage A (per-file lexing, local
// rules, FileSummary extraction) is cacheable; everything here runs fresh on
// every invocation over the collected summaries.
//
// Rules:
//   task-discard            — statement-level discard of a direct
//                             Task-returning call (moved here from the
//                             per-file pass; semantics unchanged).
//   task-discard-transitive — discard of a call whose result is a Task
//                             obtained through one or more `auto`-returning
//                             wrappers (`auto W() { return Mkdir(...); }`).
//   coro-ref-escape         — a reference/pointer argument (`&local`, a
//                             caller ref-param forwarded through a
//                             non-coroutine wrapper, or a `[&]` lambda)
//                             escapes into a coroutine frame that outlives
//                             the caller's suspension point.
//   det-export-order        — iteration over an unordered container on a
//                             path that produces a byte-compared export
//                             (JSON/SARIF/snapshot serialization).
//   await-holding-ref       — a reference/iterator into a container is used
//                             again after an intervening co_await (warn).
//
// Findings are appended unfiltered; the caller applies per-file
// `// dufs-lint: allow(...)` suppressions afterwards.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "finding.h"
#include "symtab.h"

namespace dufs::lint {

// `direct_task` is the unambiguous Task-returning name set (the historical
// Linter::TaskFunctionNames semantics: declared Task-returning somewhere,
// never declared with an ordinary return type).
void RunDataflow(const SymbolTable& sym, const CallGraph& graph,
                 const std::set<std::string>& direct_task,
                 std::vector<Finding>* out);

}  // namespace dufs::lint
