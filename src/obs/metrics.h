// Metrics registry — the counting half of the observability layer.
//
// Named counters, gauges and LatencyHistogram-backed timers, scoped per sim
// node ("client0", "zk3", ...). Hot paths hold value-type handles (Counter /
// Gauge / Histogram) wrapping a stable cell pointer: recording is one
// pointer chase plus an add — no map lookups, no branches. A default-
// constructed handle writes to a static dummy cell, so instrumented code
// never checks "is observability attached?" (null-object pattern); that is
// what keeps the registry cheap enough to leave on for every bench run.
//
// Single-threaded by design, like the simulator. Scope storage uses
// std::map so snapshots and JSON export iterate in a deterministic order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"

namespace dufs::obs {

namespace internal {

struct CounterCell {
  std::uint64_t value = 0;
};

struct GaugeCell {
  std::int64_t value = 0;
  std::int64_t max = 0;  // high-watermark since creation
  // Low-watermark over *recorded* values (the implicit initial 0 is
  // excluded, so a queue that never drained during the run reports a
  // positive min — that is what distinguishes idle from saturated).
  std::int64_t min = 0;
  bool min_seen = false;
};

struct HistogramCell {
  LatencyHistogram hist;
};

CounterCell& DummyCounter();
GaugeCell& DummyGauge();
HistogramCell& DummyHistogram();

}  // namespace internal

// Monotone event count (ops issued, bytes journaled, cache hits, ...).
class Counter {
 public:
  Counter() : cell_(&internal::DummyCounter()) {}
  explicit Counter(internal::CounterCell* cell) : cell_(cell) {}

  void Inc(std::uint64_t by = 1) { cell_->value += by; }
  std::uint64_t value() const { return cell_->value; }

 private:
  internal::CounterCell* cell_;
};

// Instantaneous level (queue depth, in-flight requests); tracks its
// high-watermark so a snapshot taken after the run still shows contention.
class Gauge {
 public:
  Gauge() : cell_(&internal::DummyGauge()) {}
  explicit Gauge(internal::GaugeCell* cell) : cell_(cell) {}

  void Set(std::int64_t v) {
    cell_->value = v;
    if (v > cell_->max) cell_->max = v;
    if (!cell_->min_seen || v < cell_->min) {
      cell_->min = v;
      cell_->min_seen = true;
    }
  }
  void Add(std::int64_t delta) { Set(cell_->value + delta); }
  std::int64_t value() const { return cell_->value; }
  std::int64_t max() const { return cell_->max; }
  // Lowest recorded value; the current value when nothing was recorded yet.
  std::int64_t min() const {
    return cell_->min_seen ? cell_->min : cell_->value;
  }

 private:
  internal::GaugeCell* cell_;
};

// Distribution of int64 samples: latencies in nanoseconds ("timer" usage)
// or plain sizes (fsync batch size). Percentile semantics are those of
// LatencyHistogram (log-scaled buckets, upper-bound answers).
class Histogram {
 public:
  Histogram() : cell_(&internal::DummyHistogram()) {}
  explicit Histogram(internal::HistogramCell* cell) : cell_(cell) {}

  void Record(std::int64_t sample) { cell_->hist.Add(sample); }
  const LatencyHistogram& hist() const { return cell_->hist; }

 private:
  internal::HistogramCell* cell_;
};

using Timer = Histogram;  // Record(latency_ns)

// All metrics of one sim node. Handles returned here stay valid for the
// Scope's lifetime (cells are heap-allocated, never moved).
class Scope {
 public:
  explicit Scope(std::string name) : name_(std::move(name)) {}

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  const std::string& name() const { return name_; }

  Counter counter(const std::string& key);
  Gauge gauge(const std::string& key);
  Histogram histogram(const std::string& key);
  Timer timer(const std::string& key) { return histogram(key); }

  const std::map<std::string, std::unique_ptr<internal::CounterCell>>&
  counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<internal::GaugeCell>>& gauges()
      const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<internal::HistogramCell>>&
  histograms() const {
    return histograms_;
  }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<internal::CounterCell>> counters_;
  std::map<std::string, std::unique_ptr<internal::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<internal::HistogramCell>> histograms_;
};

// The registry: one Scope per node, plus a cross-node merge.
class MetricsRegistry {
 public:
  // Get-or-create; the Scope lives as long as the registry.
  Scope& scope(const std::string& node);

  const std::map<std::string, std::unique_ptr<Scope>>& scopes() const {
    return scopes_;
  }

  // Cross-node merge: counters and gauge values sum, gauge maxes take the
  // max, gauge mins the min over nodes that recorded one, histograms Merge.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, std::int64_t> gauge_maxes;
    std::map<std::string, std::int64_t> gauge_mins;
    std::map<std::string, LatencyHistogram> histograms;
  };
  Snapshot Merged() const;

  // {"nodes": {<node>: {...}}, "merged": {...}} — keys sorted, values
  // integral, so equal registries serialize byte-identically.
  std::string ToJson() const;

 private:
  std::map<std::string, std::unique_ptr<Scope>> scopes_;
};

}  // namespace dufs::obs
