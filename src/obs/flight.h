// Flight recorder — an always-on, bounded ring of recent trace spans.
//
// The tracer's full event log (trace.h) is opt-in because it grows without
// bound and its ids perturb modeled message sizes; the flight recorder is the
// production-style complement: every node keeps the last `capacity` completed
// spans in a fixed-size ring, cheap enough to leave enabled in untraced
// benchmark runs. When an anomaly detector (incident.h) fires, the rings are
// serialized to a Chrome-trace-compatible dump that tools/tracestats can run
// its exactly-once latency decomposition over ("the p99.9 spike is 86%
// fsync").
//
// Hot-path rules (enforced by the obs-hot-path-alloc lint rule): records are
// POD, names/cats are `const char*` literals owned by the call sites, rings
// are flat pre-reserved vectors, and nothing on the record path touches
// std::string or node-based containers. The only allocations after warm-up
// are the one-time per-track ring reservations. Dump serialization is the
// cold path and is explicitly allowed to build strings.
//
// Determinism: records carry sim timestamps and a global admission sequence
// number; ring contents depend only on the simulated event order, so two
// identically-seeded runs dump byte-identical JSON (asserted by the slo_gate
// ctest).
#pragma once

#include <cstdint>
#include <string>  // dufs-lint: allow(obs-hot-path-alloc) dump serialization only
#include <vector>

#include "sim/time.h"

namespace dufs::obs {

using TraceId = std::uint64_t;
using TrackId = std::uint32_t;

class Tracer;  // trace.h

class FlightRecorder {
 public:
  // One completed span. `wait_ns` preserves the queueing split that the full
  // tracer carries as a span arg (nic-tx/nic-rx); -1 = not applicable.
  struct Record {
    const char* name = "";
    const char* cat = "";
    sim::SimTime start = 0;
    sim::Duration dur = 0;
    TraceId trace = 0;
    std::int64_t wait_ns = -1;
    std::uint64_t seq = 0;
  };

  // Per-track span budget; takes effect for rings that have not yet admitted
  // a record. Default 512 spans/track (~24 KiB) covers several anomaly
  // windows of a busy node.
  void SetCapacity(std::uint32_t per_track) {
    if (per_track > 0) capacity_ = per_track;
  }
  std::uint32_t capacity() const { return capacity_; }

  // Admit one span. Hot path: bounds check + POD copy; the ring for a track
  // is reserved once on its first record.
  void Admit(TrackId track, const char* name, const char* cat,
             sim::SimTime start, sim::Duration dur, TraceId trace,
             std::int64_t wait_ns) {
    if (track >= rings_.size()) rings_.resize(track + 1);
    Ring& r = rings_[track];
    const Record rec{name, cat, start, dur, trace, wait_ns, ++seq_};
    if (r.slots.size() < capacity_) {
      if (r.slots.capacity() < capacity_) r.slots.reserve(capacity_);
      r.slots.push_back(rec);
    } else {
      r.slots[r.next] = rec;
      ++r.evicted;
      r.next = r.next + 1 == capacity_ ? 0 : r.next + 1;
    }
  }

  std::uint64_t admitted() const { return seq_; }
  std::uint64_t evicted(TrackId track) const {
    return track < rings_.size() ? rings_[track].evicted : 0;
  }
  std::uint32_t size(TrackId track) const {
    return track < rings_.size()
               ? static_cast<std::uint32_t>(rings_[track].slots.size())
               : 0;
  }

  // Visit a track's ring oldest-to-newest (unit tests + dump share this).
  template <typename Fn>
  void ForEach(TrackId track, Fn&& fn) const {
    if (track >= rings_.size()) return;
    const Ring& r = rings_[track];
    if (r.slots.size() < capacity_) {
      for (const Record& rec : r.slots) fn(rec);
      return;
    }
    for (std::uint32_t i = r.next; i < capacity_; ++i) fn(r.slots[i]);
    for (std::uint32_t i = 0; i < r.next; ++i) fn(r.slots[i]);
  }

  std::uint32_t track_count() const {
    return static_cast<std::uint32_t>(rings_.size());
  }

  // Cold path: serialize every ring as Chrome trace_event JSON, preceded by
  // the caller's anomaly object (pre-rendered JSON; empty = omitted), with
  // the same track metadata and ts/dur formatting as Tracer::ToChromeJson so
  // tracestats parses dumps and full traces identically. Tracks are emitted
  // in id order, records oldest-to-newest — byte-stable.
  // dufs-lint: allow(obs-hot-path-alloc) dump serialization
  std::string DumpJson(const Tracer& tracer,
                       // dufs-lint: allow(obs-hot-path-alloc) dump serialization
                       const std::string& anomaly_json) const;

  void Clear() {
    rings_.clear();
    seq_ = 0;
  }

 private:
  struct Ring {
    std::vector<Record> slots;
    std::uint32_t next = 0;  // oldest slot once the ring is full
    std::uint64_t evicted = 0;
  };

  std::uint32_t capacity_ = 512;
  std::uint64_t seq_ = 0;
  std::vector<Ring> rings_;
};

}  // namespace dufs::obs
