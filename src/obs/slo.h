// Sliding-window quantile digests + SLO accounting on sim time.
//
// The metrics layer's LatencyHistogram (common/stats.h) is cumulative for
// the whole run; incident detection needs "the last few milliseconds vs the
// trailing few". This file provides the deterministic building blocks:
//
//  - Log2Hist: a fixed 64-bucket power-of-two histogram (count/sum/max) with
//    an upper-bound quantile. Integer-only, so merging and quantiles are
//    exactly reproducible across runs and platforms.
//  - SlidingDigest: the current window's Log2Hist plus a ring of the last K
//    closed windows. The incident engine (incident.h) decides when windows
//    close (globally aligned on sim time / window_ns) and calls Roll().
//  - SloSpec / SloState: a latency target + error budget per op class, with
//    exact good/bad counters (not histogram-derived) and a per-window burn
//    rate: (bad fraction in window) / budget. burn == 1 means the budget is
//    being consumed exactly at the allowed rate.
//
// Hot-path rules (obs-hot-path-alloc lint rule): fixed arrays and flat
// pre-sized vectors only; op-class names are `const char*` literals.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dufs::obs {

struct Log2Hist {
  static constexpr int kBuckets = 64;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;

  // Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds v <= 0 (clock
  // quirks) and bucket 1 holds v == 1.
  static int BucketFor(std::int64_t v) {
    if (v <= 0) return 0;
    const int w = std::bit_width(static_cast<std::uint64_t>(v));
    return w < kBuckets ? w : kBuckets - 1;
  }
  // Inclusive upper bound of bucket b, the value a quantile reports.
  static std::int64_t UpperBound(int b) {
    if (b <= 0) return 0;
    if (b >= kBuckets - 1) return INT64_MAX;
    return (std::int64_t{1} << b) - 1;
  }

  void Record(std::int64_t v) {
    ++counts[static_cast<std::size_t>(BucketFor(v))];
    ++total;
    sum += v;
    if (v > max) max = v;
  }

  void Merge(const Log2Hist& other) {
    for (int i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
    total += other.total;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  void Clear() {
    counts.fill(0);
    total = 0;
    sum = 0;
    max = 0;
  }

  // Upper bound of the bucket containing quantile q (0 < q <= 1); the exact
  // observed max for the top bucket in range. 0 when empty. Integer rank
  // arithmetic — no floating-point accumulation.
  std::int64_t Quantile(double q) const {
    if (total == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) {
        const std::int64_t ub = UpperBound(i);
        return max < ub ? max : ub;
      }
    }
    return max;
  }
};

// Current window plus a ring of the last `depth` closed windows.
class SlidingDigest {
 public:
  void Init(int depth) {
    ring_.assign(static_cast<std::size_t>(depth > 0 ? depth : 1), Log2Hist{});
    next_ = 0;
    closed_ = 0;
    cur.Clear();
  }

  // Close the current window into the trailing ring.
  void Roll() {
    ring_[next_] = cur;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++closed_;
    cur.Clear();
  }

  // Merge of every retained closed window (up to `depth`).
  Log2Hist TrailingMerged() const {
    Log2Hist out;
    const std::size_t n = trailing_count();
    for (std::size_t i = 0; i < n; ++i) out.Merge(ring_[i]);
    return out;
  }

  std::size_t trailing_count() const {
    return closed_ < ring_.size() ? static_cast<std::size_t>(closed_)
                                  : ring_.size();
  }
  std::uint64_t closed_windows() const { return closed_; }

  Log2Hist cur;

 private:
  std::vector<Log2Hist> ring_;
  std::size_t next_ = 0;
  std::uint64_t closed_ = 0;
};

// One SLO: ops of class `op` should finish within target_ns, with at most
// `budget` fraction of ops over target.
struct SloSpec {
  const char* op = "";      // class name literal (resolved by incident.h)
  std::int64_t target_ns = 0;
  double budget = 0.001;
};

// Exact accounting for one SLO over the run plus the open window.
struct SloState {
  SloSpec spec;
  int cls = -1;  // class index in the incident engine's registry

  std::uint64_t good = 0;  // run totals
  std::uint64_t bad = 0;
  std::uint64_t window_good = 0;  // open window
  std::uint64_t window_bad = 0;

  // Worst closed window, for the report.
  double max_burn = 0.0;
  std::uint64_t max_burn_window = 0;  // window ordinal of max_burn

  void Observe(std::int64_t latency_ns) {
    if (latency_ns > spec.target_ns) {
      ++bad;
      ++window_bad;
    } else {
      ++good;
      ++window_good;
    }
  }

  // Burn rate of the open window: bad-fraction / budget. 0 when idle.
  double WindowBurn() const {
    const std::uint64_t n = window_good + window_bad;
    if (n == 0 || spec.budget <= 0.0) return 0.0;
    return (static_cast<double>(window_bad) / static_cast<double>(n)) /
           spec.budget;
  }

  // Close the open window (ordinal `window_index`), tracking the worst.
  void Roll(std::uint64_t window_index) {
    const double burn = WindowBurn();
    if (burn > max_burn) {
      max_burn = burn;
      max_burn_window = window_index;
    }
    window_good = 0;
    window_bad = 0;
  }
};

}  // namespace dufs::obs
