#include "obs/metrics.h"

#include <cstdio>

namespace dufs::obs {

namespace internal {

CounterCell& DummyCounter() {
  static CounterCell cell;
  return cell;
}

GaugeCell& DummyGauge() {
  static GaugeCell cell;
  return cell;
}

HistogramCell& DummyHistogram() {
  static HistogramCell cell;
  return cell;
}

}  // namespace internal

namespace {

template <typename CellMap>
auto* GetOrCreate(CellMap& cells, const std::string& key) {
  auto it = cells.find(key);
  if (it == cells.end()) {
    it = cells
             .emplace(key, std::make_unique<
                               typename CellMap::mapped_type::element_type>())
             .first;
  }
  return it->second.get();
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendHistogram(std::string& out, const LatencyHistogram& h) {
  out += "{\"count\":" + std::to_string(h.count());
  out += ",\"sum\":" + std::to_string(h.sum());
  out += ",\"p50\":" + std::to_string(h.Percentile(50));
  out += ",\"p95\":" + std::to_string(h.Percentile(95));
  out += ",\"p99\":" + std::to_string(h.Percentile(99));
  out += ",\"max\":" + std::to_string(h.MaxSample());
  out += "}";
}

// Shared by per-node and merged sections: three sorted sub-objects.
template <typename Counters, typename Gauges, typename GaugeMaxes,
          typename GaugeMins, typename Histos>
void AppendSection(std::string& out, const Counters& counters,
                   const Gauges& gauges, const GaugeMaxes& gauge_maxes,
                   const GaugeMins& gauge_mins, const Histos& histos) {
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [key, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, key);
    out += ':' + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, key);
    out += ":{\"value\":" + std::to_string(value) +
           ",\"min\":" + std::to_string(gauge_mins.at(key)) +
           ",\"max\":" + std::to_string(gauge_maxes.at(key)) + "}";
  }
  out += "},\"hists\":{";
  first = true;
  for (const auto& [key, hist] : histos) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, key);
    out += ':';
    AppendHistogram(out, hist);
  }
  out += "}}";
}

}  // namespace

Counter Scope::counter(const std::string& key) {
  return Counter(GetOrCreate(counters_, key));
}

Gauge Scope::gauge(const std::string& key) {
  return Gauge(GetOrCreate(gauges_, key));
}

Histogram Scope::histogram(const std::string& key) {
  return Histogram(GetOrCreate(histograms_, key));
}

Scope& MetricsRegistry::scope(const std::string& node) {
  auto it = scopes_.find(node);
  if (it == scopes_.end()) {
    it = scopes_.emplace(node, std::make_unique<Scope>(node)).first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::Merged() const {
  Snapshot snap;
  for (const auto& [node, scope] : scopes_) {
    for (const auto& [key, cell] : scope->counters()) {
      snap.counters[key] += cell->value;
    }
    for (const auto& [key, cell] : scope->gauges()) {
      snap.gauges[key] += cell->value;
      auto it = snap.gauge_maxes.find(key);
      if (it == snap.gauge_maxes.end()) {
        snap.gauge_maxes[key] = cell->max;
      } else if (cell->max > it->second) {
        it->second = cell->max;
      }
      const std::int64_t low = cell->min_seen ? cell->min : cell->value;
      auto mit = snap.gauge_mins.find(key);
      if (mit == snap.gauge_mins.end()) {
        snap.gauge_mins[key] = low;
      } else if (low < mit->second) {
        mit->second = low;
      }
    }
    for (const auto& [key, cell] : scope->histograms()) {
      snap.histograms[key].Merge(cell->hist);
    }
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"nodes\":{";
  bool first = true;
  for (const auto& [node, scope] : scopes_) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, node);
    out += ':';
    // Per-node view: adapt cell maps to plain value maps for the shared
    // section writer.
    std::map<std::string, std::uint64_t> counters;
    for (const auto& [key, cell] : scope->counters()) {
      counters[key] = cell->value;
    }
    std::map<std::string, std::int64_t> gauges, gauge_maxes, gauge_mins;
    for (const auto& [key, cell] : scope->gauges()) {
      gauges[key] = cell->value;
      gauge_maxes[key] = cell->max;
      gauge_mins[key] = cell->min_seen ? cell->min : cell->value;
    }
    std::map<std::string, LatencyHistogram> histos;
    for (const auto& [key, cell] : scope->histograms()) {
      histos.emplace(key, cell->hist);
    }
    AppendSection(out, counters, gauges, gauge_maxes, gauge_mins, histos);
  }
  out += "},\"merged\":";
  const Snapshot snap = Merged();
  AppendSection(out, snap.counters, snap.gauges, snap.gauge_maxes,
                snap.gauge_mins, snap.histograms);
  out += "}";
  return out;
}

}  // namespace dufs::obs
