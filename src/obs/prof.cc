#include "obs/prof.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define DUFS_PROF_HAVE_ITIMER 1
#include <csignal>
#include <sys/time.h>
#endif

namespace dufs::prof {

namespace {

// --- sample ring (signal mode) -------------------------------------------
// SPSC: the signal handler is the producer, ordinary code the consumer.
// Monotonic 64-bit indices; capacity is a power of two. The slot array is
// allocated before the handler is armed and only ever reallocated while the
// profiler is stopped (same thread, so no handler can be mid-flight then).

struct Sample {
  std::uint32_t n;
  Frame frames[internal::kMaxDepth];
};

struct Ring {
  Sample* slots = nullptr;
  std::uint64_t cap = 0;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
};

Ring g_ring;
std::atomic<std::uint64_t> g_signals{0};
std::atomic<std::uint64_t> g_dropped{0};

// Off-signal state (ordinary code only).
std::uint64_t g_samples = 0;
std::uint64_t g_dispatches = 0;
std::uint64_t g_every = 0;
std::uint64_t g_tick_accum = 0;
std::uint64_t g_truncated_baseline = 0;  // truncations from before Start
const char* g_last_mode = "none";
bool g_handler_installed = false;

constexpr Frame kUnattributed{"unattributed", FrameKind::kEnginePhase};

#if DUFS_PROF_HAVE_ITIMER
// Async-signal-safe: reads the current thread's context array, writes one
// pre-allocated ring slot. No allocation, no locks, no library calls.
void SigprofHandler(int /*signum*/) {
  if (internal::g_mode.load(std::memory_order_relaxed) != internal::kSignal) {
    return;  // straggler after Stop(): the timer is disarmed, not the handler
  }
  g_signals.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = g_ring.head.load(std::memory_order_relaxed);
  if (h - g_ring.tail.load(std::memory_order_relaxed) >= g_ring.cap) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;  // overflow: counted, never blocks, never corrupts
  }
  const internal::ContextStack& c = internal::g_ctx;
  std::uint32_t d = c.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (d > internal::kMaxDepth) d = internal::kMaxDepth;
  Sample& s = g_ring.slots[h & (g_ring.cap - 1)];
  s.n = d;
  for (std::uint32_t i = 0; i < d; ++i) s.frames[i] = c.frames[i];
  std::atomic_signal_fence(std::memory_order_release);
  g_ring.head.store(h + 1, std::memory_order_relaxed);
}
#endif

// --- stack trie -----------------------------------------------------------
// Keyed by (parent, name, kind) with strcmp name equality: identical
// literals from different TUs may have different addresses, and interned
// names must merge with equal literals.

struct TrieNode {
  const char* name;
  FrameKind kind;
  std::uint32_t parent;
  std::uint64_t self;
};

struct ChildKey {
  std::uint32_t parent;
  const char* name;
  std::uint8_t kind;
};

struct ChildKeyLess {
  bool operator()(const ChildKey& a, const ChildKey& b) const {
    if (a.parent != b.parent) return a.parent < b.parent;
    const int c = std::strcmp(a.name, b.name);
    if (c != 0) return c < 0;
    return a.kind < b.kind;
  }
};

// Function-local statics (leaked): the profiler must not run destructors at
// exit while a straggler signal could still fire.
std::vector<TrieNode>& Nodes() {
  static auto* v = new std::vector<TrieNode>{
      TrieNode{"", FrameKind::kEnginePhase, 0, 0}};  // [0] = root sentinel
  return *v;
}
std::map<ChildKey, std::uint32_t, ChildKeyLess>& Children() {
  static auto* m = new std::map<ChildKey, std::uint32_t, ChildKeyLess>();
  return *m;
}
std::vector<Snapshot*>& SnapshotPool() {
  static auto* v = new std::vector<Snapshot*>();
  return *v;
}

std::uint32_t InternTrieNode(std::uint32_t parent, const char* name,
                             FrameKind kind) {
  const ChildKey key{parent, name, static_cast<std::uint8_t>(kind)};
  auto [it, inserted] =
      Children().emplace(key, static_cast<std::uint32_t>(Nodes().size()));
  if (inserted) Nodes().push_back(TrieNode{name, kind, parent, 0});
  return it->second;
}

void FoldFrames(const Frame* frames, std::uint32_t n) {
  if (n == 0) {
    frames = &kUnattributed;
    n = 1;
  }
  std::uint32_t node = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    node = InternTrieNode(node, frames[i].name, frames[i].kind);
  }
  ++Nodes()[node].self;
  ++g_samples;
}

void FoldCurrentStack() {
  const internal::ContextStack& c = internal::g_ctx;
  FoldFrames(c.frames, c.depth.load(std::memory_order_relaxed));
}

// Children of `parent` in deterministic (name, kind) order — exactly the
// Children() map range for that parent.
template <typename Fn>
void ForEachChild(std::uint32_t parent, Fn&& fn) {
  auto& children = Children();
  for (auto it = children.lower_bound(ChildKey{parent, "", 0});
       it != children.end() && it->first.parent == parent; ++it) {
    fn(it->second);
  }
}

void AppendFolded(std::string* out, std::string* path, std::uint32_t node) {
  const std::size_t len = path->size();
  if (node != 0) {
    if (!path->empty()) *path += ';';
    *path += Nodes()[node].name;
    if (Nodes()[node].self > 0) {
      *out += *path;
      *out += ' ';
      *out += std::to_string(Nodes()[node].self);
      *out += '\n';
    }
  }
  ForEachChild(node, [&](std::uint32_t child) {
    AppendFolded(out, path, child);
  });
  path->resize(len);
}

}  // namespace

const char* FrameKindLabel(FrameKind kind) {
  switch (kind) {
    case FrameKind::kNode: return "node";
    case FrameKind::kOpClass: return "op";
    case FrameKind::kComponent: return "component";
    case FrameKind::kEnginePhase: return "engine";
  }
  return "unknown";
}

namespace internal {

Snapshot* CaptureSlow(ContextStack& c, std::uint32_t depth) {
  Snapshot* s;
  auto& pool = SnapshotPool();
  if (!pool.empty()) {
    s = pool.back();
    pool.pop_back();
  } else {
    s = new Snapshot();
  }
  const std::uint32_t floor = c.floor;
  s->n = depth - floor;
  for (std::uint32_t i = 0; i < s->n; ++i) s->frames[i] = c.frames[floor + i];
  return s;
}

void ReleaseSnapshot(Snapshot* s) { SnapshotPool().push_back(s); }

void DispatchTick() {
  ++g_dispatches;
  const int mode = g_mode.load(std::memory_order_relaxed);
  if (mode == kCount) {
    if (++g_tick_accum >= g_every) {
      g_tick_accum = 0;
      FoldCurrentStack();
    }
    return;
  }
  // Signal mode: opportunistic drain once the ring is half full, so a long
  // Run() cannot overflow it while the consumer sits idle.
  if (g_ring.cap != 0 &&
      g_ring.head.load(std::memory_order_relaxed) -
              g_ring.tail.load(std::memory_order_relaxed) >=
          g_ring.cap / 2) {
    DrainRing();
  }
}

}  // namespace internal

ResumeGuard::ResumeGuard(Snapshot* ctx, bool callback) {
  if (!internal::Active()) {
    // Profiler stopped between schedule and dispatch: only reclaim.
    FreeSnapshot(ctx);
    return;
  }
  internal::ContextStack& c = internal::g_ctx;
  saved_depth_ = c.depth.load(std::memory_order_relaxed);
  saved_floor_ = c.floor;
  ++c.generation;
  c.floor = saved_depth_;
  active_ = true;
  if (callback) {
    // Callback events carry no coroutine context; attribute them to the
    // engine under whatever outer (OS-stack) frames are visible.
    if (saved_depth_ < internal::kMaxDepth) {
      c.frames[saved_depth_] = Frame{"engine.callback", FrameKind::kEnginePhase};
      std::atomic_signal_fence(std::memory_order_release);
      c.depth.store(saved_depth_ + 1, std::memory_order_relaxed);
      c.floor = saved_depth_ + 1;
    } else {
      ++c.truncated;
    }
  } else if (ctx != nullptr) {
    // A scope can be both live below the floor (its OS frame spans Run())
    // and captured in the snapshot (the coroutine inherited it at spawn).
    // Skip the common prefix so such frames do not stack up twice.
    std::uint32_t skip = 0;
    while (skip < ctx->n && skip < c.floor &&
           c.frames[skip].kind == ctx->frames[skip].kind &&
           (c.frames[skip].name == ctx->frames[skip].name ||
            std::strcmp(c.frames[skip].name, ctx->frames[skip].name) == 0)) {
      ++skip;
    }
    std::uint32_t n = ctx->n - skip;
    if (c.floor + n > internal::kMaxDepth) {
      c.truncated += c.floor + n - internal::kMaxDepth;
      n = internal::kMaxDepth - c.floor;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      c.frames[c.floor + i] = ctx->frames[skip + i];
    }
    std::atomic_signal_fence(std::memory_order_release);
    c.depth.store(c.floor + n, std::memory_order_relaxed);
  }
  FreeSnapshot(ctx);
  internal::DispatchTick();
}

ResumeGuard::~ResumeGuard() {
  if (!active_) return;
  internal::ContextStack& c = internal::g_ctx;
  ++c.generation;
  c.floor = saved_floor_;
  c.depth.store(saved_depth_, std::memory_order_relaxed);
}

SpawnGuard::SpawnGuard() {
  internal::ContextStack& c = internal::g_ctx;
  saved_depth_ = c.depth.load(std::memory_order_relaxed);
  saved_floor_ = c.floor;
  ++c.generation;
  internal::DispatchTick();
}

SpawnGuard::~SpawnGuard() {
  internal::ContextStack& c = internal::g_ctx;
  ++c.generation;
  c.floor = saved_floor_;
  c.depth.store(saved_depth_, std::memory_order_relaxed);
}

bool Start(const Options& opts, std::string* error) {
  if (internal::g_mode.load(std::memory_order_relaxed) != internal::kOff) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  internal::ContextStack& c = internal::g_ctx;
  c.depth.store(0, std::memory_order_relaxed);
  c.floor = 0;
  ++c.generation;
  g_truncated_baseline = c.truncated;
  g_tick_accum = 0;
  if (opts.mode == Options::Mode::kCount) {
    if (opts.every == 0) {
      if (error != nullptr) *error = "count mode needs every >= 1";
      return false;
    }
    g_every = opts.every;
    g_last_mode = "count";
    internal::g_mode.store(internal::kCount, std::memory_order_relaxed);
    return true;
  }
#if DUFS_PROF_HAVE_ITIMER
  if (opts.hz < 1 || opts.hz > 100000) {
    if (error != nullptr) *error = "hz out of range [1, 100000]";
    return false;
  }
  std::uint64_t cap = 8;
  while (cap < opts.ring_slots) cap <<= 1;
  if (g_ring.slots == nullptr || g_ring.cap != cap) {
    delete[] g_ring.slots;  // safe: profiler stopped, timer disarmed
    g_ring.slots = new Sample[cap];
    g_ring.cap = cap;
  }
  g_ring.head.store(0, std::memory_order_relaxed);
  g_ring.tail.store(0, std::memory_order_relaxed);
  if (!g_handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &SigprofHandler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      if (error != nullptr) *error = "sigaction(SIGPROF) failed";
      return false;
    }
    g_handler_installed = true;  // stays installed; Stop only disarms
  }
  g_last_mode = "signal";
  internal::g_mode.store(internal::kSignal, std::memory_order_relaxed);
  const long usec = std::max(1L, 1000000L / opts.hz);
  itimerval tv{};
  tv.it_interval.tv_sec = usec / 1000000;
  tv.it_interval.tv_usec = usec % 1000000;
  tv.it_value = tv.it_interval;
  if (setitimer(ITIMER_PROF, &tv, nullptr) != 0) {
    internal::g_mode.store(internal::kOff, std::memory_order_relaxed);
    if (error != nullptr) *error = "setitimer(ITIMER_PROF) failed";
    return false;
  }
  return true;
#else
  if (error != nullptr) *error = "signal profiler unavailable on this platform";
  return false;
#endif
}

void Stop() {
  const int mode = internal::g_mode.load(std::memory_order_relaxed);
  if (mode == internal::kOff) return;
#if DUFS_PROF_HAVE_ITIMER
  if (mode == internal::kSignal) {
    itimerval zero{};
    setitimer(ITIMER_PROF, &zero, nullptr);
  }
#endif
  internal::g_mode.store(internal::kOff, std::memory_order_relaxed);
  if (mode == internal::kSignal) DrainRing();
  internal::ContextStack& c = internal::g_ctx;
  c.depth.store(0, std::memory_order_relaxed);
  c.floor = 0;
  ++c.generation;
}

bool Running() {
  return internal::g_mode.load(std::memory_order_relaxed) != internal::kOff;
}

void Reset() {
  if (Running()) return;  // exports/stats of a live profile stay coherent
  Nodes().resize(1);
  Nodes()[0].self = 0;
  Children().clear();
  g_samples = 0;
  g_dispatches = 0;
  g_tick_accum = 0;
  g_signals.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_ring.tail.store(g_ring.head.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  internal::ContextStack& c = internal::g_ctx;
  g_truncated_baseline = c.truncated;
  g_last_mode = "none";
}

Stats GetStats() {
  Stats s;
  s.samples = g_samples;
  s.dropped = g_dropped.load(std::memory_order_relaxed);
  s.truncated = internal::g_ctx.truncated - g_truncated_baseline;
  s.dispatches = g_dispatches;
  s.signals = g_signals.load(std::memory_order_relaxed);
  return s;
}

void DrainRing() {
  if (g_ring.slots == nullptr) return;
  std::uint64_t t = g_ring.tail.load(std::memory_order_relaxed);
  const std::uint64_t h = g_ring.head.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  while (t != h) {
    const Sample& s = g_ring.slots[t & (g_ring.cap - 1)];
    FoldFrames(s.frames, s.n);
    ++t;
  }
  std::atomic_signal_fence(std::memory_order_release);
  g_ring.tail.store(t, std::memory_order_relaxed);
}

std::string ExportFolded() {
  std::string out;
  std::string path;
  AppendFolded(&out, &path, 0);
  return out;
}

std::string ExportDigestJson() {
  // Per-(name, kind) aggregation. self = trie self sum; total = samples with
  // the frame anywhere on the stack, counted once even when the name nests
  // within itself.
  struct Agg {
    std::uint64_t self = 0;
    std::uint64_t total = 0;
  };
  struct NameKey {
    const char* name;
    std::uint8_t kind;
  };
  struct NameKeyLess {
    bool operator()(const NameKey& a, const NameKey& b) const {
      const int c = std::strcmp(a.name, b.name);
      if (c != 0) return c < 0;
      return a.kind < b.kind;
    }
  };
  const auto& nodes = Nodes();
  // Subtree sums, child-before-parent (children have larger indices).
  std::vector<std::uint64_t> subtree(nodes.size(), 0);
  for (std::size_t i = nodes.size(); i-- > 1;) {
    subtree[i] += nodes[i].self;
    subtree[nodes[i].parent] += subtree[i];
  }
  std::map<NameKey, Agg, NameKeyLess> agg;
  // DFS counting a subtree into a name's total only at its topmost
  // occurrence on the path.
  struct Walker {
    const std::vector<TrieNode>& nodes;
    const std::vector<std::uint64_t>& subtree;
    std::map<NameKey, Agg, NameKeyLess>& agg;
    std::map<NameKey, int, NameKeyLess> on_path;
    void Walk(std::uint32_t node) {
      NameKey key{"", 0};
      if (node != 0) {
        key = NameKey{nodes[node].name,
                      static_cast<std::uint8_t>(nodes[node].kind)};
        Agg& a = agg[key];
        a.self += nodes[node].self;
        if (on_path[key]++ == 0) a.total += subtree[node];
      }
      ForEachChild(node, [&](std::uint32_t child) { Walk(child); });
      if (node != 0) --on_path[key];
    }
  } walker{nodes, subtree, agg, {}};
  walker.Walk(0);

  const Stats stats = GetStats();
  std::string out = "{\"mode\":\"";
  out += g_last_mode;
  out += "\",\"samples\":" + std::to_string(stats.samples);
  out += ",\"dropped\":" + std::to_string(stats.dropped);
  out += ",\"truncated\":" + std::to_string(stats.truncated);
  out += ",\"dispatches\":" + std::to_string(stats.dispatches);
  out += ",\"signals\":" + std::to_string(stats.signals);
  out += ",\"frames\":[";
  bool first = true;
  for (const auto& [key, a] : agg) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += key.name;  // literal/interned identifiers: no escaping needed
    out += "\",\"kind\":\"";
    out += FrameKindLabel(static_cast<FrameKind>(key.kind));
    out += "\",\"self\":" + std::to_string(a.self);
    out += ",\"total\":" + std::to_string(a.total);
    out += '}';
  }
  out += "]}";
  return out;
}

const char* InternName(const std::string& name) {
  static auto* names = new std::set<std::string>();
  return names->insert(name).first->c_str();
}

}  // namespace dufs::prof
