#include "obs/timeline.h"

namespace dufs::obs {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

TimelineSampler::Series& TimelineSampler::AddSeries(const std::string& id) {
  Series& s = series_[id];
  // Zero-backfill a series registered after sampling began so its ring
  // stays index-aligned with the tick ring.
  s.values.resize(ticks_.size(), 0);
  return s;
}

void TimelineSampler::WatchGauge(const std::string& id, Gauge g) {
  Series& s = AddSeries(id);
  s.gauge = g;
  s.is_counter = false;
}

void TimelineSampler::WatchCounter(const std::string& id, Counter c) {
  Series& s = AddSeries(id);
  s.counter = c;
  s.is_counter = true;
}

void TimelineSampler::WatchAllGauges(MetricsRegistry& registry) {
  for (const auto& [node, scope] : registry.scopes()) {
    for (const auto& [key, cell] : scope->gauges()) {
      WatchGauge(node + "/" + key, Gauge(cell.get()));
    }
  }
}

void TimelineSampler::SampleOnce(sim::SimTime now) {
  if (ticks_.size() < opts_.capacity) {
    ticks_.push_back(now);
    for (auto& [id, s] : series_) {
      s.values.push_back(s.is_counter
                             ? static_cast<std::int64_t>(s.counter.value())
                             : s.gauge.value());
    }
  } else {
    ticks_[head_] = now;
    for (auto& [id, s] : series_) {
      s.values[head_] = s.is_counter
                            ? static_cast<std::int64_t>(s.counter.value())
                            : s.gauge.value();
    }
    head_ = (head_ + 1) % opts_.capacity;
    ++dropped_;
  }
}

void TimelineSampler::Start(sim::Simulation& sim) {
  ++generation_;
  running_ = true;
  SampleOnce(sim.now());
  sim::CurrentSimulationScope scope(&sim);
  sim.Spawn(Pump(this, &sim, generation_));
}

sim::Task<void> TimelineSampler::Pump(TimelineSampler* self,
                                      sim::Simulation* sim,
                                      std::uint64_t generation) {
  while (true) {
    co_await sim->Delay(self->opts_.interval);
    if (self->generation_ != generation) co_return;  // Stop()ed or restarted
    self->SampleOnce(sim->now());
    if (sim->pending_events() == 0) {
      // The sampler is the only live actor; re-arming would advance sim
      // time forever under a bare Run(). Fall dormant instead.
      self->running_ = false;
      co_return;
    }
  }
}

std::string TimelineSampler::ToJson() const {
  std::string out = "{\"interval_ns\":" + std::to_string(opts_.interval);
  out += ",\"capacity\":" + std::to_string(opts_.capacity);
  out += ",\"dropped\":" + std::to_string(dropped_);
  out += ",\"t\":[";
  const std::size_t n = ticks_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(ticks_[(head_ + i) % n]);
  }
  out += "],\"series\":{";
  bool first = true;
  for (const auto& [id, s] : series_) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, id);
    out += ":[";
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0) out += ',';
      // A late-registered series may be shorter than the tick ring only
      // transiently; AddSeries backfills, so sizes match here.
      out += std::to_string(s.values[(head_ + i) % n]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

}  // namespace dufs::obs
