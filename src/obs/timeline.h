// Sim-time series sampler — the "over time" half of the metrics story.
//
// End-of-run snapshots show watermarks; the TimelineSampler shows *shape*:
// a coroutine scheduled on the Simulation wakes every `interval` of sim
// time and copies the current value of each watched gauge/counter into a
// ring buffer. The result exports as a `"timeline"` JSON section (sorted
// series ids, integral values) so two identically-seeded runs serialize
// byte-identically.
//
// Watched handles are the same value-type Counter/Gauge handles hot paths
// hold: a sample is one pointer chase per series, no map lookups. Register
// watches before Start(); a series added mid-run is zero-backfilled so all
// rings stay aligned with the tick ring.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace dufs::obs {

class TimelineSampler {
 public:
  struct Options {
    sim::Duration interval = 200'000;  // 200us of sim time between samples
    std::size_t capacity = 4096;       // ring size; oldest samples drop first
  };

  TimelineSampler() = default;
  explicit TimelineSampler(Options opts) : opts_(opts) {}

  // Takes effect from the pump's next wake-up.
  void set_interval(sim::Duration interval) { opts_.interval = interval; }

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // Watch an individual metric under an explicit series id.
  void WatchGauge(const std::string& id, Gauge g);
  void WatchCounter(const std::string& id, Counter c);

  // Watch every gauge currently registered, as "node/key" series. Gauges
  // created after this call are not picked up — call it after the testbed
  // has attached observability to all components.
  void WatchAllGauges(MetricsRegistry& registry);

  // Takes a t=now sample immediately, then samples every opts.interval on
  // the sim clock until Stop(), or until the sampler wakes to an otherwise
  // empty event queue (so a perpetual sampler can never keep a bare
  // sim.Run() alive on its own).
  void Start(sim::Simulation& sim);
  void Stop() { ++generation_; running_ = false; }
  bool running() const { return running_; }

  std::size_t samples() const { return ticks_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  // {"interval_ns":..,"capacity":..,"dropped":..,"t":[..],
  //  "series":{"id":[..],..}} — chronological, keys sorted, integral.
  std::string ToJson() const;

 private:
  struct Series {
    // Exactly one of the two handles is live; a default-constructed handle
    // points at a dummy cell, so sampling the dead one is safe but we track
    // which to read for correctness.
    Gauge gauge;
    Counter counter;
    bool is_counter = false;
    std::vector<std::int64_t> values;  // ring, aligned with ticks_
  };

  // Static member (not a lambda): named coroutines keep frames off the lint
  // radar and dodge the GCC-12 temporary-closure-capture pitfall.
  static sim::Task<void> Pump(TimelineSampler* self, sim::Simulation* sim,
                              std::uint64_t generation);

  Series& AddSeries(const std::string& id);
  void SampleOnce(sim::SimTime now);

  Options opts_;
  std::map<std::string, Series> series_;
  std::vector<sim::SimTime> ticks_;  // ring of sample times
  std::size_t head_ = 0;             // index of oldest sample once full
  std::uint64_t dropped_ = 0;
  std::uint64_t generation_ = 0;  // bumped by Start/Stop to cancel old pumps
  bool running_ = false;
};

}  // namespace dufs::obs
