#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>
#include <utility>

#include "obs/flight.h"
#include "obs/obs.h"

namespace dufs::obs {

namespace detail {

// Escape for JSON string contents (no surrounding quotes).
void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Chrome traces use microsecond timestamps; the sim is nanosecond-grained.
// Print exactly three decimals ("12.345") so nothing is lost and equal
// inputs always format identically (no float rounding involved).
void AppendJsonMicros(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out += buf;
}

}  // namespace detail

namespace {
using detail::AppendJsonEscaped;
using detail::AppendJsonMicros;
}  // namespace

TrackId Tracer::Track(const std::string& name) {
  for (TrackId i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return i;
  }
  tracks_.push_back(name);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void Tracer::Complete(TrackId track, const char* name, const char* cat,
                      sim::SimTime start, sim::Duration dur, TraceId trace,
                      std::vector<Arg> args, std::int64_t wait_ns) {
  if (enabled_) {
    events_.push_back(Event{track, name, cat, start, dur, trace,
                            std::move(args)});
  }
  if (flight_ != nullptr) {
    flight_->Admit(track, name, cat, start, dur, trace, wait_ns);
  }
}

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata first: name each track so Perfetto shows node names instead of
  // bare tids. pid is always 1 (one simulated cluster), tid = track + 1
  // (tid 0 renders oddly in some viewers).
  for (TrackId i = 0; i < tracks_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(i + 1) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, tracks_[i]);
    out += "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.track + 1) +
           ",\"name\":\"";
    AppendJsonEscaped(out, e.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, e.cat);
    out += "\",\"ts\":";
    AppendJsonMicros(out, e.start);
    out += ",\"dur\":";
    AppendJsonMicros(out, e.dur);
    out += ",\"args\":{";
    if (e.trace != 0) {
      out += "\"trace\":" + std::to_string(e.trace);
    }
    for (const Arg& a : e.args) {
      if (out.back() != '{') out += ',';
      out += '"';
      AppendJsonEscaped(out, a.key);
      out += "\":";
      if (a.is_string) {
        out += '"';
        AppendJsonEscaped(out, a.str);
        out += '"';
      } else {
        out += std::to_string(a.num);
      }
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

Span::Span(const NodeObs& obs, const char* name, const char* cat)
    : Span(obs.tracer, obs.track, name, cat) {}

Span Span::Root(const NodeObs& obs, const char* name, const char* cat) {
  // Not recording: the span still contributes its profiler frame (the ctor
  // pushes it before the recording check), but must not burn a trace id.
  const bool recording =
      obs.tracer != nullptr && obs.tracer->recording();
  Span s(obs.tracer, obs.track, name, cat,
         recording ? obs.tracer->NewTrace() : 0);
  if (s.active()) {
    s.root_ = true;
    s.Arm();
  }
  return s;
}

void Span::Emit() {
  const sim::SimTime end = tracer_->now();
  tracer_->Complete(track_, name_, cat_, start_, end - start_, trace_,
                    std::move(args_), wait_ns_);
  if (root_ && tracer_->current() == trace_) tracer_->SetCurrent(0);
  tracer_ = nullptr;
}

}  // namespace dufs::obs
