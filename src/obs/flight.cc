// Dump serialization for the flight recorder — cold path, runs only when an
// anomaly fires (or a test asks). String building is allowed here; the hot
// admission path lives entirely in flight.h.
#include "obs/flight.h"

#include <string>  // dufs-lint: allow(obs-hot-path-alloc) dump serialization

#include "obs/trace.h"

namespace dufs::obs {

// dufs-lint: allow(obs-hot-path-alloc) dump serialization
std::string FlightRecorder::DumpJson(
    const Tracer& tracer,
    // dufs-lint: allow(obs-hot-path-alloc) dump serialization
    const std::string& anomaly_json) const {
  std::string out = "{";  // dufs-lint: allow(obs-hot-path-alloc) dump
  if (!anomaly_json.empty()) {
    out += "\"anomaly\":";
    out += anomaly_json;
    out += ',';
  }
  out += "\"traceEvents\":[";
  bool first = true;
  // Same track metadata as Tracer::ToChromeJson: tracestats and trace
  // viewers resolve tids to node names identically for dumps and traces.
  const auto& tracks = tracer.tracks();
  for (TrackId i = 0; i < tracks.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(i + 1) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    detail::AppendJsonEscaped(out, tracks[i]);
    out += "\"}}";
  }
  for (TrackId t = 0; t < rings_.size(); ++t) {
    ForEach(t, [&](const Record& rec) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(t + 1) +
             ",\"name\":\"";
      detail::AppendJsonEscaped(out, rec.name);
      out += "\",\"cat\":\"";
      detail::AppendJsonEscaped(out, rec.cat);
      out += "\",\"ts\":";
      detail::AppendJsonMicros(out, rec.start);
      out += ",\"dur\":";
      detail::AppendJsonMicros(out, rec.dur);
      out += ",\"args\":{\"seq\":" + std::to_string(rec.seq);
      if (rec.trace != 0) {
        out += ",\"trace\":" + std::to_string(rec.trace);
      }
      if (rec.wait_ns >= 0) {
        out += ",\"wait_ns\":" + std::to_string(rec.wait_ns);
      }
      out += "}}";
    });
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

}  // namespace dufs::obs
