// Incident engine: anomaly detectors + SLO evaluator + dump trigger.
//
// Sits between the hot-path hooks (client op completion, ZK queue depth,
// fsync batches, leader changes, MetaCache probes) and the flight recorder:
// when a detector fires it appends a deterministic structured Anomaly record
// and serializes the flight-recorder rings to `<dump_dir>/dump_<seq>_<type>
// .json` for offline root-causing with `tracestats --explain-dump`.
//
// Detectors (all on sim time, all integer/fixed-arithmetic where it matters
// for determinism):
//   p999-spike     — per op class, at window close: current window's p99.9
//                    vs max(spike_floor, spike_factor × trailing-merged
//                    p99.9) once enough trailing windows exist.
//   burn-rate      — per SLO, at window close: window burn (bad-fraction /
//                    budget) ≥ burn_alert.
//   queue-depth    — on sample: a ZK server request queue at or above the
//                    watermark.
//   fsync-stall    — on sample: one journal fsync batch took ≥ stall bound.
//   leader-change  — on event: a ZK server won an election mid-run.
//   cache-collapse — per node, at window close: MetaCache window hit rate
//                    under the floor after a healthy trailing rate.
//
// The engine is disarmed by default: every hook is an inline armed_ check,
// so un-configured runs pay one predictable branch per sample. Benches arm
// it via bench_util.h's --slo / --flight-dump-dir flags.
//
// Windows are aligned on absolute sim time (index = now / window_ns), so
// window boundaries — and therefore every detector decision — depend only
// on the simulated history, never on wall clock: two identically-seeded
// runs fire identical anomalies and write byte-identical dumps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace dufs::obs {

class FlightRecorder;
class Tracer;
using TrackId = std::uint32_t;

struct AnomalyConfig {
  sim::Duration window_ns = sim::Ms(10);
  int trailing_windows = 8;

  double spike_factor = 3.0;          // p999-spike: × trailing p99.9
  std::int64_t spike_floor_ns = sim::Us(500);
  std::uint64_t spike_min_ops = 16;   // per window, per class

  std::int64_t queue_watermark = 96;  // queue-depth

  sim::Duration fsync_stall_ns = sim::Ms(20);  // fsync-stall (normal ~2ms)

  double hit_rate_floor = 0.5;        // cache-collapse: window rate below...
  double hit_rate_ok = 0.8;           // ...after trailing rate at least this
  std::uint64_t hit_rate_min_probes = 64;

  double burn_alert = 10.0;           // burn-rate: window burn at least this
  std::uint64_t burn_min_ops = 16;

  int max_dumps = 4;                  // dumps written to disk per run
  sim::Duration cooldown_ns = sim::Ms(50);  // per (type, node)
  std::string dump_dir;               // empty = record anomalies, no dumps
};

struct Anomaly {
  std::uint64_t seq = 0;
  sim::SimTime t = 0;
  const char* type = "";
  std::string node;
  std::int64_t value = 0;      // what was observed (ns, depth, epoch, ...)
  std::int64_t threshold = 0;  // what it was compared against
  std::string detail;
  std::string dump_path;       // empty when no dump was written
};

class Incidents {
 public:
  // Wire up clock, node names, and the rings to dump. Must be called before
  // Arm(); the tracer also resolves TrackId -> node name for anomalies.
  void Bind(sim::Simulation* sim, Tracer* tracer, FlightRecorder* flight) {
    sim_ = sim;
    tracer_ = tracer;
    flight_ = flight;
  }

  void Configure(const AnomalyConfig& config);
  // Register one SLO; `spec.op` must be a canonical class-name literal (see
  // CanonicalOpName). Implies Arm-on-Configure.
  void AddSlo(const SloSpec& spec);
  // Start detecting. Disarmed engines ignore every hook.
  void Arm();
  bool armed() const { return armed_; }

  // ---- hot-path hooks (inline disarmed check, out-of-line body) ----

  // A client op of class `cls` (canonical literal) finished in `latency_ns`.
  void RecordOp(const char* cls, TrackId track, std::int64_t latency_ns) {
    if (armed_) OpSample(cls, track, latency_ns);
  }
  // Instantaneous ZK request-queue depth on `track`.
  void RecordQueueDepth(TrackId track, std::int64_t depth) {
    if (armed_) QueueSample(track, depth);
  }
  // One journal fsync batch on `track` took `dur_ns` covering `batch` ops.
  void RecordFsync(TrackId track, std::int64_t dur_ns, std::int64_t batch) {
    if (armed_) FsyncSample(track, dur_ns, batch);
  }
  // A ZK server on `track` became leader of `epoch`.
  void RecordLeaderChange(TrackId track, std::int64_t epoch) {
    if (armed_) LeaderSample(track, epoch);
  }
  // One MetaCache lookup on `track` hit or missed.
  void RecordCacheProbe(TrackId track, bool hit) {
    if (armed_) ProbeSample(track, hit);
  }

  // ---- results ----

  const std::vector<Anomaly>& anomalies() const { return anomalies_; }
  std::uint64_t suppressed() const { return suppressed_; }
  // Finalize the open window (call after the sim drains, before reporting).
  void Flush();
  // The "incidents" section of --metrics-json: anomalies, SLO verdicts, and
  // per-class per-node quantiles. Deterministic formatting.
  std::string ReportJson() const;

  // Resolve a user-supplied op-class name ("create") to the canonical
  // literal the client instrumentation uses; nullptr when unknown.
  static const char* CanonicalOpName(const std::string& name);

 private:
  static constexpr int kMaxClasses = 16;

  struct ClassState {
    const char* name = "";
    SlidingDigest cluster;                 // sliding, cluster-wide
    std::vector<Log2Hist> per_track;       // cumulative, per node
  };
  struct ProbeState {
    std::uint64_t window_hits = 0;
    std::uint64_t window_probes = 0;
    std::uint64_t trailing_hits = 0;
    std::uint64_t trailing_probes = 0;
  };
  struct Cooldown {
    const char* type = "";
    TrackId track = 0;
    bool cluster = false;
    sim::SimTime last = 0;
  };

  void OpSample(const char* cls, TrackId track, std::int64_t latency_ns);
  void QueueSample(TrackId track, std::int64_t depth);
  void FsyncSample(TrackId track, std::int64_t dur_ns, std::int64_t batch);
  void LeaderSample(TrackId track, std::int64_t epoch);
  void ProbeSample(TrackId track, bool hit);

  int ClassIndex(const char* cls);  // get-or-register
  void RollTo(sim::SimTime now);    // close windows up to now's window
  void CloseWindow();               // detectors + roll, one window
  bool InCooldown(const char* type, TrackId track, bool cluster);
  void Fire(const char* type, TrackId track, bool cluster, std::int64_t value,
            std::int64_t threshold, std::string detail);
  std::string NodeName(TrackId track, bool cluster) const;
  std::string AnomalyJson(const Anomaly& a) const;

  sim::Simulation* sim_ = nullptr;
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;

  AnomalyConfig config_;
  bool armed_ = false;

  std::vector<ClassState> classes_;
  std::vector<SloState> slos_;
  std::vector<ProbeState> probes_;  // per track
  std::vector<Cooldown> cooldowns_;

  bool window_open_ = false;
  std::uint64_t cur_window_ = 0;  // index of the open window
  std::uint64_t windows_closed_ = 0;

  std::vector<Anomaly> anomalies_;
  std::uint64_t suppressed_ = 0;
  std::uint64_t burn_alerts_ = 0;
  int dumps_written_ = 0;
};

}  // namespace dufs::obs
