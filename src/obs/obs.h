// Observability bundle: one MetricsRegistry + one Tracer per testbed, and
// the per-node NodeObs handle that instrumented components hold.
//
// Components take a NodeObs by value in an AttachObs() call; a
// default-constructed NodeObs (null metrics scope, null tracer) is always
// safe to use — metric handles fall back to dummy cells and spans no-op.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dufs::obs {

// What one instrumented component needs: where its metrics live and which
// trace track ("thread") its spans land on.
struct NodeObs {
  Scope* metrics = nullptr;
  Tracer* tracer = nullptr;
  TrackId track = 0;

  Counter counter(const std::string& key) const {
    return metrics != nullptr ? metrics->counter(key) : Counter();
  }
  Gauge gauge(const std::string& key) const {
    return metrics != nullptr ? metrics->gauge(key) : Gauge();
  }
  Histogram histogram(const std::string& key) const {
    return metrics != nullptr ? metrics->histogram(key) : Histogram();
  }
  Timer timer(const std::string& key) const { return histogram(key); }
};

class Observability {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

  // Get-or-create the bundle for a named sim node; idempotent, so callers
  // that share a node name share a scope and a track.
  NodeObs Node(const std::string& name) {
    return NodeObs{&metrics_.scope(name), &tracer_, tracer_.Track(name)};
  }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace dufs::obs
