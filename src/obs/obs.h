// Observability bundle: one MetricsRegistry + one Tracer per testbed, and
// the per-node NodeObs handle that instrumented components hold.
//
// Components take a NodeObs by value in an AttachObs() call; a
// default-constructed NodeObs (null metrics scope, null tracer) is always
// safe to use — metric handles fall back to dummy cells and spans no-op.
#pragma once

#include <string>

#include "obs/flight.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace dufs::obs {

// What one instrumented component needs: where its metrics live, which
// trace track ("thread") its spans land on, and where incident hooks go.
struct NodeObs {
  Scope* metrics = nullptr;
  Tracer* tracer = nullptr;
  TrackId track = 0;
  // Anomaly-detector hooks; disarmed engines ignore every call, so holders
  // may invoke hooks unconditionally after a null check.
  Incidents* incidents = nullptr;
  // Interned node name for profiler frames (stable storage — safe inside
  // samples); "" for a default-constructed bundle.
  const char* prof_name = "";

  Counter counter(const std::string& key) const {
    return metrics != nullptr ? metrics->counter(key) : Counter();
  }
  Gauge gauge(const std::string& key) const {
    return metrics != nullptr ? metrics->gauge(key) : Gauge();
  }
  Histogram histogram(const std::string& key) const {
    return metrics != nullptr ? metrics->histogram(key) : Histogram();
  }
  Timer timer(const std::string& key) const { return histogram(key); }
};

class Observability {
 public:
  // The flight recorder is attached from birth: span recording is on (rings
  // only — the full event log still needs SetEnabled) in every run, which is
  // exactly the "always-on" property the incident subsystem needs.
  Observability() { tracer_.AttachFlight(&flight_); }

  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }
  FlightRecorder& flight() { return flight_; }
  Incidents& incidents() { return incidents_; }

  // Wire the incident engine's clock + dump sources; idempotent. Call after
  // tracer().Bind(sim) (the testbed constructor does).
  void BindIncidents(sim::Simulation* sim) {
    incidents_.Bind(sim, &tracer_, &flight_);
  }

  // Get-or-create the bundle for a named sim node; idempotent, so callers
  // that share a node name share a scope and a track.
  NodeObs Node(const std::string& name) {
    return NodeObs{&metrics_.scope(name), &tracer_, tracer_.Track(name),
                   &incidents_, prof::InternName(name)};
  }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  FlightRecorder flight_;
  Incidents incidents_;
};

}  // namespace dufs::obs
