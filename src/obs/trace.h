// Trace-span layer — the timeline half of the observability layer.
//
// RAII spans stamped with Simulation::now() carry a per-operation trace id
// from the DufsClient op that roots it, through the zk::ZkClient RPC, the
// quorum PROPOSE/ACK/COMMIT round on the zk::ZkServer leader, down to the
// journal fsync batch and the pfs back-end calls. Export is Chrome
// trace_event JSON (one "thread" per sim node), loadable in Perfetto or
// chrome://tracing.
//
// Propagation model: the simulator is single-threaded and coroutines run
// synchronously until their first suspension, so a "current trace id" slot
// on the Tracer is enough — a caller arms it immediately before co_await-ing
// into a lower layer, and the callee reads it at entry (before its first
// suspension). After any resumption the slot may belong to another
// interleaved operation; re-arm (Span::Arm) before the next downstream call.
// Across the wire the id travels explicitly (ClientRequest::trace,
// Txn::trace) because the server-side handler runs on a different node's
// coroutine stack.
//
// Determinism: trace ids are a per-Tracer counter and timestamps are sim
// time, so two identically-seeded runs export byte-identical JSON (this is
// asserted in tests/obs/trace_determinism_test.cc). Keep process-global
// values — session ids, pointers, host time — out of span names and args.
//
// Everything no-ops when disabled: Span construction checks enabled() once
// and stores nullptr, so the hot-path cost of a compiled-in span is one
// branch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace dufs::obs {

using TraceId = std::uint64_t;  // 0 = untraced
using TrackId = std::uint32_t;  // one per sim node ("thread" in the export)

class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The tracer reads timestamps from this simulation. Must be called before
  // Enable().
  void Bind(sim::Simulation* sim) { sim_ = sim; }

  void SetEnabled(bool on) { enabled_ = on && sim_ != nullptr; }
  bool enabled() const { return enabled_; }

  // Get-or-create a track by node name. Track ids are assigned in
  // registration order (construction order of the testbed — deterministic).
  TrackId Track(const std::string& name);
  const std::vector<std::string>& tracks() const { return tracks_; }

  TraceId NewTrace() { return ++last_trace_; }
  TraceId current() const { return current_; }
  void SetCurrent(TraceId id) { current_ = id; }

  // Names, categories, and arg keys are string literals (the obs-key-literal
  // lint rule enforces that at every call site), so events store the pointer
  // instead of copying — an enabled span costs no string work until export.
  struct Arg {
    const char* key = "";
    std::string str;       // when is_string
    std::int64_t num = 0;  // otherwise
    bool is_string = false;
  };

  struct Event {
    TrackId track = 0;
    const char* name = "";
    const char* cat = "";
    sim::SimTime start = 0;
    sim::Duration dur = 0;
    TraceId trace = 0;
    std::vector<Arg> args;
  };

  // Record a complete ("X") event. No-op while disabled. `name` and `cat`
  // must outlive the tracer (use literals).
  void Complete(TrackId track, const char* name, const char* cat,
                sim::SimTime start, sim::Duration dur, TraceId trace,
                std::vector<Arg> args = {});

  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Chrome trace_event JSON ("traceEvents" array of metadata + "X" events,
  // ts/dur in microseconds with fixed 3-decimal formatting). Byte-stable
  // for identical event sequences.
  std::string ToChromeJson() const;
  // Returns false when the file cannot be written.
  bool WriteChromeJson(const std::string& path) const;

  sim::SimTime now() const { return sim_ != nullptr ? sim_->now() : 0; }

 private:
  sim::Simulation* sim_ = nullptr;
  bool enabled_ = false;
  TraceId last_trace_ = 0;
  TraceId current_ = 0;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

struct NodeObs;  // obs.h

// RAII span: opens at construction, emits one complete event at End() /
// destruction. Move-only; inactive (null tracer, disabled tracer, or
// default-constructed) spans are free.
class Span {
 public:
  Span() = default;

  // Attached span: inherits the tracer's current trace id. Inline so the
  // disabled path costs one branch at the call site.
  Span(Tracer* tracer, TrackId track, const char* name, const char* cat)
      : Span(tracer, track, name, cat,
             tracer != nullptr ? tracer->current() : 0) {}
  // Explicit-trace span (server side: the id arrived over the wire).
  Span(Tracer* tracer, TrackId track, const char* name, const char* cat,
       TraceId trace) {
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer_ = tracer;
    track_ = track;
    name_ = name;
    cat_ = cat;
    start_ = tracer->now();
    trace_ = trace;
  }

  // Root span: allocates a fresh trace id and makes it current (the start
  // of a client operation).
  static Span Root(const NodeObs& obs, const char* name, const char* cat);
  // Attached span from a NodeObs bundle.
  Span(const NodeObs& obs, const char* name, const char* cat);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      other.tracer_ = nullptr;
      track_ = other.track_;
      name_ = other.name_;
      cat_ = other.cat_;
      start_ = other.start_;
      trace_ = other.trace_;
      root_ = other.root_;
      args_ = std::move(other.args_);
    }
    return *this;
  }

  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }
  TraceId trace() const { return trace_; }

  // Re-publish this span's trace id as the tracer's current. Call after a
  // resumption, immediately before co_await-ing into a lower layer.
  void Arm() {
    if (tracer_ != nullptr) tracer_->SetCurrent(trace_);
  }

  void ArgInt(const char* key, std::int64_t value) {
    if (tracer_ == nullptr) return;
    args_.push_back(Tracer::Arg{key, {}, value, false});
  }
  void ArgStr(const char* key, std::string value) {
    if (tracer_ == nullptr) return;
    args_.push_back(Tracer::Arg{key, std::move(value), 0, true});
  }

  // Emit the event; idempotent. A root span also clears the current trace
  // id (if still its own) so unrelated background work is not attributed
  // to a finished operation.
  void End() {
    if (tracer_ == nullptr) return;
    Emit();
  }

 private:
  void Emit();  // out-of-line tail of End(): record + root cleanup

  Tracer* tracer_ = nullptr;
  TrackId track_ = 0;
  const char* name_ = "";
  const char* cat_ = "";
  sim::SimTime start_ = 0;
  TraceId trace_ = 0;
  bool root_ = false;
  std::vector<Tracer::Arg> args_;
};

}  // namespace dufs::obs
