// Trace-span layer — the timeline half of the observability layer.
//
// RAII spans stamped with Simulation::now() carry a per-operation trace id
// from the DufsClient op that roots it, through the zk::ZkClient RPC, the
// quorum PROPOSE/ACK/COMMIT round on the zk::ZkServer leader, down to the
// journal fsync batch and the pfs back-end calls. Export is Chrome
// trace_event JSON (one "thread" per sim node), loadable in Perfetto or
// chrome://tracing.
//
// Propagation model: the simulator is single-threaded and coroutines run
// synchronously until their first suspension, so a "current trace id" slot
// on the Tracer is enough — a caller arms it immediately before co_await-ing
// into a lower layer, and the callee reads it at entry (before its first
// suspension). After any resumption the slot may belong to another
// interleaved operation; re-arm (Span::Arm) before the next downstream call.
// Across the wire the id travels explicitly (ClientRequest::trace,
// Txn::trace) because the server-side handler runs on a different node's
// coroutine stack.
//
// Determinism: trace ids are a per-Tracer counter and timestamps are sim
// time, so two identically-seeded runs export byte-identical JSON (this is
// asserted in tests/obs/trace_determinism_test.cc). Keep process-global
// values — session ids, pointers, host time — out of span names and args.
//
// Everything no-ops when disabled: Span construction checks recording() once
// and stores nullptr, so the hot-path cost of a compiled-in span is one
// branch.
//
// Flight recording: attaching a FlightRecorder (flight.h) keeps spans live
// even while the full event log is disabled — completed spans go into the
// recorder's bounded per-track rings instead of events_. Span args are only
// collected when the full log is enabled (flight records are POD); the one
// arg the decomposition needs, wait_ns, travels via Span::WaitNs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "obs/prof.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace dufs::obs {

using TraceId = std::uint64_t;  // 0 = untraced
using TrackId = std::uint32_t;  // one per sim node ("thread" in the export)

class FlightRecorder;  // flight.h

namespace detail {
// JSON fragment helpers shared by the tracer export and the flight-recorder
// dump (defined in trace.cc): string escaping and the fixed three-decimal
// microsecond formatting that keeps exports byte-stable.
void AppendJsonEscaped(std::string& out, std::string_view s);
void AppendJsonMicros(std::string& out, std::int64_t ns);
}  // namespace detail

class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The tracer reads timestamps from this simulation. Must be called before
  // Enable().
  void Bind(sim::Simulation* sim) {
    sim_ = sim;
    UpdateRecording();
  }

  void SetEnabled(bool on) {
    enabled_ = on && sim_ != nullptr;
    UpdateRecording();
  }
  bool enabled() const { return enabled_; }

  // Flight recorder attachment: completed spans are additionally (or, when
  // the full log is disabled, only) admitted into `flight`'s rings. Pass
  // nullptr to detach.
  void AttachFlight(FlightRecorder* flight) {
    flight_ = flight;
    UpdateRecording();
  }
  FlightRecorder* flight() const { return flight_; }

  // True when spans should stay live: the full event log is enabled or a
  // flight recorder is attached (and a sim provides timestamps). This is the
  // guard every span construction and instrumentation site uses.
  bool recording() const { return recording_; }

  // Get-or-create a track by node name. Track ids are assigned in
  // registration order (construction order of the testbed — deterministic).
  TrackId Track(const std::string& name);
  const std::vector<std::string>& tracks() const { return tracks_; }

  TraceId NewTrace() { return ++last_trace_; }
  TraceId current() const { return current_; }
  void SetCurrent(TraceId id) { current_ = id; }

  // Names, categories, and arg keys are string literals (the obs-key-literal
  // lint rule enforces that at every call site), so events store the pointer
  // instead of copying — an enabled span costs no string work until export.
  struct Arg {
    const char* key = "";
    std::string str;       // when is_string
    std::int64_t num = 0;  // otherwise
    bool is_string = false;
  };

  struct Event {
    TrackId track = 0;
    const char* name = "";
    const char* cat = "";
    sim::SimTime start = 0;
    sim::Duration dur = 0;
    TraceId trace = 0;
    std::vector<Arg> args;
  };

  // Record a complete ("X") event. No-op while not recording. `name` and
  // `cat` must outlive the tracer (use literals). `wait_ns` is the queueing
  // share of the span for the flight record (-1 = not applicable); the full
  // event log carries it as a span arg instead.
  void Complete(TrackId track, const char* name, const char* cat,
                sim::SimTime start, sim::Duration dur, TraceId trace,
                std::vector<Arg> args = {}, std::int64_t wait_ns = -1);

  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Chrome trace_event JSON ("traceEvents" array of metadata + "X" events,
  // ts/dur in microseconds with fixed 3-decimal formatting). Byte-stable
  // for identical event sequences.
  std::string ToChromeJson() const;
  // Returns false when the file cannot be written.
  bool WriteChromeJson(const std::string& path) const;

  sim::SimTime now() const { return sim_ != nullptr ? sim_->now() : 0; }

 private:
  void UpdateRecording() {
    recording_ = sim_ != nullptr && (enabled_ || flight_ != nullptr);
  }

  sim::Simulation* sim_ = nullptr;
  bool enabled_ = false;
  bool recording_ = false;
  FlightRecorder* flight_ = nullptr;
  TraceId last_trace_ = 0;
  TraceId current_ = 0;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

struct NodeObs;  // obs.h

// RAII span: opens at construction, emits one complete event at End() /
// destruction. Move-only; inactive (null tracer, disabled tracer, or
// default-constructed) spans are free.
class Span {
 public:
  Span() = default;

  // Attached span: inherits the tracer's current trace id. Inline so the
  // disabled path costs one branch at the call site.
  Span(Tracer* tracer, TrackId track, const char* name, const char* cat)
      : Span(tracer, track, name, cat,
             tracer != nullptr ? tracer->current() : 0) {}
  // Explicit-trace span (server side: the id arrived over the wire).
  Span(Tracer* tracer, TrackId track, const char* name, const char* cat,
       TraceId trace) {
    // Every span doubles as a profiler frame (op-class for client ops,
    // component otherwise) — so the existing instrumentation points feed the
    // CPU profile even when the tracer itself is not recording. One branch
    // each when profiling / tracing is off.
    prof_ = prof::PushFrame(name, std::strcmp(cat, "op") == 0
                                      ? prof::FrameKind::kOpClass
                                      : prof::FrameKind::kComponent);
    if (tracer == nullptr || !tracer->recording()) return;
    tracer_ = tracer;
    track_ = track;
    name_ = name;
    cat_ = cat;
    start_ = tracer->now();
    trace_ = trace;
  }

  // Root span: allocates a fresh trace id and makes it current (the start
  // of a client operation).
  static Span Root(const NodeObs& obs, const char* name, const char* cat);
  // Attached span from a NodeObs bundle.
  Span(const NodeObs& obs, const char* name, const char* cat);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      other.tracer_ = nullptr;
      track_ = other.track_;
      name_ = other.name_;
      cat_ = other.cat_;
      start_ = other.start_;
      trace_ = other.trace_;
      root_ = other.root_;
      wait_ns_ = other.wait_ns_;
      args_ = std::move(other.args_);
      prof_ = other.prof_;
      other.prof_ = prof::FrameToken{};
    }
    return *this;
  }

  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }
  TraceId trace() const { return trace_; }

  // Re-publish this span's trace id as the tracer's current. Call after a
  // resumption, immediately before co_await-ing into a lower layer.
  void Arm() {
    if (tracer_ != nullptr) tracer_->SetCurrent(trace_);
  }

  // Args attach to the full event log only — flight records are POD, so a
  // flight-only span never allocates an arg vector.
  void ArgInt(const char* key, std::int64_t value) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    args_.push_back(Tracer::Arg{key, {}, value, false});
  }
  void ArgStr(const char* key, std::string value) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    args_.push_back(Tracer::Arg{key, std::move(value), 0, true});
  }

  // Queueing share of this span in ns; lands in the flight record so the
  // tracestats nic-wait/wire split works on anomaly dumps. Call sites that
  // also want it in the full trace export still ArgInt("wait_ns", ...).
  void WaitNs(std::int64_t value) {
    if (tracer_ == nullptr) return;
    wait_ns_ = value;
  }

  // Emit the event; idempotent. A root span also clears the current trace
  // id (if still its own) so unrelated background work is not attributed
  // to a finished operation.
  void End() {
    prof::PopFrame(prof_);  // the frame may outlive the tracer's interest
    if (tracer_ == nullptr) return;
    Emit();
  }

 private:
  void Emit();  // out-of-line tail of End(): record + root cleanup

  Tracer* tracer_ = nullptr;
  TrackId track_ = 0;
  const char* name_ = "";
  const char* cat_ = "";
  sim::SimTime start_ = 0;
  TraceId trace_ = 0;
  bool root_ = false;
  std::int64_t wait_ns_ = -1;
  std::vector<Tracer::Arg> args_;
  prof::FrameToken prof_;
};

}  // namespace dufs::obs
