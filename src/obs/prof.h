// Coroutine-aware CPU sampling profiler (DESIGN.md §14).
//
// Native stack samples through a coroutine scheduler are useless: every
// resume bottoms out in `coroutine_handle::resume` and the logical caller —
// which node, which op class, which protocol phase — is gone. This layer
// maintains the *logical* stack explicitly: a thread-local array of POD
// frames (`const char*` name + kind) pushed/popped by RAII `ProfScope`
// guards, by the trace-span layer (every obs::Span doubles as a frame), and
// by the scheduler itself (callback dispatch, spawn, wheel maintenance,
// arena growth). A SIGPROF/itimer handler reads that array
// async-signal-safely and a sample collapses to `zk3;op.create;quorum;fsync`
// instead of a raw C++ backtrace.
//
// Coroutine awareness: the logical stack would be wrong across suspensions —
// a frame pushed before `co_await` belongs to the coroutine, not to whatever
// the scheduler dispatches next. So `Simulation::ScheduleHandle` captures the
// portion of the stack above a per-burst floor into a pooled POD snapshot
// (a copy — never live pointers, so a scope dying before a detached task
// resumes cannot dangle), and the dispatch loop rematerializes it around the
// resume. Sync-primitive waiter lists capture at `await_suspend` time
// (sim::SuspendedHandle) because their wake runs on the waker's stack.
//
// Signal-safety rules (the handler may interrupt any instruction):
//   * The handler only reads the context array and writes one slot of a
//     pre-allocated fixed ring (SPSC, monotonic indices). No allocation, no
//     locks, no formatting, no library calls beyond atomics.
//   * Publication order: mutators write the frame slot, then
//     `atomic_signal_fence(release)`, then bump `depth`; the handler reads
//     `depth` first, so it only ever sees fully-written frames.
//   * Frame names must be string literals or prof::InternName results —
//     storage that outlives every sample holding the pointer (the
//     obs-key-literal lint rule enforces literal names at ProfScope sites).
//   * Ring overflow drops the sample and counts it; it never blocks.
//
// Two sampling modes:
//   * kSignal: wall-clock CPU profile via setitimer(ITIMER_PROF) — the real
//     profiler. Nondeterministic by nature; its exports are excluded from
//     the byte-compare determinism gates.
//   * kCount: fold the current stack into the trie every Nth dispatch. No
//     signals, no ring; counts follow the simulation's deterministic event
//     order, so exports are byte-identical run to run and machine to
//     machine — this is what tests and the CI cpu-profile gate use.
//
// Disabled cost is one predictable branch per hook; nothing else is touched.
//
// This header is standalone (std headers only): src/sim depends on it, so it
// must not depend on src/sim or the rest of src/obs.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

namespace dufs::prof {

// What a frame means; disambiguates identical names and feeds the digest.
enum class FrameKind : std::uint8_t {
  kNode = 0,         // a sim node: "client0", "zk3", "pfs1"
  kOpClass = 1,      // a client operation class: "create", "stat", ...
  kComponent = 2,    // a protocol/component phase: "quorum-round", "fsync"
  kEnginePhase = 3,  // scheduler internals: "engine.callback", "engine.wheel"
};
const char* FrameKindLabel(FrameKind kind);  // "node"/"op"/"component"/"engine"

// One logical stack entry. POD; `name` must outlive every sample (literal or
// InternName).
struct Frame {
  const char* name;
  FrameKind kind;
};

namespace internal {

inline constexpr std::uint32_t kMaxDepth = 32;

enum Mode : int { kOff = 0, kSignal = 1, kCount = 2 };

// Global on/off switch; relaxed-loaded by every hook (the one branch).
inline std::atomic<int> g_mode{kOff};

inline bool Active() {
  return g_mode.load(std::memory_order_relaxed) != kOff;
}

// The thread-local logical stack. `depth` is atomic only for the
// signal-handler handshake (same thread, so relaxed + signal fences
// suffice); everything else is owned by ordinary code.
struct ContextStack {
  Frame frames[kMaxDepth] = {};
  std::atomic<std::uint32_t> depth{0};
  // Entries below `floor` belong to the enclosing dispatch burst (or the OS
  // stack) and are not captured into snapshots — that is what stops a
  // restored context from being re-captured and duplicated every burst.
  std::uint32_t floor = 0;
  // Bumped at every burst boundary; a ProfScope pop whose recorded
  // generation is stale falls back to a by-name search (see PopFrame).
  std::uint64_t generation = 0;
  std::uint64_t truncated = 0;  // pushes dropped at kMaxDepth
};

inline constinit thread_local ContextStack g_ctx;

}  // namespace internal

// A captured logical-stack segment carried by a pending coroutine resume.
// POD copy from a fixed pool; freed (recycled) when the resume fires or the
// event is dropped at shutdown.
struct Snapshot {
  std::uint32_t n = 0;
  Frame frames[internal::kMaxDepth];
};

namespace internal {
Snapshot* CaptureSlow(ContextStack& c, std::uint32_t depth);
void ReleaseSnapshot(Snapshot* s);
}  // namespace internal

// Captures the stack above the current floor. nullptr when profiling is off
// or nothing local is on the stack — the caller stores and later frees it
// unconditionally (FreeSnapshot(nullptr) is a no-op).
inline Snapshot* CaptureContext() {
  if (!internal::Active()) return nullptr;
  internal::ContextStack& c = internal::g_ctx;
  const std::uint32_t d = c.depth.load(std::memory_order_relaxed);
  if (d <= c.floor) return nullptr;
  return internal::CaptureSlow(c, d);
}

inline void FreeSnapshot(Snapshot* s) {
  if (s != nullptr) internal::ReleaseSnapshot(s);
}

// Pop ticket returned by PushFrame. POD; default state means "nothing to
// pop", so holders (obs::Span) pay one branch when profiling is off.
struct FrameToken {
  const char* name = nullptr;
  std::uint64_t gen = 0;
  std::uint32_t idx = 0;
  FrameKind kind = FrameKind::kNode;
  bool pushed = false;
};

// `name` must be a string literal or an InternName pointer.
inline FrameToken PushFrame(const char* name, FrameKind kind) {
  FrameToken t;
  if (!internal::Active()) return t;
  if (name == nullptr || name[0] == '\0') return t;  // unattached NodeObs
  internal::ContextStack& c = internal::g_ctx;
  const std::uint32_t d = c.depth.load(std::memory_order_relaxed);
  if (d >= internal::kMaxDepth) {
    ++c.truncated;
    return t;
  }
  c.frames[d] = Frame{name, kind};
  std::atomic_signal_fence(std::memory_order_release);
  c.depth.store(d + 1, std::memory_order_relaxed);
  t.name = name;
  t.gen = c.generation;
  t.idx = d;
  t.kind = kind;
  t.pushed = true;
  return t;
}

inline void PopFrame(FrameToken& t) {
  if (!t.pushed) return;
  t.pushed = false;
  if (!internal::Active()) return;  // Stop() already reset the stack
  internal::ContextStack& c = internal::g_ctx;
  const std::uint32_t d = c.depth.load(std::memory_order_relaxed);
  if (t.gen == c.generation) {
    // Same burst: the recorded index is live. Truncating (rather than
    // decrementing) also unwinds any frames leaked above by callees.
    if (t.idx < d) c.depth.store(t.idx, std::memory_order_relaxed);
    return;
  }
  // The scope outlived a suspension; its index belongs to a previous burst.
  // The restored stack holds a *copy* of the frame — truncate at the
  // innermost match above the floor, or leave the stack alone (the burst
  // guard rewinds it anyway).
  for (std::uint32_t i = d; i > c.floor; --i) {
    const Frame& f = c.frames[i - 1];
    if (f.kind == t.kind &&
        (f.name == t.name || std::strcmp(f.name, t.name) == 0)) {
      c.depth.store(i - 1, std::memory_order_relaxed);
      return;
    }
  }
}

// RAII frame. Construction cost is one branch while profiling is off. The
// name must be a string literal or InternName pointer (obs-key-literal).
class ProfScope {
 public:
  ProfScope(const char* name, FrameKind kind)
      : token_(PushFrame(name, kind)) {}
  ~ProfScope() { PopFrame(token_); }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  FrameToken token_;
};

// --- scheduler hooks ------------------------------------------------------
// Constructed by the simulator only while profiling is active (the callers
// keep the disabled path to its one branch).

// Brackets one dispatch burst: saves depth/floor, optionally pushes an
// "engine.callback" frame, rematerializes (and frees) the resume's captured
// snapshot above a fresh floor, and runs the per-dispatch sampling tick.
class ResumeGuard {
 public:
  ResumeGuard(Snapshot* ctx, bool callback);
  ~ResumeGuard();

  ResumeGuard(const ResumeGuard&) = delete;
  ResumeGuard& operator=(const ResumeGuard&) = delete;

 private:
  std::uint32_t saved_depth_ = 0;
  std::uint32_t saved_floor_ = 0;
  bool active_ = false;
};

// Brackets Simulation::Spawn's inline first run of a detached coroutine: the
// spawned body inherits the spawner's visible stack (causal attribution),
// but frames it leaves behind at its first suspension are rewound.
class SpawnGuard {
 public:
  SpawnGuard();
  ~SpawnGuard();

  SpawnGuard(const SpawnGuard&) = delete;
  SpawnGuard& operator=(const SpawnGuard&) = delete;

 private:
  std::uint32_t saved_depth_ = 0;
  std::uint32_t saved_floor_ = 0;
};

// --- profiler control -----------------------------------------------------

struct Options {
  enum class Mode { kSignal, kCount };
  Mode mode = Mode::kSignal;
  int hz = 97;                     // kSignal: samples/sec (prime, off-beat)
  std::uint64_t every = 64;        // kCount: fold every Nth dispatch
  std::uint32_t ring_slots = 4096; // kSignal: ring capacity (pow2-rounded)
};

struct Stats {
  std::uint64_t samples = 0;     // folded into the trie
  std::uint64_t dropped = 0;     // ring-full signal samples
  std::uint64_t truncated = 0;   // frame pushes beyond kMaxDepth
  std::uint64_t dispatches = 0;  // sampling ticks observed while active
  std::uint64_t signals = 0;     // SIGPROF deliveries
};

// Starts sampling into the (process-global) profile. False + `*error` on bad
// options, unavailable platform timer, or when already running.
bool Start(const Options& opts, std::string* error);
// Disarms the timer, drains the ring, resets the context stack. Idempotent.
// Accumulated trie/stats survive until Reset() so exports happen after Stop.
void Stop();
bool Running();
// Clears the accumulated trie and counters; requires a stopped profiler.
void Reset();
Stats GetStats();

// Drains any signal-ring backlog into the trie (also called on a tick
// watermark and by Stop); off-signal, may allocate.
void DrainRing();

// Folded-stack export, flamegraph.pl-compatible: one `a;b;c N` line per
// stack with samples, sorted by path — byte-deterministic for a given trie.
std::string ExportFolded();
// JSON digest: totals plus per-frame self/total sample counts.
std::string ExportDigestJson();

// Stable storage for dynamic frame names (node names built at testbed
// construction). Interned pointers live for the process lifetime, so they
// satisfy the signal-safety rule; repeated calls return the same pointer.
const char* InternName(const std::string& name);

namespace internal {
// Per-dispatch sampling tick (count-mode fold / ring drain watermark).
// Out-of-line; only called while active.
void DispatchTick();
}  // namespace internal

}  // namespace dufs::prof
