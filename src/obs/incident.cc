#include "obs/incident.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/flight.h"
#include "obs/trace.h"

namespace dufs::obs {

namespace {

// Fixed-decimal double for JSON — snprintf keeps formatting byte-stable.
std::string Dbl(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void AppendQuoted(std::string& out, const std::string& s) {
  out += '"';
  detail::AppendJsonEscaped(out, s);
  out += '"';
}

}  // namespace

const char* Incidents::CanonicalOpName(const std::string& name) {
  static constexpr const char* kOps[] = {"stat",   "mkdir",   "create",
                                         "unlink", "readdir", "rename"};
  for (const char* op : kOps) {
    if (name == op) return op;
  }
  return nullptr;
}

void Incidents::Configure(const AnomalyConfig& config) {
  config_ = config;
  if (config_.window_ns <= 0) config_.window_ns = sim::Ms(10);
  if (config_.trailing_windows <= 0) config_.trailing_windows = 1;
  for (ClassState& c : classes_) c.cluster.Init(config_.trailing_windows);
  Arm();
}

void Incidents::AddSlo(const SloSpec& spec) {
  SloState state;
  state.spec = spec;
  state.cls = ClassIndex(spec.op);
  slos_.push_back(state);
  Arm();
}

void Incidents::Arm() { armed_ = sim_ != nullptr; }

int Incidents::ClassIndex(const char* cls) {
  for (int i = 0; i < static_cast<int>(classes_.size()); ++i) {
    if (classes_[i].name == cls || std::strcmp(classes_[i].name, cls) == 0) {
      return i;
    }
  }
  if (classes_.size() >= kMaxClasses) return static_cast<int>(classes_.size()) - 1;
  ClassState c;
  c.name = cls;
  c.cluster.Init(config_.trailing_windows);
  classes_.push_back(std::move(c));
  return static_cast<int>(classes_.size()) - 1;
}

void Incidents::RollTo(sim::SimTime now) {
  const std::uint64_t w =
      static_cast<std::uint64_t>(now / config_.window_ns);
  if (!window_open_) {
    window_open_ = true;
    cur_window_ = w;
    return;
  }
  if (w == cur_window_) return;
  // After a long idle gap every trailing window in range is empty anyway:
  // close at most depth+2 windows, then jump. Detector decisions still
  // depend only on sim history, so this stays deterministic.
  const std::uint64_t cap =
      static_cast<std::uint64_t>(config_.trailing_windows) + 2;
  if (w - cur_window_ > cap) {
    for (std::uint64_t i = 0; i < cap; ++i) {
      CloseWindow();
      ++cur_window_;
    }
    cur_window_ = w;
    return;
  }
  while (cur_window_ != w) {
    CloseWindow();
    ++cur_window_;
  }
}

void Incidents::CloseWindow() {
  // p999-spike, per class: current window vs the trailing merge.
  for (ClassState& c : classes_) {
    if (c.cluster.cur.total >= config_.spike_min_ops &&
        c.cluster.trailing_count() >= 2) {
      const Log2Hist trailing = c.cluster.TrailingMerged();
      if (trailing.total >= config_.spike_min_ops) {
        const std::int64_t base = trailing.Quantile(0.999);
        std::int64_t threshold = static_cast<std::int64_t>(
            static_cast<double>(base) * config_.spike_factor);
        if (threshold < config_.spike_floor_ns) {
          threshold = config_.spike_floor_ns;
        }
        const std::int64_t cur = c.cluster.cur.Quantile(0.999);
        if (cur > threshold) {
          std::string detail = "op=";
          detail += c.name;
          detail += " trailing_p999_ns=";
          detail += std::to_string(base);
          Fire("p999-spike", 0, /*cluster=*/true, cur, threshold,
               std::move(detail));
        }
      }
    }
    c.cluster.Roll();
  }
  // burn-rate, per SLO.
  for (SloState& s : slos_) {
    const std::uint64_t n = s.window_good + s.window_bad;
    const double burn = s.WindowBurn();
    if (n >= config_.burn_min_ops && burn >= config_.burn_alert) {
      ++burn_alerts_;
      std::string detail = "op=";
      detail += s.spec.op;
      detail += " bad=";
      detail += std::to_string(s.window_bad);
      detail += "/";
      detail += std::to_string(n);
      Fire("burn-rate", 0, /*cluster=*/true,
           static_cast<std::int64_t>(burn * 1000.0),
           static_cast<std::int64_t>(config_.burn_alert * 1000.0),
           std::move(detail));
    }
    s.Roll(cur_window_);
  }
  // cache-collapse, per node.
  for (TrackId t = 0; t < probes_.size(); ++t) {
    ProbeState& p = probes_[t];
    if (p.window_probes >= config_.hit_rate_min_probes &&
        p.trailing_probes >= config_.hit_rate_min_probes) {
      const double rate = static_cast<double>(p.window_hits) /
                          static_cast<double>(p.window_probes);
      const double trailing_rate = static_cast<double>(p.trailing_hits) /
                                   static_cast<double>(p.trailing_probes);
      if (rate < config_.hit_rate_floor &&
          trailing_rate >= config_.hit_rate_ok) {
        std::string detail = "hits=";
        detail += std::to_string(p.window_hits);
        detail += "/";
        detail += std::to_string(p.window_probes);
        detail += " trailing_rate_milli=";
        detail += std::to_string(
            static_cast<std::int64_t>(trailing_rate * 1000.0));
        Fire("cache-collapse", t, /*cluster=*/false,
             static_cast<std::int64_t>(rate * 1000.0),
             static_cast<std::int64_t>(config_.hit_rate_floor * 1000.0),
             std::move(detail));
      }
    }
    p.trailing_hits += p.window_hits;
    p.trailing_probes += p.window_probes;
    p.window_hits = 0;
    p.window_probes = 0;
  }
  ++windows_closed_;
}

void Incidents::OpSample(const char* cls, TrackId track,
                         std::int64_t latency_ns) {
  RollTo(sim_->now());
  const int idx = ClassIndex(cls);
  ClassState& c = classes_[static_cast<std::size_t>(idx)];
  c.cluster.cur.Record(latency_ns);
  if (track >= c.per_track.size()) c.per_track.resize(track + 1);
  c.per_track[track].Record(latency_ns);
  for (SloState& s : slos_) {
    if (s.cls == idx) s.Observe(latency_ns);
  }
}

void Incidents::QueueSample(TrackId track, std::int64_t depth) {
  RollTo(sim_->now());
  if (depth >= config_.queue_watermark) {
    Fire("queue-depth", track, /*cluster=*/false, depth,
         config_.queue_watermark, "");
  }
}

void Incidents::FsyncSample(TrackId track, std::int64_t dur_ns,
                            std::int64_t batch) {
  RollTo(sim_->now());
  if (dur_ns >= config_.fsync_stall_ns) {
    std::string detail = "batch=";
    detail += std::to_string(batch);
    Fire("fsync-stall", track, /*cluster=*/false, dur_ns,
         config_.fsync_stall_ns, std::move(detail));
  }
}

void Incidents::LeaderSample(TrackId track, std::int64_t epoch) {
  RollTo(sim_->now());
  Fire("leader-change", track, /*cluster=*/false, epoch, 0, "");
}

void Incidents::ProbeSample(TrackId track, bool hit) {
  RollTo(sim_->now());
  if (track >= probes_.size()) probes_.resize(track + 1);
  ProbeState& p = probes_[track];
  ++p.window_probes;
  if (hit) ++p.window_hits;
}

bool Incidents::InCooldown(const char* type, TrackId track, bool cluster) {
  const sim::SimTime now = sim_->now();
  for (Cooldown& c : cooldowns_) {
    if (c.track == track && c.cluster == cluster &&
        (c.type == type || std::strcmp(c.type, type) == 0)) {
      if (now - c.last < config_.cooldown_ns) return true;
      c.last = now;
      return false;
    }
  }
  cooldowns_.push_back(Cooldown{type, track, cluster, now});
  return false;
}

std::string Incidents::NodeName(TrackId track, bool cluster) const {
  if (cluster) return "cluster";
  if (tracer_ != nullptr && track < tracer_->tracks().size()) {
    return tracer_->tracks()[track];
  }
  return "track" + std::to_string(track);
}

std::string Incidents::AnomalyJson(const Anomaly& a) const {
  std::string out = "{\"seq\":";
  out += std::to_string(a.seq);
  out += ",\"t_ns\":";
  out += std::to_string(a.t);
  out += ",\"window_ns\":";
  out += std::to_string(config_.window_ns);
  out += ",\"type\":";
  AppendQuoted(out, a.type);
  out += ",\"node\":";
  AppendQuoted(out, a.node);
  out += ",\"value\":";
  out += std::to_string(a.value);
  out += ",\"threshold\":";
  out += std::to_string(a.threshold);
  out += ",\"detail\":";
  AppendQuoted(out, a.detail);
  out += '}';
  return out;
}

void Incidents::Fire(const char* type, TrackId track, bool cluster,
                     std::int64_t value, std::int64_t threshold,
                     std::string detail) {
  if (InCooldown(type, track, cluster)) {
    ++suppressed_;
    return;
  }
  Anomaly a;
  a.seq = static_cast<std::uint64_t>(anomalies_.size()) + 1;
  a.t = sim_->now();
  a.type = type;
  a.node = NodeName(track, cluster);
  a.value = value;
  a.threshold = threshold;
  a.detail = std::move(detail);
  if (!config_.dump_dir.empty() && dumps_written_ < config_.max_dumps &&
      flight_ != nullptr && tracer_ != nullptr) {
    char name[80];
    std::snprintf(name, sizeof(name), "/dump_%03" PRIu64 "_%s.json", a.seq,
                  type);
    const std::string path = config_.dump_dir + name;
    const std::string json = flight_->DumpJson(*tracer_, AnomalyJson(a));
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      const bool ok =
          std::fwrite(json.data(), 1, json.size(), f) == json.size();
      if (std::fclose(f) == 0 && ok) {
        a.dump_path = path;
        ++dumps_written_;
      }
    }
  }
  anomalies_.push_back(std::move(a));
}

void Incidents::Flush() {
  if (!armed_ || !window_open_) return;
  CloseWindow();
  ++cur_window_;
}

std::string Incidents::ReportJson() const {
  std::string out = "{\"anomalies\":[";
  bool first = true;
  for (const Anomaly& a : anomalies_) {
    if (!first) out += ',';
    first = false;
    out += AnomalyJson(a);
    // Splice the dump file into the rendered object when present. Only the
    // basename: the report must stay byte-identical when two runs write
    // their dumps into different directories (the determinism gate does).
    if (!a.dump_path.empty()) {
      const auto slash = a.dump_path.find_last_of('/');
      out.pop_back();  // '}'
      out += ",\"dump\":";
      AppendQuoted(out, slash == std::string::npos
                            ? a.dump_path
                            : a.dump_path.substr(slash + 1));
      out += '}';
    }
  }
  out += "],\"suppressed\":";
  out += std::to_string(suppressed_);
  out += ",\"windows_closed\":";
  out += std::to_string(windows_closed_);
  out += ",\"burn_alerts\":";
  out += std::to_string(burn_alerts_);
  out += ",\"slo\":[";
  first = true;
  for (const SloState& s : slos_) {
    if (!first) out += ',';
    first = false;
    const std::uint64_t n = s.good + s.bad;
    const double bad_fraction =
        n == 0 ? 0.0
               : static_cast<double>(s.bad) / static_cast<double>(n);
    out += "{\"op\":";
    AppendQuoted(out, s.spec.op);
    out += ",\"target_ns\":";
    out += std::to_string(s.spec.target_ns);
    out += ",\"budget\":";
    out += Dbl(s.spec.budget);
    out += ",\"good\":";
    out += std::to_string(s.good);
    out += ",\"bad\":";
    out += std::to_string(s.bad);
    out += ",\"bad_fraction\":";
    out += Dbl(bad_fraction);
    out += ",\"met\":";
    out += bad_fraction <= s.spec.budget ? "true" : "false";
    out += ",\"max_burn\":";
    out += Dbl(s.max_burn);
    out += ",\"max_burn_window\":";
    out += std::to_string(s.max_burn_window);
    out += '}';
  }
  out += "],\"classes\":[";
  first = true;
  for (const ClassState& c : classes_) {
    if (!first) out += ',';
    first = false;
    out += "{\"op\":";
    AppendQuoted(out, c.name);
    out += ",\"nodes\":[";
    bool first_node = true;
    for (TrackId t = 0; t < c.per_track.size(); ++t) {
      const Log2Hist& h = c.per_track[t];
      if (h.total == 0) continue;
      if (!first_node) out += ',';
      first_node = false;
      out += "{\"node\":";
      AppendQuoted(out, NodeName(t, false));
      out += ",\"count\":";
      out += std::to_string(h.total);
      out += ",\"mean_ns\":";
      out += std::to_string(h.sum / static_cast<std::int64_t>(h.total));
      out += ",\"p50_ns\":";
      out += std::to_string(h.Quantile(0.5));
      out += ",\"p99_ns\":";
      out += std::to_string(h.Quantile(0.99));
      out += ",\"p999_ns\":";
      out += std::to_string(h.Quantile(0.999));
      out += ",\"max_ns\":";
      out += std::to_string(h.max);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace dufs::obs
