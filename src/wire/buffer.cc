#include "wire/buffer.h"

namespace dufs::wire {

void BufferWriter::WriteVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufferWriter::WriteBytes(const std::vector<std::uint8_t>& b) {
  WriteVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Result<std::uint8_t> BufferReader::ReadU8() { return ReadLE<std::uint8_t>(); }
Result<std::uint16_t> BufferReader::ReadU16() { return ReadLE<std::uint16_t>(); }
Result<std::uint32_t> BufferReader::ReadU32() { return ReadLE<std::uint32_t>(); }
Result<std::uint64_t> BufferReader::ReadU64() { return ReadLE<std::uint64_t>(); }

Result<std::int64_t> BufferReader::ReadI64() {
  auto v = ReadLE<std::uint64_t>();
  if (!v.ok()) return v.status();
  return static_cast<std::int64_t>(*v);
}

Result<bool> BufferReader::ReadBool() {
  auto v = ReadU8();
  if (!v.ok()) return v.status();
  return *v != 0;
}

Result<std::uint64_t> BufferReader::ReadVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) {
      return Status(StatusCode::kIoError, "wire: truncated varint");
    }
    if (shift >= 64) {
      return Status(StatusCode::kIoError, "wire: varint overflow");
    }
    const std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<std::string> BufferReader::ReadString() {
  auto len = ReadVarint();
  if (!len.ok()) return len.status();
  if (remaining() < *len) {
    return Status(StatusCode::kIoError, "wire: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(*len));
  pos_ += static_cast<std::size_t>(*len);
  return s;
}

Result<std::vector<std::uint8_t>> BufferReader::ReadBytes() {
  auto len = ReadVarint();
  if (!len.ok()) return len.status();
  if (remaining() < *len) {
    return Status(StatusCode::kIoError, "wire: truncated bytes");
  }
  std::vector<std::uint8_t> b(data_ + pos_,
                              data_ + pos_ + static_cast<std::size_t>(*len));
  pos_ += static_cast<std::size_t>(*len);
  return b;
}

}  // namespace dufs::wire
