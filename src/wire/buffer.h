// Binary wire format for simulated RPC payloads.
//
// Everything that crosses the simulated network is really serialized — the
// encoded size feeds the NIC bandwidth model, and decode errors surface as
// Status rather than UB. Encoding: fixed-width little-endian integers,
// varint-prefixed strings/blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dufs::wire {

class BufferWriter {
 public:
  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU16(std::uint16_t v) { AppendLE(v); }
  void WriteU32(std::uint32_t v) { AppendLE(v); }
  void WriteU64(std::uint64_t v) { AppendLE(v); }
  void WriteI64(std::int64_t v) { AppendLE(static_cast<std::uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  // LEB128-style unsigned varint.
  void WriteVarint(std::uint64_t v);

  void WriteString(std::string_view s);
  void WriteBytes(const std::vector<std::uint8_t>& b);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void AppendLE(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class BufferReader {
 public:
  explicit BufferReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  BufferReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int64_t> ReadI64();
  Result<bool> ReadBool();
  Result<std::uint64_t> ReadVarint();
  Result<std::string> ReadString();
  Result<std::vector<std::uint8_t>> ReadBytes();

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> ReadLE() {
    if (remaining() < sizeof(T)) {
      return Status(StatusCode::kIoError, "wire: short read");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace dufs::wire
