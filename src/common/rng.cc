#include "common/rng.h"

#include <cmath>

namespace dufs {

double Rng::NextExponential(double mean) {
  DUFS_CHECK(mean >= 0);
  if (mean == 0) return 0;
  // Inverse-CDF; clamp the uniform away from 0 to avoid log(0).
  double u = NextDouble();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}

}  // namespace dufs
