// Tiny leveled logger. Single-threaded by design (the simulator is
// deterministic and single-threaded); sinks default to stderr.
//
//   DUFS_LOG(Info) << "leader elected, epoch=" << epoch;
//
// Log level is process-global and settable from the DUFS_LOG_LEVEL
// environment variable (trace|debug|info|warn|error|off).
// When a sim-clock provider is installed (SetLogClock), every line carries a
// `[t=1.284ms]` prefix, so log lines and trace spans share one timebase.
#pragma once

#include <cstdint>
#include <sstream>
#include <string_view>

namespace dufs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);
LogLevel ParseLogLevel(std::string_view name, LogLevel fallback);

// Optional "current simulation time" provider for log prefixes. Returns
// nanoseconds, or a negative value when no simulation is current (the
// prefix is omitted then). Process-global, like the log level; the
// simulator installs one on construction.
using LogClock = std::int64_t (*)();
void SetLogClock(LogClock clock);
LogClock GetLogClock();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  // Lower precedence than << but higher than ?:, used to swallow the stream.
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define DUFS_LOG_ENABLED(level) \
  (::dufs::LogLevel::k##level >= ::dufs::GlobalLogLevel())

#define DUFS_LOG(level)                                               \
  !DUFS_LOG_ENABLED(level)                                            \
      ? (void)0                                                       \
      : ::dufs::internal::LogVoidify() &                              \
            ::dufs::internal::LogMessage(::dufs::LogLevel::k##level,  \
                                         __FILE__, __LINE__)          \
                .stream()

// Invariant check that survives NDEBUG: simulation correctness depends on
// these, and benches run optimized.
#define DUFS_CHECK(cond)                                              \
  (cond) ? (void)0                                                    \
         : ::dufs::internal::CheckFailure(#cond, __FILE__, __LINE__)

namespace internal {
[[noreturn]] void CheckFailure(const char* cond, const char* file, int line);
}  // namespace internal

}  // namespace dufs
