#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace dufs {
namespace {

LogLevel InitialLevel() {
  if (const char* env = std::getenv("DUFS_LOG_LEVEL")) {
    return ParseLogLevel(env, LogLevel::kWarn);
  }
  return LogLevel::kWarn;
}

LogLevel& MutableLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return MutableLevel(); }
void SetGlobalLogLevel(LogLevel level) { MutableLevel() = level; }

namespace {
LogClock& MutableLogClock() {
  static LogClock clock = nullptr;
  return clock;
}
}  // namespace

void SetLogClock(LogClock clock) { MutableLogClock() = clock; }
LogClock GetLogClock() { return MutableLogClock(); }

LogLevel ParseLogLevel(std::string_view name, LogLevel fallback) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return fallback;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  if (LogClock log_clock = GetLogClock()) {
    const std::int64_t ns = log_clock();
    if (ns >= 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "[t=%lld.%03lldms] ",
                    static_cast<long long>(ns / 1'000'000),
                    static_cast<long long>((ns / 1'000) % 1'000));
      stream_ << buf;
    }
  }
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  stream_ << "\n";
  std::cerr << stream_.str();
}

void CheckFailure(const char* cond, const char* file, int line) {
  std::cerr << "[CHECK failed] " << cond << " at " << file << ":" << line
            << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace dufs
