// Small statistics toolkit used by the mdtest harness and benches:
// streaming mean/stddev, min/max, and a log-scaled latency histogram with
// percentile queries.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>

namespace dufs {

class RunningStat {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;

  void Merge(const RunningStat& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over non-negative int64 samples (we use nanoseconds). Buckets
// grow geometrically (factor 2 with 4 sub-buckets per octave) giving <= ~19%
// relative error on percentile queries — plenty for throughput analysis.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  // Inline: this is the metrics hot path (one call per instrumented op /
  // RPC / NIC transfer).
  void Add(std::int64_t sample_ns) {
    if (sample_ns < 0) sample_ns = 0;
    ++buckets_[static_cast<std::size_t>(BucketFor(sample_ns))];
    ++count_;
    sum_ += sample_ns;
    if (sample_ns > max_sample_) max_sample_ = sample_ns;
  }
  std::uint64_t count() const { return count_; }
  // Exact sum of all samples (not bucketed): lets offline tools cross-check
  // a latency decomposition against the end-to-end totals.
  std::int64_t sum() const { return sum_; }

  // p in [0, 100]. Returns an upper bound of the bucket containing the
  // requested rank; 0 when empty.
  std::int64_t Percentile(double p) const;
  std::int64_t MaxSample() const { return max_sample_; }

  void Merge(const LatencyHistogram& other);
  std::string Summary() const;  // "p50=… p95=… p99=… max=…" (human units)

 private:
  static constexpr int kSubBuckets = 4;
  static constexpr int kOctaves = 48;  // covers up to ~2^48 ns (~3 days)
  static int BucketFor(std::int64_t v) {
    if (v < kSubBuckets) return static_cast<int>(std::max<std::int64_t>(v, 0));
    const auto uv = static_cast<std::uint64_t>(v);
    const int octave = 63 - std::countl_zero(uv);  // floor(log2 v) >= 2
    // Position within the octave, quantized into kSubBuckets slots.
    const std::uint64_t base = 1ull << octave;
    const int sub = static_cast<int>(((uv - base) * kSubBuckets) >> octave);
    const int idx = octave * kSubBuckets + sub;
    const int max_idx = kSubBuckets * kOctaves - 1;
    return std::min(idx, max_idx);
  }
  static std::int64_t BucketUpperBound(int bucket);

  // Inline storage (not a heap vector): Add is one dependent load shorter,
  // and a cell's buckets sit next to its count/max on the same cache lines.
  std::array<std::uint64_t, static_cast<std::size_t>(kSubBuckets* kOctaves)>
      buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_sample_ = 0;
};

// Formats nanoseconds with an adaptive unit ("183us", "2.31ms", ...).
std::string FormatNanos(std::int64_t ns);

}  // namespace dufs
