// File Identifier (paper §IV-E).
//
// A FID is a 128-bit value: the high 64 bits identify the DUFS client
// *instance* that created the file, the low 64 bits are that client's
// monotone creation counter. Uniqueness therefore needs no coordination at
// file-creation time; client-instance ids are made unique at mount time
// (core::FidGenerator draws them from a ZooKeeper sequential counter).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dufs {

struct Fid {
  std::uint64_t client_id = 0;
  std::uint64_t counter = 0;

  bool IsNull() const { return client_id == 0 && counter == 0; }

  // 32 lower-case hex chars: client_id then counter, MSB first.
  std::string ToHex() const;
  static std::optional<Fid> FromHex(std::string_view hex);

  friend bool operator==(const Fid&, const Fid&) = default;
  friend auto operator<=>(const Fid&, const Fid&) = default;
};

struct FidHasher {
  std::size_t operator()(const Fid& fid) const noexcept;
};

}  // namespace dufs
