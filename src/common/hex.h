// Hex encoding helpers (FID physical-path codec, digests, debug dumps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dufs {

// Lower-case hex, two chars per byte.
std::string BytesToHex(const std::uint8_t* data, std::size_t len);
std::string BytesToHex(const std::vector<std::uint8_t>& bytes);

// Returns nullopt on odd length or non-hex characters.
std::optional<std::vector<std::uint8_t>> HexToBytes(std::string_view hex);

// 16 lower-case hex chars, most-significant nibble first.
std::string U64ToHex(std::uint64_t v);

// Parses exactly-16-char hex; nullopt otherwise.
std::optional<std::uint64_t> HexToU64(std::string_view hex);

}  // namespace dufs
