#include "common/md5.h"

#include <cstring>

#include "common/hex.h"
#include "common/log.h"

namespace dufs {
namespace {

constexpr std::uint32_t kInitA = 0x67452301u;
constexpr std::uint32_t kInitB = 0xefcdab89u;
constexpr std::uint32_t kInitC = 0x98badcfeu;
constexpr std::uint32_t kInitD = 0x10325476u;

// T[i] = floor(2^32 * abs(sin(i+1))), RFC 1321 §3.4.
constexpr std::uint32_t kT[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kShift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                            7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                            5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                            4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                            6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                            6, 10, 15, 21};

inline std::uint32_t Rotl(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

}  // namespace

Md5::Md5() : a_(kInitA), b_(kInitB), c_(kInitC), d_(kInitD) {}

void Md5::ProcessBlock(const std::uint8_t block[64]) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[4 * i]) |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 3]) << 24;
  }

  std::uint32_t a = a_, b = b_, c = c_, d = d_;
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl(a + f + kT[i] + m[g], kShift[i]);
    a = tmp;
  }

  a_ += a;
  b_ += b;
  c_ += c;
  d_ += d;
}

void Md5::Update(const void* data, std::size_t len) {
  DUFS_CHECK(!finished_);
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    const std::size_t need = 64 - buffer_len_;
    const std::size_t take = len < need ? len : need;
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
}

Md5Digest Md5::Finish() {
  DUFS_CHECK(!finished_);
  finished_ = true;

  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80 then zeros to 56 mod 64, then the 64-bit length (LE).
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  finished_ = false;  // allow the padding Updates
  Update(kPad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  // The length bytes must not be counted in total_len_, but Update already
  // processed padding; total_len_ is no longer used after this point.
  Update(len_bytes, 8);
  finished_ = true;
  DUFS_CHECK(buffer_len_ == 0);

  Md5Digest out;
  const std::uint32_t words[4] = {a_, b_, c_, d_};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 4; ++i) {
      out.bytes[4 * w + i] = static_cast<std::uint8_t>(words[w] >> (8 * i));
    }
  }
  return out;
}

Md5Digest Md5::Hash(const void* data, std::size_t len) {
  Md5 md5;
  md5.Update(data, len);
  return md5.Finish();
}

std::uint64_t Md5Digest::Low64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return v;
}

std::uint64_t Md5Digest::High64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
  }
  return v;
}

std::string Md5Digest::ToHex() const {
  return BytesToHex(bytes.data(), bytes.size());
}

}  // namespace dufs
