#include "common/hex.h"

namespace dufs {
namespace {

constexpr char kHexChars[] = "0123456789abcdef";

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string BytesToHex(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexChars[data[i] >> 4]);
    out.push_back(kHexChars[data[i] & 0xF]);
  }
  return out;
}

std::string BytesToHex(const std::vector<std::uint8_t>& bytes) {
  return BytesToHex(bytes.data(), bytes.size());
}

std::optional<std::vector<std::uint8_t>> HexToBytes(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexDigit(hex[i]);
    const int lo = HexDigit(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string U64ToHex(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexChars[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> HexToU64(std::string_view hex) {
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : hex) {
    const int d = HexDigit(c);
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

}  // namespace dufs
