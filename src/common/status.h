// Error model shared by every DUFS module.
//
// The code space deliberately mirrors POSIX errno semantics for filesystem
// operations (the FUSE layer translates StatusCode back to errno-style
// results) plus a few distributed-systems codes (kTimeout, kUnavailable,
// kConflict) used by the coordination and replication layers.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>

namespace dufs {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,        // ENOENT
  kAlreadyExists,   // EEXIST
  kNotADirectory,   // ENOTDIR
  kIsADirectory,    // EISDIR
  kNotEmpty,        // ENOTEMPTY
  kPermissionDenied,// EACCES
  kInvalidArgument, // EINVAL
  kNameTooLong,     // ENAMETOOLONG
  kNoSpace,         // ENOSPC
  kIoError,         // EIO
  kBusy,            // EBUSY
  kCrossDevice,     // EXDEV (unsupported atomic subtree move)
  kStale,           // ESTALE (fid no longer valid)
  kBadVersion,      // optimistic concurrency failure (ZK version mismatch)
  kTimeout,         // RPC deadline exceeded
  kUnavailable,     // no quorum / server down
  kConflict,        // lost a race that the caller may retry
  kNotConnected,    // session closed
  kUnimplemented,
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// Cheap value-type status. An empty message is the common case and costs no
// allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  // Lets DUFS_RETURN_IF_ERROR accept both Status and Result<T> expressions.
  const Status& status() const { return *this; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Minimal expected<T, Status>. C++20 has no std::expected, so we carry our
// own; the API subset matches what the codebase needs (ok/value/status,
// value_or, monadic map is intentionally omitted to keep call sites explicit).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT
  Result(StatusCode code)                             // NOLINT
    requires(!std::is_same_v<T, StatusCode>)
      : rep_(Status(code)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  // Status of a value-holding Result is kOk.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }
  StatusCode code() const {
    return ok() ? StatusCode::kOk : std::get<Status>(rep_).code();
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagation helpers. `expr` must yield a Status or Result<T>.
#define DUFS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    if (auto _st = (expr).status(); !_st.ok()) {    \
      return _st;                                   \
    }                                               \
  } while (0)

// Co-routine flavour (bodies that co_return).
#define DUFS_CO_RETURN_IF_ERROR(expr)               \
  do {                                              \
    if (auto _st = (expr).status(); !_st.ok()) {    \
      co_return _st;                                \
    }                                               \
  } while (0)

}  // namespace dufs
