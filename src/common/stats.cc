#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace dufs {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::int64_t LatencyHistogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  const int octave = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const std::uint64_t base = 1ull << octave;
  return static_cast<std::int64_t>(base +
                                   ((base * static_cast<unsigned>(sub + 1)) >>
                                    2));  // kSubBuckets == 4
}

std::int64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank && buckets_[i] > 0) {
      return std::min(BucketUpperBound(static_cast<int>(i)), max_sample_);
    }
  }
  return max_sample_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  DUFS_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_sample_ = std::max(max_sample_, other.max_sample_);
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "p50=%s p95=%s p99=%s max=%s",
                FormatNanos(Percentile(50)).c_str(),
                FormatNanos(Percentile(95)).c_str(),
                FormatNanos(Percentile(99)).c_str(),
                FormatNanos(max_sample_).c_str());
  return buf;
}

std::string FormatNanos(std::int64_t ns) {
  char buf[64];
  const double v = static_cast<double>(ns);
  if (ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  }
  return buf;
}

}  // namespace dufs
