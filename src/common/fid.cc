#include "common/fid.h"

#include "common/hex.h"

namespace dufs {

std::string Fid::ToHex() const {
  return U64ToHex(client_id) + U64ToHex(counter);
}

std::optional<Fid> Fid::FromHex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  const auto hi = HexToU64(hex.substr(0, 16));
  const auto lo = HexToU64(hex.substr(16, 16));
  if (!hi || !lo) return std::nullopt;
  return Fid{*hi, *lo};
}

std::size_t FidHasher::operator()(const Fid& fid) const noexcept {
  // splitmix64-style mix of the two words.
  std::uint64_t x = fid.client_id ^ (fid.counter * 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

}  // namespace dufs
