#include "common/status.h"

namespace dufs {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kNotADirectory: return "NOT_A_DIRECTORY";
    case StatusCode::kIsADirectory: return "IS_A_DIRECTORY";
    case StatusCode::kNotEmpty: return "NOT_EMPTY";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNameTooLong: return "NAME_TOO_LONG";
    case StatusCode::kNoSpace: return "NO_SPACE";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kBusy: return "BUSY";
    case StatusCode::kCrossDevice: return "CROSS_DEVICE";
    case StatusCode::kStale: return "STALE";
    case StatusCode::kBadVersion: return "BAD_VERSION";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kNotConnected: return "NOT_CONNECTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dufs
