// From-scratch MD5 (RFC 1321).
//
// DUFS uses MD5 only as a mixing function for back-end placement
// (`MD5(fid) mod N`, paper §IV-F) — not for security. The implementation is
// nevertheless a complete, test-vector-verified MD5.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dufs {

struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  // Little-endian low / high 64-bit words, convenient for `mod N` mapping.
  std::uint64_t Low64() const;
  std::uint64_t High64() const;
  std::string ToHex() const;

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
};

class Md5 {
 public:
  Md5();

  void Update(const void* data, std::size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  // Finalizes and returns the digest; the object must not be reused after.
  Md5Digest Finish();

  static Md5Digest Hash(const void* data, std::size_t len);
  static Md5Digest Hash(std::string_view s) { return Hash(s.data(), s.size()); }

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::uint32_t a_, b_, c_, d_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

}  // namespace dufs
