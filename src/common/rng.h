// Deterministic RNG for the simulator. Every Simulation owns one Rng seeded
// explicitly, so experiments replay bit-for-bit.
#pragma once

#include <cstdint>

#include "common/log.h"

namespace dufs {

// splitmix64 — tiny, fast, good distribution for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    DUFS_CHECK(bound > 0);
    // Modulo bias is negligible for simulation bounds (<< 2^64).
    return NextU64() % bound;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    DUFS_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBelow(span));
  }

  // Exponential with the given mean (for service-time jitter).
  double NextExponential(double mean);

  // Fork a statistically-independent child stream (per node / per client).
  Rng Fork() { return Rng(NextU64()); }

 private:
  std::uint64_t state_;
};

}  // namespace dufs
