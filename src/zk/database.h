// The replicated state machine: DataTree + session table + txn application.
//
// Every replica owns one Database and applies committed Txns in zxid order.
// Apply() is deterministic — identical inputs leave every replica with an
// identical Fingerprint() — and returns the OpResults plus the watch
// triggers the owning server should fan out.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "zk/proto.h"
#include "zk/znode.h"

namespace dufs::zk {

struct AppliedTxn {
  OpResult result;                    // standalone op (or aggregate for multi)
  std::vector<OpResult> multi_results;

  struct Trigger {
    WatchEventType type;
    std::string path;
  };
  std::vector<Trigger> triggers;
};

class Database {
 public:
  Database();

  // --- replicated writes --------------------------------------------------
  AppliedTxn Apply(const Txn& txn, Zxid zxid, std::int64_t now_ns);
  Zxid last_applied() const { return last_applied_; }

  // --- local reads ----------------------------------------------------
  OpResult Read(const Op& op) const;

  bool SessionExists(SessionId id) const { return sessions_.count(id) > 0; }
  std::size_t session_count() const { return sessions_.size(); }

  DataTree& tree() { return *tree_; }
  const DataTree& tree() const { return *tree_; }

  // --- snapshots ---------------------------------------------------------
  std::vector<std::uint8_t> Snapshot() const;
  static Result<std::unique_ptr<Database>> Restore(
      const std::vector<std::uint8_t>& snapshot);

  std::uint64_t Fingerprint() const;
  std::size_t EstimateMemoryBytes() const;

 private:
  OpResult ApplyOne(const Op& op, SessionId session, Zxid zxid,
                    std::int64_t now_ns, std::vector<AppliedTxn::Trigger>& out);
  AppliedTxn ApplyMulti(const Txn& txn, Zxid zxid, std::int64_t now_ns);

  std::unique_ptr<DataTree> tree_;
  std::unordered_set<SessionId> sessions_;
  Zxid last_applied_ = 0;
};

}  // namespace dufs::zk
