#include "zk/znode.h"

#include <cstdio>

#include "common/log.h"

namespace dufs::zk {

void ZnodeStat::Encode(wire::BufferWriter& w) const {
  w.WriteI64(czxid);
  w.WriteI64(mzxid);
  w.WriteI64(pzxid);
  w.WriteI64(ctime);
  w.WriteI64(mtime);
  w.WriteU32(static_cast<std::uint32_t>(version));
  w.WriteU32(static_cast<std::uint32_t>(cversion));
  w.WriteU64(ephemeral_owner);
  w.WriteU32(static_cast<std::uint32_t>(num_children));
  w.WriteU32(static_cast<std::uint32_t>(data_length));
}

Result<ZnodeStat> ZnodeStat::Decode(wire::BufferReader& r) {
  ZnodeStat s;
  auto read_i64 = [&](Zxid& out) -> Status {
    auto v = r.ReadI64();
    if (!v.ok()) return v.status();
    out = *v;
    return Status::Ok();
  };
  DUFS_RETURN_IF_ERROR(read_i64(s.czxid));
  DUFS_RETURN_IF_ERROR(read_i64(s.mzxid));
  DUFS_RETURN_IF_ERROR(read_i64(s.pzxid));
  DUFS_RETURN_IF_ERROR(read_i64(s.ctime));
  DUFS_RETURN_IF_ERROR(read_i64(s.mtime));
  auto version = r.ReadU32();
  DUFS_RETURN_IF_ERROR(version);
  s.version = static_cast<std::int32_t>(*version);
  auto cversion = r.ReadU32();
  DUFS_RETURN_IF_ERROR(cversion);
  s.cversion = static_cast<std::int32_t>(*cversion);
  auto owner = r.ReadU64();
  DUFS_RETURN_IF_ERROR(owner);
  s.ephemeral_owner = *owner;
  auto nc = r.ReadU32();
  DUFS_RETURN_IF_ERROR(nc);
  s.num_children = static_cast<std::int32_t>(*nc);
  auto dl = r.ReadU32();
  DUFS_RETURN_IF_ERROR(dl);
  s.data_length = static_cast<std::int32_t>(*dl);
  return s;
}

Status ValidatePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(StatusCode::kInvalidArgument, "path must start with '/'");
  }
  if (path == "/") return Status::Ok();
  if (path.back() == '/') {
    return Status(StatusCode::kInvalidArgument, "trailing slash");
  }
  std::size_t start = 1;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    const auto seg = path.substr(start, end - start);
    if (seg.empty()) {
      return Status(StatusCode::kInvalidArgument, "empty path segment");
    }
    if (seg == "." || seg == "..") {
      return Status(StatusCode::kInvalidArgument, "relative path segment");
    }
    start = end + 1;
  }
  return Status::Ok();
}

std::string ParentPath(std::string_view path) {
  DUFS_CHECK(path.size() > 1 && path[0] == '/');
  const auto pos = path.rfind('/');
  if (pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

std::string_view BaseName(std::string_view path) {
  const auto pos = path.rfind('/');
  return path.substr(pos + 1);
}

std::vector<std::string_view> PathComponents(std::string_view path) {
  std::vector<std::string_view> out;
  if (path.size() <= 1) return out;
  std::size_t start = 1;
  while (start <= path.size()) {
    auto end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    out.push_back(path.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

DataTree::DataTree() : root_(std::make_unique<Znode>()) {}

Result<const DataTree::Znode*> DataTree::Find(std::string_view path) const {
  DUFS_RETURN_IF_ERROR(ValidatePath(path));
  const Znode* cur = root_.get();
  if (path == "/") return cur;
  std::size_t start = 1;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    const auto seg = path.substr(start, end - start);
    auto it = cur->children.find(seg);
    if (it == cur->children.end()) {
      return Status(StatusCode::kNotFound, std::string(path));
    }
    cur = it->second.get();
    start = end + 1;
  }
  return cur;
}

DataTree::Znode* DataTree::FindMutable(std::string_view path) {
  auto found = static_cast<const DataTree*>(this)->Find(path);
  return found.ok() ? const_cast<Znode*>(*found) : nullptr;
}

Result<std::string> DataTree::Create(std::string_view path,
                                     std::vector<std::uint8_t> data,
                                     CreateMode mode, SessionId session,
                                     Zxid zxid, std::int64_t time) {
  DUFS_RETURN_IF_ERROR(ValidatePath(path));
  if (path == "/") return Status(StatusCode::kAlreadyExists, "/");
  const std::string parent_path = ParentPath(path);
  Znode* parent = FindMutable(parent_path);
  if (parent == nullptr) {
    return Status(StatusCode::kNotFound, "parent " + parent_path);
  }
  if (parent->stat.ephemeral_owner != 0) {
    // ZooKeeper forbids children under ephemeral nodes.
    return Status(StatusCode::kInvalidArgument, "parent is ephemeral");
  }

  std::string name(BaseName(path));
  if (IsSequential(mode)) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%010llu",
                  static_cast<unsigned long long>(parent->next_sequence++));
    name += suffix;
  }
  if (parent->children.count(name) > 0) {
    return Status(StatusCode::kAlreadyExists,
                  parent_path + (parent_path == "/" ? "" : "/") + name);
  }

  auto node = std::make_unique<Znode>();
  node->name = name;
  node->data = std::move(data);
  node->stat.czxid = zxid;
  node->stat.mzxid = zxid;
  node->stat.pzxid = zxid;
  node->stat.ctime = time;
  node->stat.mtime = time;
  node->stat.data_length = static_cast<std::int32_t>(node->data.size());
  if (IsEphemeral(mode)) {
    DUFS_CHECK(session != 0);
    node->stat.ephemeral_owner = session;
    ++ephemeral_count_;
  }
  parent->children.emplace(name, std::move(node));
  parent->stat.pzxid = zxid;
  ++parent->stat.cversion;
  ++parent->stat.num_children;
  ++node_count_;

  std::string created = parent_path == "/" ? "/" + name
                                           : parent_path + "/" + name;
  return created;
}

Status DataTree::Delete(std::string_view path, std::int32_t expected_version,
                        Zxid zxid) {
  DUFS_RETURN_IF_ERROR(ValidatePath(path));
  if (path == "/") {
    return Status(StatusCode::kInvalidArgument, "cannot delete the root");
  }
  Znode* node = FindMutable(path);
  if (node == nullptr) return Status(StatusCode::kNotFound, std::string(path));
  if (!node->children.empty()) {
    return Status(StatusCode::kNotEmpty, std::string(path));
  }
  if (expected_version != kAnyVersion &&
      expected_version != node->stat.version) {
    return Status(StatusCode::kBadVersion, std::string(path));
  }
  if (node->stat.ephemeral_owner != 0) --ephemeral_count_;

  Znode* parent = FindMutable(ParentPath(path));
  DUFS_CHECK(parent != nullptr);
  parent->children.erase(node->name);
  parent->stat.pzxid = zxid;
  ++parent->stat.cversion;
  --parent->stat.num_children;
  --node_count_;
  return Status::Ok();
}

Result<ZnodeStat> DataTree::SetData(std::string_view path,
                                    std::vector<std::uint8_t> data,
                                    std::int32_t expected_version, Zxid zxid,
                                    std::int64_t time) {
  Znode* node = FindMutable(path);
  if (node == nullptr) return Status(StatusCode::kNotFound, std::string(path));
  if (expected_version != kAnyVersion &&
      expected_version != node->stat.version) {
    return Status(StatusCode::kBadVersion, std::string(path));
  }
  node->data = std::move(data);
  node->stat.data_length = static_cast<std::int32_t>(node->data.size());
  node->stat.mzxid = zxid;
  node->stat.mtime = time;
  ++node->stat.version;
  return node->stat;
}

Result<ZnodeStat> DataTree::Stat(std::string_view path) const {
  auto node = Find(path);
  if (!node.ok()) return node.status();
  return (*node)->stat;
}

Result<std::vector<std::string>> DataTree::GetChildren(
    std::string_view path) const {
  auto node = Find(path);
  if (!node.ok()) return node.status();
  std::vector<std::string> names;
  names.reserve((*node)->children.size());
  for (const auto& [name, child] : (*node)->children) names.push_back(name);
  return names;
}

namespace {
void CollectEphemerals(const DataTree::Znode& node, const std::string& prefix,
                       SessionId session, std::vector<std::string>& out) {
  for (const auto& [name, child] : node.children) {
    const std::string child_path =
        prefix == "/" ? "/" + name : prefix + "/" + name;
    if (child->stat.ephemeral_owner == session) out.push_back(child_path);
    CollectEphemerals(*child, child_path, session, out);
  }
}

// Constants calibrated against the paper's Fig. 11: one million znodes
// occupy ~417 MB of ZooKeeper (JVM) heap, i.e. ~417 bytes each for mdtest
// paths. Breakdown: DataNode object + Stat (~120B), ConcurrentHashMap path
// index entry + path String (~2x path bytes for UTF-16 + ~90B headers),
// parent child-set entry (~50B), data array (+16B header).
struct MemoryModel {
  static constexpr std::size_t kZnodeFixed = 130;
  static constexpr std::size_t kIndexEntry = 96;
  static constexpr std::size_t kChildEntry = 52;
  static constexpr std::size_t kPerNamedByte = 3;  // name appears in path
                                                   // index (UTF-16) + child
                                                   // set key
};

std::size_t NodeMemory(const DataTree::Znode& node, std::size_t depth) {
  std::size_t bytes = MemoryModel::kZnodeFixed + MemoryModel::kIndexEntry +
                      MemoryModel::kChildEntry +
                      MemoryModel::kPerNamedByte * node.name.size() +
                      // full path stored in the index: approximate by depth
                      // * average segment length via the name itself
                      2 * depth * 8 + node.data.size() + 16;
  for (const auto& [name, child] : node.children) {
    bytes += NodeMemory(*child, depth + 1);
  }
  return bytes;
}
}  // namespace

std::vector<std::string> DataTree::EphemeralsOf(SessionId session) const {
  std::vector<std::string> out;
  CollectEphemerals(*root_, "/", session, out);
  return out;
}

std::size_t DataTree::EstimateMemoryBytes() const {
  return NodeMemory(*root_, 0);
}

void DataTree::SerializeNode(const Znode& n, wire::BufferWriter& w) {
  w.WriteString(n.name);
  w.WriteBytes(n.data);
  n.stat.Encode(w);
  w.WriteU64(n.next_sequence);
  w.WriteVarint(n.children.size());
  for (const auto& [name, child] : n.children) SerializeNode(*child, w);
}

void DataTree::Serialize(wire::BufferWriter& w) const {
  SerializeNode(*root_, w);
}

Result<std::unique_ptr<DataTree::Znode>> DataTree::DeserializeNode(
    wire::BufferReader& r) {
  auto node = std::make_unique<Znode>();
  auto name = r.ReadString();
  DUFS_RETURN_IF_ERROR(name);
  node->name = std::move(*name);
  auto data = r.ReadBytes();
  DUFS_RETURN_IF_ERROR(data);
  node->data = std::move(*data);
  auto stat = ZnodeStat::Decode(r);
  DUFS_RETURN_IF_ERROR(stat);
  node->stat = *stat;
  auto seq = r.ReadU64();
  DUFS_RETURN_IF_ERROR(seq);
  node->next_sequence = *seq;
  auto n_children = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n_children);
  for (std::uint64_t i = 0; i < *n_children; ++i) {
    auto child = DeserializeNode(r);
    DUFS_RETURN_IF_ERROR(child);
    std::string key = (*child)->name;
    node->children.emplace(std::move(key), std::move(*child));
  }
  return node;
}

Result<std::unique_ptr<DataTree>> DataTree::Deserialize(
    wire::BufferReader& r) {
  auto root = DeserializeNode(r);
  DUFS_RETURN_IF_ERROR(root);
  auto tree = std::make_unique<DataTree>();
  tree->root_ = std::move(*root);
  // Recount nodes and ephemerals.
  std::size_t nodes = 0, ephemerals = 0;
  struct Counter {
    static void Walk(const Znode& n, std::size_t& nodes,
                     std::size_t& ephemerals) {
      ++nodes;
      if (n.stat.ephemeral_owner != 0) ++ephemerals;
      for (const auto& [name, child] : n.children) {
        Walk(*child, nodes, ephemerals);
      }
    }
  };
  Counter::Walk(*tree->root_, nodes, ephemerals);
  tree->node_count_ = nodes;
  tree->ephemeral_count_ = ephemerals;
  return tree;
}

std::uint64_t DataTree::Fingerprint() const {
  // FNV-1a over a canonical serialization.
  wire::BufferWriter w;
  Serialize(w);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : w.data()) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace dufs::zk
