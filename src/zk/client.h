// Client library for the coordination service — the synchronous-style API
// the paper uses (zoo_create / zoo_get / zoo_set / zoo_delete, §V-A), plus
// exists/get_children/sync/multi and one-shot watches.
//
// A client owns one session, attached to one ensemble server (the paper
// co-locates ZooKeeper servers with DUFS clients and pins sessions). On
// kUnavailable/kTimeout the client fails over to the next server and
// retries, which keeps workloads running across leader elections.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/rpc.h"
#include "obs/obs.h"
#include "zk/proto.h"

namespace dufs::zk {

struct ZkClientConfig {
  std::vector<net::NodeId> servers;
  std::size_t attach_index = 0;  // session server = servers[attach_index % n]
  int max_retries = 4;
  sim::Duration retry_backoff = sim::Ms(40);
  sim::Duration request_timeout = sim::Sec(4);
};

class ZkClient {
 public:
  using WatchCallback = std::function<void(const WatchEvent&)>;

  ZkClient(net::RpcEndpoint& endpoint, ZkClientConfig config);

  // Registers the session with the ensemble (replicated CreateSession).
  sim::Task<Status> Connect();
  // Deletes the session's ephemerals on every replica.
  sim::Task<Status> Close();

  sim::Simulation& sim() { return endpoint_.sim(); }
  SessionId session() const { return session_; }
  bool connected() const { return connected_; }

  // --- the zoo_* API -----------------------------------------------------
  sim::Task<Result<std::string>> Create(
      std::string path, std::vector<std::uint8_t> data,
      CreateMode mode = CreateMode::kPersistent);
  sim::Task<Result<OpResult>> Get(std::string path, bool watch = false);
  sim::Task<Result<ZnodeStat>> Set(std::string path,
                                   std::vector<std::uint8_t> data,
                                   std::int32_t version = kAnyVersion);
  sim::Task<Status> Delete(std::string path,
                           std::int32_t version = kAnyVersion);
  sim::Task<Result<ZnodeStat>> Exists(std::string path, bool watch = false);
  sim::Task<Result<std::vector<std::string>>> GetChildren(std::string path,
                                                          bool watch = false);
  sim::Task<Status> Sync();
  // Atomic batch; returns per-op results on success, first failure otherwise.
  sim::Task<Result<std::vector<OpResult>>> Multi(std::vector<Op> ops);

  // --- compound ops (server-side path resolution, DESIGN.md §13) ----------
  // Unlike the zoo_* calls above, these return the whole OpResult with the
  // application-level code left *inside* it (only transport failures become
  // a bad status): a partial miss still carries the resolved prefix the
  // caller seeds its cache from. A nonzero dir_tag makes the server require
  // every interior component's data to begin with that byte (ENOTDIR
  // otherwise); `watch` registers per-component one-shot watches.
  sim::Task<Result<OpResult>> Resolve(std::string path, bool watch = false,
                                      std::uint8_t dir_tag = 0);
  sim::Task<Result<OpResult>> ReadDirPlus(std::string path, bool watch = false,
                                          std::uint8_t dir_tag = 0);
  sim::Task<Result<OpResult>> ResolveCreate(
      std::string path, std::vector<std::uint8_t> data,
      CreateMode mode = CreateMode::kPersistent, std::uint8_t dir_tag = 0,
      bool watch = false);
  sim::Task<Result<OpResult>> ResolveDelete(std::string path,
                                            std::int32_t version = kAnyVersion,
                                            std::uint8_t dir_tag = 0,
                                            bool watch = false);

  // One watch sink per client node (first client to register wins).
  void SetWatchHandler(WatchCallback cb);

  // Spawns a heartbeat loop keeping the session alive under the ensemble's
  // session_timeout. Stops when this node crashes (which is how ephemeral
  // cleanup on client death is exercised).
  void StartHeartbeats(sim::Duration interval);

  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t failovers() const { return failovers_; }

  // Optional: metrics + trace spans for every RPC issued by this client.
  void AttachObs(obs::NodeObs node_obs);

 private:
  sim::Task<Result<ClientResponse>> Execute(Op op, std::vector<Op> multi_ops);

  net::RpcEndpoint& endpoint_;
  ZkClientConfig config_;
  std::size_t current_server_;
  SessionId session_;
  bool connected_ = false;
  WatchCallback watch_cb_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t failovers_ = 0;
  obs::NodeObs obs_;
  obs::Counter c_requests_;
  obs::Counter c_failovers_;
  obs::Timer t_rpc_;
};

}  // namespace dufs::zk
