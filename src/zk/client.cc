#include "zk/client.h"

#include <utility>

namespace dufs::zk {
namespace {

// Process-wide monotone counter keeps session ids unique across all clients
// in a simulation (the high 32 bits carry the node id for debuggability).
std::uint64_t NextSessionNumber() {
  static std::uint64_t counter = 0;
  return ++counter;
}

}  // namespace

ZkClient::ZkClient(net::RpcEndpoint& endpoint, ZkClientConfig config)
    : endpoint_(endpoint), config_(std::move(config)) {
  DUFS_CHECK(!config_.servers.empty());
  current_server_ = config_.attach_index % config_.servers.size();
  session_ = (static_cast<std::uint64_t>(endpoint_.self()) << 32) |
             (NextSessionNumber() & 0xffffffffu);
}

void ZkClient::AttachObs(obs::NodeObs node_obs) {
  obs_ = node_obs;
  c_requests_ = obs_.counter("zk.requests");
  c_failovers_ = obs_.counter("zk.failovers");
  t_rpc_ = obs_.timer("zk.rpc_ns");
}

void ZkClient::SetWatchHandler(WatchCallback cb) {
  watch_cb_ = std::move(cb);
  if (!endpoint_.HasHandler(method::kWatchEvent)) {
    // Stored in the endpoint's handler map; `this` outlives every call.
    endpoint_.RegisterHandler(
        method::kWatchEvent,
        [this](net::NodeId, net::Payload bytes) -> sim::Task<net::RpcResult> {  // dufs-lint: allow(coro-capture-ref)
          auto ev = WatchEvent::Decode(bytes);
          if (ev.ok() && watch_cb_) watch_cb_(*ev);
          co_return net::Payload{};
        });
  }
}

void ZkClient::StartHeartbeats(sim::Duration interval) {
  sim::CurrentSimulationScope scope(&endpoint_.sim());
  const std::uint64_t incarnation = endpoint_.node().incarnation();
  endpoint_.sim().Spawn([](ZkClient& self, sim::Duration iv,
                           std::uint64_t inc) -> sim::Task<void> {
    while (self.endpoint_.node().incarnation() == inc &&
           self.endpoint_.node().up()) {
      wire::BufferWriter w;
      w.WriteU64(self.session_);
      self.endpoint_.Notify(
          self.config_.servers[self.current_server_],
          method::kSessionPing, w.Take());
      co_await self.endpoint_.sim().Delay(iv);
    }
  }(*this, interval, incarnation));
}

sim::Task<Result<ClientResponse>> ZkClient::Execute(Op op,
                                                    std::vector<Op> multi_ops) {
  ClientRequest req;
  req.session = session_;
  req.op = std::move(op);
  req.multi_ops = std::move(multi_ops);
  // Span before Encode: the trace id travels inside the request frame.
  obs::Span span(obs_, "zk-rpc", "zk");
  if (span.active()) span.ArgStr("op", OpTypeName(req.op.type));
  req.trace = span.trace();
  const auto payload = req.Encode();
  const sim::SimTime started = endpoint_.sim().now();

  Status last_error(StatusCode::kUnavailable);
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++failovers_;
      c_failovers_.Inc();
      current_server_ = (current_server_ + 1) % config_.servers.size();
      co_await endpoint_.sim().Delay(config_.retry_backoff);
    }
    ++requests_sent_;
    c_requests_.Inc();
    span.Arm();  // resumptions above may have clobbered the current trace
    auto raw = co_await endpoint_.Call(config_.servers[current_server_],
                                       method::kRequest, payload,
                                       config_.request_timeout);
    if (!raw.ok()) {
      last_error = raw.status();
      continue;
    }
    auto resp = ClientResponse::Decode(*raw);
    if (!resp.ok()) {
      last_error = resp.status();
      continue;
    }
    if (resp->result.code == StatusCode::kUnavailable) {
      last_error = Status(StatusCode::kUnavailable);
      continue;
    }
    t_rpc_.Record(endpoint_.sim().now() - started);
    co_return std::move(*resp);
  }
  t_rpc_.Record(endpoint_.sim().now() - started);
  co_return last_error;
}

sim::Task<Status> ZkClient::Connect() {
  Op op;
  op.type = OpType::kCreateSession;
  auto resp = co_await Execute(std::move(op), {});
  if (!resp.ok()) co_return resp.status();
  connected_ = resp->result.ok();
  co_return resp->result.ToStatus();
}

sim::Task<Status> ZkClient::Close() {
  Op op;
  op.type = OpType::kCloseSession;
  auto resp = co_await Execute(std::move(op), {});
  connected_ = false;
  if (!resp.ok()) co_return resp.status();
  co_return resp->result.ToStatus();
}

sim::Task<Result<std::string>> ZkClient::Create(std::string path,
                                                std::vector<std::uint8_t> data,
                                                CreateMode mode) {
  auto resp = co_await Execute(Op::Create(std::move(path), std::move(data),
                                          mode),
                               {});
  if (!resp.ok()) co_return resp.status();
  if (!resp->result.ok()) co_return resp->result.ToStatus();
  co_return std::move(resp->result.created_path);
}

sim::Task<Result<OpResult>> ZkClient::Get(std::string path, bool watch) {
  Op op;
  op.type = OpType::kGetData;
  op.path = std::move(path);
  op.watch = watch;
  auto resp = co_await Execute(std::move(op), {});
  if (!resp.ok()) co_return resp.status();
  if (!resp->result.ok()) co_return resp->result.ToStatus();
  co_return std::move(resp->result);
}

sim::Task<Result<ZnodeStat>> ZkClient::Set(std::string path,
                                           std::vector<std::uint8_t> data,
                                           std::int32_t version) {
  auto resp = co_await Execute(
      Op::SetData(std::move(path), std::move(data), version), {});
  if (!resp.ok()) co_return resp.status();
  if (!resp->result.ok()) co_return resp->result.ToStatus();
  co_return resp->result.stat;
}

sim::Task<Status> ZkClient::Delete(std::string path, std::int32_t version) {
  auto resp = co_await Execute(Op::Delete(std::move(path), version), {});
  if (!resp.ok()) co_return resp.status();
  co_return resp->result.ToStatus();
}

sim::Task<Result<ZnodeStat>> ZkClient::Exists(std::string path, bool watch) {
  Op op;
  op.type = OpType::kExists;
  op.path = std::move(path);
  op.watch = watch;
  auto resp = co_await Execute(std::move(op), {});
  if (!resp.ok()) co_return resp.status();
  if (!resp->result.ok()) co_return resp->result.ToStatus();
  co_return resp->result.stat;
}

sim::Task<Result<std::vector<std::string>>> ZkClient::GetChildren(
    std::string path, bool watch) {
  Op op;
  op.type = OpType::kGetChildren;
  op.path = std::move(path);
  op.watch = watch;
  auto resp = co_await Execute(std::move(op), {});
  if (!resp.ok()) co_return resp.status();
  if (!resp->result.ok()) co_return resp->result.ToStatus();
  co_return std::move(resp->result.children);
}

sim::Task<Status> ZkClient::Sync() {
  Op op;
  op.type = OpType::kSync;
  auto resp = co_await Execute(std::move(op), {});
  if (!resp.ok()) co_return resp.status();
  co_return resp->result.ToStatus();
}

sim::Task<Result<std::vector<OpResult>>> ZkClient::Multi(std::vector<Op> ops) {
  Op op;
  op.type = OpType::kMulti;
  auto resp = co_await Execute(std::move(op), std::move(ops));
  if (!resp.ok()) co_return resp.status();
  if (!resp->result.ok()) co_return resp->result.ToStatus();
  co_return std::move(resp->multi_results);
}

sim::Task<Result<OpResult>> ZkClient::Resolve(std::string path, bool watch,
                                              std::uint8_t dir_tag) {
  auto resp = co_await Execute(
      Op::ResolvePath(std::move(path), watch, dir_tag), {});
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->result);
}

sim::Task<Result<OpResult>> ZkClient::ReadDirPlus(std::string path, bool watch,
                                                  std::uint8_t dir_tag) {
  auto resp = co_await Execute(
      Op::ReadDirPlus(std::move(path), watch, dir_tag), {});
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->result);
}

sim::Task<Result<OpResult>> ZkClient::ResolveCreate(
    std::string path, std::vector<std::uint8_t> data, CreateMode mode,
    std::uint8_t dir_tag, bool watch) {
  auto resp = co_await Execute(
      Op::ResolveCreate(std::move(path), std::move(data), mode, dir_tag,
                        watch),
      {});
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->result);
}

sim::Task<Result<OpResult>> ZkClient::ResolveDelete(std::string path,
                                                    std::int32_t version,
                                                    std::uint8_t dir_tag,
                                                    bool watch) {
  auto resp = co_await Execute(
      Op::ResolveDelete(std::move(path), version, dir_tag, watch), {});
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->result);
}

}  // namespace dufs::zk
