#include "zk/proto.h"

namespace dufs::zk {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kGetData: return "getData";
    case OpType::kExists: return "exists";
    case OpType::kGetChildren: return "getChildren";
    case OpType::kSync: return "sync";
    case OpType::kCreate: return "create";
    case OpType::kDelete: return "delete";
    case OpType::kSetData: return "setData";
    case OpType::kMulti: return "multi";
    case OpType::kCreateSession: return "createSession";
    case OpType::kCloseSession: return "closeSession";
    case OpType::kCheckVersion: return "checkVersion";
    case OpType::kResolvePath: return "resolvePath";
    case OpType::kReadDirPlus: return "readDirPlus";
    case OpType::kResolveCreate: return "resolveCreate";
    case OpType::kResolveDelete: return "resolveDelete";
  }
  return "unknown";
}

void Op::Encode(wire::BufferWriter& w) const {
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteString(path);
  w.WriteBytes(data);
  w.WriteU8(static_cast<std::uint8_t>(mode));
  w.WriteU32(static_cast<std::uint32_t>(version));
  w.WriteBool(watch);
  w.WriteU8(dir_tag);
}

Result<Op> Op::Decode(wire::BufferReader& r) {
  Op op;
  auto type = r.ReadU8();
  DUFS_RETURN_IF_ERROR(type);
  op.type = static_cast<OpType>(*type);
  auto path = r.ReadString();
  DUFS_RETURN_IF_ERROR(path);
  op.path = std::move(*path);
  auto data = r.ReadBytes();
  DUFS_RETURN_IF_ERROR(data);
  op.data = std::move(*data);
  auto mode = r.ReadU8();
  DUFS_RETURN_IF_ERROR(mode);
  op.mode = static_cast<CreateMode>(*mode);
  auto version = r.ReadU32();
  DUFS_RETURN_IF_ERROR(version);
  op.version = static_cast<std::int32_t>(*version);
  auto watch = r.ReadBool();
  DUFS_RETURN_IF_ERROR(watch);
  op.watch = *watch;
  auto dir_tag = r.ReadU8();
  DUFS_RETURN_IF_ERROR(dir_tag);
  op.dir_tag = *dir_tag;
  return op;
}

Op Op::Create(std::string path, std::vector<std::uint8_t> data,
              CreateMode mode) {
  Op op;
  op.type = OpType::kCreate;
  op.path = std::move(path);
  op.data = std::move(data);
  op.mode = mode;
  return op;
}

Op Op::Delete(std::string path, std::int32_t version) {
  Op op;
  op.type = OpType::kDelete;
  op.path = std::move(path);
  op.version = version;
  return op;
}

Op Op::SetData(std::string path, std::vector<std::uint8_t> data,
               std::int32_t version) {
  Op op;
  op.type = OpType::kSetData;
  op.path = std::move(path);
  op.data = std::move(data);
  op.version = version;
  return op;
}

Op Op::CheckVersion(std::string path, std::int32_t version) {
  Op op;
  op.type = OpType::kCheckVersion;
  op.path = std::move(path);
  op.version = version;
  return op;
}

Op Op::ResolvePath(std::string path, bool watch, std::uint8_t dir_tag) {
  Op op;
  op.type = OpType::kResolvePath;
  op.path = std::move(path);
  op.watch = watch;
  op.dir_tag = dir_tag;
  return op;
}

Op Op::ReadDirPlus(std::string path, bool watch, std::uint8_t dir_tag) {
  Op op;
  op.type = OpType::kReadDirPlus;
  op.path = std::move(path);
  op.watch = watch;
  op.dir_tag = dir_tag;
  return op;
}

Op Op::ResolveCreate(std::string path, std::vector<std::uint8_t> data,
                     CreateMode mode, std::uint8_t dir_tag, bool watch) {
  Op op;
  op.type = OpType::kResolveCreate;
  op.path = std::move(path);
  op.data = std::move(data);
  op.mode = mode;
  op.dir_tag = dir_tag;
  op.watch = watch;
  return op;
}

Op Op::ResolveDelete(std::string path, std::int32_t version,
                     std::uint8_t dir_tag, bool watch) {
  Op op;
  op.type = OpType::kResolveDelete;
  op.path = std::move(path);
  op.version = version;
  op.dir_tag = dir_tag;
  op.watch = watch;
  return op;
}

void Txn::Encode(wire::BufferWriter& w) const {
  w.WriteU64(session);
  w.WriteI64(time);
  w.WriteVarint(trace);
  op.Encode(w);
  w.WriteVarint(multi_ops.size());
  for (const auto& o : multi_ops) o.Encode(w);
}

Result<Txn> Txn::Decode(wire::BufferReader& r) {
  Txn txn;
  auto session = r.ReadU64();
  DUFS_RETURN_IF_ERROR(session);
  txn.session = *session;
  auto time = r.ReadI64();
  DUFS_RETURN_IF_ERROR(time);
  txn.time = *time;
  auto trace = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(trace);
  txn.trace = *trace;
  auto op = Op::Decode(r);
  DUFS_RETURN_IF_ERROR(op);
  txn.op = std::move(*op);
  auto n = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    auto sub = Op::Decode(r);
    DUFS_RETURN_IF_ERROR(sub);
    txn.multi_ops.push_back(std::move(*sub));
  }
  return txn;
}

std::size_t Txn::EncodedSize() const {
  wire::BufferWriter w;
  Encode(w);
  return w.size();
}

void ResolvedNode::Encode(wire::BufferWriter& w) const {
  w.WriteString(name);
  stat.Encode(w);
  w.WriteBytes(data);
}

Result<ResolvedNode> ResolvedNode::Decode(wire::BufferReader& r) {
  ResolvedNode node;
  auto name = r.ReadString();
  DUFS_RETURN_IF_ERROR(name);
  node.name = std::move(*name);
  auto stat = ZnodeStat::Decode(r);
  DUFS_RETURN_IF_ERROR(stat);
  node.stat = *stat;
  auto data = r.ReadBytes();
  DUFS_RETURN_IF_ERROR(data);
  node.data = std::move(*data);
  return node;
}

void OpResult::Encode(wire::BufferWriter& w) const {
  w.WriteU8(static_cast<std::uint8_t>(code));
  w.WriteString(created_path);
  stat.Encode(w);
  w.WriteBytes(data);
  w.WriteVarint(children.size());
  for (const auto& c : children) w.WriteString(c);
  w.WriteVarint(resolved_depth);
  w.WriteVarint(prefix.size());
  for (const auto& n : prefix) n.Encode(w);
  w.WriteVarint(entries.size());
  for (const auto& n : entries) n.Encode(w);
}

Result<OpResult> OpResult::Decode(wire::BufferReader& r) {
  OpResult res;
  auto code = r.ReadU8();
  DUFS_RETURN_IF_ERROR(code);
  res.code = static_cast<StatusCode>(*code);
  auto created = r.ReadString();
  DUFS_RETURN_IF_ERROR(created);
  res.created_path = std::move(*created);
  auto stat = ZnodeStat::Decode(r);
  DUFS_RETURN_IF_ERROR(stat);
  res.stat = *stat;
  auto data = r.ReadBytes();
  DUFS_RETURN_IF_ERROR(data);
  res.data = std::move(*data);
  auto n = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    auto child = r.ReadString();
    DUFS_RETURN_IF_ERROR(child);
    res.children.push_back(std::move(*child));
  }
  auto depth = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(depth);
  res.resolved_depth = static_cast<std::uint32_t>(*depth);
  auto n_prefix = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n_prefix);
  for (std::uint64_t i = 0; i < *n_prefix; ++i) {
    auto node = ResolvedNode::Decode(r);
    DUFS_RETURN_IF_ERROR(node);
    res.prefix.push_back(std::move(*node));
  }
  auto n_entries = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n_entries);
  for (std::uint64_t i = 0; i < *n_entries; ++i) {
    auto node = ResolvedNode::Decode(r);
    DUFS_RETURN_IF_ERROR(node);
    res.entries.push_back(std::move(*node));
  }
  return res;
}

std::vector<std::uint8_t> ClientRequest::Encode() const {
  wire::BufferWriter w;
  w.WriteU64(session);
  w.WriteVarint(trace);
  op.Encode(w);
  w.WriteVarint(multi_ops.size());
  for (const auto& o : multi_ops) o.Encode(w);
  return w.Take();
}

Result<ClientRequest> ClientRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  wire::BufferReader r(bytes);
  ClientRequest req;
  auto session = r.ReadU64();
  DUFS_RETURN_IF_ERROR(session);
  req.session = *session;
  auto trace = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(trace);
  req.trace = *trace;
  auto op = Op::Decode(r);
  DUFS_RETURN_IF_ERROR(op);
  req.op = std::move(*op);
  auto n = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    auto sub = Op::Decode(r);
    DUFS_RETURN_IF_ERROR(sub);
    req.multi_ops.push_back(std::move(*sub));
  }
  return req;
}

std::vector<std::uint8_t> ClientResponse::Encode() const {
  wire::BufferWriter w;
  result.Encode(w);
  w.WriteVarint(multi_results.size());
  for (const auto& r : multi_results) r.Encode(w);
  return w.Take();
}

Result<ClientResponse> ClientResponse::Decode(
    const std::vector<std::uint8_t>& bytes) {
  wire::BufferReader r(bytes);
  ClientResponse resp;
  auto result = OpResult::Decode(r);
  DUFS_RETURN_IF_ERROR(result);
  resp.result = std::move(*result);
  auto n = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    auto sub = OpResult::Decode(r);
    DUFS_RETURN_IF_ERROR(sub);
    resp.multi_results.push_back(std::move(*sub));
  }
  return resp;
}

std::vector<std::uint8_t> WatchEvent::Encode() const {
  wire::BufferWriter w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteString(path);
  w.WriteU64(session);
  return w.Take();
}

Result<WatchEvent> WatchEvent::Decode(const std::vector<std::uint8_t>& bytes) {
  wire::BufferReader r(bytes);
  WatchEvent ev;
  auto type = r.ReadU8();
  DUFS_RETURN_IF_ERROR(type);
  ev.type = static_cast<WatchEventType>(*type);
  auto path = r.ReadString();
  DUFS_RETURN_IF_ERROR(path);
  ev.path = std::move(*path);
  auto session = r.ReadU64();
  DUFS_RETURN_IF_ERROR(session);
  ev.session = *session;
  return ev;
}

}  // namespace dufs::zk
