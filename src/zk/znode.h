// The ZooKeeper data model: a tree of znodes with full stat structures,
// version checks, sequential and ephemeral nodes (paper §II-C / §IV-D).
//
// DataTree is a *real* data structure (not a model): every replica holds one
// and applies committed transactions to it in zxid order. All mutation
// entry points take the zxid/time stamps so replicas stay byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "wire/buffer.h"

namespace dufs::zk {

using Zxid = std::int64_t;
using SessionId = std::uint64_t;

struct ZnodeStat {
  Zxid czxid = 0;   // zxid of the create
  Zxid mzxid = 0;   // zxid of the last data modification
  Zxid pzxid = 0;   // zxid of the last child-list change
  std::int64_t ctime = 0;  // creation time (sim ns)
  std::int64_t mtime = 0;  // last-modification time (sim ns)
  std::int32_t version = 0;    // data version
  std::int32_t cversion = 0;   // children version
  SessionId ephemeral_owner = 0;  // 0 = persistent
  std::int32_t num_children = 0;
  std::int32_t data_length = 0;

  void Encode(wire::BufferWriter& w) const;
  static Result<ZnodeStat> Decode(wire::BufferReader& r);
  friend bool operator==(const ZnodeStat&, const ZnodeStat&) = default;
};

enum class CreateMode : std::uint8_t {
  kPersistent = 0,
  kEphemeral = 1,
  kPersistentSequential = 2,
  kEphemeralSequential = 3,
};

inline bool IsEphemeral(CreateMode m) {
  return m == CreateMode::kEphemeral || m == CreateMode::kEphemeralSequential;
}
inline bool IsSequential(CreateMode m) {
  return m == CreateMode::kPersistentSequential ||
         m == CreateMode::kEphemeralSequential;
}

// Version wildcard accepted by Delete/SetData (matches ZooKeeper's -1).
inline constexpr std::int32_t kAnyVersion = -1;

// Path syntax: "/" or "/seg(/seg)*"; segments non-empty, no '/', not "."/"..".
Status ValidatePath(std::string_view path);
// Parent of "/a/b" is "/a"; parent of "/a" is "/". Precondition: valid, != "/".
std::string ParentPath(std::string_view path);
// Basename of "/a/b" is "b".
std::string_view BaseName(std::string_view path);
// Components of "/a/b/c" are ["a", "b", "c"]; "/" has none. The views alias
// `path`, so the caller keeps the backing string alive. Precondition: valid.
std::vector<std::string_view> PathComponents(std::string_view path);

class DataTree {
 public:
  struct Znode {
    std::string name;  // path component (empty for the root)
    std::vector<std::uint8_t> data;
    ZnodeStat stat;
    std::uint64_t next_sequence = 0;  // counter for sequential children
    std::map<std::string, std::unique_ptr<Znode>, std::less<>> children;
  };

  DataTree();

  // --- mutations (called only when applying committed txns) -------------
  // Returns the actual created path (differs from `path` for sequential
  // nodes, which get a zero-padded 10-digit suffix appended).
  Result<std::string> Create(std::string_view path,
                             std::vector<std::uint8_t> data, CreateMode mode,
                             SessionId session, Zxid zxid, std::int64_t time);
  Status Delete(std::string_view path, std::int32_t expected_version,
                Zxid zxid);
  Result<ZnodeStat> SetData(std::string_view path,
                            std::vector<std::uint8_t> data,
                            std::int32_t expected_version, Zxid zxid,
                            std::int64_t time);

  // --- reads -------------------------------------------------------------
  Result<const Znode*> Find(std::string_view path) const;
  Result<ZnodeStat> Stat(std::string_view path) const;
  Result<std::vector<std::string>> GetChildren(std::string_view path) const;
  bool Exists(std::string_view path) const { return Find(path).ok(); }

  // All ephemeral paths owned by `session` (session-close cleanup).
  std::vector<std::string> EphemeralsOf(SessionId session) const;

  std::size_t node_count() const { return node_count_; }

  // Byte-level memory estimate of the replica's in-memory state, modeling
  // the JVM heap footprint the paper measures in Fig. 11 (znode objects,
  // the path hash index, child maps, string/array headers).
  std::size_t EstimateMemoryBytes() const;

  // --- snapshots (fuzzy snapshot + restore, used on server restart) ------
  void Serialize(wire::BufferWriter& w) const;
  static Result<std::unique_ptr<DataTree>> Deserialize(wire::BufferReader& r);

  // Structural digest for replica-consistency checks in tests.
  std::uint64_t Fingerprint() const;

  const Znode& root() const { return *root_; }

 private:
  Znode* FindMutable(std::string_view path);
  static void SerializeNode(const Znode& n, wire::BufferWriter& w);
  static Result<std::unique_ptr<Znode>> DeserializeNode(wire::BufferReader& r);

  std::unique_ptr<Znode> root_;
  std::size_t node_count_ = 1;  // includes the root
  std::size_t ephemeral_count_ = 0;
};

}  // namespace dufs::zk
