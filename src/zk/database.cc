#include "zk/database.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/log.h"

namespace dufs::zk {

namespace {

// Server-side resolution walk (DESIGN.md §13). Walks `components` from the
// root child-by-child. On success `chain` holds every component's znode; on
// kNotFound it holds exactly the leading components that do exist; on
// kNotADirectory the offending *interior* non-directory node is the last
// chain entry and later components were never examined. A nonzero dir_tag
// requires every interior component's data to begin with that byte — the FS
// layer's kind tag — so the walk enforces the POSIX rule without the
// coordination service knowing the record schema.
struct ResolveOutcome {
  StatusCode code = StatusCode::kOk;
  std::vector<const DataTree::Znode*> chain;
};

ResolveOutcome ResolveChain(const DataTree& tree,
                            const std::vector<std::string_view>& components,
                            std::uint8_t dir_tag) {
  ResolveOutcome out;
  out.chain.reserve(components.size());
  const DataTree::Znode* cur = &tree.root();
  for (std::size_t i = 0; i < components.size(); ++i) {
    auto it = cur->children.find(components[i]);
    if (it == cur->children.end()) {
      out.code = StatusCode::kNotFound;
      return out;
    }
    cur = it->second.get();
    out.chain.push_back(cur);
    if (i + 1 < components.size() && dir_tag != 0 &&
        (cur->data.empty() || cur->data[0] != dir_tag)) {
      out.code = StatusCode::kNotADirectory;
      return out;
    }
  }
  return out;
}

// Copies the first `count` chain nodes into res.prefix and stamps
// res.resolved_depth. Called *after* any mutation: the chain holds live
// pointers, so ancestor stats (pzxid/cversion/num_children) reflect the
// post-op state the client should seed.
void FillResolved(const std::vector<const DataTree::Znode*>& chain,
                  std::size_t count, std::uint32_t depth, OpResult& res) {
  res.resolved_depth = depth;
  res.prefix.clear();
  res.prefix.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ResolvedNode n;
    n.name = chain[i]->name;
    n.stat = chain[i]->stat;
    n.data = chain[i]->data;
    res.prefix.push_back(std::move(n));
  }
}

// Shared failure-path shaping for compound ops: a partial resolution ships
// the whole existing prefix back so the client can seed positives for it.
void FillPartial(const ResolveOutcome& r, OpResult& res) {
  res.code = r.code;
  FillResolved(r.chain, r.chain.size(),
               static_cast<std::uint32_t>(r.chain.size()), res);
}

}  // namespace

Database::Database() : tree_(std::make_unique<DataTree>()) {}

OpResult Database::Read(const Op& op) const {
  OpResult res;
  switch (op.type) {
    case OpType::kGetData: {
      auto node = tree_->Find(op.path);
      if (!node.ok()) {
        res.code = node.code();
        return res;
      }
      res.data = (*node)->data;
      res.stat = (*node)->stat;
      return res;
    }
    case OpType::kExists: {
      auto stat = tree_->Stat(op.path);
      if (!stat.ok()) {
        res.code = stat.code();
        return res;
      }
      res.stat = *stat;
      return res;
    }
    case OpType::kGetChildren: {
      auto children = tree_->GetChildren(op.path);
      if (!children.ok()) {
        res.code = children.code();
        return res;
      }
      res.children = std::move(*children);
      auto stat = tree_->Stat(op.path);
      if (stat.ok()) res.stat = *stat;
      return res;
    }
    case OpType::kSync:
      return res;  // ordering is handled by the server pipeline
    case OpType::kResolvePath: {
      if (auto st = ValidatePath(op.path); !st.ok()) {
        res.code = st.code();
        return res;
      }
      const auto components = PathComponents(op.path);
      auto r = ResolveChain(*tree_, components, op.dir_tag);
      if (r.code != StatusCode::kOk) {
        FillPartial(r, res);
        return res;
      }
      // Terminal stat/data ride the ordinary fields; prefix excludes it.
      FillResolved(r.chain,
                   components.empty() ? 0 : components.size() - 1,
                   static_cast<std::uint32_t>(components.size()), res);
      if (!components.empty()) {
        res.stat = r.chain.back()->stat;
        res.data = r.chain.back()->data;
      } else {
        res.stat = tree_->root().stat;
        res.data = tree_->root().data;
      }
      return res;
    }
    case OpType::kReadDirPlus: {
      if (auto st = ValidatePath(op.path); !st.ok()) {
        res.code = st.code();
        return res;
      }
      const auto components = PathComponents(op.path);
      auto r = ResolveChain(*tree_, components, op.dir_tag);
      if (r.code != StatusCode::kOk) {
        FillPartial(r, res);
        return res;
      }
      const DataTree::Znode* dir =
          components.empty() ? &tree_->root() : r.chain.back();
      FillResolved(r.chain,
                   components.empty() ? 0 : components.size() - 1,
                   static_cast<std::uint32_t>(components.size()), res);
      res.stat = dir->stat;
      res.data = dir->data;
      // The listed node itself must carry the directory tag when the guard
      // is on — listing a file is ENOTDIR, with the full prefix (and the
      // terminal's stat/data, above) still shipped for cache seeding.
      if (op.dir_tag != 0 && !components.empty() &&
          (dir->data.empty() || dir->data[0] != op.dir_tag)) {
        res.code = StatusCode::kNotADirectory;
        return res;
      }
      res.entries.reserve(dir->children.size());
      for (const auto& [name, child] : dir->children) {
        ResolvedNode n;
        n.name = name;
        n.stat = child->stat;
        n.data = child->data;
        res.entries.push_back(std::move(n));
      }
      return res;
    }
    default:
      res.code = StatusCode::kInvalidArgument;
      return res;
  }
}

OpResult Database::ApplyOne(const Op& op, SessionId session, Zxid zxid,
                            std::int64_t now_ns,
                            std::vector<AppliedTxn::Trigger>& out) {
  OpResult res;
  switch (op.type) {
    case OpType::kCreate: {
      auto created = tree_->Create(op.path, op.data, op.mode,
                                   IsEphemeral(op.mode) ? session : 0, zxid,
                                   now_ns);
      if (!created.ok()) {
        res.code = created.code();
        return res;
      }
      res.created_path = std::move(*created);
      out.push_back({WatchEventType::kNodeCreated, res.created_path});
      if (res.created_path != "/") {
        out.push_back(
            {WatchEventType::kNodeChildrenChanged,
             ParentPath(res.created_path)});
      }
      return res;
    }
    case OpType::kDelete: {
      auto st = tree_->Delete(op.path, op.version, zxid);
      if (!st.ok()) {
        res.code = st.code();
        return res;
      }
      out.push_back({WatchEventType::kNodeDeleted, op.path});
      out.push_back(
          {WatchEventType::kNodeChildrenChanged, ParentPath(op.path)});
      return res;
    }
    case OpType::kSetData: {
      auto stat = tree_->SetData(op.path, op.data, op.version, zxid, now_ns);
      if (!stat.ok()) {
        res.code = stat.code();
        return res;
      }
      res.stat = *stat;
      out.push_back({WatchEventType::kNodeDataChanged, op.path});
      return res;
    }
    case OpType::kCheckVersion: {
      auto stat = tree_->Stat(op.path);
      if (!stat.ok()) {
        res.code = stat.code();
        return res;
      }
      if (op.version != kAnyVersion && stat->version != op.version) {
        res.code = StatusCode::kBadVersion;
      }
      return res;
    }
    case OpType::kResolveCreate: {
      if (auto st = ValidatePath(op.path); !st.ok() || op.path == "/") {
        res.code = st.ok() ? StatusCode::kAlreadyExists : st.code();
        return res;
      }
      const auto components = PathComponents(op.path);
      auto r = ResolveChain(*tree_, components, op.dir_tag);
      if (r.code == StatusCode::kNotADirectory ||
          (r.code == StatusCode::kNotFound &&
           r.chain.size() < components.size() - 1)) {
        FillPartial(r, res);  // broken ancestor chain — nothing to create
        return res;
      }
      if (r.code == StatusCode::kOk && !IsSequential(op.mode)) {
        FillPartial(r, res);
        res.code = StatusCode::kAlreadyExists;
        // The existing terminal is the client's freshest view of the node
        // it raced against: surface it via stat/data, not the prefix.
        res.prefix.pop_back();
        res.stat = r.chain.back()->stat;
        res.data = r.chain.back()->data;
        return res;
      }
      auto created = tree_->Create(op.path, op.data, op.mode,
                                   IsEphemeral(op.mode) ? session : 0, zxid,
                                   now_ns);
      if (!created.ok()) {
        FillPartial(r, res);
        res.code = created.code();
        return res;
      }
      res.created_path = std::move(*created);
      // Chain pointers stay live across the mutation, and the parent's stat
      // was updated in place — the prefix the client seeds is post-create.
      FillResolved(r.chain, components.size() - 1,
                   static_cast<std::uint32_t>(components.size()), res);
      if (auto stat = tree_->Stat(res.created_path); stat.ok()) {
        res.stat = *stat;
      }
      out.push_back({WatchEventType::kNodeCreated, res.created_path});
      out.push_back({WatchEventType::kNodeChildrenChanged,
                     ParentPath(res.created_path)});
      return res;
    }
    case OpType::kResolveDelete: {
      if (auto st = ValidatePath(op.path); !st.ok() || op.path == "/") {
        res.code = st.ok() ? StatusCode::kInvalidArgument : st.code();
        return res;
      }
      const auto components = PathComponents(op.path);
      auto r = ResolveChain(*tree_, components, op.dir_tag);
      if (r.code != StatusCode::kOk) {
        FillPartial(r, res);
        return res;
      }
      // Pre-delete snapshot: the client needs the victim's record (its fid)
      // to finish the physical unlink, and its stat for version accounting.
      res.stat = r.chain.back()->stat;
      res.data = r.chain.back()->data;
      if (op.dir_tag != 0 && !r.chain.back()->data.empty() &&
          r.chain.back()->data[0] == op.dir_tag) {
        FillResolved(r.chain, components.size() - 1,
                     static_cast<std::uint32_t>(components.size()), res);
        res.code = StatusCode::kIsADirectory;
        return res;
      }
      auto st = tree_->Delete(op.path, op.version, zxid);
      if (!st.ok()) {
        FillResolved(r.chain, components.size() - 1,
                     static_cast<std::uint32_t>(components.size()), res);
        res.code = st.code();
        return res;
      }
      // Depth excludes the deleted terminal; the parent's in-place stat
      // update (cversion/num_children) is visible through the prefix.
      FillResolved(r.chain, components.size() - 1,
                   static_cast<std::uint32_t>(components.size() - 1), res);
      out.push_back({WatchEventType::kNodeDeleted, op.path});
      out.push_back(
          {WatchEventType::kNodeChildrenChanged, ParentPath(op.path)});
      return res;
    }
    default:
      res.code = StatusCode::kInvalidArgument;
      return res;
  }
}

AppliedTxn Database::ApplyMulti(const Txn& txn, Zxid zxid,
                                std::int64_t now_ns) {
  AppliedTxn applied;

  // Phase 1 — validate against the tree plus an overlay of the multi's own
  // effects, so the whole batch is atomic: either all ops apply or none do.
  struct Overlay {
    // Paths explicitly created (value true) or deleted (false) so far.
    std::map<std::string, bool, std::less<>> exists;
    std::map<std::string, std::int32_t, std::less<>> version_bump;
    std::map<std::string, int, std::less<>> child_delta;
  } ov;

  auto exists_now = [&](std::string_view path) -> bool {
    auto it = ov.exists.find(path);
    if (it != ov.exists.end()) return it->second;
    return tree_->Exists(path);
  };
  auto version_now = [&](std::string_view path) -> std::int32_t {
    auto stat = tree_->Stat(path);
    std::int32_t v = stat.ok() ? stat->version : 0;
    auto it = ov.version_bump.find(path);
    if (it != ov.version_bump.end()) v += it->second;
    return v;
  };
  auto children_now = [&](std::string_view path) -> int {
    auto stat = tree_->Stat(path);
    int n = stat.ok() ? stat->num_children : 0;
    auto it = ov.child_delta.find(path);
    if (it != ov.child_delta.end()) n += it->second;
    return n;
  };

  StatusCode failure = StatusCode::kOk;
  for (const auto& op : txn.multi_ops) {
    StatusCode code = StatusCode::kOk;
    switch (op.type) {
      case OpType::kCreate: {
        if (IsSequential(op.mode)) {
          code = StatusCode::kInvalidArgument;  // unsupported inside multi
          break;
        }
        if (auto st = ValidatePath(op.path); !st.ok()) {
          code = st.code();
          break;
        }
        if (op.path == "/" || exists_now(op.path)) {
          code = StatusCode::kAlreadyExists;
          break;
        }
        const std::string parent = ParentPath(op.path);
        if (!exists_now(parent)) {
          code = StatusCode::kNotFound;
          break;
        }
        ov.exists[op.path] = true;
        ++ov.child_delta[parent];
        break;
      }
      case OpType::kDelete: {
        if (auto st = ValidatePath(op.path); !st.ok() || op.path == "/") {
          code = st.ok() ? StatusCode::kInvalidArgument : st.code();
          break;
        }
        if (!exists_now(op.path)) {
          code = StatusCode::kNotFound;
          break;
        }
        if (children_now(op.path) > 0) {
          code = StatusCode::kNotEmpty;
          break;
        }
        if (op.version != kAnyVersion && version_now(op.path) != op.version) {
          code = StatusCode::kBadVersion;
          break;
        }
        ov.exists[op.path] = false;
        --ov.child_delta[ParentPath(op.path)];
        break;
      }
      case OpType::kSetData: {
        if (!exists_now(op.path)) {
          code = StatusCode::kNotFound;
          break;
        }
        if (op.version != kAnyVersion && version_now(op.path) != op.version) {
          code = StatusCode::kBadVersion;
          break;
        }
        ++ov.version_bump[op.path];
        break;
      }
      case OpType::kCheckVersion: {
        if (!exists_now(op.path)) {
          code = StatusCode::kNotFound;
          break;
        }
        if (op.version != kAnyVersion && version_now(op.path) != op.version) {
          code = StatusCode::kBadVersion;
          break;
        }
        break;
      }
      default:
        code = StatusCode::kInvalidArgument;
    }
    OpResult r;
    r.code = code;
    applied.multi_results.push_back(std::move(r));
    if (code != StatusCode::kOk && failure == StatusCode::kOk) failure = code;
  }

  if (failure != StatusCode::kOk) {
    applied.result.code = failure;
    return applied;
  }

  // Phase 2 — apply for real; validation guarantees success.
  applied.multi_results.clear();
  for (const auto& op : txn.multi_ops) {
    OpResult r = ApplyOne(op, txn.session, zxid, now_ns, applied.triggers);
    DUFS_CHECK(r.ok());
    applied.multi_results.push_back(std::move(r));
  }
  return applied;
}

AppliedTxn Database::Apply(const Txn& txn, Zxid zxid, std::int64_t now_ns) {
  // Replicas must stamp identical times: prefer the leader-assigned stamp.
  if (txn.time != 0) now_ns = txn.time;
  DUFS_CHECK(zxid > last_applied_);
  last_applied_ = zxid;

  AppliedTxn applied;
  switch (txn.op.type) {
    case OpType::kMulti:
      applied = ApplyMulti(txn, zxid, now_ns);
      break;
    case OpType::kSync:
      break;  // ordering no-op: forces the session server to catch up
    case OpType::kCreateSession:
      sessions_.insert(txn.session);
      break;
    case OpType::kCloseSession: {
      // Deterministic ephemeral cleanup on every replica. Ephemerals cannot
      // have children, so plain deletes always succeed.
      auto ephemerals = tree_->EphemeralsOf(txn.session);
      // Delete deepest-first so parents empty out before their own delete.
      std::sort(ephemerals.begin(), ephemerals.end(),
                [](const std::string& a, const std::string& b) {
                  return a.size() > b.size();
                });
      for (const auto& path : ephemerals) {
        auto st = tree_->Delete(path, kAnyVersion, zxid);
        if (st.ok()) {
          applied.triggers.push_back({WatchEventType::kNodeDeleted, path});
          applied.triggers.push_back(
              {WatchEventType::kNodeChildrenChanged, ParentPath(path)});
        }
      }
      sessions_.erase(txn.session);
      break;
    }
    default:
      applied.result =
          ApplyOne(txn.op, txn.session, zxid, now_ns, applied.triggers);
  }
  return applied;
}

std::vector<std::uint8_t> Database::Snapshot() const {
  wire::BufferWriter w;
  w.WriteI64(last_applied_);
  w.WriteVarint(sessions_.size());
  // Serialize session ids in sorted order — iterating the unordered set
  // directly would make snapshot bytes depend on the stdlib's hash order.
  std::vector<SessionId> sessions(sessions_.begin(), sessions_.end());
  std::sort(sessions.begin(), sessions.end());
  for (SessionId s : sessions) w.WriteU64(s);
  tree_->Serialize(w);
  return w.Take();
}

Result<std::unique_ptr<Database>> Database::Restore(
    const std::vector<std::uint8_t>& snapshot) {
  wire::BufferReader r(snapshot);
  auto db = std::make_unique<Database>();
  auto last = r.ReadI64();
  DUFS_RETURN_IF_ERROR(last);
  db->last_applied_ = *last;
  auto n_sessions = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n_sessions);
  for (std::uint64_t i = 0; i < *n_sessions; ++i) {
    auto s = r.ReadU64();
    DUFS_RETURN_IF_ERROR(s);
    db->sessions_.insert(*s);
  }
  auto tree = DataTree::Deserialize(r);
  DUFS_RETURN_IF_ERROR(tree);
  db->tree_ = std::move(*tree);
  return db;
}

std::uint64_t Database::Fingerprint() const {
  std::uint64_t h = tree_->Fingerprint();
  h ^= 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(last_applied_);
  return h;
}

std::size_t Database::EstimateMemoryBytes() const {
  return tree_->EstimateMemoryBytes() + sessions_.size() * 64;
}

}  // namespace dufs::zk
