#include "zk/database.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/log.h"

namespace dufs::zk {

Database::Database() : tree_(std::make_unique<DataTree>()) {}

OpResult Database::Read(const Op& op) const {
  OpResult res;
  switch (op.type) {
    case OpType::kGetData: {
      auto node = tree_->Find(op.path);
      if (!node.ok()) {
        res.code = node.code();
        return res;
      }
      res.data = (*node)->data;
      res.stat = (*node)->stat;
      return res;
    }
    case OpType::kExists: {
      auto stat = tree_->Stat(op.path);
      if (!stat.ok()) {
        res.code = stat.code();
        return res;
      }
      res.stat = *stat;
      return res;
    }
    case OpType::kGetChildren: {
      auto children = tree_->GetChildren(op.path);
      if (!children.ok()) {
        res.code = children.code();
        return res;
      }
      res.children = std::move(*children);
      auto stat = tree_->Stat(op.path);
      if (stat.ok()) res.stat = *stat;
      return res;
    }
    case OpType::kSync:
      return res;  // ordering is handled by the server pipeline
    default:
      res.code = StatusCode::kInvalidArgument;
      return res;
  }
}

OpResult Database::ApplyOne(const Op& op, SessionId session, Zxid zxid,
                            std::int64_t now_ns,
                            std::vector<AppliedTxn::Trigger>& out) {
  OpResult res;
  switch (op.type) {
    case OpType::kCreate: {
      auto created = tree_->Create(op.path, op.data, op.mode,
                                   IsEphemeral(op.mode) ? session : 0, zxid,
                                   now_ns);
      if (!created.ok()) {
        res.code = created.code();
        return res;
      }
      res.created_path = std::move(*created);
      out.push_back({WatchEventType::kNodeCreated, res.created_path});
      if (res.created_path != "/") {
        out.push_back(
            {WatchEventType::kNodeChildrenChanged,
             ParentPath(res.created_path)});
      }
      return res;
    }
    case OpType::kDelete: {
      auto st = tree_->Delete(op.path, op.version, zxid);
      if (!st.ok()) {
        res.code = st.code();
        return res;
      }
      out.push_back({WatchEventType::kNodeDeleted, op.path});
      out.push_back(
          {WatchEventType::kNodeChildrenChanged, ParentPath(op.path)});
      return res;
    }
    case OpType::kSetData: {
      auto stat = tree_->SetData(op.path, op.data, op.version, zxid, now_ns);
      if (!stat.ok()) {
        res.code = stat.code();
        return res;
      }
      res.stat = *stat;
      out.push_back({WatchEventType::kNodeDataChanged, op.path});
      return res;
    }
    case OpType::kCheckVersion: {
      auto stat = tree_->Stat(op.path);
      if (!stat.ok()) {
        res.code = stat.code();
        return res;
      }
      if (op.version != kAnyVersion && stat->version != op.version) {
        res.code = StatusCode::kBadVersion;
      }
      return res;
    }
    default:
      res.code = StatusCode::kInvalidArgument;
      return res;
  }
}

AppliedTxn Database::ApplyMulti(const Txn& txn, Zxid zxid,
                                std::int64_t now_ns) {
  AppliedTxn applied;

  // Phase 1 — validate against the tree plus an overlay of the multi's own
  // effects, so the whole batch is atomic: either all ops apply or none do.
  struct Overlay {
    // Paths explicitly created (value true) or deleted (false) so far.
    std::map<std::string, bool, std::less<>> exists;
    std::map<std::string, std::int32_t, std::less<>> version_bump;
    std::map<std::string, int, std::less<>> child_delta;
  } ov;

  auto exists_now = [&](std::string_view path) -> bool {
    auto it = ov.exists.find(path);
    if (it != ov.exists.end()) return it->second;
    return tree_->Exists(path);
  };
  auto version_now = [&](std::string_view path) -> std::int32_t {
    auto stat = tree_->Stat(path);
    std::int32_t v = stat.ok() ? stat->version : 0;
    auto it = ov.version_bump.find(path);
    if (it != ov.version_bump.end()) v += it->second;
    return v;
  };
  auto children_now = [&](std::string_view path) -> int {
    auto stat = tree_->Stat(path);
    int n = stat.ok() ? stat->num_children : 0;
    auto it = ov.child_delta.find(path);
    if (it != ov.child_delta.end()) n += it->second;
    return n;
  };

  StatusCode failure = StatusCode::kOk;
  for (const auto& op : txn.multi_ops) {
    StatusCode code = StatusCode::kOk;
    switch (op.type) {
      case OpType::kCreate: {
        if (IsSequential(op.mode)) {
          code = StatusCode::kInvalidArgument;  // unsupported inside multi
          break;
        }
        if (auto st = ValidatePath(op.path); !st.ok()) {
          code = st.code();
          break;
        }
        if (op.path == "/" || exists_now(op.path)) {
          code = StatusCode::kAlreadyExists;
          break;
        }
        const std::string parent = ParentPath(op.path);
        if (!exists_now(parent)) {
          code = StatusCode::kNotFound;
          break;
        }
        ov.exists[op.path] = true;
        ++ov.child_delta[parent];
        break;
      }
      case OpType::kDelete: {
        if (auto st = ValidatePath(op.path); !st.ok() || op.path == "/") {
          code = st.ok() ? StatusCode::kInvalidArgument : st.code();
          break;
        }
        if (!exists_now(op.path)) {
          code = StatusCode::kNotFound;
          break;
        }
        if (children_now(op.path) > 0) {
          code = StatusCode::kNotEmpty;
          break;
        }
        if (op.version != kAnyVersion && version_now(op.path) != op.version) {
          code = StatusCode::kBadVersion;
          break;
        }
        ov.exists[op.path] = false;
        --ov.child_delta[ParentPath(op.path)];
        break;
      }
      case OpType::kSetData: {
        if (!exists_now(op.path)) {
          code = StatusCode::kNotFound;
          break;
        }
        if (op.version != kAnyVersion && version_now(op.path) != op.version) {
          code = StatusCode::kBadVersion;
          break;
        }
        ++ov.version_bump[op.path];
        break;
      }
      case OpType::kCheckVersion: {
        if (!exists_now(op.path)) {
          code = StatusCode::kNotFound;
          break;
        }
        if (op.version != kAnyVersion && version_now(op.path) != op.version) {
          code = StatusCode::kBadVersion;
          break;
        }
        break;
      }
      default:
        code = StatusCode::kInvalidArgument;
    }
    OpResult r;
    r.code = code;
    applied.multi_results.push_back(std::move(r));
    if (code != StatusCode::kOk && failure == StatusCode::kOk) failure = code;
  }

  if (failure != StatusCode::kOk) {
    applied.result.code = failure;
    return applied;
  }

  // Phase 2 — apply for real; validation guarantees success.
  applied.multi_results.clear();
  for (const auto& op : txn.multi_ops) {
    OpResult r = ApplyOne(op, txn.session, zxid, now_ns, applied.triggers);
    DUFS_CHECK(r.ok());
    applied.multi_results.push_back(std::move(r));
  }
  return applied;
}

AppliedTxn Database::Apply(const Txn& txn, Zxid zxid, std::int64_t now_ns) {
  // Replicas must stamp identical times: prefer the leader-assigned stamp.
  if (txn.time != 0) now_ns = txn.time;
  DUFS_CHECK(zxid > last_applied_);
  last_applied_ = zxid;

  AppliedTxn applied;
  switch (txn.op.type) {
    case OpType::kMulti:
      applied = ApplyMulti(txn, zxid, now_ns);
      break;
    case OpType::kSync:
      break;  // ordering no-op: forces the session server to catch up
    case OpType::kCreateSession:
      sessions_.insert(txn.session);
      break;
    case OpType::kCloseSession: {
      // Deterministic ephemeral cleanup on every replica. Ephemerals cannot
      // have children, so plain deletes always succeed.
      auto ephemerals = tree_->EphemeralsOf(txn.session);
      // Delete deepest-first so parents empty out before their own delete.
      std::sort(ephemerals.begin(), ephemerals.end(),
                [](const std::string& a, const std::string& b) {
                  return a.size() > b.size();
                });
      for (const auto& path : ephemerals) {
        auto st = tree_->Delete(path, kAnyVersion, zxid);
        if (st.ok()) {
          applied.triggers.push_back({WatchEventType::kNodeDeleted, path});
          applied.triggers.push_back(
              {WatchEventType::kNodeChildrenChanged, ParentPath(path)});
        }
      }
      sessions_.erase(txn.session);
      break;
    }
    default:
      applied.result =
          ApplyOne(txn.op, txn.session, zxid, now_ns, applied.triggers);
  }
  return applied;
}

std::vector<std::uint8_t> Database::Snapshot() const {
  wire::BufferWriter w;
  w.WriteI64(last_applied_);
  w.WriteVarint(sessions_.size());
  // Serialize session ids in sorted order — iterating the unordered set
  // directly would make snapshot bytes depend on the stdlib's hash order.
  std::vector<SessionId> sessions(sessions_.begin(), sessions_.end());
  std::sort(sessions.begin(), sessions.end());
  for (SessionId s : sessions) w.WriteU64(s);
  tree_->Serialize(w);
  return w.Take();
}

Result<std::unique_ptr<Database>> Database::Restore(
    const std::vector<std::uint8_t>& snapshot) {
  wire::BufferReader r(snapshot);
  auto db = std::make_unique<Database>();
  auto last = r.ReadI64();
  DUFS_RETURN_IF_ERROR(last);
  db->last_applied_ = *last;
  auto n_sessions = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(n_sessions);
  for (std::uint64_t i = 0; i < *n_sessions; ++i) {
    auto s = r.ReadU64();
    DUFS_RETURN_IF_ERROR(s);
    db->sessions_.insert(*s);
  }
  auto tree = DataTree::Deserialize(r);
  DUFS_RETURN_IF_ERROR(tree);
  db->tree_ = std::move(*tree);
  return db;
}

std::uint64_t Database::Fingerprint() const {
  std::uint64_t h = tree_->Fingerprint();
  h ^= 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(last_applied_);
  return h;
}

std::size_t Database::EstimateMemoryBytes() const {
  return tree_->EstimateMemoryBytes() + sessions_.size() * 64;
}

}  // namespace dufs::zk
