// Coordination-service server: ZAB-style leader-based quorum replication
// over the simulated cluster.
//
// Write path (paper §II-C): client -> session server -> (forward to) leader
// -> PROPOSE to all peers -> each peer journals (group commit) and ACKs ->
// leader commits on quorum, in zxid order -> COMMIT broadcast -> every
// replica applies to its Database in zxid order -> the origin server replies
// once *it* has applied the txn (read-your-writes per session server).
//
// Read path: served from the local replica through a serialized read
// pipeline — this is why read throughput scales with the ensemble size
// while write throughput falls (Fig. 7).
//
// Fault tolerance: leader pings; on silence the followers run a
// highest-zxid-wins election; the new leader syncs laggards from its
// committed-log history. Majority loss makes writes time out (tested).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/rpc.h"
#include "obs/obs.h"
#include "sim/future.h"
#include "sim/sync.h"
#include "zk/database.h"
#include "zk/proto.h"

namespace dufs::zk {

// Service-time constants for one server (calibrated; see DESIGN.md §4).
struct ZkPerfModel {
  sim::Duration read_cpu = sim::Us(45);       // local read, serialized
  sim::Duration write_cpu = sim::Us(50);      // leader request processing
  sim::Duration per_peer_cpu = sim::Us(26);   // leader cost per follower/txn
  sim::Duration follower_txn_cpu = sim::Us(20);
  sim::Duration apply_cpu = sim::Us(8);
  std::size_t max_journal_batch = 64;
};

struct ZkEnsembleConfig {
  std::vector<net::NodeId> servers;
  ZkPerfModel perf;
  // Leader group commit: coalesce concurrent write proposals into one
  // quorum round (one batched PROPOSE, one cumulative ACK per follower,
  // one COMMIT watermark), bounded by perf.max_journal_batch. The per-op
  // write_cpu stays serialized; the per-follower replication work is paid
  // once per batch. Off by default so the calibrated single-proposal
  // pipeline stays bit-identical.
  bool group_commit = false;
  bool enable_failure_detection = false;
  sim::Duration ping_interval = sim::Ms(40);
  sim::Duration election_timeout = sim::Ms(250);
  // Committed-log entries retained for follower catch-up; older gaps are
  // healed with a full snapshot transfer.
  std::size_t max_log_entries = 100'000;
  // Session expiry: 0 disables. When set, the server a session is attached
  // to expires it (replicated CloseSession -> ephemeral cleanup) after this
  // long without a request or heartbeat.
  sim::Duration session_timeout = 0;
};

class ZkServer {
 public:
  enum class Role { kLooking, kFollowing, kLeading };

  ZkServer(net::RpcEndpoint& endpoint, ZkEnsembleConfig config,
           std::size_t my_index);

  // Registers RPC handlers and spawns the pipelines. Server 0 boots as the
  // epoch-1 leader (a fixed initial quorum, like a fresh ensemble start).
  void Start();

  // Crash/restart support: reinitializes volatile state from the last
  // snapshot + committed log is NOT retained (disk state is the journal);
  // our restart model restores from the snapshot taken at crash time, which
  // models journal replay.
  std::vector<std::uint8_t> TakeSnapshot() const { return db_->Snapshot(); }
  Status RestoreSnapshot(const std::vector<std::uint8_t>& snap);
  void OnRestart();  // rejoin the ensemble after net::Node::Restart()

  Role role() const { return role_; }
  bool is_leader() const { return role_ == Role::kLeading; }
  std::size_t leader_index() const { return leader_index_; }
  std::int64_t epoch() const { return epoch_; }
  Zxid last_committed() const { return last_committed_; }
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  net::NodeId node_id() const { return endpoint_.self(); }

  std::uint64_t reads_served() const { return reads_served_; }
  std::uint64_t writes_committed() const { return writes_committed_; }
  // Group-commit telemetry (leader only): quorum rounds flushed and the
  // proposals they carried; avg batch = proposals_batched / batch_rounds.
  std::uint64_t batch_rounds() const { return batch_rounds_; }
  std::uint64_t proposals_batched() const { return proposals_batched_; }

  // Optional: request counters, queue-depth gauges, fsync-batch histogram,
  // and quorum-round / group-commit / fsync trace spans for this server.
  void AttachObs(obs::NodeObs node_obs);

 private:
  struct Proposal {
    Txn txn;
    std::set<net::NodeId> acks;  // deduplicated (retransmits re-ack)
    bool committed = false;
    sim::SimTime proposed_at = 0;  // quorum-round span start
  };

  std::size_t quorum() const { return config_.servers.size() / 2 + 1; }
  net::NodeId server_node(std::size_t idx) const {
    return config_.servers[idx];
  }
  Zxid MakeZxid() { return (epoch_ << 40) | static_cast<Zxid>(++zxid_counter_); }

  // RPC handlers.
  sim::Task<net::RpcResult> HandleRequest(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandleForward(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandlePropose(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandleAck(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandleBatchPropose(net::NodeId from,
                                               net::Payload req);
  sim::Task<net::RpcResult> HandleBatchAck(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandleCommit(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandleFollowerInfo(net::NodeId from,
                                               net::Payload req);
  sim::Task<net::RpcResult> HandlePing(net::NodeId from, net::Payload req);
  sim::Task<net::RpcResult> HandleSessionPing(net::NodeId from,
                                              net::Payload req);
  sim::Task<void> SessionExpiryLoop();
  sim::Task<net::RpcResult> HandleElectionVote(net::NodeId from,
                                               net::Payload req);

  // Write-path helpers.
  sim::Task<Result<ClientResponse>> SubmitWrite(Txn txn);
  // `zxid` is an out-param owned by the awaiting HandleRequest frame.
  // dufs-lint: allow(coro-ref-param)
  sim::Task<Result<ClientResponse>> SubmitWriteTracked(Txn txn, Zxid& zxid);
  Zxid ProposeAsLeader(Txn txn);  // returns the assigned zxid
  // Group-commit path: drains propose_queue_ in max_journal_batch-sized
  // waves, paying the per-follower replication cost once per wave.
  void ScheduleProposalFlush();
  sim::Task<void> FlushProposalQueue();
  void TryCommitInOrder();
  void MaybeScheduleRetransmit();
  void AppendCommittedLog(Zxid zxid, Txn txn);
  void BroadcastCommit(Zxid zxid);
  void ApplyCommitted();
  sim::Task<bool> WaitApplied(Zxid zxid);  // false on give-up timeout
  void CompleteApplyWaiters();

  // Journal (group commit) pipeline.
  struct JournalEntry {
    Zxid zxid;
    std::size_t bytes;
    obs::TraceId trace = 0;
    sim::Promise<bool> done;
  };
  sim::Task<void> JournalLoop();
  sim::Task<void> JournalAppend(Zxid zxid, std::size_t bytes,
                                obs::TraceId trace = 0);

  // Full event log on (args are worth building) vs any span recording at
  // all (full log or flight recorder).
  bool tracing() const { return obs_.tracer != nullptr && obs_.tracer->enabled(); }
  bool recording() const {
    return obs_.tracer != nullptr && obs_.tracer->recording();
  }

  // Watches.
  void RegisterWatch(const Op& op, SessionId session, net::NodeId client);
  // Compound ops: one data watch per resolved component (plus the first
  // missing one on a partial miss), and for ReadDirPlus a child watch on
  // the directory + data watches on every listed entry — the server-side
  // mirror of the client seeding every one of those cache entries.
  void RegisterCompoundWatches(OpType type, const std::string& path,
                               const OpResult& result, SessionId session,
                               net::NodeId client);
  void FireTriggers(const std::vector<AppliedTxn::Trigger>& triggers);

  // Failure detection & election.
  sim::Task<void> LeaderPingLoop(std::int64_t epoch_at_start);
  sim::Task<void> FollowerWatchdog();
  void StartElection();
  void MaybeDecideElection();
  sim::Task<void> BecomeLeader();
  sim::Task<void> SyncWithLeader(std::size_t leader_idx);

  net::RpcEndpoint& endpoint_;
  ZkEnsembleConfig config_;
  std::size_t my_index_;
  std::unique_ptr<Database> db_;

  Role role_ = Role::kFollowing;
  std::size_t leader_index_ = 0;
  std::int64_t epoch_ = 1;
  std::uint64_t zxid_counter_ = 0;

  // Leader state.
  std::map<Zxid, Proposal> proposals_;
  // Sequenced-but-not-yet-broadcast writes awaiting the next group-commit
  // wave (group_commit mode only; zxids are contiguous in queue order).
  std::vector<std::pair<Zxid, Txn>> propose_queue_;
  bool flush_scheduled_ = false;
  Zxid last_committed_ = 0;
  // Tail of the committed history (the on-disk log model) for syncing
  // lagging followers; bounded by config_.max_log_entries.
  std::deque<std::pair<Zxid, Txn>> committed_log_;
  Zxid log_truncated_upto_ = 0;  // highest zxid dropped from the tail

  // Replica state.
  std::map<Zxid, Txn> pending_txns_;   // proposed, not yet committed
  std::set<Zxid> committed_not_applied_;
  std::map<Zxid, std::vector<sim::Promise<bool>>> apply_waiters_;
  // Apply results cached for requests that originated at this server.
  std::set<Zxid> result_wanted_;
  std::map<Zxid, ClientResponse> local_results_;

  // Pipelines.
  std::unique_ptr<sim::Resource> read_pipeline_;
  std::unique_ptr<sim::Resource> write_pipeline_;
  std::unique_ptr<sim::Mailbox<JournalEntry>> journal_mb_;
  // Journal entries submitted but not yet fsynced. The group-commit flush
  // paces itself on this: while a disk sync is in flight, submitters keep
  // sequencing and the next quorum round picks them all up at once.
  std::size_t journal_pending_ = 0;

  // Watches: path -> (session, client node).
  using WatchSet = std::map<std::pair<SessionId, net::NodeId>, bool>;
  std::unordered_map<std::string, WatchSet> data_watches_;
  std::unordered_map<std::string, WatchSet> child_watches_;

  // Election state.
  struct Vote {
    std::int64_t epoch = 0;
    Zxid zxid = 0;
    std::size_t candidate = 0;
    bool operator>(const Vote& o) const {
      if (zxid != o.zxid) return zxid > o.zxid;
      return candidate > o.candidate;
    }
  };
  Vote my_vote_;
  std::map<std::size_t, Vote> votes_received_;
  std::int64_t election_round_ = 0;
  sim::SimTime last_ping_ = 0;
  bool started_ = false;
  bool syncing_ = false;
  bool retransmit_scheduled_ = false;
  // Sessions attached to this server -> last activity time.
  std::unordered_map<SessionId, sim::SimTime> session_activity_;

  std::uint64_t reads_served_ = 0;
  std::uint64_t writes_committed_ = 0;
  std::uint64_t batch_rounds_ = 0;
  std::uint64_t proposals_batched_ = 0;

  // Observability (default handles are no-op dummies; see obs/metrics.h).
  obs::NodeObs obs_;
  obs::Counter c_reads_;
  obs::Counter c_writes_;
  obs::Counter c_compound_;
  obs::Histogram h_resolve_depth_;
  obs::Gauge g_read_queue_;
  obs::Gauge g_write_queue_;
  obs::Gauge g_journal_pending_;
  obs::Histogram h_fsync_batch_;
};

}  // namespace dufs::zk
