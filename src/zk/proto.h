// Wire protocol of the coordination service: client operations, transaction
// records (the replicated log entries), and operation results.
//
// Reads (GetData/Exists/GetChildren/Sync) are served by any server from its
// local replica. Writes (Create/Delete/SetData/Multi/session lifecycle) are
// turned into Txn records, sequenced by the leader, and applied by every
// replica in zxid order (see zab.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "wire/buffer.h"
#include "zk/znode.h"

namespace dufs::zk {

// RPC method ids (shared RpcEndpoint method space: zk owns 100-119).
namespace method {
inline constexpr std::uint16_t kConnect = 100;      // client -> server
inline constexpr std::uint16_t kRequest = 101;      // client -> server
inline constexpr std::uint16_t kForward = 110;      // follower -> leader
inline constexpr std::uint16_t kPropose = 111;      // leader -> follower
inline constexpr std::uint16_t kAckProposal = 112;  // follower -> leader
// Group-commit fast path: one PROPOSE carrying a contiguous zxid run, one
// cumulative ACK per batch (see ZkEnsembleConfig::group_commit).
inline constexpr std::uint16_t kBatchPropose = 104; // leader -> follower
inline constexpr std::uint16_t kBatchAck = 105;     // follower -> leader
inline constexpr std::uint16_t kCommit = 113;       // leader -> all (one-way)
inline constexpr std::uint16_t kElectionVote = 114; // peer -> peer (one-way)
inline constexpr std::uint16_t kFollowerInfo = 115; // follower -> leader
inline constexpr std::uint16_t kPing = 116;         // leader -> follower
inline constexpr std::uint16_t kWatchEvent = 117;   // server -> client
inline constexpr std::uint16_t kSessionPing = 118;  // client -> server (one-way)
}  // namespace method

enum class OpType : std::uint8_t {
  // Reads (never replicated).
  kGetData = 0,
  kExists = 1,
  kGetChildren = 2,
  kSync = 3,
  // Compound reads: server-side path resolution (DESIGN.md §13). One RPC
  // resolves every component of `path` against the local replica and ships
  // the whole prefix back for client cache seeding.
  kResolvePath = 4,
  kReadDirPlus = 5,
  // Writes (replicated as Txns).
  kCreate = 10,
  kDelete = 11,
  kSetData = 12,
  kMulti = 13,
  kCreateSession = 14,
  kCloseSession = 15,
  // Multi-only guard op.
  kCheckVersion = 16,
  // Compound writes: resolve + mutate in one replicated txn. They ride the
  // ordinary Txn path (leader sequencing, group commit, replay untouched);
  // the resolution loop runs inside Database::Apply on every replica.
  kResolveCreate = 17,
  kResolveDelete = 18,
};

inline bool IsWrite(OpType t) { return static_cast<int>(t) >= 10; }

inline bool IsCompound(OpType t) {
  return t == OpType::kResolvePath || t == OpType::kReadDirPlus ||
         t == OpType::kResolveCreate || t == OpType::kResolveDelete;
}

// Stable display name ("create", "getChildren", ...) for logs and traces.
const char* OpTypeName(OpType t);

// One operation — used both for standalone requests and inside a Multi.
struct Op {
  OpType type = OpType::kGetData;
  std::string path;
  std::vector<std::uint8_t> data;
  CreateMode mode = CreateMode::kPersistent;
  std::int32_t version = kAnyVersion;
  // Reads and compound writes; on compound ops the session server registers
  // a one-shot data watch on every resolved component (plus the first
  // missing one), keeping client-side prefix seeding coherent.
  bool watch = false;
  // Compound ops only. Nonzero = every *interior* resolved component's data
  // must begin with this byte or resolution stops with kNotADirectory. The
  // FS layer stores its kind tag as the first MetaRecord byte, which lets
  // the (otherwise schema-agnostic) coordination service enforce the POSIX
  // walk rule server-side. 0 disables the guard (existence checks only).
  std::uint8_t dir_tag = 0;

  void Encode(wire::BufferWriter& w) const;
  static Result<Op> Decode(wire::BufferReader& r);

  // Convenience constructors.
  static Op Create(std::string path, std::vector<std::uint8_t> data,
                   CreateMode mode = CreateMode::kPersistent);
  static Op Delete(std::string path, std::int32_t version = kAnyVersion);
  static Op SetData(std::string path, std::vector<std::uint8_t> data,
                    std::int32_t version = kAnyVersion);
  static Op CheckVersion(std::string path, std::int32_t version);
  static Op ResolvePath(std::string path, bool watch, std::uint8_t dir_tag);
  static Op ReadDirPlus(std::string path, bool watch, std::uint8_t dir_tag);
  static Op ResolveCreate(std::string path, std::vector<std::uint8_t> data,
                          CreateMode mode, std::uint8_t dir_tag, bool watch);
  static Op ResolveDelete(std::string path, std::int32_t version,
                          std::uint8_t dir_tag, bool watch);
};

// A replicated transaction: the client's write plus its session stamp and
// the leader-assigned wall time (so ctime/mtime are identical on every
// replica, exactly like ZooKeeper's TxnHeader time).
struct Txn {
  SessionId session = 0;
  std::int64_t time = 0;     // leader clock at sequencing time (sim ns)
  std::uint64_t trace = 0;   // originating trace id; 0 = untraced (varint
                             // on the wire, so tracing off costs one byte)
  Op op;                     // kCreate/kDelete/kSetData/kCreateSession/...
  std::vector<Op> multi_ops; // when op.type == kMulti

  void Encode(wire::BufferWriter& w) const;
  static Result<Txn> Decode(wire::BufferReader& r);
  std::size_t EncodedSize() const;
};

// One resolved path component (compound-op replies): its name plus the
// stat/data snapshot taken during the server-side resolution walk.
struct ResolvedNode {
  std::string name;
  ZnodeStat stat;
  std::vector<std::uint8_t> data;

  void Encode(wire::BufferWriter& w) const;
  static Result<ResolvedNode> Decode(wire::BufferReader& r);
};

// Result of applying one Op.
//
// Compound-op contract (kResolvePath/kReadDirPlus/kResolveCreate/
// kResolveDelete — see DESIGN.md §13):
//   - resolved_depth = number of leading components of Op::path that exist
//     *after* the op ran (so a successful ResolveDelete of an n-component
//     path reports n-1; a successful ResolveCreate reports n).
//   - prefix = one ResolvedNode per existing leading component EXCLUDING
//     the terminal; the terminal's stat/data ride `stat`/`data` as usual.
//     prefix.size() == min(resolved_depth, n_components - 1). On a partial
//     miss (code kNotFound) the prefix covers exactly the components that
//     do exist, so the client can seed positives for them and a negative
//     for the first missing one. On kNotADirectory the offending non-dir
//     component is the *last* prefix entry; components past it were never
//     examined, so no negative may be inferred.
//   - entries = kReadDirPlus only: every child of the terminal directory
//     with its stat+data, in sorted (map) order.
struct OpResult {
  StatusCode code = StatusCode::kOk;
  std::string created_path;          // kCreate
  ZnodeStat stat;                    // kExists/kSetData/kGetData
  std::vector<std::uint8_t> data;    // kGetData
  std::vector<std::string> children; // kGetChildren
  std::uint32_t resolved_depth = 0;  // compound ops
  std::vector<ResolvedNode> prefix;  // compound ops
  std::vector<ResolvedNode> entries; // kReadDirPlus

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const { return Status(code); }

  void Encode(wire::BufferWriter& w) const;
  static Result<OpResult> Decode(wire::BufferReader& r);
};

// Client-facing request/response frames (method::kRequest).
struct ClientRequest {
  SessionId session = 0;
  std::uint64_t trace = 0;  // see Txn::trace
  Op op;
  std::vector<Op> multi_ops;

  std::vector<std::uint8_t> Encode() const;
  static Result<ClientRequest> Decode(const std::vector<std::uint8_t>& bytes);
};

struct ClientResponse {
  OpResult result;                  // result of `op` (or first failed multi op)
  std::vector<OpResult> multi_results;

  std::vector<std::uint8_t> Encode() const;
  static Result<ClientResponse> Decode(const std::vector<std::uint8_t>& bytes);
};

// Watch event pushed to clients (method::kWatchEvent).
enum class WatchEventType : std::uint8_t {
  kNodeCreated = 0,
  kNodeDeleted = 1,
  kNodeDataChanged = 2,
  kNodeChildrenChanged = 3,
};

struct WatchEvent {
  WatchEventType type = WatchEventType::kNodeDataChanged;
  std::string path;
  SessionId session = 0;

  std::vector<std::uint8_t> Encode() const;
  static Result<WatchEvent> Decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace dufs::zk
