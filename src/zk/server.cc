#include "zk/server.h"

#include <algorithm>
#include <utility>

namespace dufs::zk {
namespace {

// Internal peer-message codecs.
struct ProposeMsg {
  Zxid zxid;
  std::int64_t epoch;
  Txn txn;

  net::Payload Encode() const {
    wire::BufferWriter w;
    w.WriteI64(zxid);
    w.WriteI64(epoch);
    txn.Encode(w);
    return w.Take();
  }
  static Result<ProposeMsg> Decode(const net::Payload& bytes) {
    wire::BufferReader r(bytes);
    ProposeMsg m;
    auto zxid = r.ReadI64();
    DUFS_RETURN_IF_ERROR(zxid);
    m.zxid = *zxid;
    auto epoch = r.ReadI64();
    DUFS_RETURN_IF_ERROR(epoch);
    m.epoch = *epoch;
    auto txn = Txn::Decode(r);
    DUFS_RETURN_IF_ERROR(txn);
    m.txn = std::move(*txn);
    return m;
  }
};

// A contiguous run of sequenced proposals shipped as one message (group
// commit). The follower journals the run with one fsync and ACKs the whole
// [lo, hi] zxid range back.
struct BatchProposeMsg {
  std::int64_t epoch;
  std::vector<std::pair<Zxid, Txn>> entries;

  net::Payload Encode() const {
    wire::BufferWriter w;
    w.WriteI64(epoch);
    w.WriteVarint(entries.size());
    for (const auto& [zxid, txn] : entries) {
      w.WriteI64(zxid);
      txn.Encode(w);
    }
    return w.Take();
  }
  static Result<BatchProposeMsg> Decode(const net::Payload& bytes) {
    wire::BufferReader r(bytes);
    BatchProposeMsg m;
    auto epoch = r.ReadI64();
    DUFS_RETURN_IF_ERROR(epoch);
    m.epoch = *epoch;
    auto count = r.ReadVarint();
    DUFS_RETURN_IF_ERROR(count);
    m.entries.reserve(*count);
    for (std::uint64_t i = 0; i < *count; ++i) {
      auto zxid = r.ReadI64();
      DUFS_RETURN_IF_ERROR(zxid);
      auto txn = Txn::Decode(r);
      DUFS_RETURN_IF_ERROR(txn);
      m.entries.emplace_back(*zxid, std::move(*txn));
    }
    return m;
  }
};

net::Payload EncodeZxid(Zxid zxid) {
  wire::BufferWriter w;
  w.WriteI64(zxid);
  return w.Take();
}

net::Payload EncodeZxidRange(Zxid lo, Zxid hi) {
  wire::BufferWriter w;
  w.WriteI64(lo);
  w.WriteI64(hi);
  return w.Take();
}

Result<Zxid> DecodeZxid(const net::Payload& bytes) {
  wire::BufferReader r(bytes);
  return r.ReadI64();
}

struct ForwardResponse {
  Zxid zxid = 0;
  ClientResponse response;

  net::Payload Encode() const {
    wire::BufferWriter w;
    w.WriteI64(zxid);
    w.WriteBytes(response.Encode());
    return w.Take();
  }
  static Result<ForwardResponse> Decode(const net::Payload& bytes) {
    wire::BufferReader r(bytes);
    ForwardResponse f;
    auto zxid = r.ReadI64();
    DUFS_RETURN_IF_ERROR(zxid);
    f.zxid = *zxid;
    auto blob = r.ReadBytes();
    DUFS_RETURN_IF_ERROR(blob);
    auto resp = ClientResponse::Decode(*blob);
    DUFS_RETURN_IF_ERROR(resp);
    f.response = std::move(*resp);
    return f;
  }
};

struct VoteMsg {
  std::int64_t round;
  std::int64_t epoch;
  Zxid zxid;
  std::uint64_t candidate;
  std::uint64_t from;

  net::Payload Encode() const {
    wire::BufferWriter w;
    w.WriteI64(round);
    w.WriteI64(epoch);
    w.WriteI64(zxid);
    w.WriteU64(candidate);
    w.WriteU64(from);
    return w.Take();
  }
  static Result<VoteMsg> Decode(const net::Payload& bytes) {
    wire::BufferReader r(bytes);
    VoteMsg m;
    auto round = r.ReadI64();
    DUFS_RETURN_IF_ERROR(round);
    m.round = *round;
    auto epoch = r.ReadI64();
    DUFS_RETURN_IF_ERROR(epoch);
    m.epoch = *epoch;
    auto zxid = r.ReadI64();
    DUFS_RETURN_IF_ERROR(zxid);
    m.zxid = *zxid;
    auto cand = r.ReadU64();
    DUFS_RETURN_IF_ERROR(cand);
    m.candidate = *cand;
    auto from = r.ReadU64();
    DUFS_RETURN_IF_ERROR(from);
    m.from = *from;
    return m;
  }
};

ClientResponse UnavailableResponse() {
  ClientResponse resp;
  resp.result.code = StatusCode::kUnavailable;
  return resp;
}

}  // namespace

ZkServer::ZkServer(net::RpcEndpoint& endpoint, ZkEnsembleConfig config,
                   std::size_t my_index)
    : endpoint_(endpoint),
      config_(std::move(config)),
      my_index_(my_index),
      db_(std::make_unique<Database>()) {
  DUFS_CHECK(my_index_ < config_.servers.size());
  DUFS_CHECK(config_.servers[my_index_] == endpoint_.self());
}

void ZkServer::Start() {
  DUFS_CHECK(!started_);
  started_ = true;
  // The bound closures live in the endpoint's handler map; `this` outlives
  // them, and the inner lambda is not itself a coroutine (it forwards to a
  // member coroutine whose frame holds `this` via the implicit parameter).
  auto bind = [this](auto method_fn) {
    return [this, method_fn](net::NodeId from,  // dufs-lint: allow(coro-capture-ref)
                             net::Payload req) -> sim::Task<net::RpcResult> {
      return (this->*method_fn)(from, std::move(req));
    };
  };
  endpoint_.RegisterHandler(method::kRequest, bind(&ZkServer::HandleRequest));
  endpoint_.RegisterHandler(method::kForward, bind(&ZkServer::HandleForward));
  endpoint_.RegisterHandler(method::kPropose, bind(&ZkServer::HandlePropose));
  endpoint_.RegisterHandler(method::kAckProposal, bind(&ZkServer::HandleAck));
  endpoint_.RegisterHandler(method::kBatchPropose,
                            bind(&ZkServer::HandleBatchPropose));
  endpoint_.RegisterHandler(method::kBatchAck,
                            bind(&ZkServer::HandleBatchAck));
  endpoint_.RegisterHandler(method::kCommit, bind(&ZkServer::HandleCommit));
  endpoint_.RegisterHandler(method::kFollowerInfo,
                            bind(&ZkServer::HandleFollowerInfo));
  endpoint_.RegisterHandler(method::kPing, bind(&ZkServer::HandlePing));
  endpoint_.RegisterHandler(method::kElectionVote,
                            bind(&ZkServer::HandleElectionVote));
  endpoint_.RegisterHandler(method::kSessionPing,
                            bind(&ZkServer::HandleSessionPing));

  read_pipeline_ = std::make_unique<sim::Resource>(endpoint_.sim(), 1);
  write_pipeline_ = std::make_unique<sim::Resource>(endpoint_.sim(), 1);
  journal_mb_ = std::make_unique<sim::Mailbox<JournalEntry>>(endpoint_.sim());

  sim::CurrentSimulationScope scope(&endpoint_.sim());
  endpoint_.sim().Spawn(JournalLoop());
  if (config_.session_timeout > 0) {
    endpoint_.sim().Spawn(SessionExpiryLoop());
  }

  if (my_index_ == 0) {
    role_ = Role::kLeading;
    leader_index_ = 0;
    if (config_.enable_failure_detection) {
      endpoint_.sim().Spawn(LeaderPingLoop(epoch_));
    }
  } else {
    role_ = Role::kFollowing;
    leader_index_ = 0;
    last_ping_ = endpoint_.sim().now();
    if (config_.enable_failure_detection) {
      endpoint_.sim().Spawn(FollowerWatchdog());
    }
  }
}

Status ZkServer::RestoreSnapshot(const std::vector<std::uint8_t>& snap) {
  auto db = Database::Restore(snap);
  DUFS_RETURN_IF_ERROR(db);
  db_ = std::move(*db);
  return Status::Ok();
}

void ZkServer::OnRestart() {
  // Volatile replication state is gone; the Database reflects the journal
  // replay (RestoreSnapshot). Rejoin by looking for the current leader.
  proposals_.clear();
  propose_queue_.clear();
  flush_scheduled_ = false;
  journal_pending_ = 0;
  pending_txns_.clear();
  committed_not_applied_.clear();
  apply_waiters_.clear();
  result_wanted_.clear();
  local_results_.clear();
  last_committed_ = db_->last_applied();
  // The in-memory log may disagree with the restored snapshot; drop it and
  // serve any pre-restore sync requests with a full snapshot instead.
  committed_log_.clear();
  log_truncated_upto_ = db_->last_applied();
  // Never reuse zxids from a previous life.
  epoch_ = std::max<std::int64_t>(epoch_, (db_->last_applied() >> 40) + 1);
  zxid_counter_ = 0;
  sim::CurrentSimulationScope scope(&endpoint_.sim());
  if (config_.enable_failure_detection) {
    role_ = Role::kLooking;
    StartElection();
    endpoint_.sim().Spawn(FollowerWatchdog());
  } else {
    // Static-leader mode: resync from server 0.
    role_ = Role::kFollowing;
    leader_index_ = 0;
    if (my_index_ == 0) {
      role_ = Role::kLeading;
    } else {
      endpoint_.sim().Spawn(SyncWithLeader(0));
    }
  }
}

// -------------------------------------------------------- observability ----

void ZkServer::AttachObs(obs::NodeObs node_obs) {
  obs_ = node_obs;
  c_reads_ = obs_.counter("zk.reads");
  c_writes_ = obs_.counter("zk.writes");
  c_compound_ = obs_.counter("zk.compound_ops");
  h_resolve_depth_ = obs_.histogram("zk.resolve_depth");
  g_read_queue_ = obs_.gauge("zk.read_queue");
  g_write_queue_ = obs_.gauge("zk.write_queue");
  g_journal_pending_ = obs_.gauge("journal.pending");
  h_fsync_batch_ = obs_.histogram("journal.fsync_batch");
}

// --------------------------------------------------------------- reads ----

sim::Task<net::RpcResult> ZkServer::HandleRequest(net::NodeId from,
                                                  net::Payload req_bytes) {
  auto req = ClientRequest::Decode(req_bytes);
  if (!req.ok()) co_return req.status();
  if (req->session != 0) {
    session_activity_[req->session] = endpoint_.sim().now();
    if (req->op.type == OpType::kCloseSession) {
      session_activity_.erase(req->session);
    }
  }

  if (IsWrite(req->op.type) || req->op.type == OpType::kSync) {
    c_writes_.Inc();
    const auto write_depth =
        static_cast<std::int64_t>(write_pipeline_->queue_length());
    g_write_queue_.Set(write_depth);
    if (obs_.incidents != nullptr) {
      obs_.incidents->RecordQueueDepth(obs_.track, write_depth);
    }
    // Server-side work runs on this node's coroutine stack, not the
    // client's: root the profiler attribution at the node frame.
    prof::ProfScope node_scope(obs_.prof_name, prof::FrameKind::kNode);
    obs::Span span(obs_.tracer, obs_.track, "zk-write", "zk", req->trace);
    // Compound writes register watches *here* on the session server after
    // the txn applies (the replicated state machine stays watch-free); the
    // op fields needed for that outlive the move below.
    const OpType op_type = req->op.type;
    const bool op_watch = req->op.watch;
    std::string op_path = IsCompound(op_type) ? req->op.path : std::string();
    Txn txn;
    txn.session = req->session;
    txn.trace = req->trace;
    txn.op = std::move(req->op);
    txn.multi_ops = std::move(req->multi_ops);
    auto resp = co_await SubmitWrite(std::move(txn));
    if (!resp.ok()) co_return UnavailableResponse().Encode();
    if (IsCompound(op_type)) {
      c_compound_.Inc();
      h_resolve_depth_.Record(
          static_cast<std::int64_t>(resp->result.resolved_depth));
      if (op_watch) {
        RegisterCompoundWatches(op_type, op_path, resp->result, req->session,
                                from);
      }
    }
    co_return resp->Encode();
  }

  // Local read through the serialized read pipeline.
  c_reads_.Inc();
  const auto read_depth =
      static_cast<std::int64_t>(read_pipeline_->queue_length());
  g_read_queue_.Set(read_depth);
  if (obs_.incidents != nullptr) {
    obs_.incidents->RecordQueueDepth(obs_.track, read_depth);
  }
  prof::ProfScope node_scope(obs_.prof_name, prof::FrameKind::kNode);
  obs::Span span(obs_.tracer, obs_.track, "zk-read", "zk", req->trace);
  {
    auto guard = co_await read_pipeline_->Acquire();
    co_await endpoint_.sim().Delay(config_.perf.read_cpu);
  }
  ClientResponse resp;
  resp.result = db_->Read(req->op);
  if (IsCompound(req->op.type)) {
    c_compound_.Inc();
    h_resolve_depth_.Record(
        static_cast<std::int64_t>(resp.result.resolved_depth));
    if (req->op.watch) {
      RegisterCompoundWatches(req->op.type, req->op.path, resp.result,
                              req->session, from);
    }
  } else if (req->op.watch) {
    RegisterWatch(req->op, req->session, from);
  }
  ++reads_served_;
  co_return resp.Encode();
}

void ZkServer::RegisterWatch(const Op& op, SessionId session,
                             net::NodeId client) {
  switch (op.type) {
    case OpType::kGetData:
    case OpType::kExists:
      data_watches_[op.path][{session, client}] = true;
      break;
    case OpType::kGetChildren:
      child_watches_[op.path][{session, client}] = true;
      break;
    default:
      break;
  }
}

void ZkServer::RegisterCompoundWatches(OpType type, const std::string& path,
                                       const OpResult& result,
                                       SessionId session,
                                       net::NodeId client) {
  const auto components = PathComponents(path);
  const auto key = std::make_pair(session, client);
  // Data watch on every component the walk resolved. resolved_depth may
  // exceed prefix.size() by one (the terminal rides stat/data), and for a
  // successful ResolveDelete it is one *less* than the walk reached — the
  // deleted terminal must not be re-watched, or the watch would never fire.
  std::string znode_path;
  znode_path.reserve(path.size());
  const std::size_t watched =
      std::min<std::size_t>(result.resolved_depth, components.size());
  for (std::size_t i = 0; i < watched; ++i) {
    znode_path.push_back('/');
    znode_path.append(components[i]);
    data_watches_[znode_path][key] = true;
  }
  // Partial miss: an existence watch on the first missing component keeps
  // the client's negative cache entry coherent (kNodeCreated fires it).
  if (watched < components.size()) {
    znode_path.push_back('/');
    znode_path.append(components[watched]);
    data_watches_[znode_path][key] = true;
    return;
  }
  if (type == OpType::kReadDirPlus && result.ok()) {
    // The listing seeds one positive cache entry per child: mirror it with
    // a child watch on the directory plus a data watch per entry.
    child_watches_[path][key] = true;
    for (const auto& entry : result.entries) {
      std::string child_path = path == "/" ? "/" + entry.name
                                           : path + "/" + entry.name;
      data_watches_[std::move(child_path)][key] = true;
    }
  }
}

void ZkServer::FireTriggers(const std::vector<AppliedTxn::Trigger>& triggers) {
  for (const auto& trig : triggers) {
    auto& watch_map = trig.type == WatchEventType::kNodeChildrenChanged
                          ? child_watches_
                          : data_watches_;
    auto it = watch_map.find(trig.path);
    if (it == watch_map.end()) continue;
    WatchSet watchers = std::move(it->second);
    watch_map.erase(it);  // one-shot, like ZooKeeper
    for (const auto& [key, unused] : watchers) {
      WatchEvent ev;
      ev.type = trig.type;
      ev.path = trig.path;
      ev.session = key.first;
      endpoint_.Notify(key.second, method::kWatchEvent, ev.Encode());
    }
  }
}

// -------------------------------------------------------------- writes ----

sim::Task<Result<ClientResponse>> ZkServer::SubmitWrite(Txn txn) {
  Zxid zxid = 0;
  auto resp = co_await SubmitWriteTracked(std::move(txn), zxid);
  co_return resp;
}

sim::Task<Result<ClientResponse>> ZkServer::SubmitWriteTracked(Txn txn,
                                                               Zxid& zxid) {  // dufs-lint: allow(coro-ref-param)
  if (role_ == Role::kLeading) {
    {
      // The leader's single request-processor thread: serialization +
      // per-follower replication work. This stage is the write-throughput
      // limiter and the reason Fig. 7's write curves fall as servers are
      // added.
      auto guard = co_await write_pipeline_->Acquire();
      if (config_.group_commit) {
        // Group commit: the per-op stage pays only the serialization cost
        // and assigns the zxid under the guard (preserving order); the
        // per-follower replication work is paid once per batch by the
        // flush task, which queues behind the submitters on this pipeline.
        co_await endpoint_.sim().Delay(config_.perf.write_cpu);
        zxid = MakeZxid();
        txn.time = endpoint_.sim().now();
        propose_queue_.emplace_back(zxid, std::move(txn));
      } else {
        const auto peers =
            static_cast<sim::Duration>(config_.servers.size() - 1);
        co_await endpoint_.sim().Delay(config_.perf.write_cpu +
                                       peers * config_.perf.per_peer_cpu);
      }
    }
    if (config_.group_commit) {
      ScheduleProposalFlush();
    } else {
      zxid = ProposeAsLeader(std::move(txn));
    }
    result_wanted_.insert(zxid);
    const bool applied = co_await WaitApplied(zxid);
    if (!applied) {
      result_wanted_.erase(zxid);
      co_return Status(StatusCode::kUnavailable, "commit timed out");
    }
    auto it = local_results_.find(zxid);
    if (it == local_results_.end()) {
      co_return Status(StatusCode::kInternal, "missing local result");
    }
    ClientResponse resp = std::move(it->second);
    local_results_.erase(it);
    co_return resp;
  }

  // Follower: forward to the leader, then wait until the local replica has
  // applied the txn so this session observes its own write.
  wire::BufferWriter w;
  txn.Encode(w);
  auto result = co_await endpoint_.Call(server_node(leader_index_),
                                        method::kForward, w.Take(),
                                        /*timeout=*/sim::Sec(2));
  if (!result.ok()) co_return result.status();
  auto fwd = ForwardResponse::Decode(*result);
  if (!fwd.ok()) co_return fwd.status();
  zxid = fwd->zxid;
  (void)co_await WaitApplied(fwd->zxid);
  co_return std::move(fwd->response);
}

sim::Task<net::RpcResult> ZkServer::HandleForward(net::NodeId /*from*/,
                                                  net::Payload req) {
  wire::BufferReader r(req);
  auto txn = Txn::Decode(r);
  if (!txn.ok()) co_return txn.status();
  if (role_ != Role::kLeading) {
    // Stale leadership information at the forwarder; let it time out and
    // retry after discovering the new leader.
    co_return Status(StatusCode::kUnavailable, "not the leader");
  }
  Zxid zxid = 0;
  auto resp = co_await SubmitWriteTracked(std::move(*txn), zxid);
  if (!resp.ok()) co_return resp.status();
  ForwardResponse fwd;
  fwd.zxid = zxid;
  fwd.response = std::move(*resp);
  co_return fwd.Encode();
}

Zxid ZkServer::ProposeAsLeader(Txn txn) {
  DUFS_CHECK(role_ == Role::kLeading);
  const Zxid zxid = MakeZxid();
  txn.time = endpoint_.sim().now();  // replica-identical ctime/mtime stamps
  const std::size_t txn_bytes = txn.EncodedSize();
  const obs::TraceId trace = txn.trace;

  ProposeMsg msg{zxid, epoch_, txn};
  const auto payload = msg.Encode();
  for (std::size_t i = 0; i < config_.servers.size(); ++i) {
    if (i == my_index_) continue;
    endpoint_.Notify(server_node(i), method::kPropose, payload);
  }

  pending_txns_.emplace(zxid, std::move(txn));
  proposals_.emplace(zxid, Proposal{pending_txns_.at(zxid), {}, false,
                                    endpoint_.sim().now()});
  MaybeScheduleRetransmit();

  // Self-ack after the local journal write.
  sim::CurrentSimulationScope scope(&endpoint_.sim());
  endpoint_.sim().Spawn(
      [](ZkServer& self, Zxid z, std::size_t bytes,
         obs::TraceId tr) -> sim::Task<void> {
        co_await self.JournalAppend(z, bytes, tr);
        auto it = self.proposals_.find(z);
        if (it == self.proposals_.end()) co_return;
        it->second.acks.insert(self.endpoint_.self());
        self.TryCommitInOrder();
      }(*this, zxid, txn_bytes, trace));
  return zxid;
}

void ZkServer::ScheduleProposalFlush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  sim::CurrentSimulationScope scope(&endpoint_.sim());
  endpoint_.sim().Spawn(FlushProposalQueue());
}

// Drains propose_queue_ in batches. The batching window is implicit: the
// flush task queues on the write pipeline *behind* every submitter that is
// currently sequencing, so one wave picks up everything that accumulated
// while the previous wave was broadcasting (classic group commit, same
// shape as JournalLoop below).
sim::Task<void> ZkServer::FlushProposalQueue() {
  const std::uint64_t incarnation = endpoint_.node().incarnation();
  while (!propose_queue_.empty()) {
    if (endpoint_.node().incarnation() != incarnation) co_return;
    if (role_ != Role::kLeading || !endpoint_.node().up()) {
      // Deposed or crashed mid-queue: abandon — submitters time out and
      // their clients retry against the new leader.
      propose_queue_.clear();
      break;
    }
    // Pace quorum rounds to journal-fsync cycles (classic group commit):
    // while the previous round's disk sync is in flight, submitters keep
    // sequencing onto the queue, so each fsync carries one big batch
    // instead of many tiny ones. No fsync in flight -> no added latency.
    while (journal_pending_ > 0) {
      co_await endpoint_.sim().Delay(sim::Us(200));
      if (endpoint_.node().incarnation() != incarnation) co_return;
    }
    if (role_ != Role::kLeading || !endpoint_.node().up()) continue;
    auto guard = co_await write_pipeline_->Acquire();
    if (endpoint_.node().incarnation() != incarnation) co_return;
    if (propose_queue_.empty()) break;
    const std::size_t n =
        std::min(propose_queue_.size(), config_.perf.max_journal_batch);
    std::vector<std::pair<Zxid, Txn>> batch(
        std::make_move_iterator(propose_queue_.begin()),
        std::make_move_iterator(propose_queue_.begin() +
                                static_cast<std::ptrdiff_t>(n)));
    propose_queue_.erase(propose_queue_.begin(),
                         propose_queue_.begin() +
                             static_cast<std::ptrdiff_t>(n));
    ++batch_rounds_;
    proposals_batched_ += n;
    const sim::SimTime wave_start = endpoint_.sim().now();
    const obs::TraceId wave_trace = batch.front().second.trace;
    // Per-follower replication bookkeeping, amortized over the batch.
    const auto peers = static_cast<sim::Duration>(config_.servers.size() - 1);
    co_await endpoint_.sim().Delay(peers * config_.perf.per_peer_cpu);

    BatchProposeMsg msg{epoch_, batch};
    const auto payload = msg.Encode();
    for (std::size_t i = 0; i < config_.servers.size(); ++i) {
      if (i == my_index_) continue;
      endpoint_.Notify(server_node(i), method::kBatchPropose, payload);
    }

    const Zxid lo = batch.front().first;
    const Zxid hi = batch.back().first;
    std::size_t total_bytes = 0;
    for (auto& [zxid, txn] : batch) {
      total_bytes += txn.EncodedSize();
      pending_txns_.emplace(zxid, std::move(txn));
      proposals_.emplace(zxid, Proposal{pending_txns_.at(zxid), {}, false,
                                        wave_start});
    }
    MaybeScheduleRetransmit();

    if (recording()) {
      // One span per quorum wave, attributed to the first txn's trace.
      // Args only when the full event log wants them (flight records are
      // POD; no arg vector on the flight-only path).
      std::vector<obs::Tracer::Arg> args;
      if (tracing()) {
        args = {{"batch", {}, static_cast<std::int64_t>(n), false},
                {"zxid_lo", {}, static_cast<std::int64_t>(lo), false},
                {"zxid_hi", {}, static_cast<std::int64_t>(hi), false}};
      }
      obs_.tracer->Complete(obs_.track, "group-commit-flush", "zab",
                            wave_start, endpoint_.sim().now() - wave_start,
                            wave_trace, std::move(args));
    }

    // Self-ack the whole run after one local group-commit fsync.
    sim::CurrentSimulationScope scope(&endpoint_.sim());
    endpoint_.sim().Spawn(
        [](ZkServer& self, Zxid lo_z, Zxid hi_z, std::size_t bytes,
           obs::TraceId tr) -> sim::Task<void> {
          co_await self.JournalAppend(hi_z, bytes, tr);
          for (auto it = self.proposals_.lower_bound(lo_z);
               it != self.proposals_.end() && it->first <= hi_z; ++it) {
            it->second.acks.insert(self.endpoint_.self());
          }
          self.TryCommitInOrder();
        }(*this, lo, hi, total_bytes, wave_trace));
  }
  flush_scheduled_ = false;
  // A submitter may have enqueued between the last drain and the flag
  // reset; make sure nothing is stranded.
  if (!propose_queue_.empty()) ScheduleProposalFlush();
}

// Lost PROPOSE/ACK messages (partitions, crashes) must not wedge the commit
// pipeline: while any proposal is outstanding, periodically re-broadcast
// the head of the queue. The timer chain self-terminates when the queue
// empties, so idle ensembles still drain the event loop.
void ZkServer::MaybeScheduleRetransmit() {
  if (retransmit_scheduled_ || proposals_.empty()) return;
  retransmit_scheduled_ = true;
  endpoint_.sim().ScheduleFn(sim::Ms(400), [this] {
    retransmit_scheduled_ = false;
    if (role_ != Role::kLeading || !endpoint_.node().up()) return;
    std::size_t sent = 0;
    for (const auto& [zxid, proposal] : proposals_) {
      ProposeMsg msg{zxid, epoch_, proposal.txn};
      const auto payload = msg.Encode();
      for (std::size_t i = 0; i < config_.servers.size(); ++i) {
        if (i == my_index_) continue;
        if (proposal.acks.count(server_node(i)) > 0) continue;
        endpoint_.Notify(server_node(i), method::kPropose, payload);
      }
      if (++sent >= 16) break;  // head of the queue commits first anyway
    }
    MaybeScheduleRetransmit();
  });
}

sim::Task<net::RpcResult> ZkServer::HandlePropose(net::NodeId from,
                                                  net::Payload req) {
  auto msg = ProposeMsg::Decode(req);
  if (!msg.ok()) co_return msg.status();
  if (msg->epoch < epoch_) co_return Status(StatusCode::kConflict, "stale");
  if (msg->epoch > epoch_) epoch_ = msg->epoch;

  // Retransmit handling: if we already journaled this zxid (or applied
  // it), just re-ack — the original ACK may have been lost.
  if (msg->zxid <= db_->last_applied() ||
      pending_txns_.count(msg->zxid) > 0) {
    endpoint_.Notify(from, method::kAckProposal, EncodeZxid(msg->zxid));
    co_return net::Payload{};
  }
  const std::size_t bytes = req.size();
  const obs::TraceId trace = msg->txn.trace;
  pending_txns_.emplace(msg->zxid, std::move(msg->txn));
  co_await endpoint_.node().Compute(config_.perf.follower_txn_cpu);
  co_await JournalAppend(msg->zxid, bytes, trace);
  endpoint_.Notify(from, method::kAckProposal, EncodeZxid(msg->zxid));
  co_return net::Payload{};
}

sim::Task<net::RpcResult> ZkServer::HandleAck(net::NodeId from,
                                              net::Payload req) {
  auto zxid = DecodeZxid(req);
  if (!zxid.ok()) co_return zxid.status();
  auto it = proposals_.find(*zxid);
  if (it != proposals_.end()) {
    it->second.acks.insert(from);
    TryCommitInOrder();
  }
  co_return net::Payload{};
}

sim::Task<net::RpcResult> ZkServer::HandleBatchPropose(net::NodeId from,
                                                       net::Payload req) {
  auto msg = BatchProposeMsg::Decode(req);
  if (!msg.ok()) co_return msg.status();
  if (msg->entries.empty()) co_return net::Payload{};
  if (msg->epoch < epoch_) co_return Status(StatusCode::kConflict, "stale");
  if (msg->epoch > epoch_) epoch_ = msg->epoch;

  const Zxid lo = msg->entries.front().first;
  const Zxid hi = msg->entries.back().first;
  const obs::TraceId trace = msg->entries.front().second.trace;
  std::size_t fresh = 0;
  for (auto& [zxid, txn] : msg->entries) {
    // Retransmit handling: anything already journaled or applied is just
    // re-acked by the range ACK below.
    if (zxid <= db_->last_applied() || pending_txns_.count(zxid) > 0) {
      continue;
    }
    pending_txns_.emplace(zxid, std::move(txn));
    ++fresh;
  }
  if (fresh > 0) {
    co_await endpoint_.node().Compute(
        config_.perf.follower_txn_cpu * static_cast<sim::Duration>(fresh));
    // One journal entry for the run: a single group-commit fsync covers
    // the whole batch.
    co_await JournalAppend(hi, req.size(), trace);
  }
  // Cumulative ACK: every zxid in [lo, hi] is durable here. The range is
  // exact (never beyond what this message carried), so a lost earlier
  // batch can not be acked by accident.
  endpoint_.Notify(from, method::kBatchAck, EncodeZxidRange(lo, hi));
  co_return net::Payload{};
}

sim::Task<net::RpcResult> ZkServer::HandleBatchAck(net::NodeId from,
                                                   net::Payload req) {
  wire::BufferReader r(req);
  auto lo = r.ReadI64();
  if (!lo.ok()) co_return lo.status();
  auto hi = r.ReadI64();
  if (!hi.ok()) co_return hi.status();
  bool any = false;
  for (auto it = proposals_.lower_bound(*lo);
       it != proposals_.end() && it->first <= *hi; ++it) {
    it->second.acks.insert(from);
    any = true;
  }
  if (any) TryCommitInOrder();
  co_return net::Payload{};
}

void ZkServer::TryCommitInOrder() {
  // Commit strictly in zxid order: the head proposal must reach quorum
  // before anything behind it commits.
  bool committed_any = false;
  while (!proposals_.empty()) {
    auto it = proposals_.begin();
    // +1: the leader's own durability is counted by its self-ack entry, so
    // quorum() includes it naturally.
    if (it->second.acks.size() < quorum()) break;
    const Zxid zxid = it->first;
    if (recording() && it->second.proposed_at > 0) {
      // PROPOSE -> quorum of ACKs, on the leader's track.
      std::vector<obs::Tracer::Arg> args;
      if (tracing()) {
        args = {{"zxid", {}, static_cast<std::int64_t>(zxid), false},
                {"acks", {},
                 static_cast<std::int64_t>(it->second.acks.size()), false}};
      }
      obs_.tracer->Complete(obs_.track, "quorum-round", "zab",
                            it->second.proposed_at,
                            endpoint_.sim().now() - it->second.proposed_at,
                            it->second.txn.trace, std::move(args));
    }
    proposals_.erase(it);
    last_committed_ = zxid;
    ++writes_committed_;
    committed_any = true;
    if (!config_.group_commit) BroadcastCommit(zxid);
    committed_not_applied_.insert(zxid);
    ApplyCommitted();
  }
  // Group commit: one COMMIT watermark for the whole quorumed run (the
  // receiver treats it cumulatively).
  if (config_.group_commit && committed_any) BroadcastCommit(last_committed_);
}

void ZkServer::AppendCommittedLog(Zxid zxid, Txn txn) {
  committed_log_.emplace_back(zxid, std::move(txn));
  if (committed_log_.size() > config_.max_log_entries) {
    log_truncated_upto_ = committed_log_.front().first;
    committed_log_.pop_front();  // older followers resync via snapshot
  }
}

void ZkServer::BroadcastCommit(Zxid zxid) {
  const auto payload = EncodeZxid(zxid);
  for (std::size_t i = 0; i < config_.servers.size(); ++i) {
    if (i == my_index_) continue;
    endpoint_.Notify(server_node(i), method::kCommit, payload);
  }
}

sim::Task<net::RpcResult> ZkServer::HandleCommit(net::NodeId /*from*/,
                                                 net::Payload req) {
  auto zxid = DecodeZxid(req);
  if (!zxid.ok()) co_return zxid.status();
  if (*zxid > last_committed_) last_committed_ = *zxid;
  // Cumulative: the leader commits in zxid order, so a COMMIT for z means
  // every pending proposal <= z is committed too (this is what lets the
  // group-commit leader send one watermark per batch).
  for (auto it = pending_txns_.begin();
       it != pending_txns_.end() && it->first <= *zxid; ++it) {
    committed_not_applied_.insert(it->first);
  }
  committed_not_applied_.insert(*zxid);
  co_await endpoint_.node().Compute(config_.perf.apply_cpu);
  ApplyCommitted();
  co_return net::Payload{};
}

void ZkServer::ApplyCommitted() {
  while (!committed_not_applied_.empty()) {
    const Zxid zxid = *committed_not_applied_.begin();
    if (zxid <= db_->last_applied()) {
      committed_not_applied_.erase(committed_not_applied_.begin());
      continue;  // already covered by a snapshot sync
    }
    auto it = pending_txns_.find(zxid);
    if (it == pending_txns_.end()) break;  // proposal not yet received
    AppliedTxn applied =
        db_->Apply(it->second, zxid, endpoint_.sim().now());
    FireTriggers(applied.triggers);
    // Every replica retains the committed tail: any of them may be elected
    // leader later and must be able to sync lagging followers.
    AppendCommittedLog(zxid, std::move(it->second));
    if (result_wanted_.count(zxid) > 0) {
      ClientResponse resp;
      resp.result = std::move(applied.result);
      resp.multi_results = std::move(applied.multi_results);
      local_results_[zxid] = std::move(resp);
      result_wanted_.erase(zxid);
    }
    pending_txns_.erase(it);
    committed_not_applied_.erase(committed_not_applied_.begin());
  }
  CompleteApplyWaiters();
}

sim::Task<bool> ZkServer::WaitApplied(Zxid zxid) {
  if (db_->last_applied() >= zxid) co_return true;
  auto [future, promise] = sim::MakeFuture<bool>(endpoint_.sim());
  apply_waiters_[zxid].push_back(promise);
  // Give-up timer: a leader change can abandon the proposal; never strand
  // the waiter (the client will see kUnavailable and retry).
  endpoint_.sim().ScheduleFn(sim::Sec(3), [promise]() mutable {
    promise.Set(false);
  });
  co_return co_await std::move(future);
}

void ZkServer::CompleteApplyWaiters() {
  const Zxid applied = db_->last_applied();
  while (!apply_waiters_.empty() && apply_waiters_.begin()->first <= applied) {
    for (auto& promise : apply_waiters_.begin()->second) promise.Set(true);
    apply_waiters_.erase(apply_waiters_.begin());
  }
}

// ------------------------------------------------------------- journal ----

sim::Task<void> ZkServer::JournalAppend(Zxid zxid, std::size_t bytes,
                                        obs::TraceId trace) {
  auto [future, promise] = sim::MakeFuture<bool>(endpoint_.sim());
  ++journal_pending_;
  g_journal_pending_.Set(static_cast<std::int64_t>(journal_pending_));
  journal_mb_->Send(JournalEntry{zxid, bytes, trace, promise});
  co_await std::move(future);
}

sim::Task<void> ZkServer::JournalLoop() {
  for (;;) {
    auto first = co_await journal_mb_->Recv();
    if (!first.has_value()) co_return;
    prof::ProfScope node_scope(obs_.prof_name, prof::FrameKind::kNode);
    prof::ProfScope fsync_scope("fsync-batch", prof::FrameKind::kComponent);
    std::vector<JournalEntry> batch;
    batch.push_back(std::move(*first));
    while (journal_mb_->size() > 0 &&
           batch.size() < config_.perf.max_journal_batch) {
      auto more = co_await journal_mb_->Recv();
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    std::size_t total = 0;
    for (const auto& e : batch) total += e.bytes;
    h_fsync_batch_.Record(static_cast<std::int64_t>(batch.size()));
    const sim::SimTime fsync_start = endpoint_.sim().now();
    co_await endpoint_.node().DiskWrite(total);  // one group-commit fsync
    const sim::SimTime fsync_end = endpoint_.sim().now();
    if (recording()) {
      // One span per batched entry — same interval, each entry's own trace
      // id — so the decomposition charges the shared fsync to every op it
      // made durable, not just the first in the batch.
      for (const auto& e : batch) {
        std::vector<obs::Tracer::Arg> args;
        if (tracing()) {
          args = {{"batch", {}, static_cast<std::int64_t>(batch.size()),
                   false},
                  {"bytes", {}, static_cast<std::int64_t>(total), false}};
        }
        obs_.tracer->Complete(obs_.track, "fsync-batch", "journal",
                              fsync_start, fsync_end - fsync_start, e.trace,
                              std::move(args));
      }
    }
    if (obs_.incidents != nullptr) {
      obs_.incidents->RecordFsync(obs_.track, fsync_end - fsync_start,
                                  static_cast<std::int64_t>(batch.size()));
    }
    for (auto& e : batch) {
      if (journal_pending_ > 0) --journal_pending_;
      e.done.Set(true);
    }
    g_journal_pending_.Set(static_cast<std::int64_t>(journal_pending_));
  }
}

// ------------------------------------------- failure detection & votes ----

sim::Task<void> ZkServer::LeaderPingLoop(std::int64_t epoch_at_start) {
  while (role_ == Role::kLeading && epoch_ == epoch_at_start) {
    VoteMsg ping{election_round_, epoch_, last_committed_, my_index_,
                 my_index_};
    for (std::size_t i = 0; i < config_.servers.size(); ++i) {
      if (i == my_index_) continue;
      endpoint_.Notify(server_node(i), method::kPing, ping.Encode());
    }
    co_await endpoint_.sim().Delay(config_.ping_interval);
  }
}

sim::Task<net::RpcResult> ZkServer::HandlePing(net::NodeId /*from*/,
                                               net::Payload req) {
  auto msg = VoteMsg::Decode(req);
  if (!msg.ok()) co_return msg.status();
  if (msg->epoch < epoch_) co_return net::Payload{};  // stale leader
  if (role_ == Role::kLeading) {
    if (msg->epoch > epoch_ ||
        (msg->epoch == epoch_ && msg->candidate != my_index_)) {
      // A newer leader exists (we were partitioned away and deposed):
      // step down and fall through to follow it.
      DUFS_LOG(Info) << "server " << my_index_ << " deposed by epoch "
                     << msg->epoch;
      role_ = Role::kFollowing;
    } else {
      co_return net::Payload{};
    }
  }
  const bool new_leader = leader_index_ != msg->candidate;
  const bool was_looking = role_ == Role::kLooking;
  epoch_ = msg->epoch;
  leader_index_ = msg->candidate;
  last_ping_ = endpoint_.sim().now();
  role_ = Role::kFollowing;
  // Catch up whenever behind (covers sync attempts that failed during a
  // partition): the ping carries the leader's last committed zxid.
  const bool behind = msg->zxid > db_->last_applied();
  if ((was_looking || new_leader || behind) && !syncing_) {
    syncing_ = true;
    sim::CurrentSimulationScope scope(&endpoint_.sim());
    endpoint_.sim().Spawn(SyncWithLeader(leader_index_));
  }
  co_return net::Payload{};
}

sim::Task<net::RpcResult> ZkServer::HandleSessionPing(net::NodeId /*from*/,
                                                      net::Payload req) {
  wire::BufferReader r(req);
  auto session = r.ReadU64();
  if (!session.ok()) co_return session.status();
  session_activity_[*session] = endpoint_.sim().now();
  co_return net::Payload{};
}

// Expires silent sessions attached to this server with a replicated
// CloseSession (which deletes the session's ephemerals on every replica).
sim::Task<void> ZkServer::SessionExpiryLoop() {
  const std::uint64_t incarnation = endpoint_.node().incarnation();
  for (;;) {
    co_await endpoint_.sim().Delay(config_.session_timeout / 2);
    if (endpoint_.node().incarnation() != incarnation) co_return;
    if (!endpoint_.node().up()) continue;
    const sim::SimTime now = endpoint_.sim().now();
    std::vector<SessionId> expired;
    for (const auto& [session, last] : session_activity_) {
      if (now - last > config_.session_timeout &&
          db_->SessionExists(session)) {
        expired.push_back(session);
      }
    }
    // `expired` was filled in session_activity_'s hash order; sort so the
    // CloseSession txn sequence is identical across stdlibs.
    std::sort(expired.begin(), expired.end());
    for (SessionId session : expired) {
      session_activity_.erase(session);
      Txn txn;
      txn.session = session;
      txn.op.type = OpType::kCloseSession;
      DUFS_LOG(Info) << "expiring session " << session;
      (void)co_await SubmitWrite(std::move(txn));
    }
  }
}

sim::Task<void> ZkServer::FollowerWatchdog() {
  const std::uint64_t incarnation = endpoint_.node().incarnation();
  for (;;) {
    co_await endpoint_.sim().Delay(config_.election_timeout / 2);
    if (endpoint_.node().incarnation() != incarnation) co_return;
    if (!endpoint_.node().up()) continue;
    if (role_ == Role::kLeading) continue;
    if (role_ == Role::kFollowing &&
        endpoint_.sim().now() - last_ping_ <= config_.election_timeout) {
      continue;
    }
    if (role_ == Role::kFollowing) StartElection();
    // kLooking: keep re-broadcasting votes until the ensemble converges.
    if (role_ == Role::kLooking) {
      ++election_round_;
      votes_received_.clear();
      my_vote_ = Vote{epoch_, db_->last_applied(), my_index_};
      VoteMsg msg{election_round_, my_vote_.epoch, my_vote_.zxid,
                  my_vote_.candidate, my_index_};
      for (std::size_t i = 0; i < config_.servers.size(); ++i) {
        if (i == my_index_) continue;
        endpoint_.Notify(server_node(i), method::kElectionVote, msg.Encode());
      }
      MaybeDecideElection();
    }
  }
}

void ZkServer::StartElection() {
  role_ = Role::kLooking;
  ++election_round_;
  votes_received_.clear();
  my_vote_ = Vote{epoch_, db_->last_applied(), my_index_};
  VoteMsg msg{election_round_, my_vote_.epoch, my_vote_.zxid,
              my_vote_.candidate, my_index_};
  for (std::size_t i = 0; i < config_.servers.size(); ++i) {
    if (i == my_index_) continue;
    endpoint_.Notify(server_node(i), method::kElectionVote, msg.Encode());
  }
  MaybeDecideElection();
}

sim::Task<net::RpcResult> ZkServer::HandleElectionVote(net::NodeId from,
                                                       net::Payload req) {
  auto msg = VoteMsg::Decode(req);
  if (!msg.ok()) co_return msg.status();

  if (role_ != Role::kLooking) {
    // Tell the looking peer who leads now.
    VoteMsg reply{msg->round, epoch_, db_->last_applied(), leader_index_,
                  my_index_};
    endpoint_.Notify(from, method::kElectionVote, reply.Encode());
    co_return net::Payload{};
  }

  Vote vote{msg->epoch, msg->zxid, msg->candidate};
  votes_received_[static_cast<std::size_t>(msg->from)] = vote;
  if (vote > my_vote_) {
    my_vote_ = vote;
    VoteMsg rebroadcast{election_round_, my_vote_.epoch, my_vote_.zxid,
                        my_vote_.candidate, my_index_};
    for (std::size_t i = 0; i < config_.servers.size(); ++i) {
      if (i == my_index_) continue;
      endpoint_.Notify(server_node(i), method::kElectionVote,
                       rebroadcast.Encode());
    }
  }
  MaybeDecideElection();
  co_return net::Payload{};
}

void ZkServer::MaybeDecideElection() {
  if (role_ != Role::kLooking) return;
  std::map<std::size_t, std::size_t> tally;
  ++tally[my_vote_.candidate];
  for (const auto& [from, vote] : votes_received_) ++tally[vote.candidate];
  for (const auto& [candidate, count] : tally) {
    if (count < quorum()) continue;
    if (candidate == my_index_) {
      sim::CurrentSimulationScope scope(&endpoint_.sim());
      endpoint_.sim().Spawn(BecomeLeader());
    } else {
      role_ = Role::kFollowing;
      leader_index_ = candidate;
      last_ping_ = endpoint_.sim().now();
      sim::CurrentSimulationScope scope(&endpoint_.sim());
      endpoint_.sim().Spawn(SyncWithLeader(candidate));
    }
    return;
  }
}

sim::Task<void> ZkServer::BecomeLeader() {
  role_ = Role::kLeading;
  leader_index_ = my_index_;
  epoch_ = std::max<std::int64_t>(epoch_, db_->last_applied() >> 40) + 1;
  zxid_counter_ = 0;
  // Abandon proposals from the previous epoch: their clients time out and
  // retry. Committed history is preserved.
  proposals_.clear();
  propose_queue_.clear();
  DUFS_LOG(Info) << "server " << my_index_ << " leading epoch " << epoch_;
  if (obs_.incidents != nullptr) {
    obs_.incidents->RecordLeaderChange(obs_.track, epoch_);
  }
  if (config_.enable_failure_detection) {
    sim::CurrentSimulationScope scope(&endpoint_.sim());
    endpoint_.sim().Spawn(LeaderPingLoop(epoch_));
  }
  co_return;
}

sim::Task<void> ZkServer::SyncWithLeader(std::size_t leader_idx) {
  struct ClearFlag {
    ZkServer* self;
    ~ClearFlag() { self->syncing_ = false; }
  } clear{this};
  syncing_ = true;
  auto result = co_await endpoint_.Call(
      server_node(leader_idx), method::kFollowerInfo,
      EncodeZxid(db_->last_applied()), /*timeout=*/sim::Sec(1));
  if (!result.ok()) co_return;  // the watchdog retries
  wire::BufferReader r(*result);
  auto epoch = r.ReadI64();
  if (!epoch.ok()) co_return;
  auto is_snapshot = r.ReadBool();
  if (!is_snapshot.ok()) co_return;
  if (*is_snapshot) {
    auto blob = r.ReadBytes();
    if (!blob.ok()) co_return;
    co_await endpoint_.node().DiskWrite(blob->size());
    auto db = Database::Restore(*blob);
    if (!db.ok()) co_return;
    db_ = std::move(*db);
    epoch_ = std::max(epoch_, *epoch);
    last_committed_ = std::max(last_committed_, db_->last_applied());
    CompleteApplyWaiters();
    co_return;
  }
  auto count = r.ReadVarint();
  if (!count.ok()) co_return;
  if (*count > 0) co_await endpoint_.node().DiskWrite(result->size());
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto zxid = r.ReadI64();
    if (!zxid.ok()) co_return;
    auto txn = Txn::Decode(r);
    if (!txn.ok()) co_return;
    if (*zxid <= db_->last_applied()) continue;
    AppliedTxn applied = db_->Apply(*txn, *zxid, endpoint_.sim().now());
    FireTriggers(applied.triggers);
    AppendCommittedLog(*zxid, std::move(*txn));
  }
  epoch_ = std::max(epoch_, *epoch);
  if (db_->last_applied() > last_committed_) {
    last_committed_ = db_->last_applied();
  }
  CompleteApplyWaiters();
}

sim::Task<net::RpcResult> ZkServer::HandleFollowerInfo(net::NodeId /*from*/,
                                                       net::Payload req) {
  auto since = DecodeZxid(req);
  if (!since.ok()) co_return since.status();
  if (role_ != Role::kLeading) {
    co_return Status(StatusCode::kUnavailable, "not the leader");
  }
  wire::BufferWriter w;
  w.WriteI64(epoch_);
  // If the follower predates the retained log tail, ship a full snapshot
  // instead of a diff.
  const bool need_snapshot = *since < log_truncated_upto_;
  w.WriteBool(need_snapshot);
  if (need_snapshot) {
    w.WriteBytes(db_->Snapshot());
    co_return w.Take();
  }
  std::vector<const std::pair<Zxid, Txn>*> missing;
  for (const auto& entry : committed_log_) {
    if (entry.first > *since) missing.push_back(&entry);
  }
  w.WriteVarint(missing.size());
  for (const auto* entry : missing) {
    w.WriteI64(entry->first);
    entry->second.Encode(w);
  }
  co_return w.Take();
}

}  // namespace dufs::zk
