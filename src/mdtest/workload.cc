#include "mdtest/workload.h"

#include <cstdio>

namespace dufs::mdtest {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kDirCreate: return "dir-create";
    case Phase::kDirStat: return "dir-stat";
    case Phase::kDirRemove: return "dir-remove";
    case Phase::kFileCreate: return "file-create";
    case Phase::kFileStat: return "file-stat";
    case Phase::kFileRemove: return "file-remove";
  }
  return "?";
}

MdtestRunner::MdtestRunner(Testbed& testbed, MdtestConfig config)
    : testbed_(testbed), config_(std::move(config)) {}

std::string MdtestRunner::ProcDir(std::size_t proc) const {
  return config_.root + "/p" + std::to_string(proc);
}

std::string MdtestRunner::ItemPath(std::size_t proc, Phase phase,
                                   std::size_t item) const {
  const bool is_dir = phase == Phase::kDirCreate || phase == Phase::kDirStat ||
                      phase == Phase::kDirRemove;
  return ProcDir(proc) + "/t" +
         std::to_string(item % static_cast<std::size_t>(config_.fanout)) +
         (is_dir ? "/dir." : "/file.") + std::to_string(item);
}

MdtestRunner::Ops MdtestRunner::OpsFor(Target target, std::size_t node) {
  Ops ops;
  if (target == Target::kDufs) {
    vfs::FuseMount* mount = testbed_.client(node).fuse.get();
    ops.mkdir = [mount](std::string path) -> sim::Task<Status> {
      co_return co_await mount->Mkdir(std::move(path));
    };
    ops.rmdir = [mount](std::string path) -> sim::Task<Status> {
      co_return co_await mount->Rmdir(std::move(path));
    };
    ops.stat = [mount](std::string path) -> sim::Task<Status> {
      co_return (co_await mount->Stat(std::move(path))).status();
    };
    ops.create = [mount](std::string path) -> sim::Task<Status> {
      co_return co_await mount->Mknod(std::move(path));
    };
    ops.unlink = [mount](std::string path) -> sim::Task<Status> {
      co_return co_await mount->Unlink(std::move(path));
    };
  } else {
    vfs::FileSystem* fs = &testbed_.baseline(node);
    ops.mkdir = [fs](std::string path) -> sim::Task<Status> {
      co_return co_await fs->Mkdir(std::move(path), vfs::kDefaultDirMode);
    };
    ops.rmdir = [fs](std::string path) -> sim::Task<Status> {
      co_return co_await fs->Rmdir(std::move(path));
    };
    ops.stat = [fs](std::string path) -> sim::Task<Status> {
      co_return (co_await fs->GetAttr(std::move(path))).status();
    };
    ops.create = [fs](std::string path) -> sim::Task<Status> {
      co_return (co_await fs->Create(std::move(path), vfs::kDefaultFileMode))
          .status();
    };
    ops.unlink = [fs](std::string path) -> sim::Task<Status> {
      co_return co_await fs->Unlink(std::move(path));
    };
  }
  return ops;
}

std::vector<PhaseResult> MdtestRunner::Run(Target target,
                                           std::vector<Phase> phases) {
  auto& sim = testbed_.sim();
  const std::size_t procs = config_.processes;
  const std::size_t nodes = testbed_.client_count();

  // Untimed setup: the directory skeleton every process works in.
  sim::RunTask(sim, [](MdtestRunner& self, Target tgt, std::size_t n_procs,
                       std::size_t n_nodes) -> sim::Task<void> {
    auto root_ops = self.OpsFor(tgt, 0);
    (void)co_await root_ops.mkdir(self.config_.root);
    for (std::size_t p = 0; p < n_procs; ++p) {
      auto ops = self.OpsFor(tgt, p % n_nodes);
      (void)co_await ops.mkdir(self.ProcDir(p));
      for (int t = 0; t < self.config_.fanout; ++t) {
        (void)co_await ops.mkdir(self.ProcDir(p) + "/t" + std::to_string(t));
      }
    }
  }(*this, target, procs, nodes));

  std::vector<PhaseResult> results;
  for (Phase phase : phases) {
    PhaseResult result;
    result.phase = phase;

    struct ProcStats {
      std::uint64_t errors = 0;
      LatencyHistogram latency;
    };
    std::vector<ProcStats> proc_stats(procs);
    sim::SimTime t_start = 0, t_end = 0;

    sim::RunTask(sim, [](MdtestRunner& self, Target tgt, Phase ph,
                         std::vector<ProcStats>& stats, sim::SimTime& start,
                         sim::SimTime& end) -> sim::Task<void> {
      auto& simulation = self.testbed_.sim();
      const std::size_t n_procs = self.config_.processes;
      const std::size_t n_nodes = self.testbed_.client_count();
      sim::Barrier begin(simulation, n_procs + 1);
      sim::Barrier done(simulation, n_procs + 1);
      for (std::size_t p = 0; p < n_procs; ++p) {
        simulation.Spawn([](MdtestRunner& self2, Target tgt2, Phase ph2,
                            std::size_t proc, std::size_t node,
                            ProcStats& st, sim::Barrier b0,
                            sim::Barrier b1) -> sim::Task<void> {
          auto ops = self2.OpsFor(tgt2, node);
          auto& s = self2.testbed_.sim();
          co_await b0.Arrive();
          for (std::size_t i = 0; i < self2.config_.items_per_proc; ++i) {
            const std::string path = self2.ItemPath(proc, ph2, i);
            const sim::SimTime op_start = s.now();
            Status status = Status::Ok();
            switch (ph2) {
              case Phase::kDirCreate:
                status = co_await ops.mkdir(path);
                break;
              case Phase::kDirStat:
              case Phase::kFileStat:
                status = co_await ops.stat(path);
                break;
              case Phase::kDirRemove:
                status = co_await ops.rmdir(path);
                break;
              case Phase::kFileCreate:
                status = co_await ops.create(path);
                break;
              case Phase::kFileRemove:
                status = co_await ops.unlink(path);
                break;
            }
            if (!status.ok()) ++st.errors;
            st.latency.Add(s.now() - op_start);
          }
          co_await b1.Arrive();
        }(self, tgt, ph, p, p % n_nodes, stats[p], begin, done));
      }
      co_await begin.Arrive();
      start = simulation.now();
      co_await done.Arrive();
      end = simulation.now();
    }(*this, target, phase, proc_stats, t_start, t_end));

    result.ops = procs * config_.items_per_proc;
    for (const auto& st : proc_stats) {
      result.errors += st.errors;
      result.latency.Merge(st.latency);
    }
    result.seconds =
        static_cast<double>(t_end - t_start) / static_cast<double>(sim::kSecond);
    result.ops_per_sec =
        result.seconds > 0 ? static_cast<double>(result.ops) / result.seconds
                           : 0;
    results.push_back(std::move(result));
  }
  return results;
}

std::string MdtestRunner::FormatRow(const PhaseResult& result) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-12s %10.1f ops/s  (ops=%llu errs=%llu %s)",
                std::string(PhaseName(result.phase)).c_str(),
                result.ops_per_sec,
                static_cast<unsigned long long>(result.ops),
                static_cast<unsigned long long>(result.errors),
                result.latency.Summary().c_str());
  return buf;
}

}  // namespace dufs::mdtest
