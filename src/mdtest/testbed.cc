#include "mdtest/testbed.h"

namespace dufs::mdtest {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  sim_ = std::make_unique<sim::Simulation>(config_.seed);
  net_ = std::make_unique<net::Network>(*sim_);

  // --- observability -------------------------------------------------------
  // Metrics and the flight recorder are always on (handle updates and ring
  // admissions are cheap); the full span log only when asked — it allocates
  // one Event per span.
  obs_.tracer().Bind(sim_.get());
  obs_.tracer().SetEnabled(config_.enable_trace);
  obs_.BindIncidents(sim_.get());
  net_->AttachObs(&obs_);

  // --- coordination service ----------------------------------------------
  // The paper co-locates ZooKeeper servers with client nodes; modeling them
  // as separate nodes on the same switch keeps NIC accounting explicit.
  for (std::size_t i = 0; i < config_.zk_servers; ++i) {
    zk_nodes_.push_back(net_->AddNode("zk" + std::to_string(i)));
  }
  zk_config_.servers = zk_nodes_;
  zk_config_.perf = config_.zk_perf;
  zk_config_.group_commit = config_.zk_group_commit;
  zk_config_.enable_failure_detection = config_.zk_failure_detection;
  for (std::size_t i = 0; i < config_.zk_servers; ++i) {
    zk_endpoints_.push_back(
        std::make_unique<net::RpcEndpoint>(*net_, zk_nodes_[i]));
    zk_servers_.push_back(
        std::make_unique<zk::ZkServer>(*zk_endpoints_[i], zk_config_, i));
    zk_servers_[i]->AttachObs(obs_.Node("zk" + std::to_string(i)));
    zk_servers_[i]->Start();
  }

  // --- back-end filesystem instances --------------------------------------
  for (std::size_t i = 0; i < config_.backend_instances; ++i) {
    const std::string name = "fs" + std::to_string(i);
    switch (config_.backend) {
      case BackendKind::kLustre:
        lustre_.push_back(std::make_unique<pfs::LustreInstance>(
            *net_, name, config_.oss_per_lustre, config_.lustre_perf));
        break;
      case BackendKind::kPvfs:
        pvfs_.push_back(std::make_unique<pfs::PvfsInstance>(
            *net_, name, config_.servers_per_pvfs, config_.pvfs_perf));
        break;
      case BackendKind::kMemFs:
        memfs_.push_back(std::make_unique<vfs::MemFs>(*sim_, name));
        break;
    }
  }

  // --- client nodes --------------------------------------------------------
  for (std::size_t i = 0; i < config_.client_nodes; ++i) {
    auto client = std::make_unique<ClientNode>();
    client->node = net_->AddNode("client" + std::to_string(i));
    client->endpoint =
        std::make_unique<net::RpcEndpoint>(*net_, client->node);
    // All of this node's components (ZK session, DUFS, backend stubs) share
    // one metric scope and one trace track.
    const obs::NodeObs node_obs = obs_.Node("client" + std::to_string(i));

    zk::ZkClientConfig zkc;
    zkc.servers = zk_nodes_;
    zkc.attach_index = i;  // sessions pinned round-robin, as in the paper
    client->zk = std::make_unique<zk::ZkClient>(*client->endpoint, zkc);
    client->zk->AttachObs(node_obs);

    std::vector<vfs::FileSystem*> backends;
    for (std::size_t b = 0; b < config_.backend_instances; ++b) {
      switch (config_.backend) {
        case BackendKind::kLustre: {
          auto mount = std::make_unique<pfs::LustreClient>(*client->endpoint,
                                                           *lustre_[b]);
          mount->AttachObs(node_obs);
          client->backend_mounts.push_back(std::move(mount));
          break;
        }
        case BackendKind::kPvfs: {
          auto mount = std::make_unique<pfs::PvfsClient>(*client->endpoint,
                                                         *pvfs_[b]);
          mount->AttachObs(node_obs);
          client->backend_mounts.push_back(std::move(mount));
          break;
        }
        case BackendKind::kMemFs: {
          // MemFs is process-local; every node shares the instance (a stand-
          // in used only by correctness tests).
          struct SharedMemFs : vfs::FileSystem {
            explicit SharedMemFs(vfs::MemFs& fs) : fs_(fs) {}
            vfs::MemFs& fs_;
            std::string name() const override { return fs_.name(); }
            sim::Task<Result<vfs::FileAttr>> GetAttr(std::string p) override {
              co_return co_await fs_.GetAttr(std::move(p));
            }
            sim::Task<Status> Mkdir(std::string p, vfs::Mode m) override {
              co_return co_await fs_.Mkdir(std::move(p), m);
            }
            sim::Task<Status> Rmdir(std::string p) override {
              co_return co_await fs_.Rmdir(std::move(p));
            }
            sim::Task<Result<vfs::FileAttr>> Create(std::string p,
                                                    vfs::Mode m) override {
              co_return co_await fs_.Create(std::move(p), m);
            }
            sim::Task<Status> Unlink(std::string p) override {
              co_return co_await fs_.Unlink(std::move(p));
            }
            sim::Task<Result<std::vector<vfs::DirEntry>>> ReadDir(
                std::string p) override {
              co_return co_await fs_.ReadDir(std::move(p));
            }
            sim::Task<Status> Rename(std::string f, std::string t) override {
              co_return co_await fs_.Rename(std::move(f), std::move(t));
            }
            sim::Task<Status> Chmod(std::string p, vfs::Mode m) override {
              co_return co_await fs_.Chmod(std::move(p), m);
            }
            sim::Task<Status> Utimens(std::string p, std::int64_t a,
                                      std::int64_t mt) override {
              co_return co_await fs_.Utimens(std::move(p), a, mt);
            }
            sim::Task<Status> Truncate(std::string p,
                                       std::uint64_t s) override {
              co_return co_await fs_.Truncate(std::move(p), s);
            }
            sim::Task<Status> Symlink(std::string t, std::string l) override {
              co_return co_await fs_.Symlink(std::move(t), std::move(l));
            }
            sim::Task<Result<std::string>> ReadLink(std::string p) override {
              co_return co_await fs_.ReadLink(std::move(p));
            }
            sim::Task<Status> Access(std::string p, vfs::Mode m) override {
              co_return co_await fs_.Access(std::move(p), m);
            }
            sim::Task<Result<vfs::FileHandle>> Open(
                std::string p, std::uint32_t f) override {
              co_return co_await fs_.Open(std::move(p), f);
            }
            sim::Task<Status> Release(vfs::FileHandle h) override {
              co_return co_await fs_.Release(h);
            }
            sim::Task<Result<vfs::Bytes>> Read(vfs::FileHandle h,
                                               std::uint64_t o,
                                               std::uint64_t l) override {
              co_return co_await fs_.Read(h, o, l);
            }
            sim::Task<Result<std::uint64_t>> Write(vfs::FileHandle h,
                                                   std::uint64_t o,
                                                   vfs::Bytes d) override {
              co_return co_await fs_.Write(h, o, std::move(d));
            }
            sim::Task<Result<vfs::FsStats>> StatFs() override {
              co_return co_await fs_.StatFs();
            }
          };
          client->backend_mounts.push_back(
              std::make_unique<SharedMemFs>(*memfs_[b]));
          break;
        }
      }
    }
    for (auto& mount : client->backend_mounts) {
      backends.push_back(mount.get());
    }

    core::DufsConfig dufs_config = config_.dufs;
    dufs_config.placement = config_.placement;
    client->dufs = std::make_unique<core::DufsClient>(
        *client->zk, std::move(backends), dufs_config);
    client->dufs->AttachObs(node_obs);
    client->fuse = std::make_unique<vfs::FuseMount>(
        net_->node(client->node), *client->dufs, config_.fuse);
    clients_.push_back(std::move(client));
  }
}

Testbed::~Testbed() {
  // Reclaim suspended coroutines before servers/endpoints are destroyed.
  sim_->Shutdown();
}

void Testbed::MountAll() {
  sim::RunTask(*sim_, [](Testbed& tb) -> sim::Task<void> {
    for (std::size_t i = 0; i < tb.client_count(); ++i) {
      auto st = co_await tb.client(i).dufs->Mount();
      DUFS_CHECK(st.ok());
    }
    // mkfs-style one-time preparation of the static FID hierarchy
    // (paper §IV-G); the other clients just learn that it exists.
    auto st = co_await tb.client(0).dufs->FormatBackends();
    DUFS_CHECK(st.ok());
    for (std::size_t i = 1; i < tb.client_count(); ++i) {
      tb.client(i).dufs->AssumeFormatted();
    }
  }(*this));
}

void Testbed::StartTimeline(sim::Duration interval) {
  timeline_.Stop();
  timeline_.set_interval(interval);
  timeline_.WatchAllGauges(obs_.metrics());
  timeline_.Start(*sim_);
}

std::size_t Testbed::ZkMemoryBytes() const {
  std::size_t total = 0;
  for (const auto& server : zk_servers_) {
    total += server->db().EstimateMemoryBytes();
  }
  return total;
}

}  // namespace dufs::mdtest
