// One-stop cluster builder reproducing the paper's experimental setup
// (§V): a set of client nodes (each running a DUFS client + FUSE mount and
// co-located with the ZooKeeper ensemble clients), N back-end parallel
// filesystem instances (Lustre or PVFS, each with its own servers), and the
// ZooKeeper ensemble. Used by integration tests, the mdtest harness, every
// bench, and the examples.
#pragma once

#include <memory>
#include <vector>

#include "core/dufs_client.h"
#include "net/rpc.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "pfs/lustre.h"
#include "pfs/pvfs.h"
#include "vfs/fuse_mount.h"
#include "vfs/memfs.h"
#include "zk/client.h"
#include "zk/server.h"

namespace dufs::mdtest {

enum class BackendKind { kMemFs, kLustre, kPvfs };

struct TestbedConfig {
  std::uint64_t seed = 1;
  std::size_t zk_servers = 8;       // the paper's default ensemble
  std::size_t client_nodes = 8;     // the paper's 8 client nodes
  BackendKind backend = BackendKind::kLustre;
  std::size_t backend_instances = 2;  // physical mounts DUFS merges
  std::size_t oss_per_lustre = 2;
  std::size_t servers_per_pvfs = 2;
  std::string placement = "md5-mod-n";
  // Per-client DUFS knobs (metadata cache, fan-out); `placement` above
  // overrides `dufs.placement` for backward compatibility.
  core::DufsConfig dufs{};
  bool zk_failure_detection = false;
  bool zk_group_commit = false;  // leader group commit (metadata fast path)
  // Record trace spans (op → zk-rpc → quorum-round → fsync-batch). Metrics
  // counters/histograms are always collected; only span recording is gated
  // (it allocates per event).
  bool enable_trace = false;
  zk::ZkPerfModel zk_perf{};
  pfs::LustrePerfModel lustre_perf{};
  pfs::PvfsPerfModel pvfs_perf{};
  vfs::FuseConfig fuse{};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulation& sim() { return *sim_; }
  net::Network& net() { return *net_; }
  const TestbedConfig& config() const { return config_; }

  // Cluster-wide metrics registry + tracer. Every node (ZK servers, clients,
  // NICs) registers its scope here; snapshot with obs().metrics().ToJson()
  // or export spans with obs().tracer().WriteChromeJson(path).
  obs::Observability& obs() { return obs_; }

  struct ClientNode {
    net::NodeId node = net::kInvalidNode;
    std::unique_ptr<net::RpcEndpoint> endpoint;
    std::unique_ptr<zk::ZkClient> zk;
    // One client stub per back-end instance (the "mount points").
    std::vector<std::unique_ptr<vfs::FileSystem>> backend_mounts;
    std::unique_ptr<core::DufsClient> dufs;
    std::unique_ptr<vfs::FuseMount> fuse;  // applications enter here
  };

  std::size_t client_count() const { return clients_.size(); }
  ClientNode& client(std::size_t i) { return *clients_[i]; }

  // The native-filesystem baseline ("Basic Lustre"/"Basic PVFS"): instance 0
  // accessed directly from client node i, no DUFS, no FUSE.
  vfs::FileSystem& baseline(std::size_t i) {
    return *clients_[i]->backend_mounts[0];
  }

  zk::ZkServer& zk_server(std::size_t i) { return *zk_servers_[i]; }
  std::size_t zk_server_count() const { return zk_servers_.size(); }
  const std::vector<net::NodeId>& zk_nodes() const { return zk_nodes_; }

  pfs::LustreInstance* lustre(std::size_t i) {
    return i < lustre_.size() ? lustre_[i].get() : nullptr;
  }

  // Connects every ZK session and mounts every DUFS client (runs the sim).
  void MountAll();

  // Starts (or restarts) a timeline sampler over every gauge currently
  // registered — call after MountAll so all components have attached their
  // observability. Export with timeline().ToJson().
  void StartTimeline(sim::Duration interval);
  obs::TimelineSampler& timeline() { return timeline_; }

  // Sum of EstimateMemoryBytes over live ZK replicas (Fig. 11 input).
  std::size_t ZkMemoryBytes() const;

 private:
  TestbedConfig config_;
  // Declared before everything that holds metric/span handles into it, so it
  // is destroyed last.
  obs::Observability obs_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::Network> net_;
  // After sim_: its pump coroutine is reclaimed by sim_->Shutdown() in the
  // destructor body, before members are torn down.
  obs::TimelineSampler timeline_;

  std::vector<net::NodeId> zk_nodes_;
  std::vector<std::unique_ptr<net::RpcEndpoint>> zk_endpoints_;
  std::vector<std::unique_ptr<zk::ZkServer>> zk_servers_;
  zk::ZkEnsembleConfig zk_config_;

  std::vector<std::unique_ptr<pfs::LustreInstance>> lustre_;
  std::vector<std::unique_ptr<pfs::PvfsInstance>> pvfs_;
  std::vector<std::unique_ptr<vfs::MemFs>> memfs_;

  std::vector<std::unique_ptr<ClientNode>> clients_;
};

}  // namespace dufs::mdtest
