// mdtest-style metadata benchmark (paper §V, [13]).
//
// P processes, spread round-robin over the client nodes, each work in a
// unique directory (mdtest -u). A small fan-out skeleton (the paper uses
// fan-out 10) is pre-created untimed; each timed phase then performs
// `items_per_proc` operations per process, start/stop synchronized by
// barriers, and reports aggregate ops/sec — exactly what the paper's
// figures plot.
//
// Targets: the DUFS FUSE mount, or a "basic" native back-end client.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "mdtest/testbed.h"

namespace dufs::mdtest {

enum class Phase {
  kDirCreate,
  kDirStat,
  kDirRemove,
  kFileCreate,
  kFileStat,
  kFileRemove,
};

std::string_view PhaseName(Phase phase);

enum class Target {
  kDufs,      // through the FUSE mount (the paper's DUFS rows)
  kBaseline,  // native back-end instance 0 (Basic Lustre / Basic PVFS)
};

struct MdtestConfig {
  std::size_t processes = 64;
  std::size_t items_per_proc = 100;
  int fanout = 10;  // skeleton branching (paper: 10, depth 5 overall tree)
  std::string root = "/mdtest";
};

struct PhaseResult {
  Phase phase = Phase::kDirCreate;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  LatencyHistogram latency;
};

class MdtestRunner {
 public:
  MdtestRunner(Testbed& testbed, MdtestConfig config);

  // Runs the six mdtest phases (or a subset) against the target; the
  // skeleton setup and teardown are untimed, as in mdtest.
  std::vector<PhaseResult> Run(Target target,
                               std::vector<Phase> phases = {
                                   Phase::kDirCreate, Phase::kDirStat,
                                   Phase::kDirRemove, Phase::kFileCreate,
                                   Phase::kFileStat, Phase::kFileRemove});

  // Formats one result row ("dir-create  12345.6 ops/s ...").
  static std::string FormatRow(const PhaseResult& result);

 private:
  // Narrow per-process view over either target's API.
  struct Ops {
    std::function<sim::Task<Status>(std::string)> mkdir;
    std::function<sim::Task<Status>(std::string)> rmdir;
    std::function<sim::Task<Status>(std::string)> stat;
    std::function<sim::Task<Status>(std::string)> create;  // create + close
    std::function<sim::Task<Status>(std::string)> unlink;
  };
  Ops OpsFor(Target target, std::size_t node);

  std::string ItemPath(std::size_t proc, Phase phase, std::size_t item) const;
  std::string ProcDir(std::size_t proc) const;

  Testbed& testbed_;
  MdtestConfig config_;
  bool skeleton_ready_ = false;
};

}  // namespace dufs::mdtest
