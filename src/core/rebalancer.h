// Back-end pool rebalancer — the machinery behind the paper's §VII plan
// ("dynamically add and remove back-end storages while ensuring that the
// amount of data to relocate stays bounded").
//
// Placement is a pure function of the FID, so after the pool changes the
// new location of every file is known without coordination; what must move
// is the data. The rebalancer walks the namespace, finds files whose
// placement under the *new* policy differs from the old one, copies their
// contents old -> new, and removes the old copy. Virtual names, FIDs and
// znodes are untouched (the FID indirection at work).
#pragma once

#include "core/dufs_client.h"

namespace dufs::core {

struct RebalanceStats {
  std::uint64_t files_scanned = 0;
  std::uint64_t files_moved = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t errors = 0;
};

class Rebalancer {
 public:
  // `old_policy` describes where data currently lives; `new_policy` where
  // it must live. Both must be consistent with `backends.size()`.
  Rebalancer(zk::ZkClient& zk, std::vector<vfs::FileSystem*> backends,
             PlacementPolicy& old_policy, PlacementPolicy& new_policy);

  sim::Task<Result<RebalanceStats>> Run();

 private:
  // `stats` is an out-param accumulator owned by Run(), which co_awaits
  // every Walk/MoveFile frame to completion before returning it.
  // dufs-lint: allow(coro-ref-param)
  sim::Task<Status> Walk(std::string virtual_path, RebalanceStats& stats);
  sim::Task<Status> MoveFile(Fid fid, std::uint32_t from, std::uint32_t to,
                             RebalanceStats& stats);  // dufs-lint: allow(coro-ref-param)

  zk::ZkClient& zk_;
  std::vector<vfs::FileSystem*> backends_;
  PlacementPolicy& old_policy_;
  PlacementPolicy& new_policy_;
};

}  // namespace dufs::core
