#include "core/meta_schema.h"

#include "wire/buffer.h"

namespace dufs::core {

std::vector<std::uint8_t> MetaRecord::Encode() const {
  wire::BufferWriter w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU64(fid.client_id);
  w.WriteU64(fid.counter);
  w.WriteU32(mode);
  w.WriteString(symlink_target);
  w.WriteBool(atime_override.has_value());
  w.WriteI64(atime_override.value_or(0));
  w.WriteBool(mtime_override.has_value());
  w.WriteI64(mtime_override.value_or(0));
  return w.Take();
}

Result<MetaRecord> MetaRecord::Decode(const std::vector<std::uint8_t>& bytes) {
  wire::BufferReader r(bytes);
  MetaRecord rec;
  auto type = r.ReadU8();
  DUFS_RETURN_IF_ERROR(type);
  rec.type = static_cast<vfs::FileType>(*type);
  auto client = r.ReadU64();
  DUFS_RETURN_IF_ERROR(client);
  rec.fid.client_id = *client;
  auto counter = r.ReadU64();
  DUFS_RETURN_IF_ERROR(counter);
  rec.fid.counter = *counter;
  auto mode = r.ReadU32();
  DUFS_RETURN_IF_ERROR(mode);
  rec.mode = *mode;
  auto target = r.ReadString();
  DUFS_RETURN_IF_ERROR(target);
  rec.symlink_target = std::move(*target);
  auto has_atime = r.ReadBool();
  DUFS_RETURN_IF_ERROR(has_atime);
  auto atime = r.ReadI64();
  DUFS_RETURN_IF_ERROR(atime);
  if (*has_atime) rec.atime_override = *atime;
  auto has_mtime = r.ReadBool();
  DUFS_RETURN_IF_ERROR(has_mtime);
  auto mtime = r.ReadI64();
  DUFS_RETURN_IF_ERROR(mtime);
  if (*has_mtime) rec.mtime_override = *mtime;
  return rec;
}

}  // namespace dufs::core
