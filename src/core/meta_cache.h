// Client-side metadata cache for DUFS (the "client metadata cache" lever
// from λFS / 3FS-style metadata services): a bounded LRU of znode lookups.
//
//   * Positive entries: znode path -> (MetaRecord, ZnodeStat) — one cached
//     attr+dentry, so repeated stat()/lookup of a hot path costs zero
//     ZooKeeper round trips.
//   * Negative entries: znode path -> "known absent", so repeated failing
//     lookups (shell PATH probing, O_CREAT checks) are also free.
//
// Coherence (see DESIGN.md "Metadata fast path"):
//   * every read that fills the cache registers a one-shot ZooKeeper data
//     watch; the watch event (create/delete/dataChanged) invalidates the
//     entry — cross-client mutations are observed within one notification
//     delay;
//   * the owning client's own mutations invalidate synchronously;
//   * a TTL bounds staleness if a watch event is lost (client failover,
//     dropped notification).
//
// The cache is a plain deterministic data structure (no coroutines); the
// DufsClient drives it. Memory is bounded by `capacity` and reported via
// EstimateMemoryBytes() so the Fig. 11 client-memory story stays honest.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/meta_schema.h"
#include "sim/simulation.h"
#include "zk/znode.h"

namespace dufs::core {

struct MetaCacheConfig {
  std::size_t capacity = 4096;           // entries (positive + negative)
  sim::Duration ttl = sim::Ms(500);      // staleness bound if a watch is lost
  bool negative_entries = true;
};

class MetaCache {
 public:
  struct Entry {
    bool negative = false;
    MetaRecord record;     // valid when !negative
    zk::ZnodeStat stat;    // valid when !negative
    sim::SimTime inserted = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t negative_hits = 0;
    std::uint64_t expirations = 0;    // TTL-lapsed entries dropped on lookup
    std::uint64_t invalidations = 0;  // watch- or mutation-driven
    std::uint64_t evictions = 0;      // LRU capacity pressure
  };

  MetaCache(sim::Simulation& sim, MetaCacheConfig config = {});

  // nullptr on miss or TTL expiry (expired entries are dropped). A hit
  // refreshes the entry's LRU position. The pointer is valid until the next
  // non-const call.
  const Entry* Lookup(const std::string& path);

  void PutPositive(const std::string& path, MetaRecord record,
                   zk::ZnodeStat stat);
  void PutNegative(const std::string& path);

  // Drops one path (no-op when absent). Counted as an invalidation only
  // when something was actually cached.
  void Invalidate(const std::string& path);
  // Drops `path` and every entry under "path/" (directory rename/unlink).
  void InvalidateSubtree(const std::string& path);
  void Clear();

  std::size_t size() const { return map_.size(); }
  const Stats& stats() const { return stats_; }
  const MetaCacheConfig& config() const { return config_; }
  std::size_t EstimateMemoryBytes() const;

 private:
  using LruList = std::list<std::pair<std::string, Entry>>;

  void Put(const std::string& path, Entry entry);
  void EraseIt(std::unordered_map<std::string, LruList::iterator>::iterator);

  sim::Simulation& sim_;
  MetaCacheConfig config_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> map_;
  Stats stats_;
  std::size_t bytes_ = 0;  // sum of cached key+payload bytes
};

}  // namespace dufs::core
