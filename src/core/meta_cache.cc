#include "core/meta_cache.h"

namespace dufs::core {

namespace {

// Approximate resident bytes for one entry: key string + record payload +
// list/map node overhead (measured-ish, same spirit as zk memory model).
std::size_t EntryBytes(const std::string& path, const MetaCache::Entry& e) {
  constexpr std::size_t kNodeOverhead = 96;  // list node + hash slot + Entry
  return kNodeOverhead + path.size() +
         (e.negative ? 0 : e.record.symlink_target.size());
}

}  // namespace

MetaCache::MetaCache(sim::Simulation& sim, MetaCacheConfig config)
    : sim_(sim), config_(config) {
  DUFS_CHECK(config_.capacity > 0);
}

const MetaCache::Entry* MetaCache::Lookup(const std::string& path) {
  auto it = map_.find(path);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (config_.ttl > 0 &&
      sim_.now() - it->second->second.inserted > config_.ttl) {
    ++stats_.expirations;
    ++stats_.misses;
    EraseIt(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  const Entry& entry = it->second->second;
  if (entry.negative) {
    ++stats_.negative_hits;
  } else {
    ++stats_.hits;
  }
  return &entry;
}

void MetaCache::Put(const std::string& path, Entry entry) {
  entry.inserted = sim_.now();
  auto it = map_.find(path);
  if (it != map_.end()) {
    bytes_ -= EntryBytes(path, it->second->second);
    it->second->second = std::move(entry);
    bytes_ += EntryBytes(path, it->second->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (map_.size() >= config_.capacity) {
    ++stats_.evictions;
    EraseIt(map_.find(lru_.back().first));
  }
  lru_.emplace_front(path, std::move(entry));
  bytes_ += EntryBytes(path, lru_.front().second);
  map_.emplace(path, lru_.begin());
}

void MetaCache::PutPositive(const std::string& path, MetaRecord record,
                            zk::ZnodeStat stat) {
  Entry entry;
  entry.record = std::move(record);
  entry.stat = stat;
  Put(path, std::move(entry));
}

void MetaCache::PutNegative(const std::string& path) {
  if (!config_.negative_entries) return;
  Entry entry;
  entry.negative = true;
  Put(path, std::move(entry));
}

void MetaCache::Invalidate(const std::string& path) {
  auto it = map_.find(path);
  if (it == map_.end()) return;
  ++stats_.invalidations;
  EraseIt(it);
}

void MetaCache::InvalidateSubtree(const std::string& path) {
  Invalidate(path);
  const std::string prefix = path + "/";
  // Erase-only walk: the surviving entries are the same in any visit order,
  // so hash-order iteration cannot leak into observable state.
  // dufs-lint: allow(det-export-order)
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      ++stats_.invalidations;
      auto victim = it++;
      EraseIt(victim);
    } else {
      ++it;
    }
  }
}

void MetaCache::Clear() {
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

std::size_t MetaCache::EstimateMemoryBytes() const { return bytes_; }

void MetaCache::EraseIt(
    std::unordered_map<std::string, LruList::iterator>::iterator it) {
  DUFS_CHECK(it != map_.end());
  bytes_ -= EntryBytes(it->first, it->second->second);
  lru_.erase(it->second);
  map_.erase(it);
}

}  // namespace dufs::core
