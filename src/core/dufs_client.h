// DUFS — the Distributed Union File System (paper §IV).
//
// A DufsClient merges N back-end parallel-filesystem mounts into one virtual
// namespace:
//
//   * ALL namespace metadata lives in the coordination service: one znode
//     per virtual file/directory under <prefix>/ns, with a MetaRecord in the
//     data field. Directory operations never touch a back-end (§IV-B).
//   * each file's contents live on exactly one back-end, at a physical path
//     derived from its FID (Fig. 4); the back-end is chosen by the
//     deterministic placement policy (§IV-F), so data placement needs no
//     coordination;
//   * FIDs are (client instance id ++ local counter); instance ids are made
//     unique by a ZooKeeper sequential znode claimed at Mount() (§IV-E);
//   * rename is an atomic ZooKeeper multi (check+create+delete); directory
//     renames move the subtree in one multi up to a configured size;
//   * the client itself is stateless (§IV-I): everything lives in ZooKeeper
//     or on the back-ends, so client memory stays bounded (Fig. 11).
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/mapping.h"
#include "core/meta_cache.h"
#include "core/meta_schema.h"
#include "core/physical_path.h"
#include "obs/obs.h"
#include "vfs/filesystem.h"
#include "vfs/path.h"
#include "zk/client.h"

namespace dufs::core {

struct DufsConfig {
  std::string meta_prefix = "/dufs";
  std::string placement = "md5-mod-n";  // or "consistent-hash"
  // Largest directory subtree a rename may move atomically (znode count).
  std::size_t dir_rename_limit = 256;
  // Retries for optimistic multi-op races (rename vs concurrent mutation).
  int race_retries = 3;
  // --- metadata fast path (DESIGN.md "Metadata fast path") ---------------
  // Client metadata cache: positive attr/dentry + negative lookups, kept
  // coherent by one-shot ZooKeeper watches + own-write invalidation.
  bool enable_meta_cache = true;
  MetaCacheConfig meta_cache;
  // Concurrent ZooKeeper/back-end requests per fan-out operation (ReadDir
  // child lookups, rename subtree reads, format). 1 = fully serial (the
  // pre-fast-path behavior, kept for ablation).
  std::size_t lookup_fanout = 32;
  // Server-side path resolution (DESIGN.md §13): metadata hot paths issue
  // one compound ZooKeeper op per cache miss (ResolvePath / ResolveCreate /
  // ResolveDelete / ReadDirPlus) and seed the cache from the returned
  // prefix. Off = the FUSE-faithful ablation, resolving dentry-by-dentry
  // like the kernel VFS against the paper's prototype: a cold depth-D path
  // costs O(D) round trips instead of one.
  bool compound_ops = true;
};

class DufsClient : public vfs::FileSystem {
 public:
  DufsClient(zk::ZkClient& zk, std::vector<vfs::FileSystem*> backends,
             DufsConfig config = {});

  // Connects the coordination session, creates the metadata skeleton and
  // claims a unique client-instance id. Must succeed before any operation.
  sim::Task<Status> Mount();
  bool mounted() const { return client_id_ != 0; }
  std::uint64_t client_id() const { return client_id_; }

  // One-time back-end preparation: creates the static FID directory
  // hierarchy on every back-end (paper §IV-G). Run once per filesystem,
  // like mkfs; other clients then call AssumeFormatted().
  sim::Task<Status> FormatBackends();
  // Seeds the physical-directory cache without probing the back-ends
  // (valid after some client ran FormatBackends).
  void AssumeFormatted();

  const DufsConfig& config() const { return config_; }
  PlacementPolicy& placement() { return *placement_; }
  std::size_t backend_count() const { return backends_.size(); }
  const MetaCache& meta_cache() const { return meta_cache_; }

  // Client-resident memory (Fig. 11): caches + fd table, bounded.
  std::size_t EstimateMemoryBytes() const;

  // Optional: per-op root spans + latency timers + cache counters. Spans
  // opened here are the roots of the client-op -> zk-rpc -> quorum-round ->
  // fsync-batch chain.
  void AttachObs(obs::NodeObs node_obs);

  std::string name() const override { return "dufs"; }

  sim::Task<Result<vfs::FileAttr>> GetAttr(std::string path) override;
  sim::Task<Status> Mkdir(std::string path, vfs::Mode mode) override;
  sim::Task<Status> Rmdir(std::string path) override;
  sim::Task<Result<vfs::FileAttr>> Create(std::string path,
                                          vfs::Mode mode) override;
  sim::Task<Status> Unlink(std::string path) override;
  sim::Task<Result<std::vector<vfs::DirEntry>>> ReadDir(
      std::string path) override;
  sim::Task<Status> Rename(std::string from, std::string to) override;
  sim::Task<Status> Chmod(std::string path, vfs::Mode mode) override;
  sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                            std::int64_t mtime) override;
  sim::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  sim::Task<Status> Symlink(std::string target,
                            std::string link_path) override;
  sim::Task<Result<std::string>> ReadLink(std::string path) override;
  sim::Task<Status> Access(std::string path, vfs::Mode mode) override;
  sim::Task<Result<vfs::FileHandle>> Open(std::string path,
                                          std::uint32_t flags) override;
  sim::Task<Status> Release(vfs::FileHandle handle) override;
  sim::Task<Result<vfs::Bytes>> Read(vfs::FileHandle handle,
                                     std::uint64_t offset,
                                     std::uint64_t length) override;
  sim::Task<Result<std::uint64_t>> Write(vfs::FileHandle handle,
                                         std::uint64_t offset,
                                         vfs::Bytes data) override;
  sim::Task<Result<vfs::FsStats>> StatFs() override;

 private:
  struct OpenState {
    std::uint32_t backend = 0;
    vfs::FileHandle backend_handle = 0;
  };

  // "/a/b" -> "<prefix>/ns/a/b"; "/" -> "<prefix>/ns".
  std::string ZnodePath(std::string_view virtual_path) const;
  std::string NsRoot() const { return config_.meta_prefix + "/ns"; }

  Fid NextFid();
  vfs::FileSystem& BackendFor(const Fid& fid, std::uint32_t* index = nullptr);

  // Reads a path's MetaRecord (+ znode stat/version). Served from the
  // metadata cache when possible; a miss fetches with a one-shot data watch
  // so the cached copy is invalidated on any remote mutation.
  struct Lookup {
    MetaRecord record;
    zk::ZnodeStat stat;
  };
  // Dispatches on config_.compound_ops: one server-side resolution
  // (LookupCompound) or a per-component walk (LookupWalk) built from the
  // single full-path probe (LookupSingle).
  sim::Task<Result<Lookup>> LookupPath(std::string virtual_path);
  sim::Task<Result<Lookup>> LookupCompound(std::string virtual_path);
  sim::Task<Result<Lookup>> LookupWalk(std::string virtual_path);
  sim::Task<Result<Lookup>> LookupSingle(std::string virtual_path);

  // Seeds the metadata cache from a compound-op reply: positive entries for
  // every prefix component (and the terminal when its record rode back), a
  // negative entry for the first missing component on a partial miss. The
  // server registered matching one-shot watches, so every seeded entry is
  // invalidated on remote change exactly like a LookupSingle fill.
  void SeedFromCompound(const std::string& znode_path,
                        const zk::OpResult& result);

  // Own-write invalidation: drops `virtual_path` (and, when `subtree`, all
  // cached descendants) plus the parent's cached attr (child count/mtime
  // change with every namespace mutation).
  void InvalidateAfterMutation(const std::string& virtual_path,
                               bool subtree = false);

  // Fast parent-is-a-directory check through the metadata cache (FUSE's
  // dentry cache plays this role in the paper's prototype).
  sim::Task<Status> CheckParentIsDir(std::string virtual_path);

  // Creates (and caches) the static FID directory skeleton lazily.
  sim::Task<Status> EnsurePhysicalDirs(std::uint32_t backend, Fid fid);

  sim::Task<Status> RenameSubtree(std::string from, std::string to,
                                  Lookup src);

  vfs::FileAttr AttrFromDir(const MetaRecord& record,
                            const zk::ZnodeStat& stat) const;

  zk::ZkClient& zk_;
  std::vector<vfs::FileSystem*> backends_;
  DufsConfig config_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::uint64_t client_id_ = 0;
  std::uint64_t fid_counter_ = 0;
  MetaCache meta_cache_;  // keyed by znode path
  std::unordered_set<std::string> known_phys_dirs_;  // "<backend>:<dir>"
  std::unordered_map<vfs::FileHandle, OpenState> open_files_;
  vfs::FileHandle next_handle_ = 1;

  friend class OpScope;  // dufs_client.cc: per-op span + timer RAII
  obs::NodeObs obs_;
  obs::Counter c_cache_hits_;
  obs::Counter c_cache_misses_;
  obs::Timer t_stat_;
  obs::Timer t_create_;
  obs::Timer t_readdir_;
  obs::Timer t_unlink_;
  obs::Timer t_mkdir_;
  obs::Timer t_rename_;
};

}  // namespace dufs::core
