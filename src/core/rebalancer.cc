#include "core/rebalancer.h"

namespace dufs::core {

namespace {
constexpr std::uint64_t kChunk = 1 << 20;  // copy granularity
}  // namespace

Rebalancer::Rebalancer(zk::ZkClient& zk,
                       std::vector<vfs::FileSystem*> backends,
                       PlacementPolicy& old_policy,
                       PlacementPolicy& new_policy)
    : zk_(zk),
      backends_(std::move(backends)),
      old_policy_(old_policy),
      new_policy_(new_policy) {}

sim::Task<Status> Rebalancer::MoveFile(Fid fid, std::uint32_t from,
                                       std::uint32_t to,
                                       RebalanceStats& stats) {  // dufs-lint: allow(coro-ref-param)
  const std::string path = PhysicalPathForFid(fid);
  auto src = co_await backends_[from]->Open(path, vfs::kRead);
  if (!src.ok()) co_return src.status();

  // Destination skeleton exists (format-time invariant), so create + copy.
  auto created = co_await backends_[to]->Create(path, vfs::kDefaultFileMode);
  if (!created.ok() && created.code() != StatusCode::kAlreadyExists) {
    (void)co_await backends_[from]->Release(*src);
    co_return created.status();
  }
  auto dst = co_await backends_[to]->Open(path, vfs::kWrite | vfs::kTruncate);
  if (!dst.ok()) {
    (void)co_await backends_[from]->Release(*src);
    co_return dst.status();
  }

  std::uint64_t offset = 0;
  Status failure = Status::Ok();
  for (;;) {
    auto chunk = co_await backends_[from]->Read(*src, offset, kChunk);
    if (!chunk.ok()) {
      failure = chunk.status();
      break;
    }
    if (chunk->empty()) break;
    const auto len = chunk->size();
    auto wrote = co_await backends_[to]->Write(*dst, offset,
                                               std::move(*chunk));
    if (!wrote.ok()) {
      failure = wrote.status();
      break;
    }
    offset += len;
  }
  (void)co_await backends_[from]->Release(*src);
  (void)co_await backends_[to]->Release(*dst);
  if (!failure.ok()) co_return failure;

  // Data is safely at the new home before the old copy goes away.
  (void)co_await backends_[from]->Unlink(path);
  ++stats.files_moved;
  stats.bytes_moved += offset;
  co_return Status::Ok();
}

sim::Task<Status> Rebalancer::Walk(std::string virtual_path,
                                   RebalanceStats& stats) {  // dufs-lint: allow(coro-ref-param)
  const std::string znode =
      virtual_path == "/" ? "/dufs/ns" : "/dufs/ns" + virtual_path;
  auto got = co_await zk_.Get(znode);
  if (!got.ok()) co_return got.status();
  auto record = MetaRecord::Decode(got->data);
  if (!record.ok()) co_return record.status();

  if (record->type == vfs::FileType::kDirectory) {
    auto children = co_await zk_.GetChildren(znode);
    if (!children.ok()) co_return children.status();
    for (const auto& name : *children) {
      std::string child =
          virtual_path == "/" ? "/" + name : virtual_path + "/" + name;
      auto st = co_await Walk(std::move(child), stats);
      if (!st.ok()) co_return st;
    }
    co_return Status::Ok();
  }
  if (record->type != vfs::FileType::kRegular) co_return Status::Ok();

  ++stats.files_scanned;
  const std::uint32_t from = old_policy_.Place(record->fid);
  const std::uint32_t to = new_policy_.Place(record->fid);
  if (from == to) co_return Status::Ok();
  auto st = co_await MoveFile(record->fid, from, to, stats);
  if (!st.ok()) {
    ++stats.errors;
    DUFS_LOG(Warn) << "rebalance failed for " << virtual_path << ": " << st;
  }
  co_return Status::Ok();
}

sim::Task<Result<RebalanceStats>> Rebalancer::Run() {
  RebalanceStats stats;
  auto st = co_await Walk("/", stats);
  if (!st.ok()) co_return st;
  co_return stats;
}

}  // namespace dufs::core
