// Deterministic FID -> back-end mapping (paper §IV-F).
//
// Every DUFS client evaluates the mapping locally — placement never needs
// coordination. The paper's implementation is `MD5(fid) mod N`; its stated
// future work is consistent hashing so back-ends can be added/removed with
// bounded relocation. Both are here; `bench/ablation_mapping` compares
// their balance and relocation behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fid.h"

namespace dufs::core {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string name() const = 0;
  // Index in [0, backend_count).
  virtual std::uint32_t Place(const Fid& fid) const = 0;
  virtual std::size_t backend_count() const = 0;
  // Reconfigures the backend set. Md5ModN relocates ~(N-1)/N of all FIDs on
  // such a change; ConsistentHashRing ~1/N.
  virtual void SetBackendCount(std::size_t n) = 0;
};

// The paper's mapping: fid |-> MD5(fid) mod N. Uniform, stateless — but a
// change of N remaps almost everything.
class Md5ModNPlacement : public PlacementPolicy {
 public:
  explicit Md5ModNPlacement(std::size_t n);

  std::string name() const override { return "md5-mod-n"; }
  std::uint32_t Place(const Fid& fid) const override;
  std::size_t backend_count() const override { return n_; }
  void SetBackendCount(std::size_t n) override;

 private:
  std::size_t n_;
};

// Consistent hashing (paper §VII, [26]): each backend owns `vnodes` points
// on a 64-bit ring; a FID maps to the first point clockwise of its hash.
class ConsistentHashPlacement : public PlacementPolicy {
 public:
  ConsistentHashPlacement(std::size_t n, std::size_t vnodes_per_backend = 256);

  std::string name() const override { return "consistent-hash"; }
  std::uint32_t Place(const Fid& fid) const override;
  std::size_t backend_count() const override { return n_; }
  void SetBackendCount(std::size_t n) override;

  std::size_t vnodes_per_backend() const { return vnodes_; }

 private:
  void AddBackend(std::uint32_t id);
  void RemoveBackend(std::uint32_t id);

  std::size_t n_ = 0;
  std::size_t vnodes_;
  std::map<std::uint64_t, std::uint32_t> ring_;
};

std::unique_ptr<PlacementPolicy> MakePlacement(const std::string& name,
                                               std::size_t backends);

}  // namespace dufs::core
