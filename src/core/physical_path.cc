#include "core/physical_path.h"

namespace dufs::core {

// Layout (paper Fig. 4, adapted): the FID hex string is split into path
// components — trailing characters become the directory levels, the rest is
// the file name. The paper's 64-bit example uses 4-hex-char groups; with
// one hex char per level (16^3 = 4096 leaf directories) the static
// hierarchy can actually be pre-created at format time, which is what the
// paper assumes ("this directory hierarchy is static and identical between
// all the back-end mount-points").
namespace {
constexpr std::size_t kDirLevels = 3;
constexpr std::size_t kGroup = 1;  // hex chars per directory level
constexpr std::size_t kNameLen = 32 - kDirLevels * kGroup;  // 29
constexpr char kHexChars[] = "0123456789abcdef";
}  // namespace

std::string PhysicalPathForFid(const Fid& fid) {
  const std::string hex = fid.ToHex();  // 32 chars
  std::string path;
  path.reserve(2 * kDirLevels + 1 + kNameLen);
  for (std::size_t level = 0; level < kDirLevels; ++level) {
    path.push_back('/');
    path.append(hex.substr(32 - (level + 1) * kGroup, kGroup));
  }
  path.push_back('/');
  path.append(hex.substr(0, kNameLen));
  return path;
}

std::vector<std::string> PhysicalDirsForFid(const Fid& fid) {
  const std::string hex = fid.ToHex();
  std::vector<std::string> dirs;
  std::string prefix;
  for (std::size_t level = 0; level < kDirLevels; ++level) {
    prefix.push_back('/');
    prefix.append(hex.substr(32 - (level + 1) * kGroup, kGroup));
    dirs.push_back(prefix);
  }
  return dirs;
}

std::vector<std::string> StaticPhysicalSkeleton() {
  std::vector<std::string> dirs;
  dirs.reserve(16 + 256 + 4096);
  for (int a = 0; a < 16; ++a) {
    std::string l1 = {'/', kHexChars[a]};
    dirs.push_back(l1);
  }
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      std::string l2 = {'/', kHexChars[a], '/', kHexChars[b]};
      dirs.push_back(l2);
    }
  }
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int c = 0; c < 16; ++c) {
        std::string l3 = {'/', kHexChars[a], '/', kHexChars[b],
                          '/', kHexChars[c]};
        dirs.push_back(l3);
      }
    }
  }
  return dirs;
}

std::optional<Fid> FidFromPhysicalPath(std::string_view path) {
  // Expected shape: /g/g/g/<29 hex chars>.
  if (path.size() != (1 + kGroup) * kDirLevels + 1 + kNameLen) {
    return std::nullopt;
  }
  std::string hex(32, '0');
  std::size_t pos = 0;
  for (std::size_t level = 0; level < kDirLevels; ++level) {
    if (path[pos] != '/') return std::nullopt;
    ++pos;
    for (std::size_t k = 0; k < kGroup; ++k) {
      hex[32 - (level + 1) * kGroup + k] = path[pos + k];
    }
    pos += kGroup;
  }
  if (path[pos] != '/') return std::nullopt;
  ++pos;
  for (std::size_t k = 0; k < kNameLen; ++k) hex[k] = path[pos + k];
  return Fid::FromHex(hex);
}

}  // namespace dufs::core
