#include "core/mapping.h"

#include "common/log.h"
#include "common/md5.h"

namespace dufs::core {
namespace {

// Canonical byte representation hashed for placement: big-endian client id
// then counter (matches the FID hex form).
std::array<std::uint8_t, 16> FidBytes(const Fid& fid) {
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(fid.client_id >> (8 * (7 - i)));
    bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(fid.counter >> (8 * (7 - i)));
  }
  return bytes;
}

std::uint64_t Md5Of(const Fid& fid) {
  const auto bytes = FidBytes(fid);
  return Md5::Hash(bytes.data(), bytes.size()).Low64();
}

}  // namespace

Md5ModNPlacement::Md5ModNPlacement(std::size_t n) : n_(n) {
  DUFS_CHECK(n > 0);
}

std::uint32_t Md5ModNPlacement::Place(const Fid& fid) const {
  return static_cast<std::uint32_t>(Md5Of(fid) % n_);
}

void Md5ModNPlacement::SetBackendCount(std::size_t n) {
  DUFS_CHECK(n > 0);
  n_ = n;
}

ConsistentHashPlacement::ConsistentHashPlacement(std::size_t n,
                                                 std::size_t vnodes)
    : vnodes_(vnodes) {
  DUFS_CHECK(n > 0 && vnodes > 0);
  SetBackendCount(n);
}

void ConsistentHashPlacement::AddBackend(std::uint32_t id) {
  for (std::size_t v = 0; v < vnodes_; ++v) {
    const std::string key =
        "backend-" + std::to_string(id) + "-vnode-" + std::to_string(v);
    ring_.emplace(Md5::Hash(key).Low64(), id);
  }
}

void ConsistentHashPlacement::RemoveBackend(std::uint32_t id) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConsistentHashPlacement::SetBackendCount(std::size_t n) {
  DUFS_CHECK(n > 0);
  while (n_ < n) AddBackend(static_cast<std::uint32_t>(n_++));
  while (n_ > n) RemoveBackend(static_cast<std::uint32_t>(--n_));
}

std::uint32_t ConsistentHashPlacement::Place(const Fid& fid) const {
  DUFS_CHECK(!ring_.empty());
  const std::uint64_t h = Md5Of(fid);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::unique_ptr<PlacementPolicy> MakePlacement(const std::string& name,
                                               std::size_t backends) {
  if (name == "consistent-hash") {
    return std::make_unique<ConsistentHashPlacement>(backends);
  }
  return std::make_unique<Md5ModNPlacement>(backends);
}

}  // namespace dufs::core
