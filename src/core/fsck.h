// Consistency checker/repair for a DUFS deployment (extends the paper's
// reliability discussion, §IV-I): the namespace lives in the coordination
// service and file bodies on the back-ends, so partial failures can leave
//
//   * dangling files  — a znode whose FID has no physical file (e.g. the
//     back-end lost data, or a create was interrupted after rollback
//     failed), and
//   * orphaned files  — physical files no znode references (e.g. an unlink
//     that deleted the znode but crashed before the physical unlink).
//
// DufsFsck walks the metadata tree and every back-end's FID hierarchy,
// reports both classes, and can repair them (drop dangling znodes, unlink
// orphaned physical files).
#pragma once

#include <string>
#include <vector>

#include "core/dufs_client.h"

namespace dufs::core {

struct FsckReport {
  std::uint64_t directories = 0;
  std::uint64_t files = 0;
  std::uint64_t symlinks = 0;
  std::uint64_t physical_files = 0;

  // Virtual paths whose physical file is missing.
  std::vector<std::string> dangling;
  // (backend, physical path) pairs with no referencing znode.
  std::vector<std::pair<std::uint32_t, std::string>> orphans;
  // Znodes whose record failed to decode.
  std::vector<std::string> corrupt_records;

  bool clean() const {
    return dangling.empty() && orphans.empty() && corrupt_records.empty();
  }
};

class DufsFsck {
 public:
  // Uses the client's coordination session, back-ends and placement; the
  // client must be mounted.
  explicit DufsFsck(DufsClient& client, zk::ZkClient& zk,
                    std::vector<vfs::FileSystem*> backends);

  // Scan only.
  sim::Task<Result<FsckReport>> Check();

  // Scan + repair: dangling znodes are deleted, orphaned physical files
  // unlinked. Returns the pre-repair report.
  sim::Task<Result<FsckReport>> Repair();

 private:
  // Out-param accumulators: report/referenced live in Check()/Repair(),
  // which co_await every walk frame to completion before returning.
  sim::Task<Status> WalkNamespace(std::string virtual_path,
                                  FsckReport& report,  // dufs-lint: allow(coro-ref-param)
                                  std::vector<std::pair<std::uint32_t,
                                                        Fid>>& referenced);
  sim::Task<Status> WalkBackend(std::uint32_t backend, std::string dir,
                                int level, FsckReport& report,  // dufs-lint: allow(coro-ref-param)
                                std::vector<std::pair<std::uint32_t, Fid>>&
                                    referenced);

  DufsClient& client_;
  zk::ZkClient& zk_;
  std::vector<vfs::FileSystem*> backends_;
};

}  // namespace dufs::core
