// FID -> physical path codec (paper §IV-G, Fig. 4).
//
// The paper's example — FID 0123456789abcdef stored as cdef/89ab/4567/0123 —
// splits the hex representation into four components: the *trailing* groups
// become the directory hierarchy (hot, low-entropy bits spread file creates
// across many directories) and the leading group is the file name. Our FIDs
// are 128-bit, so: three 4-hex-char directory levels from the tail, and the
// remaining 20 hex chars as the file name.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fid.h"

namespace dufs::core {

// "/f/e/d/0123456789abcdef0123456789abc" for the fid whose hex is
// 0123456789abcdef0123456789abcdef (trailing chars "f","e","d" become the
// directory levels; the remaining 29 chars the file name).
std::string PhysicalPathForFid(const Fid& fid);

// The three ancestor directories of a FID's physical file, shallowest first
// ("/f", "/f/e", "/f/e/d").
std::vector<std::string> PhysicalDirsForFid(const Fid& fid);

// Every directory of the static hierarchy (16 + 256 + 4096 paths, parents
// first) — created once per back-end at format time (paper §IV-G: "this
// directory hierarchy is static and identical between all the back-end
// mount-points").
std::vector<std::string> StaticPhysicalSkeleton();

// Inverse of PhysicalPathForFid (used by fsck-style tooling and tests).
std::optional<Fid> FidFromPhysicalPath(std::string_view path);

}  // namespace dufs::core
