#include "core/dufs_client.h"

#include <algorithm>

#include "sim/gather.h"

namespace dufs::core {

using vfs::FileAttr;
using vfs::FileType;

namespace {

// Bounded positive cache for physical skeleton dirs; eviction is wholesale
// (the cache is a hint only — entries are re-probed on miss).
constexpr std::size_t kMaxCacheEntries = 1 << 16;

StatusCode MapZkCode(StatusCode code) {
  // Znode-level codes map 1:1 onto filesystem codes.
  return code;
}

// Kind tag compound ops hand the server: MetaRecord::Encode writes the
// FileType as its first byte, so the server's interior-component guard
// (data[0] == kDirTag ? directory : ENOTDIR) needs no record schema.
constexpr std::uint8_t kDirTag =
    static_cast<std::uint8_t>(vfs::FileType::kDirectory);

// Interior-ENOTDIR normalization. The server's resolution walk is strict
// POSIX, but DUFS resolves znodes by *flat* full-path key (as does the
// MemFs oracle), so a path that walks through a file has always read as
// absent (ENOENT) — except a create whose immediate parent is the file,
// which the explicit parent check reported as ENOTDIR. Map the server's
// walk codes back onto those established semantics.
StatusCode MapCompoundCode(zk::OpType type, const zk::OpResult& res,
                           std::size_t n_components) {
  if (res.code == StatusCode::kNotADirectory &&
      res.resolved_depth < n_components) {
    const bool parent_offender = res.resolved_depth + 1 == n_components;
    if (type != zk::OpType::kResolveCreate || !parent_offender) {
      return StatusCode::kNotFound;
    }
  }
  return MapZkCode(res.code);
}

}  // namespace

// One client operation: a root trace span (the head of the client-op ->
// zk-rpc -> quorum-round -> fsync-batch chain) plus an end-to-end latency
// sample. Annotates the span with the number of metadata-cache hits the op
// enjoyed. Costs two dummy-cell reads when observability is not attached.
class OpScope {
 public:
  OpScope(DufsClient& client, obs::Timer timer, const char* name,
          const std::string& path)
      : client_(client),
        timer_(timer),
        name_(name),
        start_(client.zk_.sim().now()),
        hits_before_(client.c_cache_hits_.value()),
        prof_node_(client.obs_.prof_name, prof::FrameKind::kNode),
        span_(obs::Span::Root(client.obs_, name, "op")) {
    if (span_.active()) span_.ArgStr("path", path);
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  ~OpScope() { Finish(); }

  // Re-arm the trace id after a resumption, before the next zk/backend call.
  void Arm() { span_.Arm(); }

  void Finish() {
    if (finished_) return;
    finished_ = true;
    const sim::Duration latency = client_.zk_.sim().now() - start_;
    timer_.Record(latency);
    if (client_.obs_.incidents != nullptr) {
      // `name_` is the op-class literal ("stat", "create", ...) — exactly
      // the canonical class names the incident engine registers.
      client_.obs_.incidents->RecordOp(name_, client_.obs_.track, latency);
    }
    if (span_.active()) {
      span_.ArgInt("cache_hits",
                   static_cast<std::int64_t>(client_.c_cache_hits_.value() -
                                             hits_before_));
    }
    span_.End();
  }

 private:
  DufsClient& client_;
  obs::Timer timer_;
  const char* name_;
  sim::SimTime start_;
  std::uint64_t hits_before_;
  // Node frame below the op-class frame (the root span): `client0;create`.
  // Declared before span_ so the push order gives node -> op on the stack.
  prof::ProfScope prof_node_;
  obs::Span span_;
  bool finished_ = false;
};

void DufsClient::AttachObs(obs::NodeObs node_obs) {
  obs_ = node_obs;
  c_cache_hits_ = obs_.counter("cache.hits");
  c_cache_misses_ = obs_.counter("cache.misses");
  t_stat_ = obs_.timer("op.stat_ns");
  t_create_ = obs_.timer("op.create_ns");
  t_readdir_ = obs_.timer("op.readdir_ns");
  t_unlink_ = obs_.timer("op.unlink_ns");
  t_mkdir_ = obs_.timer("op.mkdir_ns");
  t_rename_ = obs_.timer("op.rename_ns");
}

DufsClient::DufsClient(zk::ZkClient& zk,
                       std::vector<vfs::FileSystem*> backends,
                       DufsConfig config)
    : zk_(zk),
      backends_(std::move(backends)),
      config_(std::move(config)),
      meta_cache_(zk.sim(), config_.meta_cache) {
  DUFS_CHECK(!backends_.empty());
  DUFS_CHECK(config_.lookup_fanout > 0);
  placement_ = MakePlacement(config_.placement, backends_.size());
  if (config_.enable_meta_cache) {
    // Every cache fill registers a one-shot data watch on its znode; the
    // notification (create/delete/dataChanged) drops the entry, so remote
    // mutations are observed within one notification delay.
    zk_.SetWatchHandler(
        [this](const zk::WatchEvent& ev) { meta_cache_.Invalidate(ev.path); });
  }
}

std::string DufsClient::ZnodePath(std::string_view virtual_path) const {
  if (virtual_path == "/" || virtual_path.empty()) return NsRoot();
  return NsRoot() + std::string(virtual_path);
}

Fid DufsClient::NextFid() {
  DUFS_CHECK(client_id_ != 0);
  return Fid{client_id_, ++fid_counter_};
}

vfs::FileSystem& DufsClient::BackendFor(const Fid& fid,
                                        std::uint32_t* index) {
  const std::uint32_t i = placement_->Place(fid);
  DUFS_CHECK(i < backends_.size());
  if (index != nullptr) *index = i;
  return *backends_[i];
}

sim::Task<Status> DufsClient::Mount() {
  if (!zk_.connected()) {
    auto st = co_await zk_.Connect();
    if (!st.ok()) co_return st;
  }
  // Metadata skeleton (idempotent).
  const std::string skeleton[] = {config_.meta_prefix,
                                  config_.meta_prefix + "/clients", NsRoot()};
  for (const std::string& path : skeleton) {
    auto created = co_await zk_.Create(path, MetaRecord::Dir(0755).Encode());
    if (!created.ok() && created.code() != StatusCode::kAlreadyExists) {
      co_return created.status();
    }
  }
  // Claim a unique instance id (paper §IV-E): a sequential znode under
  // <prefix>/clients; the sequence number + 1 becomes the 64-bit client id.
  auto claimed = co_await zk_.Create(config_.meta_prefix + "/clients/c-", {},
                                     zk::CreateMode::kPersistentSequential);
  if (!claimed.ok()) co_return claimed.status();
  const std::string& path = *claimed;
  const auto digits = path.substr(path.size() - 10);
  client_id_ = std::stoull(digits) + 1;
  fid_counter_ = 0;
  meta_cache_.Clear();
  (void)co_await LookupPath("/");  // warm the root dentry
  co_return Status::Ok();
}

sim::Task<Status> DufsClient::FormatBackends() {
  // Back-ends are independent: format them all concurrently (bounded by the
  // fan-out knob); within one back-end the skeleton stays level-ordered.
  auto format_one = [](DufsClient& self, std::uint32_t b) -> sim::Task<Status> {
    std::size_t ops = 0;
    for (const auto& dir : StaticPhysicalSkeleton()) {
      auto st = co_await self.backends_[b]->Mkdir(dir, 0755);
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) co_return st;
      // Yield through the event loop periodically: long chains of
      // synchronously-completing back-end ops (MemFs) must not rely on
      // symmetric-transfer tail calls, which unoptimized builds lack.
      if (++ops % 64 == 0) co_await self.zk_.sim().Delay(0);
    }
    co_return Status::Ok();
  };
  std::vector<sim::Task<Status>> tasks;
  tasks.reserve(backends_.size());
  for (std::uint32_t b = 0; b < backends_.size(); ++b) {
    tasks.push_back(format_one(*this, b));
  }
  auto statuses = co_await sim::WhenAll(std::move(tasks), config_.lookup_fanout);
  for (const auto& st : statuses) {
    if (!st.ok()) co_return st;
  }
  AssumeFormatted();
  co_return Status::Ok();
}

void DufsClient::AssumeFormatted() {
  for (std::uint32_t b = 0; b < backends_.size(); ++b) {
    const std::string prefix = std::to_string(b) + ":";
    for (const auto& dir : StaticPhysicalSkeleton()) {
      known_phys_dirs_.insert(prefix + dir);
    }
  }
}

sim::Task<Result<DufsClient::Lookup>> DufsClient::LookupPath(
    std::string virtual_path) {
  if (config_.compound_ops) return LookupCompound(std::move(virtual_path));
  return LookupWalk(std::move(virtual_path));
}

// The FUSE-faithful walk (--compound=off ablation): resolve dentry by
// dentry like the kernel VFS does against the paper's prototype — one
// full-path probe per component, so a cold depth-D lookup costs O(D) round
// trips. Warm lookups still collapse to cache hits component-by-component.
sim::Task<Result<DufsClient::Lookup>> DufsClient::LookupWalk(
    std::string virtual_path) {
  if (virtual_path.size() <= 1) {
    co_return co_await LookupSingle(std::move(virtual_path));
  }
  const auto components = zk::PathComponents(virtual_path);
  std::string walked;
  walked.reserve(virtual_path.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    walked.push_back('/');
    walked.append(components[i]);
    auto step = co_await LookupSingle(walked);
    if (!step.ok()) co_return step.status();
    if (i + 1 == components.size()) co_return std::move(*step);
    if (step->record.type != FileType::kDirectory) {
      // Interior file: the flat-key namespace reads this as absent (the
      // walked suffix cannot exist under a file), matching LookupSingle.
      co_return Status(StatusCode::kNotFound, virtual_path);
    }
  }
  co_return Status(StatusCode::kNotFound, virtual_path);  // unreachable
}

void DufsClient::SeedFromCompound(const std::string& znode_path,
                                  const zk::OpResult& result) {
  if (!config_.enable_meta_cache) return;
  const auto components = zk::PathComponents(znode_path);
  std::string seeded;
  seeded.reserve(znode_path.size());
  for (const auto& node : result.prefix) {
    seeded.push_back('/');
    seeded.append(node.name);
    auto rec = MetaRecord::Decode(node.data);
    if (rec.ok()) meta_cache_.PutPositive(seeded, *rec, node.stat);
  }
  if (result.resolved_depth >= components.size()) {
    // Fully resolved. The terminal's record rides stat/data (compound
    // writes that already know their record leave data empty and seed at
    // the call site instead).
    if (!result.data.empty()) {
      auto rec = MetaRecord::Decode(result.data);
      if (rec.ok()) meta_cache_.PutPositive(znode_path, *rec, result.stat);
    }
  } else if (result.code == StatusCode::kOk ||
             result.code == StatusCode::kNotFound) {
    // Partial miss (or a delete that just removed the terminal): the first
    // missing component is *known* absent and the server holds a creation
    // watch on it — exactly what a coherent negative entry needs. Not on
    // kNotADirectory: components past the offender were never examined.
    seeded.push_back('/');
    seeded.append(components[result.resolved_depth]);
    meta_cache_.PutNegative(seeded);
  }
}

// The one-RPC fast path: full-path resolution runs server-side against the
// znode tree; hit or miss, the reply carries every component the walk
// touched and the cache is seeded from all of them (satellite: positives
// for the resolved prefix + a negative for the first missing component).
sim::Task<Result<DufsClient::Lookup>> DufsClient::LookupCompound(
    std::string virtual_path) {
  const std::string znode = ZnodePath(virtual_path);
  if (config_.enable_meta_cache) {
    if (const MetaCache::Entry* hit = meta_cache_.Lookup(znode)) {
      c_cache_hits_.Inc();
      if (obs_.incidents != nullptr) {
        obs_.incidents->RecordCacheProbe(obs_.track, /*hit=*/true);
      }
      if (hit->negative) co_return Status(StatusCode::kNotFound, virtual_path);
      Lookup out;
      out.record = hit->record;
      out.stat = hit->stat;
      co_return out;
    }
    c_cache_misses_.Inc();
    if (obs_.incidents != nullptr) {
      obs_.incidents->RecordCacheProbe(obs_.track, /*hit=*/false);
    }
  }
  auto res = co_await zk_.Resolve(znode, /*watch=*/config_.enable_meta_cache,
                                  kDirTag);
  if (!res.ok()) co_return Status(MapZkCode(res.code()), virtual_path);
  SeedFromCompound(znode, *res);
  if (res->code != StatusCode::kOk) {
    co_return Status(MapCompoundCode(zk::OpType::kResolvePath, *res,
                                     zk::PathComponents(znode).size()),
                     virtual_path);
  }
  auto record = MetaRecord::Decode(res->data);
  if (!record.ok()) co_return record.status();
  Lookup out;
  out.record = std::move(*record);
  out.stat = res->stat;
  co_return out;
}

sim::Task<Result<DufsClient::Lookup>> DufsClient::LookupSingle(
    std::string virtual_path) {
  const std::string znode = ZnodePath(virtual_path);
  if (config_.enable_meta_cache) {
    if (const MetaCache::Entry* hit = meta_cache_.Lookup(znode)) {
      c_cache_hits_.Inc();
      if (obs_.incidents != nullptr) {
        obs_.incidents->RecordCacheProbe(obs_.track, /*hit=*/true);
      }
      if (hit->negative) co_return Status(StatusCode::kNotFound, virtual_path);
      Lookup out;
      out.record = hit->record;
      out.stat = hit->stat;
      co_return out;
    }
    c_cache_misses_.Inc();
    if (obs_.incidents != nullptr) {
      obs_.incidents->RecordCacheProbe(obs_.track, /*hit=*/false);
    }
  }
  // Cache miss: fetch with a one-shot watch so the filled entry is dropped
  // on any remote change. The watch is registered even when the node is
  // absent, which is what keeps negative entries coherent across a remote
  // create.
  auto got = co_await zk_.Get(znode, /*watch=*/config_.enable_meta_cache);
  if (!got.ok()) {
    if (config_.enable_meta_cache && got.code() == StatusCode::kNotFound) {
      meta_cache_.PutNegative(znode);
    }
    co_return Status(MapZkCode(got.code()), virtual_path);
  }
  auto record = MetaRecord::Decode(got->data);
  if (!record.ok()) co_return record.status();
  if (config_.enable_meta_cache) {
    meta_cache_.PutPositive(znode, *record, got->stat);
  }
  Lookup out;
  out.record = std::move(*record);
  out.stat = got->stat;
  co_return out;
}

void DufsClient::InvalidateAfterMutation(const std::string& virtual_path,
                                         bool subtree) {
  if (!config_.enable_meta_cache) return;
  if (subtree) {
    meta_cache_.InvalidateSubtree(ZnodePath(virtual_path));
  } else {
    meta_cache_.Invalidate(ZnodePath(virtual_path));
  }
  // The parent's attr changed too (child count, child-list version).
  meta_cache_.Invalidate(ZnodePath(vfs::DirName(virtual_path)));
}

sim::Task<Status> DufsClient::CheckParentIsDir(std::string virtual_path) {
  const std::string parent = vfs::DirName(virtual_path);
  auto lookup = co_await LookupPath(parent);
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type != FileType::kDirectory) {
    co_return Status(StatusCode::kNotADirectory, parent);
  }
  co_return Status::Ok();
}

sim::Task<Status> DufsClient::EnsurePhysicalDirs(std::uint32_t backend,
                                                 Fid fid) {
  for (const auto& dir : PhysicalDirsForFid(fid)) {
    const std::string key = std::to_string(backend) + ":" + dir;
    if (known_phys_dirs_.count(key) > 0) continue;
    auto st = co_await backends_[backend]->Mkdir(dir, 0755);
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) co_return st;
    if (known_phys_dirs_.size() >= kMaxCacheEntries) known_phys_dirs_.clear();
    known_phys_dirs_.insert(key);
  }
  co_return Status::Ok();
}

vfs::FileAttr DufsClient::AttrFromDir(const MetaRecord& record,
                                      const zk::ZnodeStat& stat) const {
  FileAttr attr;
  attr.type = FileType::kDirectory;
  attr.mode = record.mode;
  attr.size = 0;
  attr.inode = static_cast<std::uint64_t>(stat.czxid);
  attr.nlink = 2 + static_cast<std::uint32_t>(stat.num_children);
  attr.ctime = stat.ctime;
  attr.mtime = record.mtime_override.value_or(stat.mtime);
  attr.atime = record.atime_override.value_or(stat.mtime);
  return attr;
}

// Fig. 6 — stat(): directories are answered entirely from ZooKeeper; files
// redirect to the physical file for size/times.
sim::Task<Result<FileAttr>> DufsClient::GetAttr(std::string path) {
  OpScope op(*this, t_stat_, "stat", path);
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok()) co_return lookup.status();
  const MetaRecord& record = lookup->record;

  if (record.type == FileType::kDirectory) {
    co_return AttrFromDir(record, lookup->stat);
  }
  if (record.type == FileType::kSymlink) {
    FileAttr attr;
    attr.type = FileType::kSymlink;
    attr.mode = record.mode;
    attr.size = record.symlink_target.size();
    attr.inode = static_cast<std::uint64_t>(lookup->stat.czxid);
    attr.ctime = attr.mtime = attr.atime = lookup->stat.ctime;
    co_return attr;
  }

  std::uint32_t backend = 0;
  auto& fs = BackendFor(record.fid, &backend);
  op.Arm();
  auto phys = co_await fs.GetAttr(PhysicalPathForFid(record.fid));
  if (!phys.ok()) {
    if (phys.code() == StatusCode::kNotFound) {
      co_return Status(StatusCode::kStale, "physical file missing: " + path);
    }
    co_return phys.status();
  }
  FileAttr attr = *phys;
  attr.type = FileType::kRegular;
  attr.mode = record.mode;
  attr.inode = FidHasher{}(record.fid);
  attr.ctime = lookup->stat.ctime;
  co_return attr;
}

// Fig. 5 — mkdir(): a single znode create; never touches a back-end.
sim::Task<Status> DufsClient::Mkdir(std::string path, vfs::Mode mode) {
  OpScope op(*this, t_mkdir_, "mkdir", path);
  if (auto st = vfs::ValidateVirtualPath(path); !st.ok()) co_return st;
  if (auto st = co_await CheckParentIsDir(path); !st.ok()) co_return st;
  op.Arm();
  auto created =
      co_await zk_.Create(ZnodePath(path), MetaRecord::Dir(mode).Encode());
  // Invalidate even on failure: kAlreadyExists refutes a cached negative.
  InvalidateAfterMutation(path);
  if (!created.ok()) co_return Status(MapZkCode(created.code()), path);
  co_return Status::Ok();
}

sim::Task<Status> DufsClient::Rmdir(std::string path) {
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type != FileType::kDirectory) {
    co_return Status(StatusCode::kNotADirectory, path);
  }
  auto st = co_await zk_.Delete(ZnodePath(path));
  InvalidateAfterMutation(path, /*subtree=*/true);
  if (!st.ok()) co_return Status(MapZkCode(st.code()), path);
  co_return Status::Ok();
}

sim::Task<Result<FileAttr>> DufsClient::Create(std::string path,
                                               vfs::Mode mode) {
  OpScope op(*this, t_create_, "create", path);
  if (auto st = vfs::ValidateVirtualPath(path); !st.ok()) co_return st;
  // Compound mode folds the parent check into the ResolveCreate itself
  // (missing ancestor -> ENOENT, file ancestor -> ENOTDIR, atomically).
  if (!config_.compound_ops) {
    if (auto st = co_await CheckParentIsDir(path); !st.ok()) co_return st;
  }

  const Fid fid = NextFid();
  std::uint32_t backend = 0;
  auto& fs = BackendFor(fid, &backend);

  // Overlap the znode create with physical-directory preparation: they are
  // independent, and the skeleton dirs are shared and idempotent, so there
  // is nothing to roll back if the znode create loses.
  auto create_znode = [](DufsClient& self, std::string znode, Fid f,
                         vfs::Mode m) -> sim::Task<Status> {
    if (!self.config_.compound_ops) {
      auto created = co_await self.zk_.Create(std::move(znode),
                                              MetaRecord::File(f, m).Encode());
      co_return created.status();
    }
    auto res = co_await self.zk_.ResolveCreate(
        znode, MetaRecord::File(f, m).Encode(), zk::CreateMode::kPersistent,
        kDirTag, /*watch=*/self.config_.enable_meta_cache);
    if (!res.ok()) co_return res.status();
    // Seed instead of invalidate: the reply's prefix carries the parent's
    // post-create stat, strictly fresher than what a re-fetch would see.
    self.SeedFromCompound(znode, *res);
    if (res->code == StatusCode::kOk && self.config_.enable_meta_cache) {
      // The reply does not echo the record the client just wrote; seed the
      // terminal from what we know plus the authoritative stat.
      self.meta_cache_.PutPositive(znode, MetaRecord::File(f, m), res->stat);
    }
    co_return Status(MapCompoundCode(zk::OpType::kResolveCreate, *res,
                                     zk::PathComponents(znode).size()));
  };
  std::vector<sim::Task<Status>> prep;
  prep.push_back(create_znode(*this, ZnodePath(path), fid, mode));
  prep.push_back(EnsurePhysicalDirs(backend, fid));
  op.Arm();
  auto prep_sts = co_await sim::WhenAll(std::move(prep));
  if (!config_.compound_ops) InvalidateAfterMutation(path);
  if (!prep_sts[0].ok()) co_return Status(MapZkCode(prep_sts[0].code()), path);
  if (!prep_sts[1].ok()) {
    (void)co_await zk_.Delete(ZnodePath(path));
    InvalidateAfterMutation(path);
    co_return prep_sts[1];
  }
  op.Arm();
  auto phys = co_await fs.Create(PhysicalPathForFid(fid), mode);
  if (!phys.ok() && phys.code() != StatusCode::kAlreadyExists) {
    (void)co_await zk_.Delete(ZnodePath(path));  // roll back the znode
    InvalidateAfterMutation(path);
    co_return phys.status();
  }

  FileAttr attr;
  attr.type = FileType::kRegular;
  attr.mode = mode;
  attr.inode = FidHasher{}(fid);
  co_return attr;
}

sim::Task<Status> DufsClient::Unlink(std::string path) {
  OpScope op(*this, t_unlink_, "unlink", path);
  if (config_.compound_ops) {
    // Resolve + delete in one replicated txn: no lookup round trip and no
    // version race to retry — the server checks kind server-side (interior
    // file -> ENOTDIR, directory terminal -> EISDIR) and removes the znode
    // atomically. The reply carries the deleted record, which names the
    // physical file still to be unlinked.
    const std::string znode = ZnodePath(path);
    auto res = co_await zk_.ResolveDelete(znode, zk::kAnyVersion, kDirTag,
                                          /*watch=*/config_.enable_meta_cache);
    if (!res.ok()) co_return Status(MapZkCode(res.code()), path);
    SeedFromCompound(znode, *res);
    if (res->code != StatusCode::kOk) {
      co_return Status(MapCompoundCode(zk::OpType::kResolveDelete, *res,
                                       zk::PathComponents(znode).size()),
                       path);
    }
    auto record = MetaRecord::Decode(res->data);
    if (record.ok() && record->type == FileType::kRegular) {
      auto& fs = BackendFor(record->fid);
      op.Arm();
      auto phys = co_await fs.Unlink(PhysicalPathForFid(record->fid));
      if (!phys.ok() && phys.code() != StatusCode::kNotFound) co_return phys;
    }
    co_return Status::Ok();
  }
  for (int attempt = 0; attempt <= config_.race_retries; ++attempt) {
    op.Arm();
    auto lookup = co_await LookupPath(path);
    if (!lookup.ok()) co_return lookup.status();
    if (lookup->record.type == FileType::kDirectory) {
      co_return Status(StatusCode::kIsADirectory, path);
    }
    op.Arm();
    auto st = co_await zk_.Delete(ZnodePath(path), lookup->stat.version);
    InvalidateAfterMutation(path);
    if (st.code() == StatusCode::kBadVersion) {
      continue;  // stale version (possibly from cache); re-resolve and retry
    }
    if (!st.ok()) co_return Status(MapZkCode(st.code()), path);
    if (lookup->record.type == FileType::kRegular) {
      auto& fs = BackendFor(lookup->record.fid);
      op.Arm();
      auto phys = co_await fs.Unlink(PhysicalPathForFid(lookup->record.fid));
      if (!phys.ok() && phys.code() != StatusCode::kNotFound) co_return phys;
    }
    co_return Status::Ok();
  }
  co_return Status(StatusCode::kConflict, path);
}

sim::Task<Result<std::vector<vfs::DirEntry>>> DufsClient::ReadDir(
    std::string path) {
  OpScope op(*this, t_readdir_, "readdir", path);
  if (config_.compound_ops) {
    // readdir + per-entry stat in one reply: the K child-record probes the
    // fan-out below pays (even in parallel, ~1 RTT + K server reads) become
    // part of the single ReadDirPlus, and every entry seeds the cache so a
    // following stat storm over the listing is all hits.
    const std::string znode = ZnodePath(path);
    auto res = co_await zk_.ReadDirPlus(znode,
                                        /*watch=*/config_.enable_meta_cache,
                                        kDirTag);
    if (!res.ok()) co_return Status(MapZkCode(res.code()), path);
    SeedFromCompound(znode, *res);
    if (res->code != StatusCode::kOk) {
      co_return Status(MapCompoundCode(zk::OpType::kReadDirPlus, *res,
                                       zk::PathComponents(znode).size()),
                       path);
    }
    std::vector<vfs::DirEntry> entries;
    entries.reserve(res->entries.size());
    for (auto& e : res->entries) {
      auto rec = MetaRecord::Decode(e.data);
      const FileType type = rec.ok() ? rec->type : FileType::kRegular;
      if (rec.ok() && config_.enable_meta_cache) {
        meta_cache_.PutPositive(znode + "/" + e.name, *rec, e.stat);
      }
      entries.push_back({std::move(e.name), type});
    }
    co_return entries;
  }
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type != FileType::kDirectory) {
    co_return Status(StatusCode::kNotADirectory, path);
  }
  op.Arm();
  auto children = co_await zk_.GetChildren(ZnodePath(path));
  if (!children.ok()) co_return Status(MapZkCode(children.code()), path);
  // Child type requires its record; ZooKeeper returns names only. The FUSE
  // readdir contract only needs types opportunistically, so probe through
  // the (cheap, local-read) Get — all children concurrently, bounded by the
  // fan-out knob, so a K-entry listing costs ~1 RTT instead of K.
  auto child_type = [](DufsClient& self,
                       std::string child_path) -> sim::Task<FileType> {
    auto child = co_await self.LookupPath(std::move(child_path));
    co_return child.ok() ? child->record.type : FileType::kRegular;
  };
  std::vector<sim::Task<FileType>> probes;
  probes.reserve(children->size());
  for (const auto& name : *children) {
    probes.push_back(child_type(
        *this, path == "/" ? "/" + name : path + "/" + name));
  }
  op.Arm();
  auto types = co_await sim::WhenAll(std::move(probes), config_.lookup_fanout);
  std::vector<vfs::DirEntry> entries;
  entries.reserve(children->size());
  for (std::size_t i = 0; i < children->size(); ++i) {
    entries.push_back({std::move((*children)[i]), types[i]});
  }
  co_return entries;
}

sim::Task<Status> DufsClient::RenameSubtree(std::string from, std::string to,
                                            Lookup src) {
  // Destination semantics (POSIX): a directory may replace only an *empty*
  // directory; anything else is a type/occupancy error.
  std::optional<std::int32_t> replace_dst_version;
  auto dst = co_await LookupPath(to);
  if (dst.ok()) {
    if (dst->record.type != FileType::kDirectory) {
      co_return Status(StatusCode::kNotADirectory, to);
    }
    if (dst->stat.num_children > 0) {
      co_return Status(StatusCode::kNotEmpty, to);
    }
    replace_dst_version = dst->stat.version;
  } else if (dst.code() != StatusCode::kNotFound) {
    co_return dst.status();
  }

  // Collect the subtree breadth-first so creates are parent-before-child.
  // Each BFS level fans out: one parallel wave of GetChildren over the
  // level's directories, then one parallel wave of Gets over all their
  // children — subtree depth, not size, bounds the round-trip count.
  struct NodeCopy {
    std::string rel;  // "" for the root of the subtree
    std::vector<std::uint8_t> data;
    std::int32_t version;
  };
  std::vector<NodeCopy> nodes;
  nodes.push_back({"", src.record.Encode(), src.stat.version});
  std::vector<std::string> level{""};  // directory rels at the current depth
  while (!level.empty()) {
    std::vector<sim::Task<Result<std::vector<std::string>>>> list_tasks;
    list_tasks.reserve(level.size());
    for (const auto& rel : level) {
      list_tasks.push_back(zk_.GetChildren(ZnodePath(from + rel)));
    }
    auto lists =
        co_await sim::WhenAll(std::move(list_tasks), config_.lookup_fanout);
    std::vector<std::string> child_rels;
    for (std::size_t d = 0; d < level.size(); ++d) {
      if (!lists[d].ok()) {
        co_return Status(MapZkCode(lists[d].code()), from + level[d]);
      }
      for (const auto& name : *lists[d]) {
        child_rels.push_back(level[d] + "/" + name);
      }
    }
    if (nodes.size() + child_rels.size() > config_.dir_rename_limit) {
      co_return Status(StatusCode::kCrossDevice,
                       "directory rename exceeds atomic-move limit");
    }
    std::vector<sim::Task<Result<zk::OpResult>>> get_tasks;
    get_tasks.reserve(child_rels.size());
    for (const auto& rel : child_rels) {
      get_tasks.push_back(zk_.Get(ZnodePath(from + rel)));
    }
    auto gets =
        co_await sim::WhenAll(std::move(get_tasks), config_.lookup_fanout);
    level.clear();
    for (std::size_t i = 0; i < child_rels.size(); ++i) {
      if (!gets[i].ok()) co_return Status(StatusCode::kConflict, from);
      nodes.push_back({child_rels[i], gets[i]->data, gets[i]->stat.version});
      auto rec = MetaRecord::Decode(gets[i]->data);
      if (rec.ok() && rec->type == FileType::kDirectory) {
        level.push_back(child_rels[i]);
      }
    }
  }

  std::vector<zk::Op> ops;
  ops.reserve(nodes.size() * 3 + 1);
  for (const auto& n : nodes) {
    ops.push_back(zk::Op::CheckVersion(ZnodePath(from + n.rel), n.version));
  }
  if (replace_dst_version.has_value()) {
    ops.push_back(zk::Op::Delete(ZnodePath(to), *replace_dst_version));
  }
  for (const auto& n : nodes) {
    ops.push_back(zk::Op::Create(ZnodePath(to + n.rel), n.data));
  }
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    ops.push_back(zk::Op::Delete(ZnodePath(from + it->rel), it->version));
  }
  auto multi = co_await zk_.Multi(std::move(ops));
  // Invalidate both subtrees regardless of outcome: a failed multi means a
  // competing mutation, so cached copies under either root are suspect.
  InvalidateAfterMutation(from, /*subtree=*/true);
  InvalidateAfterMutation(to, /*subtree=*/true);
  if (!multi.ok()) co_return Status(MapZkCode(multi.code()), from);
  co_return Status::Ok();
}

// Rename: the indirection through FIDs means no physical data moves — only
// znodes change (§IV-A). Files move atomically via a ZooKeeper multi.
sim::Task<Status> DufsClient::Rename(std::string from, std::string to) {
  OpScope op(*this, t_rename_, "rename", from);
  for (int attempt = 0; attempt <= config_.race_retries; ++attempt) {
    op.Arm();
    auto src = co_await LookupPath(from);
    if (!src.ok()) co_return src.status();
    if (from == to) co_return Status::Ok();  // POSIX no-op
    if (vfs::IsWithin(from, to)) {
      co_return Status(StatusCode::kInvalidArgument,
                       "rename into own subtree");
    }
    if (auto st = co_await CheckParentIsDir(to); !st.ok()) co_return st;

    if (src->record.type == FileType::kDirectory) {
      auto st = co_await RenameSubtree(from, to, *src);
      if (st.code() == StatusCode::kConflict ||
          st.code() == StatusCode::kBadVersion ||
          st.code() == StatusCode::kAlreadyExists) {
        continue;  // lost a race (or served a stale cached dst); retry fresh
      }
      co_return st;
    }

    // File / symlink: check src version, replace dst if it is a file,
    // create dst, delete src — one atomic multi.
    std::vector<zk::Op> ops;
    ops.push_back(zk::Op::CheckVersion(ZnodePath(from), src->stat.version));
    Fid replaced_fid;
    auto dst = co_await LookupPath(to);
    if (dst.ok()) {
      if (dst->record.type == FileType::kDirectory) {
        co_return Status(StatusCode::kIsADirectory, to);
      }
      replaced_fid = dst->record.fid;
      ops.push_back(zk::Op::Delete(ZnodePath(to), dst->stat.version));
    } else if (dst.code() != StatusCode::kNotFound) {
      co_return dst.status();
    }
    ops.push_back(zk::Op::Create(ZnodePath(to), src->record.Encode()));
    ops.push_back(zk::Op::Delete(ZnodePath(from), src->stat.version));

    auto multi = co_await zk_.Multi(std::move(ops));
    InvalidateAfterMutation(from);
    InvalidateAfterMutation(to);
    if (multi.ok()) {
      if (!replaced_fid.IsNull()) {
        auto& fs = BackendFor(replaced_fid);
        (void)co_await fs.Unlink(PhysicalPathForFid(replaced_fid));
      }
      co_return Status::Ok();
    }
    if (multi.code() == StatusCode::kBadVersion ||
        multi.code() == StatusCode::kAlreadyExists ||
        multi.code() == StatusCode::kNotFound) {
      continue;  // lost a race; re-resolve (cache dropped above) and retry
    }
    co_return Status(MapZkCode(multi.code()), from);
  }
  co_return Status(StatusCode::kConflict, from);
}

sim::Task<Status> DufsClient::Chmod(std::string path, vfs::Mode mode) {
  for (int attempt = 0; attempt <= config_.race_retries; ++attempt) {
    auto lookup = co_await LookupPath(path);
    if (!lookup.ok()) co_return lookup.status();
    MetaRecord record = lookup->record;
    record.mode = mode;
    auto st = co_await zk_.Set(ZnodePath(path), record.Encode(),
                               lookup->stat.version);
    if (config_.enable_meta_cache) meta_cache_.Invalidate(ZnodePath(path));
    if (st.ok()) co_return Status::Ok();
    if (st.code() != StatusCode::kBadVersion) {
      co_return Status(MapZkCode(st.code()), path);
    }
  }
  co_return Status(StatusCode::kConflict, path);
}

sim::Task<Status> DufsClient::Utimens(std::string path, std::int64_t atime,
                                      std::int64_t mtime) {
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type == FileType::kRegular) {
    // Times live with the physical file and update transparently (§IV-D).
    auto& fs = BackendFor(lookup->record.fid);
    co_return co_await fs.Utimens(PhysicalPathForFid(lookup->record.fid),
                                  atime, mtime);
  }
  MetaRecord record = lookup->record;
  record.atime_override = atime;
  record.mtime_override = mtime;
  auto st = co_await zk_.Set(ZnodePath(path), record.Encode(),
                             lookup->stat.version);
  if (config_.enable_meta_cache) meta_cache_.Invalidate(ZnodePath(path));
  if (!st.ok()) co_return Status(MapZkCode(st.code()), path);
  co_return Status::Ok();
}

sim::Task<Status> DufsClient::Truncate(std::string path, std::uint64_t size) {
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type != FileType::kRegular) {
    co_return Status(StatusCode::kIsADirectory, path);
  }
  auto& fs = BackendFor(lookup->record.fid);
  co_return co_await fs.Truncate(PhysicalPathForFid(lookup->record.fid),
                                 size);
}

sim::Task<Status> DufsClient::Symlink(std::string target,
                                      std::string link_path) {
  if (auto st = vfs::ValidateVirtualPath(link_path); !st.ok()) co_return st;
  if (auto st = co_await CheckParentIsDir(link_path); !st.ok()) co_return st;
  auto created = co_await zk_.Create(
      ZnodePath(link_path), MetaRecord::Symlink(std::move(target)).Encode());
  InvalidateAfterMutation(link_path);
  if (!created.ok()) co_return Status(MapZkCode(created.code()), link_path);
  co_return Status::Ok();
}

sim::Task<Result<std::string>> DufsClient::ReadLink(std::string path) {
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type != FileType::kSymlink) {
    co_return Status(StatusCode::kInvalidArgument, "not a symlink");
  }
  co_return lookup->record.symlink_target;
}

sim::Task<Status> DufsClient::Access(std::string path, vfs::Mode mode) {
  auto attr = co_await GetAttr(std::move(path));
  if (!attr.ok()) co_return attr.status();
  const vfs::Mode perms = attr->mode;
  const vfs::Mode have = (perms | (perms >> 3) | (perms >> 6)) & 07;
  if ((mode & have) != mode) co_return Status(StatusCode::kPermissionDenied);
  co_return Status::Ok();
}

// Fig. 3 — open(): ZooKeeper lookup (B), deterministic mapping (C), then
// the physical open on the back-end (D).
sim::Task<Result<vfs::FileHandle>> DufsClient::Open(std::string path,
                                                    std::uint32_t flags) {
  auto lookup = co_await LookupPath(path);
  if (!lookup.ok() && lookup.code() == StatusCode::kNotFound &&
      (flags & vfs::kCreate)) {
    auto created = co_await Create(path, vfs::kDefaultFileMode);
    if (!created.ok() && created.code() != StatusCode::kAlreadyExists) {
      co_return created.status();
    }
    lookup = co_await LookupPath(path);
  }
  if (!lookup.ok()) co_return lookup.status();
  if (lookup->record.type == FileType::kDirectory) {
    co_return Status(StatusCode::kIsADirectory, path);
  }
  if (lookup->record.type == FileType::kSymlink) {
    co_return Status(StatusCode::kInvalidArgument, "open through symlink");
  }
  std::uint32_t backend = 0;
  auto& fs = BackendFor(lookup->record.fid, &backend);
  auto handle = co_await fs.Open(PhysicalPathForFid(lookup->record.fid),
                                 flags & ~vfs::kCreate);
  if (!handle.ok()) co_return handle.status();
  const vfs::FileHandle fd = next_handle_++;
  open_files_.emplace(fd, OpenState{backend, *handle});
  co_return fd;
}

sim::Task<Status> DufsClient::Release(vfs::FileHandle handle) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  const OpenState state = it->second;
  open_files_.erase(it);
  co_return co_await backends_[state.backend]->Release(state.backend_handle);
}

sim::Task<Result<vfs::Bytes>> DufsClient::Read(vfs::FileHandle handle,
                                               std::uint64_t offset,
                                               std::uint64_t length) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  co_return co_await backends_[it->second.backend]->Read(
      it->second.backend_handle, offset, length);
}

sim::Task<Result<std::uint64_t>> DufsClient::Write(vfs::FileHandle handle,
                                                   std::uint64_t offset,
                                                   vfs::Bytes data) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  co_return co_await backends_[it->second.backend]->Write(
      it->second.backend_handle, offset, std::move(data));
}

sim::Task<Result<vfs::FsStats>> DufsClient::StatFs() {
  std::vector<sim::Task<Result<vfs::FsStats>>> tasks;
  tasks.reserve(backends_.size());
  for (auto* backend : backends_) tasks.push_back(backend->StatFs());
  auto all = co_await sim::WhenAll(std::move(tasks), config_.lookup_fanout);
  vfs::FsStats total;
  for (const auto& stats : all) {
    if (!stats.ok()) co_return stats.status();
    total.total_bytes += stats->total_bytes;
    total.free_bytes += stats->free_bytes;
    total.files += stats->files;
  }
  co_return total;
}

std::size_t DufsClient::EstimateMemoryBytes() const {
  constexpr std::size_t kFixed = 3 * 1024 * 1024;  // process + FUSE channel
  return kFixed + meta_cache_.EstimateMemoryBytes() +
         known_phys_dirs_.size() * 96 + open_files_.size() * 48;
}

}  // namespace dufs::core
