#include "core/fsck.h"

#include <algorithm>

namespace dufs::core {

DufsFsck::DufsFsck(DufsClient& client, zk::ZkClient& zk,
                   std::vector<vfs::FileSystem*> backends)
    : client_(client), zk_(zk), backends_(std::move(backends)) {}

sim::Task<Status> DufsFsck::WalkNamespace(
    std::string virtual_path, FsckReport& report,  // dufs-lint: allow(coro-ref-param)
    std::vector<std::pair<std::uint32_t, Fid>>& referenced) {
  const std::string ns_root = client_.config().meta_prefix + "/ns";
  const std::string znode =
      virtual_path == "/" ? ns_root : ns_root + virtual_path;
  auto got = co_await zk_.Get(znode);
  if (!got.ok()) co_return got.status();
  auto record = MetaRecord::Decode(got->data);
  if (!record.ok()) {
    report.corrupt_records.push_back(virtual_path);
    co_return Status::Ok();
  }
  switch (record->type) {
    case vfs::FileType::kDirectory: {
      ++report.directories;
      auto children = co_await zk_.GetChildren(znode);
      if (!children.ok()) co_return children.status();
      for (const auto& name : *children) {
        const std::string child =
            virtual_path == "/" ? "/" + name : virtual_path + "/" + name;
        auto st = co_await WalkNamespace(child, report, referenced);
        if (!st.ok()) co_return st;
      }
      break;
    }
    case vfs::FileType::kSymlink:
      ++report.symlinks;
      break;
    case vfs::FileType::kRegular: {
      ++report.files;
      const std::uint32_t backend = client_.placement().Place(record->fid);
      referenced.emplace_back(backend, record->fid);
      auto attr = co_await backends_[backend]->GetAttr(
          PhysicalPathForFid(record->fid));
      if (attr.code() == StatusCode::kNotFound) {
        report.dangling.push_back(virtual_path);
      } else if (!attr.ok()) {
        co_return attr.status();
      }
      break;
    }
  }
  co_return Status::Ok();
}

sim::Task<Status> DufsFsck::WalkBackend(
    std::uint32_t backend, std::string dir, int level, FsckReport& report,  // dufs-lint: allow(coro-ref-param)
    std::vector<std::pair<std::uint32_t, Fid>>& referenced) {
  auto entries = co_await backends_[backend]->ReadDir(dir);
  if (entries.code() == StatusCode::kNotFound) co_return Status::Ok();
  if (!entries.ok()) co_return entries.status();
  for (const auto& entry : *entries) {
    const std::string path =
        dir == "/" ? "/" + entry.name : dir + "/" + entry.name;
    if (entry.type == vfs::FileType::kDirectory && level < 3) {
      auto st = co_await WalkBackend(backend, path, level + 1, report,
                                     referenced);
      if (!st.ok()) co_return st;
      continue;
    }
    if (entry.type != vfs::FileType::kRegular) continue;
    ++report.physical_files;
    auto fid = FidFromPhysicalPath(path);
    const bool known =
        fid.has_value() &&
        std::find(referenced.begin(), referenced.end(),
                  std::make_pair(backend, *fid)) != referenced.end();
    if (!known) report.orphans.emplace_back(backend, path);
  }
  co_return Status::Ok();
}

sim::Task<Result<FsckReport>> DufsFsck::Check() {
  FsckReport report;
  std::vector<std::pair<std::uint32_t, Fid>> referenced;
  auto st = co_await WalkNamespace("/", report, referenced);
  if (!st.ok()) co_return st;
  // Sort for binary-search-free std::find? Linear is fine for tool usage,
  // but sorting keeps the orphan scan O(F log F) on big volumes.
  std::sort(referenced.begin(), referenced.end());
  for (std::uint32_t b = 0; b < backends_.size(); ++b) {
    auto walk = co_await WalkBackend(b, "/", 0, report, referenced);
    if (!walk.ok()) co_return walk;
  }
  co_return report;
}

sim::Task<Result<FsckReport>> DufsFsck::Repair() {
  auto report = co_await Check();
  if (!report.ok()) co_return report;
  for (const auto& path : report->dangling) {
    // Metadata without data: drop the znode so the name can be reused.
    (void)co_await zk_.Delete(client_.config().meta_prefix + "/ns" + path);
  }
  for (const auto& [backend, path] : report->orphans) {
    // Data without metadata: reclaim the space.
    (void)co_await backends_[backend]->Unlink(path);
  }
  co_return report;
}

}  // namespace dufs::core
