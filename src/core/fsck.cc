#include "core/fsck.h"

#include <algorithm>

namespace dufs::core {
namespace {

// Unwind point for the iterative walks below. With a zero-latency backend
// (MemFs) nothing in the loop body ever suspends, so every co_await resumes
// its continuation on the native stack; at -O0 the compiler does not turn
// symmetric transfer into a tail call and thousands of synchronous
// iterations overflow the stack (caught under ASan). A zero-duration Delay
// always routes through the event queue, unwinding to the scheduler without
// advancing sim time or perturbing the walk order.
constexpr int kYieldEvery = 64;

sim::Task<void> MaybeYield(int& budget) {  // dufs-lint: allow(coro-ref-param) caller awaits inline
  if (--budget <= 0) {
    budget = kYieldEvery;
    co_await sim::Simulation::Current()->Delay(sim::Duration{0});
  }
}

}  // namespace

DufsFsck::DufsFsck(DufsClient& client, zk::ZkClient& zk,
                   std::vector<vfs::FileSystem*> backends)
    : client_(client), zk_(zk), backends_(std::move(backends)) {}

sim::Task<Status> DufsFsck::WalkNamespace(
    std::string virtual_path, FsckReport& report,  // dufs-lint: allow(coro-ref-param)
    std::vector<std::pair<std::uint32_t, Fid>>& referenced) {
  const std::string ns_root = client_.config().meta_prefix + "/ns";
  // Explicit DFS stack instead of recursion: a namespace is as deep as users
  // make it, and a recursive coroutine walk overflows the stack on deep
  // chains (caught under ASan). Children are pushed in reverse so the pop
  // order matches the recursive preorder exactly — the report vectors are
  // order-sensitive.
  std::vector<std::string> stack;
  stack.push_back(std::move(virtual_path));
  int yield_budget = kYieldEvery;
  while (!stack.empty()) {
    const std::string path = std::move(stack.back());
    stack.pop_back();
    co_await MaybeYield(yield_budget);
    const std::string znode = path == "/" ? ns_root : ns_root + path;
    auto got = co_await zk_.Get(znode);
    if (!got.ok()) co_return got.status();
    auto record = MetaRecord::Decode(got->data);
    if (!record.ok()) {
      report.corrupt_records.push_back(path);
      continue;
    }
    switch (record->type) {
      case vfs::FileType::kDirectory: {
        ++report.directories;
        auto children = co_await zk_.GetChildren(znode);
        if (!children.ok()) co_return children.status();
        for (auto it = children->rbegin(); it != children->rend(); ++it) {
          stack.push_back(path == "/" ? "/" + *it : path + "/" + *it);
        }
        break;
      }
      case vfs::FileType::kSymlink:
        ++report.symlinks;
        break;
      case vfs::FileType::kRegular: {
        ++report.files;
        const std::uint32_t backend = client_.placement().Place(record->fid);
        referenced.emplace_back(backend, record->fid);
        auto attr = co_await backends_[backend]->GetAttr(
            PhysicalPathForFid(record->fid));
        if (attr.code() == StatusCode::kNotFound) {
          report.dangling.push_back(path);
        } else if (!attr.ok()) {
          co_return attr.status();
        }
        break;
      }
    }
  }
  co_return Status::Ok();
}

sim::Task<Status> DufsFsck::WalkBackend(
    std::uint32_t backend, std::string dir, int level, FsckReport& report,  // dufs-lint: allow(coro-ref-param)
    std::vector<std::pair<std::uint32_t, Fid>>& referenced) {
  // Same iterative-DFS conversion as WalkNamespace. Every entry (file or
  // directory) becomes a work item so files are still visited at their
  // parent's iteration point, in listing order — identical preorder to the
  // old recursion.
  struct Item {
    std::string path;
    vfs::FileType type;
    int level;
  };
  std::vector<Item> stack;
  stack.push_back(Item{std::move(dir), vfs::FileType::kDirectory, level});
  int yield_budget = kYieldEvery;
  while (!stack.empty()) {
    const Item item = std::move(stack.back());
    stack.pop_back();
    co_await MaybeYield(yield_budget);
    if (item.type == vfs::FileType::kDirectory) {
      auto entries = co_await backends_[backend]->ReadDir(item.path);
      if (entries.code() == StatusCode::kNotFound) continue;
      if (!entries.ok()) co_return entries.status();
      for (auto it = entries->rbegin(); it != entries->rend(); ++it) {
        if (it->type == vfs::FileType::kDirectory && item.level >= 3) {
          continue;  // the FID hierarchy is 3 levels deep by construction
        }
        if (it->type != vfs::FileType::kDirectory &&
            it->type != vfs::FileType::kRegular) {
          continue;
        }
        const std::string path = item.path == "/" ? "/" + it->name
                                                  : item.path + "/" + it->name;
        stack.push_back(Item{path, it->type, item.level + 1});
      }
      continue;
    }
    ++report.physical_files;
    auto fid = FidFromPhysicalPath(item.path);
    const bool known =
        fid.has_value() &&
        std::find(referenced.begin(), referenced.end(),
                  std::make_pair(backend, *fid)) != referenced.end();
    if (!known) report.orphans.emplace_back(backend, item.path);
  }
  co_return Status::Ok();
}

sim::Task<Result<FsckReport>> DufsFsck::Check() {
  FsckReport report;
  std::vector<std::pair<std::uint32_t, Fid>> referenced;
  auto st = co_await WalkNamespace("/", report, referenced);
  if (!st.ok()) co_return st;
  // Sorted so the WalkBackend orphan scan could binary-search; linear
  // std::find is fine at tool scale but keeps a deterministic order cheap.
  std::sort(referenced.begin(), referenced.end());
  for (std::uint32_t b = 0; b < backends_.size(); ++b) {
    auto walk = co_await WalkBackend(b, "/", 0, report, referenced);
    if (!walk.ok()) co_return walk;
  }
  co_return report;
}

sim::Task<Result<FsckReport>> DufsFsck::Repair() {
  auto report = co_await Check();
  if (!report.ok()) co_return report;
  for (const auto& path : report->dangling) {
    // Metadata without data: drop the znode so the name can be reused.
    (void)co_await zk_.Delete(client_.config().meta_prefix + "/ns" + path);
  }
  for (const auto& [backend, path] : report->orphans) {
    // Data without metadata: reclaim the space.
    (void)co_await backends_[backend]->Unlink(path);
  }
  co_return report;
}

}  // namespace dufs::core
