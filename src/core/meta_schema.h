// What DUFS stores in each znode's data field (paper §IV-D/E).
//
// ZooKeeper's standard znode stat supplies ctime/mtime and child counts for
// directories; the custom data field carries the DUFS record: node kind,
// the FID for files, the permission mode, and the symlink target. File
// sizes and data times live with the physical file on the back-end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/fid.h"
#include "common/status.h"
#include "vfs/types.h"

namespace dufs::core {

struct MetaRecord {
  vfs::FileType type = vfs::FileType::kDirectory;
  Fid fid;              // files only
  vfs::Mode mode = vfs::kDefaultDirMode;
  std::string symlink_target;
  // Explicit time overrides for directories (utimens on a directory cannot
  // be expressed through znode stats, which ZooKeeper owns).
  std::optional<std::int64_t> atime_override;
  std::optional<std::int64_t> mtime_override;

  std::vector<std::uint8_t> Encode() const;
  static Result<MetaRecord> Decode(const std::vector<std::uint8_t>& bytes);

  static MetaRecord Dir(vfs::Mode mode) {
    MetaRecord r;
    r.type = vfs::FileType::kDirectory;
    r.mode = mode;
    return r;
  }
  static MetaRecord File(const Fid& fid, vfs::Mode mode) {
    MetaRecord r;
    r.type = vfs::FileType::kRegular;
    r.fid = fid;
    r.mode = mode;
    return r;
  }
  static MetaRecord Symlink(std::string target) {
    MetaRecord r;
    r.type = vfs::FileType::kSymlink;
    r.mode = 0777;
    r.symlink_target = std::move(target);
    return r;
  }
};

}  // namespace dufs::core
