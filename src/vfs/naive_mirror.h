// The strawman the paper argues against (Fig. 1): multiple metadata replicas
// updated by each client independently, with NO coordination service.
//
// Metadata mutations are applied to every back-end one after another; two
// clients doing this concurrently can apply their operations in different
// orders on different back-ends, leaving the replicas inconsistent.
// `examples/consistency_demo` and the integration tests reproduce exactly
// the mkdir-vs-rename race of Fig. 1 and show DUFS (ZooKeeper-coordinated)
// does not diverge while this filesystem does.
#pragma once

#include <vector>

#include "vfs/filesystem.h"
#include "vfs/path.h"

namespace dufs::vfs {

class NaiveMirrorFs : public FileSystem {
 public:
  explicit NaiveMirrorFs(std::vector<FileSystem*> backends)
      : backends_(std::move(backends)) {}

  std::string name() const override { return "naive-mirror"; }

  sim::Task<Result<FileAttr>> GetAttr(std::string path) override;
  sim::Task<Status> Mkdir(std::string path, Mode mode) override;
  sim::Task<Status> Rmdir(std::string path) override;
  sim::Task<Result<FileAttr>> Create(std::string path, Mode mode) override;
  sim::Task<Status> Unlink(std::string path) override;
  sim::Task<Result<std::vector<DirEntry>>> ReadDir(std::string path) override;
  sim::Task<Status> Rename(std::string from, std::string to) override;
  sim::Task<Status> Chmod(std::string path, Mode mode) override;
  sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                            std::int64_t mtime) override;
  sim::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  sim::Task<Status> Symlink(std::string target,
                            std::string link_path) override;
  sim::Task<Result<std::string>> ReadLink(std::string path) override;
  sim::Task<Status> Access(std::string path, Mode mode) override;
  sim::Task<Result<FileHandle>> Open(std::string path,
                                     std::uint32_t flags) override;
  sim::Task<Status> Release(FileHandle handle) override;
  sim::Task<Result<Bytes>> Read(FileHandle handle, std::uint64_t offset,
                                std::uint64_t length) override;
  sim::Task<Result<std::uint64_t>> Write(FileHandle handle,
                                         std::uint64_t offset,
                                         Bytes data) override;
  sim::Task<Result<FsStats>> StatFs() override;

 private:
  // Applies `op` to each backend in order and returns the first failure.
  template <typename Fn>
  sim::Task<Status> Fanout(Fn op) {
    Status last = Status::Ok();
    for (FileSystem* fs : backends_) {
      Status st = co_await op(*fs);
      if (!st.ok()) last = st;
    }
    co_return last;
  }

  std::vector<FileSystem*> backends_;
};

}  // namespace dufs::vfs
