// Virtual-path utilities (the VFS dialect: normalization allowed, unlike the
// strict znode paths).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dufs::vfs {

// Splits "/a/b/c" -> {"a","b","c"}; "/" -> {}.
std::vector<std::string> SplitPath(std::string_view path);

// Joins a parent path with a child name ("/a" + "b" -> "/a/b").
std::string JoinPath(std::string_view parent, std::string_view child);

// Resolves ".", "..", duplicate slashes. "/a/./b/../c" -> "/a/c".
// ".." above the root clamps at the root.
std::string NormalizePath(std::string_view path);

// Accepts absolute, normalized paths ("/", "/a/b"); rejects anything else.
Status ValidateVirtualPath(std::string_view path);

std::string DirName(std::string_view path);   // "/a/b" -> "/a"; "/a" -> "/"
std::string_view BaseName(std::string_view path);  // "/a/b" -> "b"

// True if `path` == `ancestor` or lies beneath it.
bool IsWithin(std::string_view ancestor, std::string_view path);

}  // namespace dufs::vfs
