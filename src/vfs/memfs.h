// In-memory local filesystem.
//
// Plays two roles: (a) the "local filesystem" a dummy FUSE layer forwards to
// in the paper's Fig. 11 baseline, and (b) a fast correct back-end for unit
// tests. All semantics are real (hierarchy, handles that survive unlink,
// symlinks, rename with subtree moves); latency is a small constant.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "sim/simulation.h"
#include "vfs/filesystem.h"
#include "vfs/path.h"

namespace dufs::vfs {

struct MemFsConfig {
  sim::Duration op_latency = sim::Duration{0};  // simulated per-op cost
};

class MemFs : public FileSystem {
 public:
  using Config = MemFsConfig;

  explicit MemFs(sim::Simulation& sim, std::string name = "memfs",
                 MemFsConfig config = MemFsConfig{});

  std::string name() const override { return name_; }

  sim::Task<Result<FileAttr>> GetAttr(std::string path) override;
  sim::Task<Status> Mkdir(std::string path, Mode mode) override;
  sim::Task<Status> Rmdir(std::string path) override;
  sim::Task<Result<FileAttr>> Create(std::string path, Mode mode) override;
  sim::Task<Status> Unlink(std::string path) override;
  sim::Task<Result<std::vector<DirEntry>>> ReadDir(std::string path) override;
  sim::Task<Status> Rename(std::string from, std::string to) override;
  sim::Task<Status> Chmod(std::string path, Mode mode) override;
  sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                            std::int64_t mtime) override;
  sim::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  sim::Task<Status> Symlink(std::string target,
                            std::string link_path) override;
  sim::Task<Result<std::string>> ReadLink(std::string path) override;
  sim::Task<Status> Access(std::string path, Mode mode) override;

  sim::Task<Result<FileHandle>> Open(std::string path,
                                     std::uint32_t flags) override;
  sim::Task<Status> Release(FileHandle handle) override;
  sim::Task<Result<Bytes>> Read(FileHandle handle, std::uint64_t offset,
                                std::uint64_t length) override;
  sim::Task<Result<std::uint64_t>> Write(FileHandle handle,
                                         std::uint64_t offset,
                                         Bytes data) override;
  sim::Task<Result<FsStats>> StatFs() override;

  std::size_t file_count() const { return file_count_; }
  std::size_t open_handles() const { return handles_.size(); }

 private:
  struct Node {
    FileAttr attr;
    std::map<std::string, std::shared_ptr<Node>> children;  // directories
    Bytes data;                                             // regular files
    std::string target;                                     // symlinks
  };

  sim::Task<void> Latency();
  std::shared_ptr<Node> Lookup(std::string_view path) const;
  Result<std::shared_ptr<Node>> LookupOr(std::string_view path) const;
  // Returns the parent node and validates the child name.
  Result<std::shared_ptr<Node>> ParentOf(std::string_view path) const;
  FileAttr NewAttr(FileType type, Mode mode);

  sim::Simulation& sim_;
  std::string name_;
  Config config_;
  std::shared_ptr<Node> root_;
  std::unordered_map<FileHandle, std::shared_ptr<Node>> handles_;
  FileHandle next_handle_ = 1;
  std::uint64_t next_inode_ = 2;  // 1 is the root
  std::size_t file_count_ = 0;
};

}  // namespace dufs::vfs
