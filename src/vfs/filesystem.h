// The filesystem SPI — what FUSE calls `struct fuse_operations` (paper
// §IV-C). Every back-end (MemFs, LustreSim client, PvfsSim client) and DUFS
// itself implement this interface; the FuseMount dispatcher sits on top and
// adds fd management plus the FUSE per-op overhead.
//
// All operations are coroutines because most implementations cross the
// simulated network.
#pragma once

#include <string>
#include <vector>

#include "sim/task.h"
#include "vfs/types.h"

namespace dufs::vfs {

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::string name() const = 0;

  // --- namespace / metadata ----------------------------------------------
  virtual sim::Task<Result<FileAttr>> GetAttr(std::string path) = 0;
  virtual sim::Task<Status> Mkdir(std::string path, Mode mode) = 0;
  virtual sim::Task<Status> Rmdir(std::string path) = 0;
  virtual sim::Task<Result<FileAttr>> Create(std::string path, Mode mode) = 0;
  virtual sim::Task<Status> Unlink(std::string path) = 0;
  virtual sim::Task<Result<std::vector<DirEntry>>> ReadDir(
      std::string path) = 0;
  virtual sim::Task<Status> Rename(std::string from, std::string to) = 0;
  virtual sim::Task<Status> Chmod(std::string path, Mode mode) = 0;
  virtual sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                                    std::int64_t mtime) = 0;
  virtual sim::Task<Status> Truncate(std::string path, std::uint64_t size) = 0;
  virtual sim::Task<Status> Symlink(std::string target,
                                    std::string link_path) = 0;
  virtual sim::Task<Result<std::string>> ReadLink(std::string path) = 0;
  virtual sim::Task<Status> Access(std::string path, Mode mode) = 0;

  // --- data ---------------------------------------------------------------
  virtual sim::Task<Result<FileHandle>> Open(std::string path,
                                             std::uint32_t flags) = 0;
  virtual sim::Task<Status> Release(FileHandle handle) = 0;
  virtual sim::Task<Result<Bytes>> Read(FileHandle handle, std::uint64_t offset,
                                        std::uint64_t length) = 0;
  virtual sim::Task<Result<std::uint64_t>> Write(FileHandle handle,
                                                 std::uint64_t offset,
                                                 Bytes data) = 0;

  virtual sim::Task<Result<FsStats>> StatFs() = 0;
};

}  // namespace dufs::vfs
