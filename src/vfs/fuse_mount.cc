#include "vfs/fuse_mount.h"

namespace dufs::vfs {

FuseMount::FuseMount(net::Node& client_node, FileSystem& fs, FuseConfig config)
    : node_(client_node), fs_(fs), config_(config) {}

sim::Task<void> FuseMount::Overhead() {
  ++ops_dispatched_;
  co_await node_.Compute(config_.per_op_overhead);
}

sim::Task<Result<FileAttr>> FuseMount::Stat(std::string path) {
  co_await Overhead();
  co_return co_await fs_.GetAttr(NormalizePath(path));
}

sim::Task<Status> FuseMount::Mkdir(std::string path, Mode mode) {
  co_await Overhead();
  co_return co_await fs_.Mkdir(NormalizePath(path), mode);
}

sim::Task<Status> FuseMount::Rmdir(std::string path) {
  co_await Overhead();
  co_return co_await fs_.Rmdir(NormalizePath(path));
}

sim::Task<Result<int>> FuseMount::Creat(std::string path, Mode mode) {
  co_await Overhead();
  const std::string norm = NormalizePath(path);
  auto created = co_await fs_.Create(norm, mode);
  if (!created.ok()) co_return created.status();
  auto handle = co_await fs_.Open(norm, kRead | kWrite);
  if (!handle.ok()) co_return handle.status();
  const int fd = next_fd_++;
  fds_.emplace(fd, *handle);
  co_return fd;
}

sim::Task<Status> FuseMount::Mknod(std::string path, Mode mode) {
  co_await Overhead();
  co_return (co_await fs_.Create(NormalizePath(path), mode)).status();
}

sim::Task<Result<int>> FuseMount::Open(std::string path, std::uint32_t flags) {
  co_await Overhead();
  auto handle = co_await fs_.Open(NormalizePath(path), flags);
  if (!handle.ok()) co_return handle.status();
  const int fd = next_fd_++;
  fds_.emplace(fd, *handle);
  co_return fd;
}

sim::Task<Status> FuseMount::Close(int fd) {
  co_await Overhead();
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status(StatusCode::kInvalidArgument, "EBADF");
  const FileHandle handle = it->second;
  fds_.erase(it);
  co_return co_await fs_.Release(handle);
}

sim::Task<Result<Bytes>> FuseMount::Read(int fd, std::uint64_t offset,
                                         std::uint64_t length) {
  co_await Overhead();
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status(StatusCode::kInvalidArgument, "EBADF");
  co_return co_await fs_.Read(it->second, offset, length);
}

sim::Task<Result<std::uint64_t>> FuseMount::Write(int fd, std::uint64_t offset,
                                                  Bytes data) {
  co_await Overhead();
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status(StatusCode::kInvalidArgument, "EBADF");
  co_return co_await fs_.Write(it->second, offset, std::move(data));
}

sim::Task<Status> FuseMount::Unlink(std::string path) {
  co_await Overhead();
  co_return co_await fs_.Unlink(NormalizePath(path));
}

sim::Task<Result<std::vector<DirEntry>>> FuseMount::ReadDir(std::string path) {
  co_await Overhead();
  co_return co_await fs_.ReadDir(NormalizePath(path));
}

sim::Task<Status> FuseMount::Rename(std::string from, std::string to) {
  co_await Overhead();
  co_return co_await fs_.Rename(NormalizePath(from), NormalizePath(to));
}

sim::Task<Status> FuseMount::Chmod(std::string path, Mode mode) {
  co_await Overhead();
  co_return co_await fs_.Chmod(NormalizePath(path), mode);
}

sim::Task<Status> FuseMount::Truncate(std::string path, std::uint64_t size) {
  co_await Overhead();
  co_return co_await fs_.Truncate(NormalizePath(path), size);
}

sim::Task<Status> FuseMount::Access(std::string path, Mode mode) {
  co_await Overhead();
  co_return co_await fs_.Access(NormalizePath(path), mode);
}

sim::Task<Status> FuseMount::Symlink(std::string target,
                                     std::string link_path) {
  co_await Overhead();
  co_return co_await fs_.Symlink(std::move(target), NormalizePath(link_path));
}

sim::Task<Result<std::string>> FuseMount::ReadLink(std::string path) {
  co_await Overhead();
  co_return co_await fs_.ReadLink(NormalizePath(path));
}

sim::Task<Result<FsStats>> FuseMount::StatFs() {
  co_await Overhead();
  co_return co_await fs_.StatFs();
}

sim::Task<Status> FuseMount::Utimens(std::string path, std::int64_t atime,
                                     std::int64_t mtime) {
  co_await Overhead();
  co_return co_await fs_.Utimens(NormalizePath(path), atime, mtime);
}

std::size_t FuseMount::EstimateMemoryBytes() const {
  // Fixed process overhead (FUSE channel buffers, mount state) + fd table.
  constexpr std::size_t kFixed = 2 * 1024 * 1024;
  return kFixed + fds_.size() * 64;
}

}  // namespace dufs::vfs
