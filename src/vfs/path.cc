#include "vfs/path.h"

namespace dufs::vfs {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start < path.size()) {
    while (start < path.size() && path[start] == '/') ++start;
    std::size_t end = start;
    while (end < path.size() && path[end] != '/') ++end;
    if (end > start) parts.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return parts;
}

std::string JoinPath(std::string_view parent, std::string_view child) {
  std::string out;
  if (!(parent.empty() || parent == "/")) out = parent;
  out.push_back('/');
  out.append(child);
  return out;
}

std::string NormalizePath(std::string_view path) {
  std::vector<std::string> stack;
  for (auto& part : SplitPath(path)) {
    if (part == ".") continue;
    if (part == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;  // clamp at root
    }
    stack.push_back(std::move(part));
  }
  if (stack.empty()) return "/";
  std::string out;
  for (const auto& part : stack) {
    out.push_back('/');
    out.append(part);
  }
  return out;
}

Status ValidateVirtualPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(StatusCode::kInvalidArgument, "path must be absolute");
  }
  if (path.size() > 1 && path.back() == '/') {
    return Status(StatusCode::kInvalidArgument, "trailing slash");
  }
  if (NormalizePath(path) != path) {
    return Status(StatusCode::kInvalidArgument, "path not normalized");
  }
  return Status::Ok();
}

std::string DirName(std::string_view path) {
  if (path.size() <= 1) return "/";
  const auto pos = path.rfind('/');
  if (pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

std::string_view BaseName(std::string_view path) {
  const auto pos = path.rfind('/');
  if (pos == std::string_view::npos) return path;
  return path.substr(pos + 1);
}

bool IsWithin(std::string_view ancestor, std::string_view path) {
  if (ancestor == path) return true;
  if (ancestor == "/") return !path.empty() && path[0] == '/';
  return path.size() > ancestor.size() &&
         path.substr(0, ancestor.size()) == ancestor &&
         path[ancestor.size()] == '/';
}

}  // namespace dufs::vfs
