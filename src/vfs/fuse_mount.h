// FUSE-substitute dispatcher (paper §II-B, §IV-C).
//
// A FuseMount is what an application on a client node sees: POSIX-style
// calls with integer fds. It translates them onto a FileSystem
// implementation — exactly the role libfuse plays for DUFS — charging the
// client node the FUSE context-switch overhead per operation.
#pragma once

#include <unordered_map>

#include "net/network.h"
#include "vfs/filesystem.h"
#include "vfs/path.h"

namespace dufs::vfs {

struct FuseConfig {
  // Two kernel/user crossings + request marshalling per operation.
  sim::Duration per_op_overhead = sim::Us(14);
};

class FuseMount {
 public:
  FuseMount(net::Node& client_node, FileSystem& fs, FuseConfig config = {});

  FileSystem& fs() { return fs_; }

  // POSIX-style entry points (the subset mdtest and the examples need; all
  // paths are virtual paths under this mount).
  sim::Task<Result<FileAttr>> Stat(std::string path);
  sim::Task<Status> Mkdir(std::string path, Mode mode = kDefaultDirMode);
  sim::Task<Status> Rmdir(std::string path);
  sim::Task<Result<int>> Creat(std::string path, Mode mode = kDefaultFileMode);
  // Create without opening (mknod) — what mdtest's create phase measures.
  sim::Task<Status> Mknod(std::string path, Mode mode = kDefaultFileMode);
  sim::Task<Result<int>> Open(std::string path, std::uint32_t flags);
  sim::Task<Status> Close(int fd);
  sim::Task<Result<Bytes>> Read(int fd, std::uint64_t offset,
                                std::uint64_t length);
  sim::Task<Result<std::uint64_t>> Write(int fd, std::uint64_t offset,
                                         Bytes data);
  sim::Task<Status> Unlink(std::string path);
  sim::Task<Result<std::vector<DirEntry>>> ReadDir(std::string path);
  sim::Task<Status> Rename(std::string from, std::string to);
  sim::Task<Status> Chmod(std::string path, Mode mode);
  sim::Task<Status> Truncate(std::string path, std::uint64_t size);
  sim::Task<Status> Access(std::string path, Mode mode);
  sim::Task<Status> Symlink(std::string target, std::string link_path);
  sim::Task<Result<std::string>> ReadLink(std::string path);
  sim::Task<Result<FsStats>> StatFs();
  sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                            std::int64_t mtime);

  // Client-side memory footprint (Fig. 11's "Dummy FUSE"/"DUFS" curves):
  // just the fd table plus fixed process state — bounded regardless of how
  // many files exist.
  std::size_t EstimateMemoryBytes() const;

  std::uint64_t ops_dispatched() const { return ops_dispatched_; }
  std::size_t open_fds() const { return fds_.size(); }

 private:
  sim::Task<void> Overhead();

  net::Node& node_;
  FileSystem& fs_;
  FuseConfig config_;
  std::unordered_map<int, FileHandle> fds_;
  int next_fd_ = 3;
  std::uint64_t ops_dispatched_ = 0;
};

}  // namespace dufs::vfs
