#include "vfs/naive_mirror.h"

namespace dufs::vfs {

// Each mutation hands Fanout a value-capturing lambda coroutine (the frame
// must not reference this function's locals — see the coro-capture-ref lint
// rule). The closure is always bound to a named local first: GCC 12
// miscompiles a *temporary* closure with non-trivially-destructible
// captures passed straight into a coroutine parameter (the capture is
// destroyed twice; glibc aborts with "munmap_chunk(): invalid pointer").
// An lvalue argument takes the plain copy-construction path and is fine.

sim::Task<Result<FileAttr>> NaiveMirrorFs::GetAttr(std::string path) {
  co_return co_await backends_[0]->GetAttr(std::move(path));
}

sim::Task<Status> NaiveMirrorFs::Mkdir(std::string path, Mode mode) {
  auto op = [path, mode](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Mkdir(path, mode);
  };
  co_return co_await Fanout(op);
}

sim::Task<Status> NaiveMirrorFs::Rmdir(std::string path) {
  auto op = [path](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Rmdir(path);
  };
  co_return co_await Fanout(op);
}

sim::Task<Result<FileAttr>> NaiveMirrorFs::Create(std::string path,
                                                  Mode mode) {
  Result<FileAttr> first = Status(StatusCode::kInternal);
  bool have_first = false;
  for (FileSystem* fs : backends_) {
    auto r = co_await fs->Create(path, mode);
    if (!have_first) {
      first = std::move(r);
      have_first = true;
    }
  }
  co_return first;
}

sim::Task<Status> NaiveMirrorFs::Unlink(std::string path) {
  auto op = [path](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Unlink(path);
  };
  co_return co_await Fanout(op);
}

sim::Task<Result<std::vector<DirEntry>>> NaiveMirrorFs::ReadDir(
    std::string path) {
  co_return co_await backends_[0]->ReadDir(std::move(path));
}

sim::Task<Status> NaiveMirrorFs::Rename(std::string from, std::string to) {
  auto op = [from, to](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Rename(from, to);
  };
  co_return co_await Fanout(op);
}

sim::Task<Status> NaiveMirrorFs::Chmod(std::string path, Mode mode) {
  auto op = [path, mode](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Chmod(path, mode);
  };
  co_return co_await Fanout(op);
}

sim::Task<Status> NaiveMirrorFs::Utimens(std::string path, std::int64_t atime,
                                         std::int64_t mtime) {
  auto op = [path, atime, mtime](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Utimens(path, atime, mtime);
  };
  co_return co_await Fanout(op);
}

sim::Task<Status> NaiveMirrorFs::Truncate(std::string path,
                                          std::uint64_t size) {
  auto op = [path, size](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Truncate(path, size);
  };
  co_return co_await Fanout(op);
}

sim::Task<Status> NaiveMirrorFs::Symlink(std::string target,
                                         std::string link_path) {
  auto op = [target, link_path](FileSystem& fs) -> sim::Task<Status> {
    co_return co_await fs.Symlink(target, link_path);
  };
  co_return co_await Fanout(op);
}

sim::Task<Result<std::string>> NaiveMirrorFs::ReadLink(std::string path) {
  co_return co_await backends_[0]->ReadLink(std::move(path));
}

sim::Task<Status> NaiveMirrorFs::Access(std::string path, Mode mode) {
  co_return co_await backends_[0]->Access(std::move(path), mode);
}

sim::Task<Result<FileHandle>> NaiveMirrorFs::Open(std::string path,
                                                  std::uint32_t flags) {
  // Data lives on backend 0 in this strawman.
  co_return co_await backends_[0]->Open(std::move(path), flags);
}

sim::Task<Status> NaiveMirrorFs::Release(FileHandle handle) {
  co_return co_await backends_[0]->Release(handle);
}

sim::Task<Result<Bytes>> NaiveMirrorFs::Read(FileHandle handle,
                                             std::uint64_t offset,
                                             std::uint64_t length) {
  co_return co_await backends_[0]->Read(handle, offset, length);
}

sim::Task<Result<std::uint64_t>> NaiveMirrorFs::Write(FileHandle handle,
                                                      std::uint64_t offset,
                                                      Bytes data) {
  co_return co_await backends_[0]->Write(handle, offset, std::move(data));
}

sim::Task<Result<FsStats>> NaiveMirrorFs::StatFs() {
  co_return co_await backends_[0]->StatFs();
}

}  // namespace dufs::vfs
