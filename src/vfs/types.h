// POSIX-ish filesystem types shared by every filesystem implementation
// (MemFs, LustreSim, PvfsSim, DUFS).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dufs::vfs {

enum class FileType : std::uint8_t {
  kRegular = 0,
  kDirectory = 1,
  kSymlink = 2,
};

// Permission bits (lower 12 bits of st_mode).
using Mode = std::uint32_t;
inline constexpr Mode kDefaultFileMode = 0644;
inline constexpr Mode kDefaultDirMode = 0755;

struct FileAttr {
  FileType type = FileType::kRegular;
  Mode mode = kDefaultFileMode;
  std::uint64_t size = 0;
  std::uint64_t inode = 0;
  std::uint32_t nlink = 1;
  std::int64_t ctime = 0;  // ns
  std::int64_t mtime = 0;  // ns
  std::int64_t atime = 0;  // ns

  bool IsDir() const { return type == FileType::kDirectory; }
  bool IsRegular() const { return type == FileType::kRegular; }
};

struct DirEntry {
  std::string name;
  FileType type = FileType::kRegular;

  friend bool operator==(const DirEntry&, const DirEntry&) = default;
};

struct FsStats {
  std::uint64_t total_bytes = 0;
  std::uint64_t free_bytes = 0;
  std::uint64_t files = 0;
};

// Open flags (subset).
enum OpenFlags : std::uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
};

using FileHandle = std::uint64_t;
inline constexpr FileHandle kInvalidHandle = 0;

using Bytes = std::vector<std::uint8_t>;

inline Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }
inline std::string FromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace dufs::vfs
