#include "vfs/memfs.h"

#include <algorithm>

namespace dufs::vfs {

MemFs::MemFs(sim::Simulation& sim, std::string name, Config config)
    : sim_(sim), name_(std::move(name)), config_(config),
      root_(std::make_shared<Node>()) {
  root_->attr.type = FileType::kDirectory;
  root_->attr.mode = kDefaultDirMode;
  root_->attr.inode = 1;
  root_->attr.nlink = 2;
}

sim::Task<void> MemFs::Latency() {
  if (config_.op_latency > 0) co_await sim_.Delay(config_.op_latency);
}

std::shared_ptr<MemFs::Node> MemFs::Lookup(std::string_view path) const {
  auto cur = root_;
  for (const auto& part : SplitPath(path)) {
    if (!cur->attr.IsDir()) return nullptr;
    auto it = cur->children.find(part);
    if (it == cur->children.end()) return nullptr;
    cur = it->second;
  }
  return cur;
}

Result<std::shared_ptr<MemFs::Node>> MemFs::LookupOr(
    std::string_view path) const {
  auto node = Lookup(path);
  if (!node) return Status(StatusCode::kNotFound, std::string(path));
  return node;
}

Result<std::shared_ptr<MemFs::Node>> MemFs::ParentOf(
    std::string_view path) const {
  if (path == "/" || path.empty()) {
    return Status(StatusCode::kInvalidArgument, "no parent");
  }
  auto parent = Lookup(DirName(path));
  if (!parent) return Status(StatusCode::kNotFound, DirName(path));
  if (!parent->attr.IsDir()) return Status(StatusCode::kNotADirectory);
  return parent;
}

FileAttr MemFs::NewAttr(FileType type, Mode mode) {
  FileAttr attr;
  attr.type = type;
  attr.mode = mode;
  attr.inode = next_inode_++;
  attr.nlink = type == FileType::kDirectory ? 2 : 1;
  attr.ctime = attr.mtime = attr.atime = sim_.now();
  return attr;
}

sim::Task<Result<FileAttr>> MemFs::GetAttr(std::string path) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  FileAttr attr = (*node)->attr;
  attr.size = (*node)->attr.IsRegular() ? (*node)->data.size() : 0;
  co_return attr;
}

sim::Task<Status> MemFs::Mkdir(std::string path, Mode mode) {
  co_await Latency();
  auto parent = ParentOf(path);
  if (!parent.ok()) co_return parent.status();
  const std::string child(BaseName(path));
  if ((*parent)->children.count(child) > 0) {
    co_return Status(StatusCode::kAlreadyExists, path);
  }
  auto node = std::make_shared<Node>();
  node->attr = NewAttr(FileType::kDirectory, mode);
  (*parent)->children.emplace(child, std::move(node));
  (*parent)->attr.mtime = sim_.now();
  ++(*parent)->attr.nlink;
  ++file_count_;
  co_return Status::Ok();
}

sim::Task<Status> MemFs::Rmdir(std::string path) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  if (!(*node)->attr.IsDir()) co_return Status(StatusCode::kNotADirectory);
  if (!(*node)->children.empty()) co_return Status(StatusCode::kNotEmpty);
  auto parent = ParentOf(path);
  if (!parent.ok()) co_return parent.status();
  (*parent)->children.erase(std::string(BaseName(path)));
  (*parent)->attr.mtime = sim_.now();
  --(*parent)->attr.nlink;
  --file_count_;
  co_return Status::Ok();
}

sim::Task<Result<FileAttr>> MemFs::Create(std::string path, Mode mode) {
  co_await Latency();
  auto parent = ParentOf(path);
  if (!parent.ok()) co_return parent.status();
  const std::string child(BaseName(path));
  if ((*parent)->children.count(child) > 0) {
    co_return Status(StatusCode::kAlreadyExists, path);
  }
  auto node = std::make_shared<Node>();
  node->attr = NewAttr(FileType::kRegular, mode);
  const FileAttr attr = node->attr;
  (*parent)->children.emplace(child, std::move(node));
  (*parent)->attr.mtime = sim_.now();
  ++file_count_;
  co_return attr;
}

sim::Task<Status> MemFs::Unlink(std::string path) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  if ((*node)->attr.IsDir()) co_return Status(StatusCode::kIsADirectory);
  auto parent = ParentOf(path);
  if (!parent.ok()) co_return parent.status();
  (*parent)->children.erase(std::string(BaseName(path)));
  (*parent)->attr.mtime = sim_.now();
  --file_count_;
  co_return Status::Ok();
}

sim::Task<Result<std::vector<DirEntry>>> MemFs::ReadDir(std::string path) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  if (!(*node)->attr.IsDir()) co_return Status(StatusCode::kNotADirectory);
  std::vector<DirEntry> entries;
  entries.reserve((*node)->children.size());
  for (const auto& [name, child] : (*node)->children) {
    entries.push_back({name, child->attr.type});
  }
  co_return entries;
}

sim::Task<Status> MemFs::Rename(std::string from, std::string to) {
  co_await Latency();
  auto node = LookupOr(from);
  if (!node.ok()) co_return node.status();
  if (IsWithin(from, to) && from != to) {
    co_return Status(StatusCode::kInvalidArgument, "rename into own subtree");
  }
  auto to_parent = ParentOf(to);
  if (!to_parent.ok()) co_return to_parent.status();
  if (auto existing = Lookup(to)) {
    // POSIX: replace a file or an *empty* directory of the same kind.
    if (existing->attr.IsDir() != (*node)->attr.IsDir()) {
      co_return Status(existing->attr.IsDir() ? StatusCode::kIsADirectory
                                              : StatusCode::kNotADirectory);
    }
    if (existing->attr.IsDir() && !existing->children.empty()) {
      co_return Status(StatusCode::kNotEmpty, to);
    }
    (*to_parent)->children.erase(std::string(BaseName(to)));
    --file_count_;
  }
  auto from_parent = ParentOf(from);
  if (!from_parent.ok()) co_return from_parent.status();
  auto moved = *node;
  (*from_parent)->children.erase(std::string(BaseName(from)));
  (*to_parent)->children.emplace(std::string(BaseName(to)), std::move(moved));
  (*from_parent)->attr.mtime = sim_.now();
  (*to_parent)->attr.mtime = sim_.now();
  co_return Status::Ok();
}

sim::Task<Status> MemFs::Chmod(std::string path, Mode mode) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  (*node)->attr.mode = mode;
  (*node)->attr.ctime = sim_.now();
  co_return Status::Ok();
}

sim::Task<Status> MemFs::Utimens(std::string path, std::int64_t atime,
                                 std::int64_t mtime) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  (*node)->attr.atime = atime;
  (*node)->attr.mtime = mtime;
  co_return Status::Ok();
}

sim::Task<Status> MemFs::Truncate(std::string path, std::uint64_t size) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  if (!(*node)->attr.IsRegular()) co_return Status(StatusCode::kIsADirectory);
  (*node)->data.resize(size, 0);
  (*node)->attr.mtime = sim_.now();
  co_return Status::Ok();
}

sim::Task<Status> MemFs::Symlink(std::string target, std::string link_path) {
  co_await Latency();
  auto parent = ParentOf(link_path);
  if (!parent.ok()) co_return parent.status();
  const std::string child(BaseName(link_path));
  if ((*parent)->children.count(child) > 0) {
    co_return Status(StatusCode::kAlreadyExists, link_path);
  }
  auto node = std::make_shared<Node>();
  node->attr = NewAttr(FileType::kSymlink, 0777);
  node->target = std::move(target);
  (*parent)->children.emplace(child, std::move(node));
  ++file_count_;
  co_return Status::Ok();
}

sim::Task<Result<std::string>> MemFs::ReadLink(std::string path) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  if ((*node)->attr.type != FileType::kSymlink) {
    co_return Status(StatusCode::kInvalidArgument, "not a symlink");
  }
  co_return (*node)->target;
}

sim::Task<Status> MemFs::Access(std::string path, Mode mode) {
  co_await Latency();
  auto node = LookupOr(path);
  if (!node.ok()) co_return node.status();
  // Simplified permission model: requested bits must be present in any of
  // user/group/other.
  const Mode perms = (*node)->attr.mode;
  const Mode have = (perms | (perms >> 3) | (perms >> 6)) & 07;
  if ((mode & have) != mode) co_return Status(StatusCode::kPermissionDenied);
  co_return Status::Ok();
}

sim::Task<Result<FileHandle>> MemFs::Open(std::string path,
                                          std::uint32_t flags) {
  co_await Latency();
  auto node = Lookup(path);
  if (!node && (flags & kCreate)) {
    auto created = co_await Create(path, kDefaultFileMode);
    if (!created.ok()) co_return created.status();
    node = Lookup(path);
  }
  if (!node) co_return Status(StatusCode::kNotFound, path);
  if (node->attr.IsDir()) co_return Status(StatusCode::kIsADirectory);
  if (flags & kTruncate) {
    node->data.clear();
    node->attr.mtime = sim_.now();
  }
  const FileHandle handle = next_handle_++;
  handles_.emplace(handle, std::move(node));
  co_return handle;
}

sim::Task<Status> MemFs::Release(FileHandle handle) {
  co_await Latency();
  if (handles_.erase(handle) == 0) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  co_return Status::Ok();
}

sim::Task<Result<Bytes>> MemFs::Read(FileHandle handle, std::uint64_t offset,
                                     std::uint64_t length) {
  co_await Latency();
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  const Bytes& data = it->second->data;
  if (offset >= data.size()) co_return Bytes{};
  const std::uint64_t end = std::min<std::uint64_t>(offset + length,
                                                    data.size());
  it->second->attr.atime = sim_.now();
  co_return Bytes(data.begin() + static_cast<std::ptrdiff_t>(offset),
                  data.begin() + static_cast<std::ptrdiff_t>(end));
}

sim::Task<Result<std::uint64_t>> MemFs::Write(FileHandle handle,
                                              std::uint64_t offset,
                                              Bytes data) {
  co_await Latency();
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  Bytes& dest = it->second->data;
  if (dest.size() < offset + data.size()) dest.resize(offset + data.size(), 0);
  std::copy(data.begin(), data.end(),
            dest.begin() + static_cast<std::ptrdiff_t>(offset));
  it->second->attr.mtime = sim_.now();
  co_return static_cast<std::uint64_t>(data.size());
}

sim::Task<Result<FsStats>> MemFs::StatFs() {
  co_await Latency();
  FsStats stats;
  stats.total_bytes = 1ull << 40;
  stats.free_bytes = 1ull << 39;
  stats.files = file_count_;
  co_return stats;
}

}  // namespace dufs::vfs
