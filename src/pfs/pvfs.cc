#include "pfs/pvfs.h"

#include <algorithm>

#include "pfs/codec.h"

namespace dufs::pfs {

using vfs::BaseName;
using vfs::DirName;
using vfs::FileAttr;
using vfs::FileType;
using vfs::SplitPath;

namespace {

net::Payload ErrorReply(StatusCode code) {
  wire::BufferWriter w;
  EncodeCode(w, code);
  return w.Take();
}

}  // namespace

// =========================================================== PvfsServer ===

PvfsServer::PvfsServer(net::RpcEndpoint& endpoint, std::uint32_t index,
                       PvfsPerfModel perf)
    : endpoint_(endpoint), index_(index), perf_(perf) {
  if (index_ == 0) {
    // The filesystem root lives on server 0 with a well-known handle.
    Object root;
    root.type = ObjType::kDir;
    root.attr.type = FileType::kDirectory;
    root.attr.mode = vfs::kDefaultDirMode;
    root.attr.inode = kPvfsRootHandle;
    root.attr.nlink = 2;
    objects_.emplace(kPvfsRootHandle, std::move(root));
  }
}

void PvfsServer::Start() {
  pipeline_ = std::make_unique<sim::Resource>(endpoint_.sim(), 1);
  trove_disk_ = std::make_unique<sim::Resource>(endpoint_.sim(), 1);
  for (std::uint16_t m = pvfs_method::kLookup; m <= pvfs_method::kStatFsObj;
       ++m) {
    // Stored in the endpoint's handler map; `this` outlives every call.
    endpoint_.RegisterHandler(
        m, [this, m](net::NodeId,  // dufs-lint: allow(coro-capture-ref)
                     net::Payload req) -> sim::Task<net::RpcResult> {
          co_return co_await Handle(m, std::move(req));
        });
  }
}

sim::Task<void> PvfsServer::ReadWork() {
  auto guard = co_await pipeline_->Acquire();
  co_await endpoint_.sim().Delay(perf_.read_cpu);
}

sim::Task<void> PvfsServer::MutationWork() {
  {
    auto guard = co_await pipeline_->Acquire();
    co_await endpoint_.sim().Delay(perf_.mutation_cpu);
  }
  // Synchronous metadata commit (Trove/DBPF): one sync write per mutation,
  // no batching — the defining PVFS2 bottleneck.
  auto guard = co_await trove_disk_->Acquire();
  co_await endpoint_.sim().Delay(perf_.sync_write_latency);
}

sim::Task<net::RpcResult> PvfsServer::Handle(std::uint16_t method,
                                             net::Payload req) {
  namespace m = pvfs_method;
  wire::BufferReader r(req);
  wire::BufferWriter w;

  switch (method) {
    case m::kLookup: {
      auto dir = r.ReadU64();
      if (!dir.ok()) co_return dir.status();
      auto name = r.ReadString();
      if (!name.ok()) co_return name.status();
      co_await ReadWork();
      auto it = objects_.find(*dir);
      if (it == objects_.end() || it->second.type != ObjType::kDir) {
        co_return ErrorReply(StatusCode::kNotFound);
      }
      auto entry = it->second.entries.find(*name);
      if (entry == it->second.entries.end()) {
        co_return ErrorReply(StatusCode::kNotFound);
      }
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(entry->second.first);
      w.WriteU8(entry->second.second);
      co_return w.Take();
    }
    case m::kCreateDir:
    case m::kCreateMeta:
    case m::kCreateData: {
      auto mode = r.ReadU32();
      if (!mode.ok()) co_return mode.status();
      auto target = r.ReadString();  // symlink target (kCreateMeta only)
      if (!target.ok()) co_return target.status();
      co_await MutationWork();
      Object obj;
      obj.attr.mode = *mode;
      obj.attr.ctime = obj.attr.mtime = obj.attr.atime =
          endpoint_.sim().now();
      if (method == m::kCreateDir) {
        obj.type = ObjType::kDir;
        obj.attr.type = FileType::kDirectory;
        obj.attr.nlink = 2;
      } else if (method == m::kCreateMeta) {
        obj.type = ObjType::kMeta;
        obj.attr.type =
            target->empty() ? FileType::kRegular : FileType::kSymlink;
        obj.symlink_target = std::move(*target);
      } else {
        obj.type = ObjType::kData;
      }
      const PvfsHandle handle = NewHandle();
      obj.attr.inode = handle;
      objects_.emplace(handle, std::move(obj));
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(handle);
      co_return w.Take();
    }
    case m::kInsertDirent: {
      auto dir = r.ReadU64();
      if (!dir.ok()) co_return dir.status();
      auto name = r.ReadString();
      if (!name.ok()) co_return name.status();
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      auto type = r.ReadU8();
      if (!type.ok()) co_return type.status();
      co_await MutationWork();
      auto it = objects_.find(*dir);
      if (it == objects_.end() || it->second.type != ObjType::kDir) {
        co_return ErrorReply(StatusCode::kNotFound);
      }
      if (it->second.entries.count(*name) > 0) {
        co_return ErrorReply(StatusCode::kAlreadyExists);
      }
      it->second.entries.emplace(std::move(*name),
                                 std::make_pair(*handle, *type));
      it->second.attr.mtime = endpoint_.sim().now();
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kRemoveDirent: {
      auto dir = r.ReadU64();
      if (!dir.ok()) co_return dir.status();
      auto name = r.ReadString();
      if (!name.ok()) co_return name.status();
      co_await MutationWork();
      auto it = objects_.find(*dir);
      if (it == objects_.end() || it->second.type != ObjType::kDir) {
        co_return ErrorReply(StatusCode::kNotFound);
      }
      auto entry = it->second.entries.find(*name);
      if (entry == it->second.entries.end()) {
        co_return ErrorReply(StatusCode::kNotFound);
      }
      const PvfsHandle handle = entry->second.first;
      const std::uint8_t type = entry->second.second;
      it->second.entries.erase(entry);
      it->second.attr.mtime = endpoint_.sim().now();
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(handle);
      w.WriteU8(type);
      co_return w.Take();
    }
    case m::kGetAttrObj: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      co_await ReadWork();
      auto it = objects_.find(*handle);
      if (it == objects_.end()) co_return ErrorReply(StatusCode::kNotFound);
      EncodeCode(w, StatusCode::kOk);
      w.WriteU8(static_cast<std::uint8_t>(it->second.type));
      EncodeAttr(w, it->second.attr);
      w.WriteU64(it->second.datafile);
      w.WriteString(it->second.symlink_target);
      w.WriteVarint(it->second.entries.size());
      co_return w.Take();
    }
    case m::kSetAttrObj: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      auto has_mode = r.ReadBool();
      if (!has_mode.ok()) co_return has_mode.status();
      auto mode = r.ReadU32();
      if (!mode.ok()) co_return mode.status();
      auto has_times = r.ReadBool();
      if (!has_times.ok()) co_return has_times.status();
      auto atime = r.ReadI64();
      if (!atime.ok()) co_return atime.status();
      auto mtime = r.ReadI64();
      if (!mtime.ok()) co_return mtime.status();
      auto datafile = r.ReadU64();
      if (!datafile.ok()) co_return datafile.status();
      co_await MutationWork();
      auto it = objects_.find(*handle);
      if (it == objects_.end()) co_return ErrorReply(StatusCode::kNotFound);
      if (*has_mode) it->second.attr.mode = *mode;
      if (*has_times) {
        it->second.attr.atime = *atime;
        it->second.attr.mtime = *mtime;
      }
      if (*datafile != 0) it->second.datafile = *datafile;
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kReadDirObj: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      co_await ReadWork();
      auto it = objects_.find(*handle);
      if (it == objects_.end() || it->second.type != ObjType::kDir) {
        co_return ErrorReply(StatusCode::kNotFound);
      }
      EncodeCode(w, StatusCode::kOk);
      w.WriteVarint(it->second.entries.size());
      for (const auto& [name, ref] : it->second.entries) {
        w.WriteString(name);
        w.WriteU8(ref.second);
      }
      co_return w.Take();
    }
    case m::kRemoveObj: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      co_await MutationWork();
      auto it = objects_.find(*handle);
      if (it == objects_.end()) co_return ErrorReply(StatusCode::kNotFound);
      if (it->second.type == ObjType::kDir && !it->second.entries.empty()) {
        co_return ErrorReply(StatusCode::kNotEmpty);
      }
      objects_.erase(it);
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kDataRead: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      auto offset = r.ReadU64();
      if (!offset.ok()) co_return offset.status();
      auto length = r.ReadU64();
      if (!length.ok()) co_return length.status();
      co_await ReadWork();
      auto it = objects_.find(*handle);
      if (it == objects_.end()) co_return ErrorReply(StatusCode::kNotFound);
      const auto& data = it->second.data;
      EncodeCode(w, StatusCode::kOk);
      if (*offset >= data.size()) {
        w.WriteBytes({});
      } else {
        const auto end =
            std::min<std::uint64_t>(*offset + *length, data.size());
        w.WriteBytes(vfs::Bytes(
            data.begin() + static_cast<std::ptrdiff_t>(*offset),
            data.begin() + static_cast<std::ptrdiff_t>(end)));
      }
      co_return w.Take();
    }
    case m::kDataWrite: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      auto offset = r.ReadU64();
      if (!offset.ok()) co_return offset.status();
      auto bytes = r.ReadBytes();
      if (!bytes.ok()) co_return bytes.status();
      co_await ReadWork();  // data path: no sync metadata write
      auto it = objects_.find(*handle);
      if (it == objects_.end()) co_return ErrorReply(StatusCode::kNotFound);
      auto& data = it->second.data;
      if (data.size() < *offset + bytes->size()) {
        data.resize(*offset + bytes->size(), 0);
      }
      std::copy(bytes->begin(), bytes->end(),
                data.begin() + static_cast<std::ptrdiff_t>(*offset));
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(bytes->size());
      co_return w.Take();
    }
    case m::kDataTruncate: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      auto size = r.ReadU64();
      if (!size.ok()) co_return size.status();
      co_await ReadWork();
      auto it = objects_.find(*handle);
      if (it == objects_.end()) co_return ErrorReply(StatusCode::kNotFound);
      it->second.data.resize(*size, 0);
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kDataSize: {
      auto handle = r.ReadU64();
      if (!handle.ok()) co_return handle.status();
      co_await ReadWork();
      auto it = objects_.find(*handle);
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(it == objects_.end() ? 0 : it->second.data.size());
      co_return w.Take();
    }
    case m::kStatFsObj: {
      co_await ReadWork();
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(objects_.size());
      co_return w.Take();
    }
    default:
      co_return ErrorReply(StatusCode::kUnimplemented);
  }
}

// ========================================================= PvfsInstance ===

PvfsInstance::PvfsInstance(net::Network& net, std::string name,
                           std::size_t n_servers, PvfsPerfModel perf)
    : name_(std::move(name)) {
  for (std::size_t i = 0; i < n_servers; ++i) {
    server_nodes_.push_back(net.AddNode(name_ + "-io" + std::to_string(i)));
    endpoints_.push_back(
        std::make_unique<net::RpcEndpoint>(net, server_nodes_[i]));
    servers_.push_back(std::make_unique<PvfsServer>(
        *endpoints_[i], static_cast<std::uint32_t>(i), perf));
    servers_.back()->Start();
  }
}

// =========================================================== PvfsClient ===

PvfsClient::PvfsClient(net::RpcEndpoint& endpoint, PvfsInstance& instance)
    : endpoint_(endpoint), instance_(instance) {}

void PvfsClient::AttachObs(obs::NodeObs node_obs) {
  obs_ = node_obs;
  t_call_ = obs_.timer("pvfs.call_ns");
}

sim::Task<net::RpcResult> PvfsClient::CallServer(PvfsHandle handle,
                                                 std::uint16_t method,
                                                 net::Payload req) {
  co_return co_await CallIndex(PvfsServerOf(handle), method, std::move(req));
}

sim::Task<net::RpcResult> PvfsClient::CallIndex(std::uint32_t index,
                                                std::uint16_t method,
                                                net::Payload req) {
  const auto& nodes = instance_.server_nodes();
  DUFS_CHECK(index < nodes.size());
  obs::Span span(obs_, "pvfs-call", "backend");
  span.ArgInt("method", method);
  span.ArgInt("server", index);
  const sim::SimTime started = endpoint_.sim().now();
  auto result = co_await endpoint_.Call(nodes[index], method, std::move(req));
  t_call_.Record(endpoint_.sim().now() - started);
  co_return result;
}

std::uint32_t PvfsClient::PickServer() {
  const auto n = static_cast<std::uint32_t>(instance_.server_nodes().size());
  next_server_ = (next_server_ + 1) % n;
  return next_server_;
}

sim::Task<Result<PvfsClient::ResolvedObject>> PvfsClient::Resolve(
    std::string_view path) {
  ResolvedObject cur{kPvfsRootHandle, 0 /*dir*/};
  for (const auto& part : SplitPath(path)) {
    wire::BufferWriter w;
    w.WriteU64(cur.handle);
    w.WriteString(part);
    auto raw = co_await CallServer(cur.handle, pvfs_method::kLookup,
                                   w.Take());
    if (!raw.ok()) co_return raw.status();
    wire::BufferReader r(*raw);
    auto code = DecodeCode(r);
    if (!code.ok()) co_return code.status();
    if (*code != StatusCode::kOk) co_return Status(*code, std::string(path));
    auto handle = r.ReadU64();
    if (!handle.ok()) co_return handle.status();
    auto type = r.ReadU8();
    if (!type.ok()) co_return type.status();
    cur.handle = *handle;
    cur.type = *type;
  }
  co_return cur;
}

sim::Task<Result<PvfsClient::ResolvedObject>> PvfsClient::ResolveParent(
    std::string_view path) {
  if (path == "/" || path.empty()) {
    co_return Status(StatusCode::kInvalidArgument);
  }
  auto parent = co_await Resolve(DirName(path));
  if (!parent.ok()) co_return parent.status();
  if (parent->type != 0) co_return Status(StatusCode::kNotADirectory);
  co_return *parent;
}

namespace {
struct ObjAttr {
  std::uint8_t type = 0;
  FileAttr attr;
  PvfsHandle datafile = 0;
  std::string symlink_target;
  std::uint64_t entry_count = 0;
};

Result<ObjAttr> DecodeObjAttr(const net::Payload& raw) {
  wire::BufferReader r(raw);
  auto code = DecodeCode(r);
  DUFS_RETURN_IF_ERROR(code);
  if (*code != StatusCode::kOk) return Status(*code);
  ObjAttr out;
  auto type = r.ReadU8();
  DUFS_RETURN_IF_ERROR(type);
  out.type = *type;
  auto attr = DecodeAttr(r);
  DUFS_RETURN_IF_ERROR(attr);
  out.attr = *attr;
  auto datafile = r.ReadU64();
  DUFS_RETURN_IF_ERROR(datafile);
  out.datafile = *datafile;
  auto target = r.ReadString();
  DUFS_RETURN_IF_ERROR(target);
  out.symlink_target = std::move(*target);
  auto entries = r.ReadVarint();
  DUFS_RETURN_IF_ERROR(entries);
  out.entry_count = *entries;
  return out;
}

Result<StatusCode> JustCode(const net::RpcResult& raw) {
  DUFS_RETURN_IF_ERROR(raw);
  wire::BufferReader r(*raw);
  return DecodeCode(r);
}
}  // namespace

sim::Task<Result<vfs::FileAttr>> PvfsClient::GetAttr(std::string path) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  wire::BufferWriter w;
  w.WriteU64(obj->handle);
  auto raw = co_await CallServer(obj->handle, pvfs_method::kGetAttrObj,
                                 w.Take());
  if (!raw.ok()) co_return raw.status();
  auto oa = DecodeObjAttr(*raw);
  if (!oa.ok()) co_return oa.status();
  if (oa->attr.IsRegular() && oa->datafile != 0) {
    // Size lives with the datafile server (PVFS2 getattr fan-out).
    wire::BufferWriter sw;
    sw.WriteU64(oa->datafile);
    auto sraw = co_await CallServer(oa->datafile, pvfs_method::kDataSize,
                                    sw.Take());
    if (!sraw.ok()) co_return sraw.status();
    wire::BufferReader sr(*sraw);
    auto scode = DecodeCode(sr);
    if (!scode.ok()) co_return scode.status();
    auto size = sr.ReadU64();
    if (!size.ok()) co_return size.status();
    oa->attr.size = *size;
  }
  co_return oa->attr;
}

sim::Task<Status> PvfsClient::Mkdir(std::string path, vfs::Mode mode) {
  auto parent = co_await ResolveParent(path);
  if (!parent.ok()) co_return parent.status();
  // 1) create the directory object on a server chosen by placement.
  wire::BufferWriter cw;
  cw.WriteU32(mode);
  cw.WriteString("");
  auto craw =
      co_await CallIndex(PickServer(), pvfs_method::kCreateDir, cw.Take());
  if (!craw.ok()) co_return craw.status();
  wire::BufferReader cr(*craw);
  auto ccode = DecodeCode(cr);
  if (!ccode.ok()) co_return ccode.status();
  if (*ccode != StatusCode::kOk) co_return Status(*ccode);
  auto handle = cr.ReadU64();
  if (!handle.ok()) co_return handle.status();
  // 2) insert the dirent at the parent's server.
  wire::BufferWriter iw;
  iw.WriteU64(parent->handle);
  iw.WriteString(std::string(BaseName(path)));
  iw.WriteU64(*handle);
  iw.WriteU8(0);  // dir
  auto iraw = co_await CallServer(parent->handle,
                                  pvfs_method::kInsertDirent, iw.Take());
  auto icode = JustCode(iraw);
  if (!icode.ok()) co_return icode.status();
  if (*icode != StatusCode::kOk) {
    // Roll back the orphaned object (best-effort, like PVFS2 cleanup).
    wire::BufferWriter rw;
    rw.WriteU64(*handle);
    endpoint_.Notify(
        instance_.server_nodes()[PvfsServerOf(*handle)],
        pvfs_method::kRemoveObj, rw.Take());
    co_return Status(*icode, path);
  }
  co_return Status::Ok();
}

sim::Task<Status> PvfsClient::Rmdir(std::string path) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  if (obj->type != 0) co_return Status(StatusCode::kNotADirectory);
  // Check emptiness + remove the object first (it owns its entries).
  wire::BufferWriter rw;
  rw.WriteU64(obj->handle);
  auto rraw = co_await CallServer(obj->handle, pvfs_method::kRemoveObj,
                                  rw.Take());
  auto rcode = JustCode(rraw);
  if (!rcode.ok()) co_return rcode.status();
  if (*rcode != StatusCode::kOk) co_return Status(*rcode, path);
  auto parent = co_await ResolveParent(path);
  if (!parent.ok()) co_return parent.status();
  wire::BufferWriter dw;
  dw.WriteU64(parent->handle);
  dw.WriteString(std::string(BaseName(path)));
  auto draw = co_await CallServer(parent->handle,
                                  pvfs_method::kRemoveDirent, dw.Take());
  auto dcode = JustCode(draw);
  if (!dcode.ok()) co_return dcode.status();
  co_return Status(*dcode);
}

sim::Task<Result<vfs::FileAttr>> PvfsClient::Create(std::string path,
                                                    vfs::Mode mode) {
  auto parent = co_await ResolveParent(path);
  if (!parent.ok()) co_return parent.status();
  // 1) metafile.
  wire::BufferWriter mw;
  mw.WriteU32(mode);
  mw.WriteString("");
  auto mraw =
      co_await CallIndex(PickServer(), pvfs_method::kCreateMeta, mw.Take());
  if (!mraw.ok()) co_return mraw.status();
  wire::BufferReader mr(*mraw);
  auto mcode = DecodeCode(mr);
  if (!mcode.ok()) co_return mcode.status();
  if (*mcode != StatusCode::kOk) co_return Status(*mcode);
  auto meta = mr.ReadU64();
  if (!meta.ok()) co_return meta.status();
  // 2) datafile.
  wire::BufferWriter dw;
  dw.WriteU32(0);
  dw.WriteString("");
  auto draw =
      co_await CallIndex(PickServer(), pvfs_method::kCreateData, dw.Take());
  if (!draw.ok()) co_return draw.status();
  wire::BufferReader dr(*draw);
  auto dcode = DecodeCode(dr);
  if (!dcode.ok()) co_return dcode.status();
  if (*dcode != StatusCode::kOk) co_return Status(*dcode);
  auto datafile = dr.ReadU64();
  if (!datafile.ok()) co_return datafile.status();
  // 3) link datafile into metafile.
  wire::BufferWriter sw;
  sw.WriteU64(*meta);
  sw.WriteBool(false);
  sw.WriteU32(0);
  sw.WriteBool(false);
  sw.WriteI64(0);
  sw.WriteI64(0);
  sw.WriteU64(*datafile);
  auto sraw = co_await CallServer(*meta, pvfs_method::kSetAttrObj, sw.Take());
  auto scode = JustCode(sraw);
  if (!scode.ok()) co_return scode.status();
  // 4) dirent insert.
  wire::BufferWriter iw;
  iw.WriteU64(parent->handle);
  iw.WriteString(std::string(BaseName(path)));
  iw.WriteU64(*meta);
  iw.WriteU8(1);  // meta
  auto iraw = co_await CallServer(parent->handle,
                                  pvfs_method::kInsertDirent, iw.Take());
  auto icode = JustCode(iraw);
  if (!icode.ok()) co_return icode.status();
  if (*icode != StatusCode::kOk) co_return Status(*icode, path);
  FileAttr attr;
  attr.type = FileType::kRegular;
  attr.mode = mode;
  attr.inode = *meta;
  co_return attr;
}

sim::Task<Status> PvfsClient::Unlink(std::string path) {
  auto parent = co_await ResolveParent(path);
  if (!parent.ok()) co_return parent.status();
  // Fetch the handle first so we can clean up the objects after.
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  if (obj->type == 0) co_return Status(StatusCode::kIsADirectory);
  wire::BufferWriter gw;
  gw.WriteU64(obj->handle);
  auto graw = co_await CallServer(obj->handle, pvfs_method::kGetAttrObj,
                                  gw.Take());
  if (!graw.ok()) co_return graw.status();
  auto oa = DecodeObjAttr(*graw);
  if (!oa.ok()) co_return oa.status();
  wire::BufferWriter dw;
  dw.WriteU64(parent->handle);
  dw.WriteString(std::string(BaseName(path)));
  auto draw = co_await CallServer(parent->handle,
                                  pvfs_method::kRemoveDirent, dw.Take());
  auto dcode = JustCode(draw);
  if (!dcode.ok()) co_return dcode.status();
  if (*dcode != StatusCode::kOk) co_return Status(*dcode, path);
  // Remove metafile synchronously, datafile asynchronously.
  wire::BufferWriter rw;
  rw.WriteU64(obj->handle);
  auto rraw = co_await CallServer(obj->handle, pvfs_method::kRemoveObj,
                                  rw.Take());
  (void)rraw;
  if (oa->datafile != 0) {
    wire::BufferWriter fw;
    fw.WriteU64(oa->datafile);
    endpoint_.Notify(
        instance_.server_nodes()[PvfsServerOf(oa->datafile)],
        pvfs_method::kRemoveObj, fw.Take());
  }
  co_return Status::Ok();
}

sim::Task<Result<std::vector<vfs::DirEntry>>> PvfsClient::ReadDir(
    std::string path) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  if (obj->type != 0) co_return Status(StatusCode::kNotADirectory);
  wire::BufferWriter w;
  w.WriteU64(obj->handle);
  auto raw = co_await CallServer(obj->handle, pvfs_method::kReadDirObj,
                                 w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto count = r.ReadVarint();
  if (!count.ok()) co_return count.status();
  std::vector<vfs::DirEntry> entries;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) co_return name.status();
    auto type = r.ReadU8();
    if (!type.ok()) co_return type.status();
    entries.push_back(
        {std::move(*name),
         *type == 0 ? FileType::kDirectory : FileType::kRegular});
  }
  co_return entries;
}

sim::Task<Status> PvfsClient::Rename(std::string from, std::string to) {
  auto from_parent = co_await ResolveParent(from);
  if (!from_parent.ok()) co_return from_parent.status();
  auto to_parent = co_await ResolveParent(to);
  if (!to_parent.ok()) co_return to_parent.status();
  if (vfs::IsWithin(from, to) && from != to) {
    co_return Status(StatusCode::kInvalidArgument);
  }
  wire::BufferWriter dw;
  dw.WriteU64(from_parent->handle);
  dw.WriteString(std::string(BaseName(from)));
  auto draw = co_await CallServer(from_parent->handle,
                                  pvfs_method::kRemoveDirent, dw.Take());
  if (!draw.ok()) co_return draw.status();
  wire::BufferReader dr(*draw);
  auto dcode = DecodeCode(dr);
  if (!dcode.ok()) co_return dcode.status();
  if (*dcode != StatusCode::kOk) co_return Status(*dcode, from);
  auto handle = dr.ReadU64();
  if (!handle.ok()) co_return handle.status();
  auto type = dr.ReadU8();
  if (!type.ok()) co_return type.status();
  wire::BufferWriter iw;
  iw.WriteU64(to_parent->handle);
  iw.WriteString(std::string(BaseName(to)));
  iw.WriteU64(*handle);
  iw.WriteU8(*type);
  auto iraw = co_await CallServer(to_parent->handle,
                                  pvfs_method::kInsertDirent, iw.Take());
  auto icode = JustCode(iraw);
  if (!icode.ok()) co_return icode.status();
  co_return Status(*icode);
}

sim::Task<Status> PvfsClient::Chmod(std::string path, vfs::Mode mode) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  wire::BufferWriter w;
  w.WriteU64(obj->handle);
  w.WriteBool(true);
  w.WriteU32(mode);
  w.WriteBool(false);
  w.WriteI64(0);
  w.WriteI64(0);
  w.WriteU64(0);
  auto raw = co_await CallServer(obj->handle, pvfs_method::kSetAttrObj,
                                 w.Take());
  auto code = JustCode(raw);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> PvfsClient::Utimens(std::string path, std::int64_t atime,
                                      std::int64_t mtime) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  wire::BufferWriter w;
  w.WriteU64(obj->handle);
  w.WriteBool(false);
  w.WriteU32(0);
  w.WriteBool(true);
  w.WriteI64(atime);
  w.WriteI64(mtime);
  w.WriteU64(0);
  auto raw = co_await CallServer(obj->handle, pvfs_method::kSetAttrObj,
                                 w.Take());
  auto code = JustCode(raw);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> PvfsClient::Truncate(std::string path, std::uint64_t size) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  wire::BufferWriter gw;
  gw.WriteU64(obj->handle);
  auto graw = co_await CallServer(obj->handle, pvfs_method::kGetAttrObj,
                                  gw.Take());
  if (!graw.ok()) co_return graw.status();
  auto oa = DecodeObjAttr(*graw);
  if (!oa.ok()) co_return oa.status();
  if (oa->datafile == 0) co_return Status(StatusCode::kIsADirectory);
  wire::BufferWriter w;
  w.WriteU64(oa->datafile);
  w.WriteU64(size);
  auto raw = co_await CallServer(oa->datafile, pvfs_method::kDataTruncate,
                                 w.Take());
  auto code = JustCode(raw);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> PvfsClient::Symlink(std::string target,
                                      std::string link_path) {
  auto parent = co_await ResolveParent(link_path);
  if (!parent.ok()) co_return parent.status();
  wire::BufferWriter mw;
  mw.WriteU32(0777);
  mw.WriteString(target);
  auto mraw =
      co_await CallIndex(PickServer(), pvfs_method::kCreateMeta, mw.Take());
  if (!mraw.ok()) co_return mraw.status();
  wire::BufferReader mr(*mraw);
  auto mcode = DecodeCode(mr);
  if (!mcode.ok()) co_return mcode.status();
  if (*mcode != StatusCode::kOk) co_return Status(*mcode);
  auto meta = mr.ReadU64();
  if (!meta.ok()) co_return meta.status();
  wire::BufferWriter iw;
  iw.WriteU64(parent->handle);
  iw.WriteString(std::string(BaseName(link_path)));
  iw.WriteU64(*meta);
  iw.WriteU8(1);
  auto iraw = co_await CallServer(parent->handle,
                                  pvfs_method::kInsertDirent, iw.Take());
  auto icode = JustCode(iraw);
  if (!icode.ok()) co_return icode.status();
  co_return Status(*icode);
}

sim::Task<Result<std::string>> PvfsClient::ReadLink(std::string path) {
  auto obj = co_await Resolve(path);
  if (!obj.ok()) co_return obj.status();
  wire::BufferWriter w;
  w.WriteU64(obj->handle);
  auto raw = co_await CallServer(obj->handle, pvfs_method::kGetAttrObj,
                                 w.Take());
  if (!raw.ok()) co_return raw.status();
  auto oa = DecodeObjAttr(*raw);
  if (!oa.ok()) co_return oa.status();
  if (oa->attr.type != FileType::kSymlink) {
    co_return Status(StatusCode::kInvalidArgument, "not a symlink");
  }
  co_return oa->symlink_target;
}

sim::Task<Status> PvfsClient::Access(std::string path, vfs::Mode mode) {
  auto attr = co_await GetAttr(std::move(path));
  if (!attr.ok()) co_return attr.status();
  const vfs::Mode perms = attr->mode;
  const vfs::Mode have = (perms | (perms >> 3) | (perms >> 6)) & 07;
  if ((mode & have) != mode) co_return Status(StatusCode::kPermissionDenied);
  co_return Status::Ok();
}

sim::Task<Result<vfs::FileHandle>> PvfsClient::Open(std::string path,
                                                    std::uint32_t flags) {
  auto obj = co_await Resolve(path);
  if (!obj.ok() && (flags & vfs::kCreate) &&
      obj.code() == StatusCode::kNotFound) {
    auto created = co_await Create(path, vfs::kDefaultFileMode);
    if (!created.ok()) co_return created.status();
    obj = co_await Resolve(path);
  }
  if (!obj.ok()) co_return obj.status();
  if (obj->type == 0) co_return Status(StatusCode::kIsADirectory);
  wire::BufferWriter gw;
  gw.WriteU64(obj->handle);
  auto graw = co_await CallServer(obj->handle, pvfs_method::kGetAttrObj,
                                  gw.Take());
  if (!graw.ok()) co_return graw.status();
  auto oa = DecodeObjAttr(*graw);
  if (!oa.ok()) co_return oa.status();
  if (oa->datafile == 0) co_return Status(StatusCode::kIoError, "no datafile");
  if (flags & vfs::kTruncate) {
    wire::BufferWriter tw;
    tw.WriteU64(oa->datafile);
    tw.WriteU64(0);
    (void)co_await CallServer(oa->datafile, pvfs_method::kDataTruncate,
                              tw.Take());
  }
  const vfs::FileHandle handle = next_handle_++;
  open_files_.emplace(handle, oa->datafile);
  co_return handle;
}

sim::Task<Status> PvfsClient::Release(vfs::FileHandle handle) {
  if (open_files_.erase(handle) == 0) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  co_return Status::Ok();
}

sim::Task<Result<vfs::Bytes>> PvfsClient::Read(vfs::FileHandle handle,
                                               std::uint64_t offset,
                                               std::uint64_t length) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  wire::BufferWriter w;
  w.WriteU64(it->second);
  w.WriteU64(offset);
  w.WriteU64(length);
  auto raw = co_await CallServer(it->second, pvfs_method::kDataRead,
                                 w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code);
  auto bytes = r.ReadBytes();
  if (!bytes.ok()) co_return bytes.status();
  co_return std::move(*bytes);
}

sim::Task<Result<std::uint64_t>> PvfsClient::Write(vfs::FileHandle handle,
                                                   std::uint64_t offset,
                                                   vfs::Bytes data) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  wire::BufferWriter w;
  w.WriteU64(it->second);
  w.WriteU64(offset);
  w.WriteBytes(data);
  auto raw = co_await CallServer(it->second, pvfs_method::kDataWrite,
                                 w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code);
  auto n = r.ReadU64();
  if (!n.ok()) co_return n.status();
  co_return *n;
}

sim::Task<Result<vfs::FsStats>> PvfsClient::StatFs() {
  vfs::FsStats stats;
  stats.total_bytes = 1ull << 42;
  stats.free_bytes = 1ull << 41;
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(instance_.server_nodes().size()); ++i) {
    auto raw = co_await CallIndex(i, pvfs_method::kStatFsObj, {});
    if (!raw.ok()) co_return raw.status();
    wire::BufferReader r(*raw);
    auto code = DecodeCode(r);
    if (!code.ok()) co_return code.status();
    auto count = r.ReadU64();
    if (!count.ok()) co_return count.status();
    stats.files += *count;
  }
  co_return stats;
}

}  // namespace dufs::pfs
