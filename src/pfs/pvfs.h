// PVFS2-like parallel filesystem (paper §II / §V).
//
// K combined metadata+data servers. Every filesystem object (directory,
// metafile, datafile) is a handle owned by one server; directory entries
// live with their directory object. The defining behaviours the paper's
// evaluation rests on are modeled explicitly:
//
//  * no client caching: every path component is resolved with a lookup RPC,
//  * namespace operations are multi-RPC protocols touching several servers
//    (create = metafile + datafile + dirent insert),
//  * every metadata mutation does a synchronous Trove/DBPF-style disk write
//    (no group commit) — this is why native PVFS2 metadata throughput is
//    flat and low (Fig. 10, the 23x dir-create gap at 256 procs),
//  * reads go through a single-threaded request pipeline per server.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "net/rpc.h"
#include "obs/obs.h"
#include "sim/sync.h"
#include "vfs/filesystem.h"
#include "vfs/path.h"

namespace dufs::pfs {

using PvfsHandle = std::uint64_t;
inline constexpr PvfsHandle kPvfsRootHandle = 1;  // server 0, id 1

inline std::uint32_t PvfsServerOf(PvfsHandle h) {
  return static_cast<std::uint32_t>(h >> 48);
}

struct PvfsPerfModel {
  sim::Duration read_cpu = sim::Us(55);      // lookup/getattr/readdir
  sim::Duration mutation_cpu = sim::Us(70);  // before the sync disk write
  sim::Duration sync_write_latency = sim::Ms(5.2);  // multiple DBPF B-tree syncs per mutation
};

// RPC method ids (PVFS owns 300-339).
namespace pvfs_method {
inline constexpr std::uint16_t kLookup = 300;
inline constexpr std::uint16_t kCreateDir = 301;
inline constexpr std::uint16_t kCreateMeta = 302;
inline constexpr std::uint16_t kCreateData = 303;
inline constexpr std::uint16_t kInsertDirent = 304;
inline constexpr std::uint16_t kRemoveDirent = 305;
inline constexpr std::uint16_t kGetAttrObj = 306;
inline constexpr std::uint16_t kSetAttrObj = 307;
inline constexpr std::uint16_t kReadDirObj = 308;
inline constexpr std::uint16_t kRemoveObj = 309;
inline constexpr std::uint16_t kDataRead = 310;
inline constexpr std::uint16_t kDataWrite = 311;
inline constexpr std::uint16_t kDataTruncate = 312;
inline constexpr std::uint16_t kDataSize = 313;
inline constexpr std::uint16_t kStatFsObj = 314;
}  // namespace pvfs_method

class PvfsServer {
 public:
  PvfsServer(net::RpcEndpoint& endpoint, std::uint32_t index,
             PvfsPerfModel perf);

  void Start();
  std::size_t object_count() const { return objects_.size(); }

 private:
  enum class ObjType : std::uint8_t { kDir = 0, kMeta = 1, kData = 2 };

  struct Object {
    ObjType type = ObjType::kMeta;
    vfs::FileAttr attr;
    std::map<std::string, std::pair<PvfsHandle, std::uint8_t>> entries;
    PvfsHandle datafile = 0;        // metafiles
    std::string symlink_target;     // symlink metafiles
    vfs::Bytes data;                // datafiles
  };

  sim::Task<net::RpcResult> Handle(std::uint16_t method, net::Payload req);
  sim::Task<void> ReadWork();
  sim::Task<void> MutationWork();
  PvfsHandle NewHandle() {
    return (static_cast<PvfsHandle>(index_) << 48) | next_id_++;
  }

  net::RpcEndpoint& endpoint_;
  std::uint32_t index_;
  PvfsPerfModel perf_;
  std::unordered_map<PvfsHandle, Object> objects_;
  std::uint64_t next_id_ = 100;
  std::unique_ptr<sim::Resource> pipeline_;
  std::unique_ptr<sim::Resource> trove_disk_;
};

class PvfsInstance {
 public:
  PvfsInstance(net::Network& net, std::string name, std::size_t n_servers = 2,
               PvfsPerfModel perf = {});

  const std::string& name() const { return name_; }
  const std::vector<net::NodeId>& server_nodes() const {
    return server_nodes_;
  }

 private:
  std::string name_;
  std::vector<net::NodeId> server_nodes_;
  std::vector<std::unique_ptr<net::RpcEndpoint>> endpoints_;
  std::vector<std::unique_ptr<PvfsServer>> servers_;
};

class PvfsClient : public vfs::FileSystem {
 public:
  PvfsClient(net::RpcEndpoint& endpoint, PvfsInstance& instance);

  std::string name() const override { return "pvfs:" + instance_.name(); }

  sim::Task<Result<vfs::FileAttr>> GetAttr(std::string path) override;
  sim::Task<Status> Mkdir(std::string path, vfs::Mode mode) override;
  sim::Task<Status> Rmdir(std::string path) override;
  sim::Task<Result<vfs::FileAttr>> Create(std::string path,
                                          vfs::Mode mode) override;
  sim::Task<Status> Unlink(std::string path) override;
  sim::Task<Result<std::vector<vfs::DirEntry>>> ReadDir(
      std::string path) override;
  sim::Task<Status> Rename(std::string from, std::string to) override;
  sim::Task<Status> Chmod(std::string path, vfs::Mode mode) override;
  sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                            std::int64_t mtime) override;
  sim::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  sim::Task<Status> Symlink(std::string target,
                            std::string link_path) override;
  sim::Task<Result<std::string>> ReadLink(std::string path) override;
  sim::Task<Status> Access(std::string path, vfs::Mode mode) override;
  sim::Task<Result<vfs::FileHandle>> Open(std::string path,
                                          std::uint32_t flags) override;
  sim::Task<Status> Release(vfs::FileHandle handle) override;
  sim::Task<Result<vfs::Bytes>> Read(vfs::FileHandle handle,
                                     std::uint64_t offset,
                                     std::uint64_t length) override;
  sim::Task<Result<std::uint64_t>> Write(vfs::FileHandle handle,
                                         std::uint64_t offset,
                                         vfs::Bytes data) override;
  sim::Task<Result<vfs::FsStats>> StatFs() override;

  // Optional: backend-call spans (pvfs-call) + a latency timer.
  void AttachObs(obs::NodeObs node_obs);

 private:
  struct ResolvedObject {
    PvfsHandle handle = 0;
    std::uint8_t type = 0;  // ObjType on the wire
  };

  sim::Task<net::RpcResult> CallServer(PvfsHandle handle,
                                       std::uint16_t method, net::Payload req);
  sim::Task<net::RpcResult> CallIndex(std::uint32_t index,
                                      std::uint16_t method, net::Payload req);
  // Component-by-component resolution — one lookup RPC per component, no
  // caching (PVFS2 semantics).
  sim::Task<Result<ResolvedObject>> Resolve(std::string_view path);
  sim::Task<Result<ResolvedObject>> ResolveParent(std::string_view path);
  std::uint32_t PickServer();  // round-robin placement for new objects

  net::RpcEndpoint& endpoint_;
  PvfsInstance& instance_;
  std::uint32_t next_server_ = 0;
  std::unordered_map<vfs::FileHandle, PvfsHandle> open_files_;  // -> datafile
  vfs::FileHandle next_handle_ = 1;
  obs::NodeObs obs_;
  obs::Timer t_call_;
};

}  // namespace dufs::pfs
