#include "pfs/lustre.h"

#include <algorithm>

#include "pfs/codec.h"

namespace dufs::pfs {

using vfs::BaseName;
using vfs::DirName;
using vfs::FileAttr;
using vfs::FileType;
using vfs::SplitPath;

namespace {

void EncodeObjectRef(wire::BufferWriter& w, const ObjectRef& ref) {
  w.WriteU32(ref.oss_index);
  w.WriteU64(ref.object_id);
}

Result<ObjectRef> DecodeObjectRef(wire::BufferReader& r) {
  ObjectRef ref;
  auto oss = r.ReadU32();
  DUFS_RETURN_IF_ERROR(oss);
  ref.oss_index = *oss;
  auto id = r.ReadU64();
  DUFS_RETURN_IF_ERROR(id);
  ref.object_id = *id;
  return ref;
}

net::Payload ErrorReply(StatusCode code) {
  wire::BufferWriter w;
  EncodeCode(w, code);
  return w.Take();
}

}  // namespace

// =========================================================== LustreMds ====

LustreMds::LustreMds(net::RpcEndpoint& endpoint,
                     std::vector<net::NodeId> oss_nodes, LustrePerfModel perf)
    : endpoint_(endpoint),
      oss_nodes_(std::move(oss_nodes)),
      perf_(perf),
      root_(std::make_unique<Inode>()) {
  root_->attr.type = FileType::kDirectory;
  root_->attr.mode = vfs::kDefaultDirMode;
  root_->attr.inode = 1;
  root_->attr.nlink = 2;
}

void LustreMds::Start() {
  read_pool_ =
      std::make_unique<sim::Resource>(endpoint_.sim(), perf_.read_threads);
  mutation_pipeline_ = std::make_unique<sim::Resource>(endpoint_.sim(), 1);
  journal_mb_ =
      std::make_unique<sim::Mailbox<JournalEntry>>(endpoint_.sim());
  sim::CurrentSimulationScope scope(&endpoint_.sim());
  endpoint_.sim().Spawn(JournalLoop());

  for (std::uint16_t m = lustre_method::kGetAttr;
       m <= lustre_method::kStatFs; ++m) {
    // Handler closures are stored in the endpoint's handler map, which this
    // MDS owns for its whole lifetime — `this` outlives every invocation.
    endpoint_.RegisterHandler(
        m, [this, m](net::NodeId from,  // dufs-lint: allow(coro-capture-ref)
                     net::Payload req) -> sim::Task<net::RpcResult> {
          ++inflight_;
          ++ops_served_;
          auto result = co_await Handle(m, from, std::move(req));
          --inflight_;
          co_return result;
        });
  }
}

LustreMds::Inode* LustreMds::Lookup(std::string_view path) {
  Inode* cur = root_.get();
  for (const auto& part : SplitPath(path)) {
    if (cur->attr.type != FileType::kDirectory) return nullptr;
    auto it = cur->children.find(part);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur;
}

Result<LustreMds::Inode*> LustreMds::ParentOf(std::string_view path) {
  if (path == "/" || path.empty()) {
    return Status(StatusCode::kInvalidArgument);
  }
  Inode* parent = Lookup(DirName(path));
  if (parent == nullptr) return Status(StatusCode::kNotFound);
  if (parent->attr.type != FileType::kDirectory) {
    return Status(StatusCode::kNotADirectory);
  }
  return parent;
}

FileAttr LustreMds::NewAttr(FileType type, vfs::Mode mode) {
  FileAttr attr;
  attr.type = type;
  attr.mode = mode;
  attr.inode = next_inode_++;
  attr.nlink = type == FileType::kDirectory ? 2 : 1;
  attr.ctime = attr.mtime = attr.atime = endpoint_.sim().now();
  return attr;
}

sim::Task<void> LustreMds::ReadWork(sim::Duration base) {
  const sim::Duration dlm =
      static_cast<sim::Duration>(inflight_) * perf_.dlm_cpu_per_inflight;
  auto guard = co_await read_pool_->Acquire();
  co_await endpoint_.sim().Delay(base + dlm);
}

sim::Task<void> LustreMds::MutationWork(sim::Duration base) {
  const sim::Duration dlm =
      static_cast<sim::Duration>(inflight_) * perf_.dlm_cpu_per_inflight;
  {
    auto guard = co_await mutation_pipeline_->Acquire();
    co_await endpoint_.sim().Delay(base + dlm);
  }
  // Journal commit (group commit batches concurrent mutations).
  auto [future, promise] = sim::MakeFuture<bool>(endpoint_.sim());
  journal_mb_->Send(JournalEntry{256, promise});
  co_await std::move(future);
}

sim::Task<void> LustreMds::JournalLoop() {
  for (;;) {
    auto first = co_await journal_mb_->Recv();
    if (!first.has_value()) co_return;
    std::vector<JournalEntry> batch;
    batch.push_back(std::move(*first));
    while (journal_mb_->size() > 0 && batch.size() < perf_.max_journal_batch) {
      auto more = co_await journal_mb_->Recv();
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    std::size_t total = 0;
    for (const auto& e : batch) total += e.bytes;
    co_await endpoint_.node().DiskWrite(total);
    for (auto& e : batch) e.done.Set(true);
  }
}

sim::Task<net::RpcResult> LustreMds::Handle(std::uint16_t method,
                                            net::NodeId /*from*/,
                                            net::Payload req) {
  namespace m = lustre_method;
  wire::BufferReader r(req);
  wire::BufferWriter w;

  switch (method) {
    case m::kGetAttr: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      co_await ReadWork(perf_.read_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      EncodeCode(w, StatusCode::kOk);
      EncodeAttr(w, node->attr);
      EncodeObjectRef(w, node->object);
      co_return w.Take();
    }
    case m::kMkdir: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      auto mode = r.ReadU32();
      if (!mode.ok()) co_return mode.status();
      co_await MutationWork(perf_.mkdir_cpu);
      auto parent = ParentOf(*path);
      if (!parent.ok()) co_return ErrorReply(parent.code());
      const std::string child(BaseName(*path));
      if ((*parent)->children.count(child) > 0) {
        co_return ErrorReply(StatusCode::kAlreadyExists);
      }
      auto node = std::make_unique<Inode>();
      node->attr = NewAttr(FileType::kDirectory, *mode);
      (*parent)->children.emplace(child, std::move(node));
      ++(*parent)->attr.nlink;
      (*parent)->attr.mtime = endpoint_.sim().now();
      ++node_count_;
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kRmdir: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      co_await MutationWork(perf_.unlink_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (node->attr.type != FileType::kDirectory) {
        co_return ErrorReply(StatusCode::kNotADirectory);
      }
      if (!node->children.empty()) {
        co_return ErrorReply(StatusCode::kNotEmpty);
      }
      auto parent = ParentOf(*path);
      if (!parent.ok()) co_return ErrorReply(parent.code());
      (*parent)->children.erase(std::string(BaseName(*path)));
      --(*parent)->attr.nlink;
      --node_count_;
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kCreate: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      auto mode = r.ReadU32();
      if (!mode.ok()) co_return mode.status();
      co_await MutationWork(perf_.create_cpu);
      auto parent = ParentOf(*path);
      if (!parent.ok()) co_return ErrorReply(parent.code());
      const std::string child(BaseName(*path));
      if ((*parent)->children.count(child) > 0) {
        co_return ErrorReply(StatusCode::kAlreadyExists);
      }
      auto node = std::make_unique<Inode>();
      node->attr = NewAttr(FileType::kRegular, *mode);
      // Lustre pre-creates objects on OSTs; assignment is cheap here.
      node->object.oss_index = next_oss_;
      next_oss_ = (next_oss_ + 1) % static_cast<std::uint32_t>(
                                        std::max<std::size_t>(
                                            oss_nodes_.size(), 1));
      node->object.object_id = next_object_++;
      const FileAttr attr = node->attr;
      const ObjectRef ref = node->object;
      (*parent)->children.emplace(child, std::move(node));
      (*parent)->attr.mtime = endpoint_.sim().now();
      ++node_count_;
      EncodeCode(w, StatusCode::kOk);
      EncodeAttr(w, attr);
      EncodeObjectRef(w, ref);
      co_return w.Take();
    }
    case m::kUnlink: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      co_await MutationWork(perf_.unlink_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (node->attr.type == FileType::kDirectory) {
        co_return ErrorReply(StatusCode::kIsADirectory);
      }
      const ObjectRef ref = node->object;
      auto parent = ParentOf(*path);
      if (!parent.ok()) co_return ErrorReply(parent.code());
      (*parent)->children.erase(std::string(BaseName(*path)));
      --node_count_;
      EncodeCode(w, StatusCode::kOk);
      EncodeObjectRef(w, ref);
      co_return w.Take();
    }
    case m::kReadDir: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      co_await ReadWork(perf_.read_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (node->attr.type != FileType::kDirectory) {
        co_return ErrorReply(StatusCode::kNotADirectory);
      }
      EncodeCode(w, StatusCode::kOk);
      w.WriteVarint(node->children.size());
      for (const auto& [name, child] : node->children) {
        w.WriteString(name);
        w.WriteU8(static_cast<std::uint8_t>(child->attr.type));
      }
      co_return w.Take();
    }
    case m::kRename: {
      auto from_path = r.ReadString();
      if (!from_path.ok()) co_return from_path.status();
      auto to_path = r.ReadString();
      if (!to_path.ok()) co_return to_path.status();
      co_await MutationWork(perf_.rename_cpu);
      Inode* node = Lookup(*from_path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (vfs::IsWithin(*from_path, *to_path) && *from_path != *to_path) {
        co_return ErrorReply(StatusCode::kInvalidArgument);
      }
      auto to_parent = ParentOf(*to_path);
      if (!to_parent.ok()) co_return ErrorReply(to_parent.code());
      if (Inode* existing = Lookup(*to_path)) {
        const bool dir = existing->attr.type == FileType::kDirectory;
        if (dir && !existing->children.empty()) {
          co_return ErrorReply(StatusCode::kNotEmpty);
        }
        if (dir != (node->attr.type == FileType::kDirectory)) {
          co_return ErrorReply(dir ? StatusCode::kIsADirectory
                                   : StatusCode::kNotADirectory);
        }
        (*to_parent)->children.erase(std::string(BaseName(*to_path)));
        --node_count_;
      }
      auto from_parent = ParentOf(*from_path);
      if (!from_parent.ok()) co_return ErrorReply(from_parent.code());
      auto moved =
          std::move((*from_parent)->children.at(std::string(
              BaseName(*from_path))));
      (*from_parent)->children.erase(std::string(BaseName(*from_path)));
      (*to_parent)->children.emplace(std::string(BaseName(*to_path)),
                                     std::move(moved));
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kSetAttr: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      auto has_mode = r.ReadBool();
      if (!has_mode.ok()) co_return has_mode.status();
      auto mode = r.ReadU32();
      if (!mode.ok()) co_return mode.status();
      auto has_times = r.ReadBool();
      if (!has_times.ok()) co_return has_times.status();
      auto atime = r.ReadI64();
      if (!atime.ok()) co_return atime.status();
      auto mtime = r.ReadI64();
      if (!mtime.ok()) co_return mtime.status();
      co_await MutationWork(perf_.setattr_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (*has_mode) node->attr.mode = *mode;
      if (*has_times) {
        node->attr.atime = *atime;
        node->attr.mtime = *mtime;
      }
      node->attr.ctime = endpoint_.sim().now();
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kOpen: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      auto flags = r.ReadU32();
      if (!flags.ok()) co_return flags.status();
      co_await ReadWork(perf_.read_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr && (*flags & vfs::kCreate)) {
        // Re-enter via the create path.
        wire::BufferWriter cw;
        cw.WriteString(*path);
        cw.WriteU32(vfs::kDefaultFileMode);
        auto created =
            co_await Handle(m::kCreate, endpoint_.self(), cw.Take());
        if (!created.ok()) co_return created.status();
        node = Lookup(*path);
      }
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (node->attr.type == FileType::kDirectory) {
        co_return ErrorReply(StatusCode::kIsADirectory);
      }
      EncodeCode(w, StatusCode::kOk);
      EncodeObjectRef(w, node->object);
      w.WriteBool((*flags & vfs::kTruncate) != 0);
      co_return w.Take();
    }
    case m::kSymlink: {
      auto target = r.ReadString();
      if (!target.ok()) co_return target.status();
      auto link = r.ReadString();
      if (!link.ok()) co_return link.status();
      co_await MutationWork(perf_.create_cpu);
      auto parent = ParentOf(*link);
      if (!parent.ok()) co_return ErrorReply(parent.code());
      const std::string child(BaseName(*link));
      if ((*parent)->children.count(child) > 0) {
        co_return ErrorReply(StatusCode::kAlreadyExists);
      }
      auto node = std::make_unique<Inode>();
      node->attr = NewAttr(FileType::kSymlink, 0777);
      node->symlink_target = std::move(*target);
      (*parent)->children.emplace(child, std::move(node));
      ++node_count_;
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kReadLink: {
      auto path = r.ReadString();
      if (!path.ok()) co_return path.status();
      co_await ReadWork(perf_.read_cpu);
      Inode* node = Lookup(*path);
      if (node == nullptr) co_return ErrorReply(StatusCode::kNotFound);
      if (node->attr.type != FileType::kSymlink) {
        co_return ErrorReply(StatusCode::kInvalidArgument);
      }
      EncodeCode(w, StatusCode::kOk);
      w.WriteString(node->symlink_target);
      co_return w.Take();
    }
    case m::kStatFs: {
      co_await ReadWork(perf_.read_cpu);
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(1ull << 42);
      w.WriteU64(1ull << 41);
      w.WriteU64(node_count_ - 1);
      co_return w.Take();
    }
    default:
      co_return ErrorReply(StatusCode::kUnimplemented);
  }
}

// =========================================================== LustreOss ====

LustreOss::LustreOss(net::RpcEndpoint& endpoint, LustrePerfModel perf)
    : endpoint_(endpoint), perf_(perf) {}

void LustreOss::Start() {
  for (std::uint16_t m = lustre_method::kObjRead;
       m <= lustre_method::kObjDestroy; ++m) {
    // Stored in the endpoint's handler map; `this` outlives every call.
    endpoint_.RegisterHandler(
        m, [this, m](net::NodeId,  // dufs-lint: allow(coro-capture-ref)
                     net::Payload req) -> sim::Task<net::RpcResult> {
          co_return co_await Handle(m, std::move(req));
        });
  }
}

sim::Task<net::RpcResult> LustreOss::Handle(std::uint16_t method,
                                            net::Payload req) {
  namespace m = lustre_method;
  wire::BufferReader r(req);
  wire::BufferWriter w;
  co_await endpoint_.node().Compute(perf_.oss_op_cpu);

  auto object_id = r.ReadU64();
  if (!object_id.ok()) co_return object_id.status();

  switch (method) {
    case m::kObjRead: {
      auto offset = r.ReadU64();
      if (!offset.ok()) co_return offset.status();
      auto length = r.ReadU64();
      if (!length.ok()) co_return length.status();
      auto& data = objects_[*object_id];  // objects exist lazily
      EncodeCode(w, StatusCode::kOk);
      if (*offset >= data.size()) {
        w.WriteBytes({});
      } else {
        const auto end =
            std::min<std::uint64_t>(*offset + *length, data.size());
        w.WriteBytes(vfs::Bytes(
            data.begin() + static_cast<std::ptrdiff_t>(*offset),
            data.begin() + static_cast<std::ptrdiff_t>(end)));
      }
      co_return w.Take();
    }
    case m::kObjWrite: {
      auto offset = r.ReadU64();
      if (!offset.ok()) co_return offset.status();
      auto bytes = r.ReadBytes();
      if (!bytes.ok()) co_return bytes.status();
      auto& data = objects_[*object_id];
      if (data.size() < *offset + bytes->size()) {
        data.resize(*offset + bytes->size(), 0);
      }
      std::copy(bytes->begin(), bytes->end(),
                data.begin() + static_cast<std::ptrdiff_t>(*offset));
      EncodeCode(w, StatusCode::kOk);
      w.WriteU64(bytes->size());
      co_return w.Take();
    }
    case m::kObjTruncate: {
      auto size = r.ReadU64();
      if (!size.ok()) co_return size.status();
      objects_[*object_id].resize(*size, 0);
      co_return ErrorReply(StatusCode::kOk);
    }
    case m::kObjGlimpse: {
      EncodeCode(w, StatusCode::kOk);
      auto it = objects_.find(*object_id);
      w.WriteU64(it == objects_.end() ? 0 : it->second.size());
      co_return w.Take();
    }
    case m::kObjDestroy: {
      objects_.erase(*object_id);
      co_return ErrorReply(StatusCode::kOk);
    }
    default:
      co_return ErrorReply(StatusCode::kUnimplemented);
  }
}

// ====================================================== LustreInstance ====

LustreInstance::LustreInstance(net::Network& net, std::string name,
                               std::size_t n_oss, LustrePerfModel perf)
    : name_(std::move(name)) {
  mds_node_ = net.AddNode(name_ + "-mds");
  for (std::size_t i = 0; i < n_oss; ++i) {
    oss_nodes_.push_back(net.AddNode(name_ + "-oss" + std::to_string(i)));
  }
  mds_endpoint_ = std::make_unique<net::RpcEndpoint>(net, mds_node_);
  mds_ = std::make_unique<LustreMds>(*mds_endpoint_, oss_nodes_, perf);
  mds_->Start();
  for (std::size_t i = 0; i < n_oss; ++i) {
    oss_endpoints_.push_back(
        std::make_unique<net::RpcEndpoint>(net, oss_nodes_[i]));
    oss_.push_back(std::make_unique<LustreOss>(*oss_endpoints_[i], perf));
    oss_.back()->Start();
  }
}

// ======================================================== LustreClient ====

LustreClient::LustreClient(net::RpcEndpoint& endpoint,
                           LustreInstance& instance)
    : endpoint_(endpoint), instance_(instance) {}

void LustreClient::AttachObs(obs::NodeObs node_obs) {
  obs_ = node_obs;
  t_mds_ = obs_.timer("lustre.mds_ns");
  t_oss_ = obs_.timer("lustre.oss_ns");
}

sim::Task<net::RpcResult> LustreClient::CallMds(std::uint16_t method,
                                                net::Payload req) {
  obs::Span span(obs_, "mds-call", "backend");
  span.ArgInt("method", method);
  const sim::SimTime started = endpoint_.sim().now();
  auto result = co_await endpoint_.Call(instance_.mds_node(), method,
                                        std::move(req));
  t_mds_.Record(endpoint_.sim().now() - started);
  co_return result;
}

sim::Task<net::RpcResult> LustreClient::CallOss(std::uint32_t oss_index,
                                                std::uint16_t method,
                                                net::Payload req) {
  const auto& oss = instance_.oss_nodes();
  DUFS_CHECK(oss_index < oss.size());
  obs::Span span(obs_, "oss-call", "backend");
  span.ArgInt("method", method);
  const sim::SimTime started = endpoint_.sim().now();
  auto result = co_await endpoint_.Call(oss[oss_index], method,
                                        std::move(req));
  t_oss_.Record(endpoint_.sim().now() - started);
  co_return result;
}

sim::Task<Result<vfs::FileAttr>> LustreClient::GetAttr(std::string path) {
  wire::BufferWriter w;
  w.WriteString(path);
  auto raw = co_await CallMds(lustre_method::kGetAttr, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto attr = DecodeAttr(r);
  if (!attr.ok()) co_return attr.status();
  auto ref = DecodeObjectRef(r);
  if (!ref.ok()) co_return ref.status();
  if (attr->IsRegular()) {
    // Size lives with the object: glimpse the OSS, like Lustre.
    wire::BufferWriter gw;
    gw.WriteU64(ref->object_id);
    auto glimpse =
        co_await CallOss(ref->oss_index, lustre_method::kObjGlimpse,
                         gw.Take());
    if (!glimpse.ok()) co_return glimpse.status();
    wire::BufferReader gr(*glimpse);
    auto gcode = DecodeCode(gr);
    if (!gcode.ok()) co_return gcode.status();
    auto size = gr.ReadU64();
    if (!size.ok()) co_return size.status();
    attr->size = *size;
  }
  co_return *attr;
}

sim::Task<Status> LustreClient::Mkdir(std::string path, vfs::Mode mode) {
  wire::BufferWriter w;
  w.WriteString(path);
  w.WriteU32(mode);
  auto raw = co_await CallMds(lustre_method::kMkdir, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> LustreClient::Rmdir(std::string path) {
  wire::BufferWriter w;
  w.WriteString(path);
  auto raw = co_await CallMds(lustre_method::kRmdir, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Result<vfs::FileAttr>> LustreClient::Create(std::string path,
                                                      vfs::Mode mode) {
  wire::BufferWriter w;
  w.WriteString(path);
  w.WriteU32(mode);
  auto raw = co_await CallMds(lustre_method::kCreate, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto attr = DecodeAttr(r);
  if (!attr.ok()) co_return attr.status();
  co_return *attr;
}

sim::Task<Status> LustreClient::Unlink(std::string path) {
  wire::BufferWriter w;
  w.WriteString(path);
  auto raw = co_await CallMds(lustre_method::kUnlink, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto ref = DecodeObjectRef(r);
  if (ref.ok() && ref->object_id != 0) {
    // Asynchronous object destruction, as Lustre does on unlink commit.
    wire::BufferWriter dw;
    dw.WriteU64(ref->object_id);
    const auto& oss = instance_.oss_nodes();
    if (ref->oss_index < oss.size()) {
      endpoint_.Notify(oss[ref->oss_index], lustre_method::kObjDestroy,
                       dw.Take());
    }
  }
  co_return Status::Ok();
}

sim::Task<Result<std::vector<vfs::DirEntry>>> LustreClient::ReadDir(
    std::string path) {
  wire::BufferWriter w;
  w.WriteString(path);
  auto raw = co_await CallMds(lustre_method::kReadDir, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto count = r.ReadVarint();
  if (!count.ok()) co_return count.status();
  std::vector<vfs::DirEntry> entries;
  entries.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) co_return name.status();
    auto type = r.ReadU8();
    if (!type.ok()) co_return type.status();
    entries.push_back({std::move(*name), static_cast<vfs::FileType>(*type)});
  }
  co_return entries;
}

sim::Task<Status> LustreClient::Rename(std::string from, std::string to) {
  wire::BufferWriter w;
  w.WriteString(from);
  w.WriteString(to);
  auto raw = co_await CallMds(lustre_method::kRename, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

namespace {
net::Payload EncodeSetAttr(const std::string& path, bool has_mode,
                           vfs::Mode mode, bool has_times, std::int64_t atime,
                           std::int64_t mtime) {
  wire::BufferWriter w;
  w.WriteString(path);
  w.WriteBool(has_mode);
  w.WriteU32(mode);
  w.WriteBool(has_times);
  w.WriteI64(atime);
  w.WriteI64(mtime);
  return w.Take();
}
}  // namespace

sim::Task<Status> LustreClient::Chmod(std::string path, vfs::Mode mode) {
  auto raw = co_await CallMds(lustre_method::kSetAttr,
                              EncodeSetAttr(path, true, mode, false, 0, 0));
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> LustreClient::Utimens(std::string path, std::int64_t atime,
                                        std::int64_t mtime) {
  auto raw = co_await CallMds(
      lustre_method::kSetAttr,
      EncodeSetAttr(path, false, 0, true, atime, mtime));
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> LustreClient::Truncate(std::string path,
                                         std::uint64_t size) {
  auto opened = co_await Open(path, vfs::kWrite);
  if (!opened.ok()) co_return opened.status();
  const ObjectRef ref = handles_.at(*opened);
  wire::BufferWriter w;
  w.WriteU64(ref.object_id);
  w.WriteU64(size);
  auto raw =
      co_await CallOss(ref.oss_index, lustre_method::kObjTruncate, w.Take());
  co_await Release(*opened);
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Status> LustreClient::Symlink(std::string target,
                                        std::string link_path) {
  wire::BufferWriter w;
  w.WriteString(target);
  w.WriteString(link_path);
  auto raw = co_await CallMds(lustre_method::kSymlink, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  co_return Status(*code);
}

sim::Task<Result<std::string>> LustreClient::ReadLink(std::string path) {
  wire::BufferWriter w;
  w.WriteString(path);
  auto raw = co_await CallMds(lustre_method::kReadLink, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto target = r.ReadString();
  if (!target.ok()) co_return target.status();
  co_return *target;
}

sim::Task<Status> LustreClient::Access(std::string path, vfs::Mode mode) {
  auto attr = co_await GetAttr(std::move(path));
  if (!attr.ok()) co_return attr.status();
  const vfs::Mode perms = attr->mode;
  const vfs::Mode have = (perms | (perms >> 3) | (perms >> 6)) & 07;
  if ((mode & have) != mode) co_return Status(StatusCode::kPermissionDenied);
  co_return Status::Ok();
}

sim::Task<Result<vfs::FileHandle>> LustreClient::Open(std::string path,
                                                      std::uint32_t flags) {
  wire::BufferWriter w;
  w.WriteString(path);
  w.WriteU32(flags);
  auto raw = co_await CallMds(lustre_method::kOpen, w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code, path);
  auto ref = DecodeObjectRef(r);
  if (!ref.ok()) co_return ref.status();
  auto truncate = r.ReadBool();
  if (truncate.ok() && *truncate) {
    wire::BufferWriter tw;
    tw.WriteU64(ref->object_id);
    tw.WriteU64(0);
    (void)co_await CallOss(ref->oss_index, lustre_method::kObjTruncate,
                           tw.Take());
  }
  const vfs::FileHandle handle = next_handle_++;
  handles_.emplace(handle, *ref);
  co_return handle;
}

sim::Task<Status> LustreClient::Release(vfs::FileHandle handle) {
  if (handles_.erase(handle) == 0) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  co_return Status::Ok();
}

sim::Task<Result<vfs::Bytes>> LustreClient::Read(vfs::FileHandle handle,
                                                 std::uint64_t offset,
                                                 std::uint64_t length) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  wire::BufferWriter w;
  w.WriteU64(it->second.object_id);
  w.WriteU64(offset);
  w.WriteU64(length);
  auto raw =
      co_await CallOss(it->second.oss_index, lustre_method::kObjRead,
                       w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code);
  auto bytes = r.ReadBytes();
  if (!bytes.ok()) co_return bytes.status();
  co_return std::move(*bytes);
}

sim::Task<Result<std::uint64_t>> LustreClient::Write(vfs::FileHandle handle,
                                                     std::uint64_t offset,
                                                     vfs::Bytes data) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    co_return Status(StatusCode::kInvalidArgument, "bad handle");
  }
  wire::BufferWriter w;
  w.WriteU64(it->second.object_id);
  w.WriteU64(offset);
  w.WriteBytes(data);
  auto raw =
      co_await CallOss(it->second.oss_index, lustre_method::kObjWrite,
                       w.Take());
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  if (*code != StatusCode::kOk) co_return Status(*code);
  auto n = r.ReadU64();
  if (!n.ok()) co_return n.status();
  co_return *n;
}

sim::Task<Result<vfs::FsStats>> LustreClient::StatFs() {
  auto raw = co_await CallMds(lustre_method::kStatFs, {});
  if (!raw.ok()) co_return raw.status();
  wire::BufferReader r(*raw);
  auto code = DecodeCode(r);
  if (!code.ok()) co_return code.status();
  vfs::FsStats stats;
  auto total = r.ReadU64();
  if (!total.ok()) co_return total.status();
  stats.total_bytes = *total;
  auto free_bytes = r.ReadU64();
  if (!free_bytes.ok()) co_return free_bytes.status();
  stats.free_bytes = *free_bytes;
  auto files = r.ReadU64();
  if (!files.ok()) co_return files.status();
  stats.files = *files;
  co_return stats;
}

}  // namespace dufs::pfs
