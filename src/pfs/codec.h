// Wire helpers shared by the parallel-filesystem protocols.
#pragma once

#include "common/status.h"
#include "vfs/types.h"
#include "wire/buffer.h"

namespace dufs::pfs {

inline void EncodeAttr(wire::BufferWriter& w, const vfs::FileAttr& a) {
  w.WriteU8(static_cast<std::uint8_t>(a.type));
  w.WriteU32(a.mode);
  w.WriteU64(a.size);
  w.WriteU64(a.inode);
  w.WriteU32(a.nlink);
  w.WriteI64(a.ctime);
  w.WriteI64(a.mtime);
  w.WriteI64(a.atime);
}

inline Result<vfs::FileAttr> DecodeAttr(wire::BufferReader& r) {
  vfs::FileAttr a;
  auto type = r.ReadU8();
  DUFS_RETURN_IF_ERROR(type);
  a.type = static_cast<vfs::FileType>(*type);
  auto mode = r.ReadU32();
  DUFS_RETURN_IF_ERROR(mode);
  a.mode = *mode;
  auto size = r.ReadU64();
  DUFS_RETURN_IF_ERROR(size);
  a.size = *size;
  auto inode = r.ReadU64();
  DUFS_RETURN_IF_ERROR(inode);
  a.inode = *inode;
  auto nlink = r.ReadU32();
  DUFS_RETURN_IF_ERROR(nlink);
  a.nlink = *nlink;
  auto ctime = r.ReadI64();
  DUFS_RETURN_IF_ERROR(ctime);
  a.ctime = *ctime;
  auto mtime = r.ReadI64();
  DUFS_RETURN_IF_ERROR(mtime);
  a.mtime = *mtime;
  auto atime = r.ReadI64();
  DUFS_RETURN_IF_ERROR(atime);
  a.atime = *atime;
  return a;
}

// Every PFS response begins with a status byte.
inline void EncodeCode(wire::BufferWriter& w, StatusCode code) {
  w.WriteU8(static_cast<std::uint8_t>(code));
}

inline Result<StatusCode> DecodeCode(wire::BufferReader& r) {
  auto code = r.ReadU8();
  DUFS_RETURN_IF_ERROR(code);
  return static_cast<StatusCode>(*code);
}

}  // namespace dufs::pfs
