// Lustre-like parallel filesystem (paper §II-A).
//
// One instance = one MDS node + M OSS nodes. The MDS owns the whole
// namespace — a real directory tree with attributes and object layouts —
// and is the single metadata server the paper identifies as the
// bottleneck. The defining performance behaviour is modeled explicitly:
//
//  * a serialized metadata-mutation pipeline (journal/transaction thread),
//  * journal group commit to a spinning disk,
//  * a small read thread pool for getattr/readdir,
//  * DLM lock-management overhead that grows with the number of in-flight
//    client requests (lock grant/callback traffic) — this term is what
//    makes native Lustre throughput *fall* as client processes grow
//    (Figs. 8/10), and `bench/ablation_contention` sweeps it.
//
// Data: each regular file gets one object on an OSS (round-robin). File
// sizes live with the object, so file stat() needs an OSS "glimpse", as in
// Lustre.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "net/rpc.h"
#include "obs/obs.h"
#include "sim/sync.h"
#include "vfs/filesystem.h"
#include "vfs/path.h"

namespace dufs::pfs {

struct LustrePerfModel {
  // MDS read path (getattr/readdir/lookup): small thread pool.
  std::size_t read_threads = 4;
  sim::Duration read_cpu = sim::Us(95);
  // MDS mutation path: serialized transaction pipeline.
  sim::Duration mkdir_cpu = sim::Us(150);
  sim::Duration create_cpu = sim::Us(45);
  sim::Duration unlink_cpu = sim::Us(70);
  sim::Duration rename_cpu = sim::Us(130);
  sim::Duration setattr_cpu = sim::Us(70);
  // DLM lock-management cost added to *every* MDS op, per in-flight
  // request (lock grants, revocation callbacks, export handling).
  sim::Duration dlm_cpu_per_inflight = sim::Us(1.3);
  // Journal group commit.
  std::size_t max_journal_batch = 24;
  // OSS object operations.
  sim::Duration oss_op_cpu = sim::Us(25);
};

// RPC method ids (Lustre owns 200-239).
namespace lustre_method {
inline constexpr std::uint16_t kGetAttr = 200;
inline constexpr std::uint16_t kMkdir = 201;
inline constexpr std::uint16_t kRmdir = 202;
inline constexpr std::uint16_t kCreate = 203;
inline constexpr std::uint16_t kUnlink = 204;
inline constexpr std::uint16_t kReadDir = 205;
inline constexpr std::uint16_t kRename = 206;
inline constexpr std::uint16_t kSetAttr = 207;
inline constexpr std::uint16_t kOpen = 208;
inline constexpr std::uint16_t kSymlink = 209;
inline constexpr std::uint16_t kReadLink = 210;
inline constexpr std::uint16_t kStatFs = 211;
inline constexpr std::uint16_t kObjRead = 220;
inline constexpr std::uint16_t kObjWrite = 221;
inline constexpr std::uint16_t kObjTruncate = 222;
inline constexpr std::uint16_t kObjGlimpse = 223;
inline constexpr std::uint16_t kObjDestroy = 224;
}  // namespace lustre_method

// Object location: which OSS and which object id.
struct ObjectRef {
  std::uint32_t oss_index = 0;
  std::uint64_t object_id = 0;
};

// The MDS server component. Lives on its own node.
class LustreMds {
 public:
  LustreMds(net::RpcEndpoint& endpoint, std::vector<net::NodeId> oss_nodes,
            LustrePerfModel perf);

  void Start();

  std::uint64_t ops_served() const { return ops_served_; }
  std::size_t namespace_size() const { return node_count_; }
  std::size_t inflight() const { return inflight_; }

 private:
  struct Inode {
    vfs::FileAttr attr;
    std::map<std::string, std::unique_ptr<Inode>> children;
    std::string symlink_target;
    ObjectRef object;  // regular files
  };

  // Request handlers.
  sim::Task<net::RpcResult> Handle(std::uint16_t method, net::NodeId from,
                                   net::Payload req);

  Inode* Lookup(std::string_view path);
  Result<Inode*> ParentOf(std::string_view path);
  vfs::FileAttr NewAttr(vfs::FileType type, vfs::Mode mode);

  // Models the per-op MDS CPU: base + DLM term; reads go through the
  // thread pool, mutations through the serialized pipeline + journal.
  sim::Task<void> ReadWork(sim::Duration base);
  sim::Task<void> MutationWork(sim::Duration base);

  struct JournalEntry {
    std::size_t bytes;
    sim::Promise<bool> done;
  };
  sim::Task<void> JournalLoop();

  net::RpcEndpoint& endpoint_;
  std::vector<net::NodeId> oss_nodes_;
  LustrePerfModel perf_;
  std::unique_ptr<Inode> root_;
  std::size_t node_count_ = 1;
  std::uint64_t next_inode_ = 2;
  std::uint64_t next_object_ = 1;
  std::uint32_t next_oss_ = 0;
  std::size_t inflight_ = 0;
  std::uint64_t ops_served_ = 0;
  std::unique_ptr<sim::Resource> read_pool_;
  std::unique_ptr<sim::Resource> mutation_pipeline_;
  std::unique_ptr<sim::Mailbox<JournalEntry>> journal_mb_;
};

// An OSS server: object store keyed by object id.
class LustreOss {
 public:
  LustreOss(net::RpcEndpoint& endpoint, LustrePerfModel perf);
  void Start();

  std::size_t object_count() const { return objects_.size(); }

 private:
  sim::Task<net::RpcResult> Handle(std::uint16_t method, net::Payload req);

  net::RpcEndpoint& endpoint_;
  LustrePerfModel perf_;
  std::unordered_map<std::uint64_t, vfs::Bytes> objects_;
};

// A whole Lustre filesystem instance: MDS + OSSes, built onto nodes the
// caller adds to the network.
class LustreInstance {
 public:
  LustreInstance(net::Network& net, std::string name, std::size_t n_oss = 2,
                 LustrePerfModel perf = {});

  const std::string& name() const { return name_; }
  net::NodeId mds_node() const { return mds_node_; }
  const std::vector<net::NodeId>& oss_nodes() const { return oss_nodes_; }
  LustreMds& mds() { return *mds_; }

 private:
  std::string name_;
  net::NodeId mds_node_;
  std::vector<net::NodeId> oss_nodes_;
  std::unique_ptr<net::RpcEndpoint> mds_endpoint_;
  std::vector<std::unique_ptr<net::RpcEndpoint>> oss_endpoints_;
  std::unique_ptr<LustreMds> mds_;
  std::vector<std::unique_ptr<LustreOss>> oss_;
};

// Client-side filesystem: implements vfs::FileSystem by talking to one
// Lustre instance over the simulated network.
class LustreClient : public vfs::FileSystem {
 public:
  LustreClient(net::RpcEndpoint& endpoint, LustreInstance& instance);

  std::string name() const override { return "lustre:" + instance_.name(); }

  sim::Task<Result<vfs::FileAttr>> GetAttr(std::string path) override;
  sim::Task<Status> Mkdir(std::string path, vfs::Mode mode) override;
  sim::Task<Status> Rmdir(std::string path) override;
  sim::Task<Result<vfs::FileAttr>> Create(std::string path,
                                          vfs::Mode mode) override;
  sim::Task<Status> Unlink(std::string path) override;
  sim::Task<Result<std::vector<vfs::DirEntry>>> ReadDir(
      std::string path) override;
  sim::Task<Status> Rename(std::string from, std::string to) override;
  sim::Task<Status> Chmod(std::string path, vfs::Mode mode) override;
  sim::Task<Status> Utimens(std::string path, std::int64_t atime,
                            std::int64_t mtime) override;
  sim::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  sim::Task<Status> Symlink(std::string target,
                            std::string link_path) override;
  sim::Task<Result<std::string>> ReadLink(std::string path) override;
  sim::Task<Status> Access(std::string path, vfs::Mode mode) override;
  sim::Task<Result<vfs::FileHandle>> Open(std::string path,
                                          std::uint32_t flags) override;
  sim::Task<Status> Release(vfs::FileHandle handle) override;
  sim::Task<Result<vfs::Bytes>> Read(vfs::FileHandle handle,
                                     std::uint64_t offset,
                                     std::uint64_t length) override;
  sim::Task<Result<std::uint64_t>> Write(vfs::FileHandle handle,
                                         std::uint64_t offset,
                                         vfs::Bytes data) override;
  sim::Task<Result<vfs::FsStats>> StatFs() override;

  // Optional: backend-call spans (mds-call / oss-call) + latency timers.
  void AttachObs(obs::NodeObs node_obs);

 private:
  sim::Task<net::RpcResult> CallMds(std::uint16_t method, net::Payload req);
  sim::Task<net::RpcResult> CallOss(std::uint32_t oss_index,
                                    std::uint16_t method, net::Payload req);

  net::RpcEndpoint& endpoint_;
  LustreInstance& instance_;
  std::unordered_map<vfs::FileHandle, ObjectRef> handles_;
  vfs::FileHandle next_handle_ = 1;
  obs::NodeObs obs_;
  obs::Timer t_mds_;
  obs::Timer t_oss_;
};

}  // namespace dufs::pfs
