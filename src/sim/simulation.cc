#include "sim/simulation.h"

#include <utility>

#include "sim/audit.h"

namespace dufs::sim {

namespace {
thread_local Simulation* g_current = nullptr;

// Log-prefix clock: the current simulation's now(), or -1 outside any
// simulation (the logger omits the prefix then).
std::int64_t SimLogClock() {
  Simulation* sim = Simulation::Current();
  return sim != nullptr ? static_cast<std::int64_t>(sim->now()) : -1;
}

}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
  // Idempotent: every simulation installs the same function pointer.
  SetLogClock(&SimLogClock);
}

Simulation::~Simulation() { Shutdown(); }

Simulation* Simulation::Current() { return g_current; }

CurrentSimulationScope::CurrentSimulationScope(Simulation* sim)
    : saved_(g_current) {
  g_current = sim;
}

CurrentSimulationScope::~CurrentSimulationScope() { g_current = saved_; }

void Simulation::ScheduleHandle(Duration delay, std::coroutine_handle<> h) {
  DUFS_CHECK(delay >= 0);
  DUFS_CHECK(h != nullptr);
  // Double-resume and resume-after-completion are caught here, at schedule
  // time, before the corrupted resume would actually execute.
  audit::HandleScheduled(h.address());
  queue_.push(Event{now_ + delay, next_seq_++, h, nullptr});
}

void Simulation::ScheduleFn(Duration delay, std::function<void()> fn) {
  DUFS_CHECK(delay >= 0);
  queue_.push(Event{now_ + delay, next_seq_++, nullptr, std::move(fn)});
}

std::uint64_t Simulation::Run(SimTime until) {
  CurrentSimulationScope scope(this);
  std::uint64_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.at > until) break;
    // Copy out before pop: processing may push new events and invalidate the
    // reference.
    Event ev = top;
    queue_.pop();
    if (ev.at < now_) audit::ClockRegression(now_, ev.at);
    DUFS_CHECK(ev.at >= now_);
    now_ = ev.at;
    ++processed;
    ++events_processed_;
    if (ev.handle) {
      audit::HandleResumed(ev.handle.address());
      ev.handle.resume();
    } else if (ev.fn) {
      ev.fn();
    }
  }
  if (!stop_requested_ && now_ < until && until != kSimTimeMax) {
    now_ = until;  // idle forward to the requested horizon
  }
  return processed;
}

void Simulation::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  CurrentSimulationScope scope(this);
  // Drop pending events first: the frames they reference are owned either by
  // the detached registry (destroyed below) or by parent frames reachable
  // from it. The audit hook also clears each frame's pending-schedule mark so
  // the detached destruction below is not misreported as
  // destroyed-while-scheduled.
  while (!queue_.empty()) {
    const Event& ev = queue_.top();
    audit::EventDroppedAtShutdown(ev.handle ? ev.handle.address() : nullptr);
    queue_.pop();
  }
  // Destroying a frame runs destructors of its locals, which recursively
  // destroys owned child tasks — but never other *detached* frames, so a
  // snapshot of the registry is safe to iterate.
  std::vector<void*> frames(detached_.begin(), detached_.end());
  detached_.clear();
  for (void* frame : frames) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
  audit::SimTeardown();
  shut_down_ = false;  // allow reuse (tests run several workloads per sim)
}

}  // namespace dufs::sim
