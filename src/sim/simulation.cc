#include "sim/simulation.h"

#include <utility>
#include <vector>

#include "sim/audit.h"

namespace dufs::sim {

using internal::EventNode;

namespace {
thread_local Simulation* g_current = nullptr;

// Log-prefix clock: the current simulation's now(), or -1 outside any
// simulation (the logger omits the prefix then).
std::int64_t SimLogClock() {
  Simulation* sim = Simulation::Current();
  return sim != nullptr ? static_cast<std::int64_t>(sim->now()) : -1;
}

}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
  // Idempotent: every simulation installs the same function pointer.
  SetLogClock(&SimLogClock);
}

Simulation::~Simulation() { Shutdown(); }

Simulation* Simulation::Current() { return g_current; }

CurrentSimulationScope::CurrentSimulationScope(Simulation* sim)
    : saved_(g_current) {
  g_current = sim;
}

CurrentSimulationScope::~CurrentSimulationScope() { g_current = saved_; }

void Simulation::Append(EventList& list, EventNode* n) {
  n->next = nullptr;
  if (list.tail != nullptr) {
    list.tail->next = n;
  } else {
    list.head = n;
  }
  list.tail = n;
}

// Places a node whose time shares its 2^36 block with the cursor. Level =
// position of the highest bit where `at` differs from the cursor (level 0 if
// it is within the low 12 bits); slot = that level's digit of the absolute
// time. Same-time nodes always map to the same slot and are appended, so
// FIFO-per-timestamp holds by construction.
void Simulation::PlaceInWheel(EventNode* n) {
  const auto x =
      static_cast<std::uint64_t>(n->at) ^ static_cast<std::uint64_t>(cursor_);
  if (x < kL0Slots) {
    const int slot = static_cast<int>(n->at & (kL0Slots - 1));
    Append(l0_[slot], n);
    l0_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    l0_summary_ |= std::uint64_t{1} << (slot >> 6);
    return;
  }
  const int level = (std::bit_width(x) - kL0Bits - 1) / kSlotBits;  // 0..3
  const int slot = static_cast<int>(
      (n->at >> (kL0Bits + kSlotBits * level)) & (kSlots - 1));
  Append(upper_[level][slot], n);
  occupied_[level] |= std::uint64_t{1} << slot;
}

void Simulation::InsertNode(EventNode* n) {
  ++pending_;
  if (n->at < cursor_) {
    // Run(until) can park the cursor ahead of now(); anything scheduled in
    // the gap waits in the sorted early map, drained before the wheel.
    Append(early_[n->at], n);
    return;
  }
  if (((static_cast<std::uint64_t>(n->at) ^
        static_cast<std::uint64_t>(cursor_)) >>
       kWheelBits) != 0) {
    Append(overflow_[n->at], n);
    return;
  }
  PlaceInWheel(n);
}

EventNode* Simulation::PopNextBefore(SimTime until) {
  // Early map first: every entry there is strictly before every wheel or
  // overflow entry (its time is < cursor_, the wheel's lower bound).
  if (!early_.empty()) {
    auto it = early_.begin();
    if (it->first > until) return nullptr;
    EventList& list = it->second;
    EventNode* n = list.head;
    list.head = n->next;
    if (list.head == nullptr) early_.erase(it);
    --pending_;
    return n;
  }
  for (;;) {
    // Level 0: the slot at the cursor may still hold events (>= cursor_).
    // Two-level bitmap: mask the cursor's word, then jump via the summary.
    const int cur0 = static_cast<int>(cursor_ & (kL0Slots - 1));
    int word = cur0 >> 6;
    std::uint64_t bits = l0_bits_[word] & (~std::uint64_t{0} << (cur0 & 63));
    if (bits == 0) {
      const std::uint64_t later =
          l0_summary_ &
          (word == kL0Words - 1 ? 0 : ~std::uint64_t{0} << (word + 1));
      if (later != 0) {
        word = std::countr_zero(later);
        bits = l0_bits_[word];
      }
    }
    if (bits != 0) {
      const int slot = (word << 6) | std::countr_zero(bits);
      EventList& list = l0_[slot];
      if (list.head->at > until) return nullptr;  // left in place
      cursor_ = (cursor_ & ~SimTime(kL0Slots - 1)) | slot;
      EventNode* n = list.head;
      list.head = n->next;
      if (list.head == nullptr) {
        list.tail = nullptr;
        l0_bits_[word] &= ~(std::uint64_t{1} << (slot & 63));
        if (l0_bits_[word] == 0) l0_summary_ &= ~(std::uint64_t{1} << word);
      }
      --pending_;
      return n;
    }
    // Upper levels: strictly-later slots only (the cursor slot at each upper
    // level was already cascaded when the cursor entered it).
    bool cascaded = false;
    for (int level = 0; level < kUpperLevels; ++level) {
      const int shift = kL0Bits + kSlotBits * level;
      const int cur = static_cast<int>((cursor_ >> shift) & (kSlots - 1));
      const std::uint64_t mask =
          cur == kSlots - 1 ? 0 : ~std::uint64_t{0} << (cur + 1);
      const std::uint64_t m = occupied_[level] & mask;
      if (m == 0) continue;
      const int slot = std::countr_zero(m);
      // Advance the cursor to the start of that slot's window (lower digits
      // zero), then redistribute its list into lower levels in FIFO order.
      // Every event in the slot is at or after the window start, so a window
      // past the horizon means nothing left to run — without cascading.
      const SimTime low_mask = (SimTime(1) << (shift + kSlotBits)) - 1;
      const SimTime window = (cursor_ & ~low_mask) | (SimTime(slot) << shift);
      if (window > until) return nullptr;
      cursor_ = window;
      EventList list = upper_[level][slot];
      upper_[level][slot] = EventList{};
      occupied_[level] &= ~(std::uint64_t{1} << slot);
      prof::ProfScope wheel_scope("engine.wheel", prof::FrameKind::kEnginePhase);
      for (EventNode* n = list.head; n != nullptr;) {
        EventNode* next = n->next;
        PlaceInWheel(n);
        n = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;  // rescan from level 0
    // Wheel empty: promote the overflow block holding the next timer.
    if (overflow_.empty()) return nullptr;
    const SimTime first = overflow_.begin()->first;
    if (first > until) return nullptr;  // skip the reload near a horizon
    cursor_ = first;
    prof::ProfScope wheel_scope("engine.wheel", prof::FrameKind::kEnginePhase);
    while (!overflow_.empty() &&
           ((static_cast<std::uint64_t>(overflow_.begin()->first) ^
             static_cast<std::uint64_t>(cursor_)) >>
            kWheelBits) == 0) {
      EventList list = overflow_.begin()->second;
      overflow_.erase(overflow_.begin());
      for (EventNode* n = list.head; n != nullptr;) {
        EventNode* next = n->next;
        PlaceInWheel(n);
        n = next;
      }
    }
  }
}

void Simulation::ScheduleHandle(Duration delay, std::coroutine_handle<> h) {
  DUFS_CHECK(delay >= 0);
  DUFS_CHECK(h != nullptr);
  // Double-resume and resume-after-completion are caught here, at schedule
  // time, before the corrupted resume would actually execute.
  audit::HandleScheduled(h.address());
  EventNode* n = NewNode(now_ + delay, h.address());
  n->u.prof_ctx = prof::CaptureContext();
  InsertNode(n);
}

void Simulation::ScheduleHandle(Duration delay, SuspendedHandle s) {
  DUFS_CHECK(delay >= 0);
  DUFS_CHECK(s.h != nullptr);
  audit::HandleScheduled(s.h.address());
  EventNode* n = NewNode(now_ + delay, s.h.address());
  n->u.prof_ctx = s.ctx;
  InsertNode(n);
}

std::uint64_t Simulation::Run(SimTime until) {
  CurrentSimulationScope scope(this);
  std::uint64_t processed = 0;
  while (!stop_requested_) {
    EventNode* n = PopNextBefore(until);
    if (n == nullptr) break;
    if (n->at < now_) audit::ClockRegression(now_, n->at);
    DUFS_CHECK(n->at >= now_);
    now_ = n->at;
    ++processed;
    ++events_processed_;
    if (n->handle != nullptr) {
      void* frame = n->handle;
      prof::Snapshot* prof_ctx = n->u.prof_ctx;
      FreeNode(n);  // recycle before the resume schedules its next event
      audit::HandleResumed(frame);
      if (prof_ctx == nullptr && !prof::internal::Active()) {
        std::coroutine_handle<>::from_address(frame).resume();
      } else {
        prof::ResumeGuard prof_guard(prof_ctx, /*callback=*/false);
        std::coroutine_handle<>::from_address(frame).resume();
      }
    } else {
      struct NodeGuard {
        EventNode* n;
        ~NodeGuard() { FreeNode(n); }
      } guard{n};
      if (!prof::internal::Active()) {
        n->u.fn.InvokeAndDestroy();
      } else {
        prof::ResumeGuard prof_guard(nullptr, /*callback=*/true);
        n->u.fn.InvokeAndDestroy();
      }
    }
  }
  if (!stop_requested_ && now_ < until && until != kSimTimeMax) {
    now_ = until;  // idle forward to the requested horizon
  }
  return processed;
}

void Simulation::DropAll() {
  auto drop_list = [](EventList& list) {
    for (EventNode* n = list.head; n != nullptr;) {
      EventNode* next = n->next;
      audit::EventDroppedAtShutdown(n->handle);
      if (n->handle == nullptr) {
        n->u.fn.DestroyOnly();
      } else {
        prof::FreeSnapshot(n->u.prof_ctx);
      }
      FreeNode(n);
      n = next;
    }
    list = EventList{};
  };
  for (auto& [at, list] : early_) drop_list(list);
  early_.clear();
  for (auto& list : l0_) drop_list(list);
  for (auto& bits : l0_bits_) bits = 0;
  l0_summary_ = 0;
  for (auto& level : upper_) {
    for (auto& list : level) drop_list(list);
  }
  for (auto& bits : occupied_) bits = 0;
  for (auto& [at, list] : overflow_) drop_list(list);
  overflow_.clear();
  pending_ = 0;
}

void Simulation::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  CurrentSimulationScope scope(this);
  // Drop pending events first: the frames they reference are owned either by
  // the detached registry (destroyed below) or by parent frames reachable
  // from it. The audit hook also clears each frame's pending-schedule mark so
  // the detached destruction below is not misreported as
  // destroyed-while-scheduled.
  DropAll();
  // Destroying a frame runs destructors of its locals, which recursively
  // destroys owned child tasks — but never other *detached* frames, so a
  // snapshot of the registry is safe to iterate.
  std::vector<void*> frames;
  frames.reserve(detached_count_);
  for (internal::DetachedNode* node = detached_head_.next; node != nullptr;
       node = node->next) {
    frames.push_back(node->frame);
  }
  detached_head_.next = nullptr;
  detached_count_ = 0;
  for (void* frame : frames) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
  audit::SimTeardown();
  shut_down_ = false;  // allow reuse (tests run several workloads per sim)
}

}  // namespace dufs::sim
