// Small-buffer FIFO for simulator waiter lists and mailboxes.
//
// std::deque allocates its map + first block on the first push — one heap
// round trip per Resource/Mailbox wait even when at most a handful of
// waiters ever queue. SmallQueue keeps the first N elements in an inline
// ring and only touches the heap when a queue actually grows past N
// (doubling ring thereafter). N must be a power of two.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "common/log.h"

namespace dufs::sim {

template <typename T, std::size_t N>
class SmallQueue {
  static_assert(N > 0 && (N & (N - 1)) == 0, "N must be a power of two");
  static_assert(alignof(T) <= alignof(std::max_align_t));

 public:
  SmallQueue() = default;
  SmallQueue(const SmallQueue&) = delete;
  SmallQueue& operator=(const SmallQueue&) = delete;

  ~SmallQueue() {
    while (size_ > 0) pop_front();
    if (data_ != InlineData()) {
      ::operator delete(static_cast<void*>(data_));
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T v) {
    if (size_ == cap_) Grow();
    new (data_ + ((head_ + size_) & (cap_ - 1))) T(std::move(v));
    ++size_;
  }

  T& front() {
    DUFS_CHECK(size_ > 0);
    return data_[head_];
  }

  void pop_front() {
    DUFS_CHECK(size_ > 0);
    data_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }

  void Grow() {
    const std::size_t new_cap = cap_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      T& slot = data_[(head_ + i) & (cap_ - 1)];
      new (fresh + i) T(std::move(slot));
      slot.~T();
    }
    if (data_ != InlineData()) {
      ::operator delete(static_cast<void*>(data_));
    }
    data_ = fresh;
    cap_ = new_cap;
    head_ = 0;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  std::size_t cap_ = N;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dufs::sim
