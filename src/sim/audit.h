// Runtime invariant checker for the coroutine scheduler (-DDUFS_AUDIT=ON).
//
// The static rules in tools/lint catch lifetime hazards a lexer can see;
// this layer catches the ones only execution can: coroutine frames that leak
// past teardown, frames resumed twice for one suspension, frames destroyed
// while an event still references them, and scheduler-clock regressions.
//
// Mechanics: every sim::Task frame allocation funnels through
// TaskPromiseBase::operator new/delete (the returned pointer is the
// coroutine_handle address), and the Simulation notifies this registry at
// schedule, resume, completion, and shutdown. Violations are detected at
// *schedule/destroy time* — before the UB would execute — and recorded as
// deterministic strings (frame ordinals, never pointer values, so reports
// are byte-stable across runs).
//
// When the tree is compiled without DUFS_AUDIT every hook is an inline
// no-op and the scheduler is untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dufs::sim::audit {

struct Report {
  std::uint64_t frames_allocated = 0;
  std::uint64_t frames_freed = 0;
  std::uint64_t live_frames = 0;  // allocated - freed at snapshot time
  std::uint64_t double_schedules = 0;
  std::uint64_t schedules_after_completion = 0;
  std::uint64_t destroyed_while_scheduled = 0;
  std::uint64_t clock_regressions = 0;
  // Events dropped by Shutdown(). Nonzero is legitimate after RequestStop()
  // (in-flight actors park on the queue), so it is reported, not a
  // violation; determinism tests assert it is zero for drained runs.
  std::uint64_t events_dropped_at_shutdown = 0;
  // Human-readable detail for the counters above (capped; see kMaxViolations).
  std::vector<std::string> violations;

  bool clean() const {
    return live_frames == 0 && double_schedules == 0 &&
           schedules_after_completion == 0 && destroyed_while_scheduled == 0 &&
           clock_regressions == 0;
  }
};

#ifdef DUFS_AUDIT

// True iff the tree was compiled with -DDUFS_AUDIT=ON.
constexpr bool Enabled() { return true; }

// Counter snapshot / reset (tests Reset() in SetUp to isolate themselves).
Report Snapshot();
void Reset();

// --- hooks wired into task.h / simulation.cc --------------------------
void FrameAllocated(void* frame, std::size_t bytes);
void FrameFreed(void* frame);
void FrameCompleted(void* frame);
void HandleScheduled(void* frame);
void HandleResumed(void* frame);
void EventDroppedAtShutdown(void* frame_or_null);
void ClockRegression(std::int64_t now, std::int64_t event_time);
// End-of-Shutdown leak report: logs a warning listing still-live frames.
void SimTeardown();

#else

constexpr bool Enabled() { return false; }

inline Report Snapshot() { return {}; }
inline void Reset() {}
inline void FrameAllocated(void*, std::size_t) {}
inline void FrameFreed(void*) {}
inline void FrameCompleted(void*) {}
inline void HandleScheduled(void*) {}
inline void HandleResumed(void*) {}
inline void EventDroppedAtShutdown(void*) {}
inline void ClockRegression(std::int64_t, std::int64_t) {}
inline void SimTeardown() {}

#endif  // DUFS_AUDIT

}  // namespace dufs::sim::audit
