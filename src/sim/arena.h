// Slab arena for the simulator hot path.
//
// The discrete-event core allocates two things at very high rate: 64-byte
// event nodes (one per ScheduleHandle/ScheduleFn call) and coroutine frames
// (one per Task<T> invocation, typically 100–500 bytes). Both are freed in
// roughly LIFO/churn order within a run, so a size-classed freelist over
// bump-carved chunks recycles them with two pointer moves instead of a
// malloc/free round trip per event.
//
// Layout contract: Allocate(n) returns storage aligned to at least 16 bytes
// whose address is the allocation address (no hidden header). Coroutine
// promise operator new in task.h relies on this — the pointer it returns must
// be the frame start, which is the same address coroutine_handle::address()
// reports and the DUFS_AUDIT registry keys on.
//
// Lifetime: one arena per thread (the simulator is single-threaded per
// Simulation; a thread may run many simulations in sequence, and detached
// frames can be freed by a Simulation other than the one that allocated
// them — a thread-local arena makes that safe). Chunks are released when the
// thread exits.
//
// Sanitizers: under AddressSanitizer the arena degrades to plain
// ::operator new/delete so ASan keeps byte-precise use-after-free and leak
// coverage over frames and event nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "obs/prof.h"

#if defined(__SANITIZE_ADDRESS__)
#define DUFS_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DUFS_ARENA_PASSTHROUGH 1
#endif
#endif

namespace dufs::sim {

class Arena {
 public:
  // Smallest cell is 64B (one event node); classes double up to 2KB, which
  // covers every coroutine frame in the tree. Larger requests fall through
  // to the global heap.
  static constexpr std::size_t kMinCellBytes = 64;
  static constexpr int kNumClasses = 6;  // 64, 128, 256, 512, 1024, 2048
  static constexpr std::size_t kMaxCellBytes = kMinCellBytes
                                               << (kNumClasses - 1);
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  struct Stats {
    std::uint64_t allocs = 0;      // arena-serviced allocations
    std::uint64_t recycled = 0;    // ... of which came from a freelist
    std::uint64_t oversize = 0;    // fell through to ::operator new
    std::uint64_t chunk_bytes = 0; // carved chunk capacity
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    Chunk* c = chunks_;
    while (c != nullptr) {
      Chunk* next = c->next;
      ::operator delete(static_cast<void*>(c));
      c = next;
    }
  }

  static Arena& ThreadLocal() {
    static thread_local Arena arena;
    return arena;
  }

  // The cold paths below (oversize requests, chunk refills) are deliberately
  // out-of-line: keeping every `::operator new` call outside the inlined
  // fast path stops GCC's -Wmismatched-new-delete heuristic from pairing the
  // global allocator with the promise-level operator delete at coroutine
  // call sites.
  void* Allocate(std::size_t bytes) {
#ifdef DUFS_ARENA_PASSTHROUGH
    return AllocateOversize(bytes);
#else
    if (bytes > kMaxCellBytes) return AllocateOversize(bytes);
    const int cls = ClassFor(bytes);
    ++stats_.allocs;
    if (FreeCell* cell = free_[cls]; cell != nullptr) {
      ++stats_.recycled;
      free_[cls] = cell->next;
      return cell;
    }
    return Carve(kMinCellBytes << cls);
#endif
  }

  void Free(void* p, std::size_t bytes) noexcept {
#ifdef DUFS_ARENA_PASSTHROUGH
    FreeOversize(p);
#else
    if (bytes > kMaxCellBytes) {
      FreeOversize(p);
      return;
    }
    const int cls = ClassFor(bytes);
    auto* cell = static_cast<FreeCell*>(p);
    cell->next = free_[cls];
    free_[cls] = cell;
#endif
  }

  const Stats& stats() const { return stats_; }

 private:
  struct FreeCell {
    FreeCell* next;
  };
  struct Chunk {
    Chunk* next;
  };

  static int ClassFor(std::size_t bytes) {
    int cls = 0;
    std::size_t cell = kMinCellBytes;
    while (cell < bytes) {
      cell <<= 1;
      ++cls;
    }
    return cls;
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  void* AllocateOversize(std::size_t bytes) {
    ++stats_.oversize;
    return ::operator new(bytes);
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  static void FreeOversize(void* p) noexcept {
    ::operator delete(p);
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  void* Carve(std::size_t cell_bytes) {
    if (static_cast<std::size_t>(bump_end_ - bump_) < cell_bytes) {
      // Start a fresh chunk; the tail remainder of the old one (< 2KB out of
      // 64KB) is abandoned, not leaked — its chunk stays on the list.
      prof::ProfScope arena_scope("engine.arena", prof::FrameKind::kEnginePhase);
      auto* raw = static_cast<char*>(::operator new(kChunkBytes));
      auto* chunk = reinterpret_cast<Chunk*>(raw);
      chunk->next = chunks_;
      chunks_ = chunk;
      // Keep the bump pointer 64B-aligned: the header is padded to one cell.
      bump_ = raw + kMinCellBytes;
      bump_end_ = raw + kChunkBytes;
      stats_.chunk_bytes += kChunkBytes;
    }
    void* p = bump_;
    bump_ += cell_bytes;
    return p;
  }

  FreeCell* free_[kNumClasses] = {};
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  Chunk* chunks_ = nullptr;
  Stats stats_;
};

}  // namespace dufs::sim
