// One-shot Future/Promise pair for cross-actor completion (RPC responses,
// commit notifications). Single waiter; first Set() wins (later Sets are
// ignored, which is how RPC timeouts race responses safely).
#pragma once

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>

#include "common/log.h"
#include "sim/simulation.h"

namespace dufs::sim {

namespace internal {

template <typename T>
struct FutureState {
  Simulation* sim;
  std::optional<T> value;
  // Captured at await_suspend (Set runs on the fulfiller's stack, which is
  // the wrong profiler context for the waiter).
  SuspendedHandle waiter;

  explicit FutureState(Simulation* s) : sim(s) {}

  ~FutureState() {
    // A waiter abandoned without a Set still owns its captured context (the
    // frame itself is reclaimed by the detached registry at Shutdown).
    prof::FreeSnapshot(waiter.ctx);
  }

  bool Set(T v) {
    if (value.has_value()) return false;  // first writer wins
    value.emplace(std::move(v));
    if (waiter.h) {
      sim->ScheduleHandle(0, std::exchange(waiter, SuspendedHandle{}));
    }
    return true;
  }
};

}  // namespace internal

template <typename T>
class Future {
 public:
  explicit Future(std::shared_ptr<internal::FutureState<T>> st)
      : st_(std::move(st)) {}

  bool ready() const { return st_->value.has_value(); }

  auto operator co_await() && {
    struct Awaiter {
      std::shared_ptr<internal::FutureState<T>> st;
      bool await_ready() const { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        DUFS_CHECK(st->waiter.h == nullptr);  // single waiter
        st->waiter = CaptureSuspended(h);
      }
      T await_resume() {
        DUFS_CHECK(st->value.has_value());
        return std::move(*st->value);
      }
    };
    return Awaiter{std::move(st_)};
  }

 private:
  std::shared_ptr<internal::FutureState<T>> st_;
};

template <typename T>
class Promise {
 public:
  Promise() : st_(nullptr) {}
  explicit Promise(std::shared_ptr<internal::FutureState<T>> st)
      : st_(std::move(st)) {}

  // Returns false if the future was already fulfilled.
  bool Set(T v) const { return st_->Set(std::move(v)); }
  bool fulfilled() const { return st_->value.has_value(); }
  bool valid() const { return st_ != nullptr; }

 private:
  std::shared_ptr<internal::FutureState<T>> st_;
};

template <typename T>
std::pair<Future<T>, Promise<T>> MakeFuture(Simulation& sim) {
  auto st = std::make_shared<internal::FutureState<T>>(&sim);
  return {Future<T>(st), Promise<T>(st)};
}

}  // namespace dufs::sim
