#include "sim/audit.h"

#ifdef DUFS_AUDIT

#include <unordered_map>
#include <utility>

#include "common/log.h"

namespace dufs::sim::audit {
namespace {

// Keep reports bounded even if a bug fires on a hot path.
constexpr std::size_t kMaxViolations = 64;

struct FrameState {
  std::uint64_t id = 0;  // allocation ordinal, stable across identical runs
  std::size_t bytes = 0;
  bool completed = false;
  int pending_schedules = 0;
};

// The simulator is single-threaded by construction, so the registry is a
// plain global. Frames are keyed by their allocation pointer, which is the
// coroutine_handle address for every sim::Task promise.
struct Registry {
  // dufs-lint: allow(sim-hot-alloc) audit-build-only instrumentation
  std::unordered_map<void*, FrameState> live;
  Report report;
  std::uint64_t next_id = 1;

  void Violation(std::string text) {
    if (report.violations.size() < kMaxViolations) {
      report.violations.push_back(std::move(text));
    }
  }
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

std::string FrameName(const FrameState& st) {
  return "frame#" + std::to_string(st.id);
}

}  // namespace

Report Snapshot() {
  Registry& r = Reg();
  Report out = r.report;
  out.live_frames = r.live.size();
  return out;
}

void Reset() {
  Registry& r = Reg();
  r.live.clear();
  r.report = Report{};
  r.next_id = 1;
}

void FrameAllocated(void* frame, std::size_t bytes) {
  Registry& r = Reg();
  ++r.report.frames_allocated;
  FrameState st;
  st.id = r.next_id++;
  st.bytes = bytes;
  r.live[frame] = st;
}

void FrameFreed(void* frame) {
  Registry& r = Reg();
  auto it = r.live.find(frame);
  if (it == r.live.end()) return;  // allocated before the last Reset()
  ++r.report.frames_freed;
  if (it->second.pending_schedules > 0) {
    ++r.report.destroyed_while_scheduled;
    r.Violation(FrameName(it->second) +
                " destroyed while an event still references it");
  }
  r.live.erase(it);
}

void FrameCompleted(void* frame) {
  Registry& r = Reg();
  auto it = r.live.find(frame);
  if (it == r.live.end()) return;
  it->second.completed = true;
}

void HandleScheduled(void* frame) {
  Registry& r = Reg();
  auto it = r.live.find(frame);
  if (it == r.live.end()) return;  // not a Task frame (or pre-Reset)
  FrameState& st = it->second;
  if (st.completed) {
    ++r.report.schedules_after_completion;
    r.Violation("schedule of already-completed " + FrameName(st));
  } else if (st.pending_schedules > 0) {
    ++r.report.double_schedules;
    r.Violation("double-schedule of suspended " + FrameName(st) +
                " (one suspension, two resumes)");
  }
  ++st.pending_schedules;
}

void HandleResumed(void* frame) {
  Registry& r = Reg();
  auto it = r.live.find(frame);
  if (it == r.live.end()) return;
  if (it->second.pending_schedules > 0) --it->second.pending_schedules;
}

void EventDroppedAtShutdown(void* frame_or_null) {
  Registry& r = Reg();
  ++r.report.events_dropped_at_shutdown;
  if (frame_or_null == nullptr) return;
  auto it = r.live.find(frame_or_null);
  if (it == r.live.end()) return;
  // The event dies with the queue; the frame is no longer "scheduled", so
  // the detached-frame destruction below it is not a violation.
  if (it->second.pending_schedules > 0) --it->second.pending_schedules;
}

void ClockRegression(std::int64_t now, std::int64_t event_time) {
  Registry& r = Reg();
  ++r.report.clock_regressions;
  r.Violation("event time " + std::to_string(event_time) +
              " behind sim clock " + std::to_string(now));
}

void SimTeardown() {
  Registry& r = Reg();
  if (r.live.empty()) return;
  // Frames held by still-live Task objects (declared before the Simulation)
  // are legal here, so this is a report, not an abort; the audit tests and
  // the DUFS_AUDIT CI job assert clean() at points where zero is required.
  DUFS_LOG(Warn) << "sim audit: " << r.live.size()
                 << " coroutine frame(s) still live at sim teardown";
}

}  // namespace dufs::sim::audit

#endif  // DUFS_AUDIT
