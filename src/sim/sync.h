// Synchronization primitives for simulated actors:
//   Resource — counted capacity (server thread pools, NIC serialization,
//              disk queues); FIFO waiters; RAII guard.
//   Mailbox  — unbounded MPSC queue with an awaitable receive (server loops).
//   Barrier  — reusable N-party barrier (mdtest phase synchronization).
//
// All primitives keep their state behind shared_ptr so RAII guards and
// late-destroyed coroutine frames never touch freed memory. Waiter lists and
// mailbox items live in SmallQueue rings: short queues (the common case)
// never allocate.
#pragma once

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>

#include "common/log.h"
#include "sim/simulation.h"
#include "sim/small_queue.h"

namespace dufs::sim {

class Resource {
  struct State {
    Simulation* sim = nullptr;
    std::size_t capacity = 0;
    std::size_t in_use = 0;
    SmallQueue<SuspendedHandle, 4> waiters;

    ~State() {
      // Waiters abandoned at teardown own their captured profiler context.
      while (!waiters.empty()) {
        prof::FreeSnapshot(waiters.front().ctx);
        waiters.pop_front();
      }
    }
  };

 public:
  Resource(Simulation& sim, std::size_t capacity)
      : st_(std::make_shared<State>()) {
    DUFS_CHECK(capacity > 0);
    st_->sim = &sim;
    st_->capacity = capacity;
  }

  // RAII permit. Move-only; releases on destruction (safe even if the
  // Resource itself is gone — the shared state outlives it).
  class Guard {
   public:
    Guard() = default;
    explicit Guard(std::shared_ptr<State> st) : st_(std::move(st)) {}
    Guard(Guard&& o) noexcept : st_(std::move(o.st_)) {}
    Guard& operator=(Guard&& o) noexcept {
      ReleaseNow();
      st_ = std::move(o.st_);
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { ReleaseNow(); }

    void ReleaseNow() {
      if (!st_) return;
      auto st = std::move(st_);
      DUFS_CHECK(st->in_use > 0);
      if (!st->waiters.empty()) {
        // Hand the permit directly to the next waiter (in_use unchanged).
        SuspendedHandle w = st->waiters.front();
        st->waiters.pop_front();
        st->sim->ScheduleHandle(0, w);
      } else {
        --st->in_use;
      }
    }

    bool held() const { return st_ != nullptr; }

   private:
    std::shared_ptr<State> st_;
  };

  auto Acquire() {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool suspended = false;
      bool await_ready() const {
        return st->in_use < st->capacity && st->waiters.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        st->waiters.push_back(CaptureSuspended(h));
      }
      Guard await_resume() {
        // Ready path takes a fresh permit; the woken path was handed one by
        // the releaser (which left in_use unchanged).
        if (!suspended) ++st->in_use;
        return Guard(std::move(st));
      }
    };
    return Awaiter{st_};
  }

  std::size_t in_use() const { return st_->in_use; }
  std::size_t capacity() const { return st_->capacity; }
  std::size_t queue_length() const { return st_->waiters.size(); }

 private:
  std::shared_ptr<State> st_;
};

template <typename T>
class Mailbox {
  struct State {
    Simulation* sim = nullptr;
    SmallQueue<T, 8> items;
    SmallQueue<SuspendedHandle, 4> waiters;
    bool closed = false;

    ~State() {
      while (!waiters.empty()) {
        prof::FreeSnapshot(waiters.front().ctx);
        waiters.pop_front();
      }
    }
  };

 public:
  explicit Mailbox(Simulation& sim) : st_(std::make_shared<State>()) {
    st_->sim = &sim;
  }

  void Send(T item) {
    if (st_->closed) return;  // dropped, like a message to a dead process
    st_->items.push_back(std::move(item));
    WakeOne();
  }

  // Receivers see nullopt once the mailbox is closed and drained.
  void Close() {
    st_->closed = true;
    while (!st_->waiters.empty()) {
      SuspendedHandle w = st_->waiters.front();
      st_->waiters.pop_front();
      st_->sim->ScheduleHandle(0, w);
    }
  }

  auto Recv() {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const { return !st->items.empty() || st->closed; }
      void await_suspend(std::coroutine_handle<> h) {
        st->waiters.push_back(CaptureSuspended(h));
      }
      std::optional<T> await_resume() {
        if (st->items.empty()) return std::nullopt;  // closed
        T item = std::move(st->items.front());
        st->items.pop_front();
        return item;
      }
    };
    return Awaiter{st_};
  }

  std::size_t size() const { return st_->items.size(); }
  bool closed() const { return st_->closed; }

 private:
  void WakeOne() {
    if (!st_->waiters.empty()) {
      SuspendedHandle w = st_->waiters.front();
      st_->waiters.pop_front();
      st_->sim->ScheduleHandle(0, w);
    }
  }

  std::shared_ptr<State> st_;
};

class Barrier {
  struct State {
    Simulation* sim = nullptr;
    std::size_t parties = 0;
    std::size_t arrived = 0;
    std::uint64_t generation = 0;
    SmallQueue<SuspendedHandle, 8> waiters;

    ~State() {
      while (!waiters.empty()) {
        prof::FreeSnapshot(waiters.front().ctx);
        waiters.pop_front();
      }
    }
  };

 public:
  Barrier(Simulation& sim, std::size_t parties)
      : st_(std::make_shared<State>()) {
    DUFS_CHECK(parties > 0);
    st_->sim = &sim;
    st_->parties = parties;
  }

  auto Arrive() {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() {
        if (st->arrived + 1 == st->parties) {
          // Last arriver releases everyone and does not suspend.
          st->arrived = 0;
          ++st->generation;
          while (!st->waiters.empty()) {
            st->sim->ScheduleHandle(0, st->waiters.front());
            st->waiters.pop_front();
          }
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++st->arrived;
        st->waiters.push_back(CaptureSuspended(h));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{st_};
  }

  std::size_t parties() const { return st_->parties; }

 private:
  std::shared_ptr<State> st_;
};

}  // namespace dufs::sim
