// Deterministic single-threaded discrete-event simulator.
//
// Coroutines (sim::Task<T>) model cluster actors: client processes, RPC
// handlers, replication pipelines. The Simulation owns the event queue and a
// registry of detached (Spawn-ed) coroutine frames so teardown never leaks.
//
// Determinism: one thread, one seeded RNG, events ordered by (time, seq).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "sim/time.h"

namespace dufs::sim {

template <typename T>
class Task;

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // The simulation currently constructing/running coroutines. Task promises
  // capture this at creation time.
  static Simulation* Current();

  // --- scheduling ------------------------------------------------------
  void ScheduleHandle(Duration delay, std::coroutine_handle<> h);
  void ScheduleFn(Duration delay, std::function<void()> fn);

  // Starts a detached coroutine now. The frame self-destroys on completion;
  // Shutdown() destroys any still-suspended detached frames.
  void Spawn(Task<void> task);

  // --- running ---------------------------------------------------------
  // Processes events until the queue is empty, `until` is passed, or
  // RequestStop() was called. Returns the number of events processed.
  std::uint64_t Run(SimTime until = kSimTimeMax);
  void RequestStop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }
  void ClearStop() { stop_requested_ = false; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }
  std::size_t live_detached_tasks() const { return detached_.size(); }

  // Destroys all detached frames and drops all pending events. Called by the
  // destructor; call it earlier if simulation actors (servers, resources)
  // are destroyed before the Simulation object.
  void Shutdown();

  // awaitable: co_await sim.Delay(d)
  struct DelayAwaiter {
    Simulation* sim;
    Duration delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleHandle(delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(Duration d) { return DelayAwaiter{this, d}; }

  // Internal, used by Task promises.
  void RegisterDetached(void* frame) { detached_.insert(frame); }
  void UnregisterDetached(void* frame) { detached_.erase(frame); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;        // either handle ...
    std::function<void()> fn;              // ... or callback
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap
      return a.seq > b.seq;                  // FIFO within a timestamp
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  bool shut_down_ = false;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<void*> detached_;
  Simulation* previous_current_ = nullptr;
};

// Scoped "current simulation" setter (used internally and by tests that
// construct tasks outside Run()).
class CurrentSimulationScope {
 public:
  explicit CurrentSimulationScope(Simulation* sim);
  ~CurrentSimulationScope();

 private:
  Simulation* saved_;
};

}  // namespace dufs::sim
