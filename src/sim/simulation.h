// Deterministic single-threaded discrete-event simulator.
//
// Coroutines (sim::Task<T>) model cluster actors: client processes, RPC
// handlers, replication pipelines. The Simulation owns the event queue and a
// registry of detached (Spawn-ed) coroutine frames so teardown never leaks.
//
// Determinism: one thread, one seeded RNG, events ordered by (time, schedule
// order). The scheduler is a hierarchical timing wheel: a wide level 0 of
// 4096 one-nanosecond slots (so the common sub-4µs delays pop without any
// cascading) under four 64-slot upper levels:
//
//   * A level-k (k >= 1) slot spans 4096·64^(k-1) ns; the whole wheel covers
//     2^36 ns (~68.7 simulated seconds) past the wheel cursor.
//   * Events land in the slot whose time differs from the cursor first at
//     that level's bit group (absolute-time indexing, so no per-tick
//     re-hashing); occupancy bitmaps (a 64-word bitmap plus a one-word
//     summary for level 0, one word per upper level) make "next non-empty
//     slot" a couple of count-trailing-zeros.
//   * Every slot is a FIFO list. Direct inserts append in schedule order and
//     cascades preserve relative order, so same-timestamp events pop in
//     exactly the (time, seq) order the old priority_queue produced — that
//     equivalence is what keeps metric/trace exports byte-identical
//     (DESIGN.md §10 has the full argument).
//   * Timers beyond the wheel span wait in a sorted overflow map and are
//     promoted wholesale when the wheel drains; events scheduled behind the
//     cursor (possible after Run(until) parked the cursor ahead of now())
//     wait in a sorted "early" map that is always drained first.
//
// Event nodes are 64-byte intrusive cells from the thread-local slab arena
// (arena.h) with a 32-byte inline buffer for ScheduleFn callables — the hot
// path allocates nothing on the global heap.
#pragma once

#include <bit>
#include <coroutine>
#include <cstdint>
#include <map>  // dufs-lint: allow(sim-hot-alloc) cold-path overflow/early levels
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.h"
#include "common/rng.h"
#include "obs/prof.h"
#include "sim/arena.h"
#include "sim/time.h"

namespace dufs::sim {

template <typename T>
class Task;

namespace internal {

// Type-erased callable with a 32-byte inline buffer. Unlike std::function,
// construction never heap-allocates for captures that fit inline (every
// ScheduleFn call site in the tree fits), and the invoke/destroy split lets
// Shutdown() destroy a pending callable without running it.
//
// Lifecycle is explicit (trivial destructor): the owner must call
// InvokeAndDestroy() or DestroyOnly() exactly once after Set().
class InlineFn {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  InlineFn() = default;

  template <typename F>
  void Set(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= 8 &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (buf_) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      // Oversize capture: box it. Cold — flagged sites should shrink the
      // capture instead.
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &kBoxedOps<Fn>;
    }
  }

  bool set() const { return ops_ != nullptr; }

  // Destroys the callable even if invocation throws.
  void InvokeAndDestroy() {
    const Ops* ops = std::exchange(ops_, nullptr);
    struct Cleanup {
      const Ops* ops;
      void* buf;
      ~Cleanup() { ops->destroy(buf); }
    } cleanup{ops, buf_};
    ops->invoke(buf_);
  }

  void DestroyOnly() {
    const Ops* ops = std::exchange(ops_, nullptr);
    if (ops != nullptr) ops->destroy(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* b) { (*reinterpret_cast<Fn*>(b))(); },
      [](void* b) { reinterpret_cast<Fn*>(b)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kBoxedOps = {
      [](void* b) { (**reinterpret_cast<Fn**>(b))(); },
      [](void* b) { delete *reinterpret_cast<Fn**>(b); }};

  const Ops* ops_ = nullptr;
  alignas(8) unsigned char buf_[kInlineBytes];
};

// One scheduled event: a coroutine resume (handle != nullptr) or a callback.
// Exactly one slab-arena cell (64 bytes); `next` chains the FIFO slot list.
// The payload is a union — a resume never carries a callable, so its slot
// holds the profiler context captured at schedule time instead (nullptr
// while profiling is off). NewNode activates the right member.
struct EventNode {
  SimTime at;
  EventNode* next;
  void* handle;
  union Payload {
    Payload() {}  // lifetime managed by NewNode / dispatch / DropAll
    InlineFn fn;            // handle == nullptr
    prof::Snapshot* prof_ctx;  // handle != nullptr
  } u;
};
static_assert(sizeof(EventNode) == 64);

// Intrusive node linking a detached coroutine frame into its Simulation's
// registry (embedded in TaskPromiseBase; no allocation per Spawn).
struct DetachedNode {
  DetachedNode* prev = nullptr;
  DetachedNode* next = nullptr;
  void* frame = nullptr;
};

}  // namespace internal

// A suspended coroutine bundled with the profiler context captured at
// await_suspend time. Waiter lists (sync.h Resource/Mailbox/Barrier,
// future.h) store these instead of bare handles: their wake-up
// (ReleaseNow/Send/Set) runs on the *waker's* stack, so scheduling there
// must carry the waiter's own captured context, not the current one. The
// holder owns `ctx` until the handle is scheduled (prof::FreeSnapshot it if
// the waiter is abandoned).
struct SuspendedHandle {
  std::coroutine_handle<> h;
  prof::Snapshot* ctx = nullptr;
};

inline SuspendedHandle CaptureSuspended(std::coroutine_handle<> h) {
  return SuspendedHandle{h, prof::CaptureContext()};
}

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // The simulation currently constructing/running coroutines. Task promises
  // capture this at creation time.
  static Simulation* Current();

  // --- scheduling ------------------------------------------------------
  // Captures the current profiler context for the resume (await_suspend runs
  // on the suspending coroutine's stack, so "current" is correct here).
  void ScheduleHandle(Duration delay, std::coroutine_handle<> h);
  // Waiter wake-up path: the context was captured at suspension and rides in
  // `s` (ownership transfers to the event node).
  void ScheduleHandle(Duration delay, SuspendedHandle s);

  template <typename F>
  void ScheduleFn(Duration delay, F&& fn) {
    DUFS_CHECK(delay >= 0);
    internal::EventNode* n = NewNode(now_ + delay, nullptr);
    n->u.fn.Set(std::forward<F>(fn));
    InsertNode(n);
  }

  // Starts a detached coroutine now. The frame self-destroys on completion;
  // Shutdown() destroys any still-suspended detached frames.
  void Spawn(Task<void> task);

  // --- running ---------------------------------------------------------
  // Processes events until the queue is empty, `until` is passed, or
  // RequestStop() was called. Returns the number of events processed.
  std::uint64_t Run(SimTime until = kSimTimeMax);
  void RequestStop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }
  void ClearStop() { stop_requested_ = false; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return pending_; }
  std::size_t live_detached_tasks() const { return detached_count_; }

  // Destroys all detached frames and drops all pending events. Called by the
  // destructor; call it earlier if simulation actors (servers, resources)
  // are destroyed before the Simulation object.
  void Shutdown();

  // awaitable: co_await sim.Delay(d)
  struct DelayAwaiter {
    Simulation* sim;
    Duration delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleHandle(delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(Duration d) { return DelayAwaiter{this, d}; }

  // Internal, used by Task promises.
  void RegisterDetached(internal::DetachedNode* node) {
    node->prev = &detached_head_;
    node->next = detached_head_.next;
    if (node->next != nullptr) node->next->prev = node;
    detached_head_.next = node;
    ++detached_count_;
  }
  void UnregisterDetached(internal::DetachedNode* node) {
    node->prev->next = node->next;
    if (node->next != nullptr) node->next->prev = node->prev;
    node->prev = node->next = nullptr;
    --detached_count_;
  }

 private:
  // --- timing wheel ----------------------------------------------------
  static constexpr int kL0Bits = 12;
  static constexpr int kL0Slots = 1 << kL0Bits;  // 4096 1ns-wide slots
  static constexpr int kL0Words = kL0Slots / 64;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64 slots per upper level
  static constexpr int kUpperLevels = 4;
  static constexpr int kWheelBits = kL0Bits + kSlotBits * kUpperLevels;  // 36
  // Span past the cursor: 2^36 ns ≈ 68.7 sim-seconds.
  static constexpr SimTime kWheelSpan = SimTime(1) << kWheelBits;

  struct EventList {
    internal::EventNode* head = nullptr;
    internal::EventNode* tail = nullptr;
  };

  internal::EventNode* NewNode(SimTime at, void* handle) {
    auto* n = static_cast<internal::EventNode*>(
        Arena::ThreadLocal().Allocate(sizeof(internal::EventNode)));
    n->at = at;
    n->next = nullptr;
    n->handle = handle;
    if (handle == nullptr) {
      new (&n->u.fn) internal::InlineFn();
    } else {
      n->u.prof_ctx = nullptr;
    }
    return n;
  }
  static void FreeNode(internal::EventNode* n) {
    Arena::ThreadLocal().Free(n, sizeof(internal::EventNode));
  }
  static void Append(EventList& list, internal::EventNode* n);

  void InsertNode(internal::EventNode* n);
  void PlaceInWheel(internal::EventNode* n);
  // Pops the earliest pending event if its time is <= until; advances the
  // wheel cursor (cascading and promoting overflow as needed).
  internal::EventNode* PopNextBefore(SimTime until);
  void DropAll();  // Shutdown helper: destroy every pending node

  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  bool shut_down_ = false;
  Rng rng_;

  // Lower bound on every wheel-resident event time; only ever advances
  // (Shutdown resets it with now_ semantics preserved — see simulation.cc).
  SimTime cursor_ = 0;
  EventList l0_[kL0Slots];
  std::uint64_t l0_bits_[kL0Words] = {};
  std::uint64_t l0_summary_ = 0;  // bit w set iff l0_bits_[w] != 0
  EventList upper_[kUpperLevels][kSlots];
  std::uint64_t occupied_[kUpperLevels] = {};
  std::size_t pending_ = 0;
  // Cold levels: far-future timers (>= span past cursor) and events behind
  // the cursor. Sorted maps — insertion there is off the hot path.
  std::map<SimTime, EventList> overflow_;  // dufs-lint: allow(sim-hot-alloc)
  std::map<SimTime, EventList> early_;     // dufs-lint: allow(sim-hot-alloc)

  internal::DetachedNode detached_head_;
  std::size_t detached_count_ = 0;
};

// Scoped "current simulation" setter (used internally and by tests that
// construct tasks outside Run()).
class CurrentSimulationScope {
 public:
  explicit CurrentSimulationScope(Simulation* sim);
  ~CurrentSimulationScope();

 private:
  Simulation* saved_;
};

}  // namespace dufs::sim
