// Simulated time. All simulation timestamps are nanoseconds in an int64.
#pragma once

#include <cstdint>

namespace dufs::sim {

using SimTime = std::int64_t;   // absolute, ns since simulation start
using Duration = std::int64_t;  // relative, ns

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

inline constexpr SimTime kSimTimeMax = INT64_MAX;

constexpr Duration Us(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}
constexpr Duration Ms(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration Sec(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

}  // namespace dufs::sim
