// Lazily-started coroutine task for the simulator.
//
//   sim::Task<Result<Foo>> DoThing(Ctx& c) { co_await c.sim->Delay(10); ... }
//
// * `co_await someTask(...)` starts the child and resumes the parent when it
//   finishes (symmetric transfer, no event-queue round trip).
// * `sim.Spawn(std::move(task))` detaches: the frame starts immediately and
//   self-destroys at completion; Simulation::Shutdown() reclaims any frame
//   still suspended at teardown.
// * Exceptions propagate across co_await; an exception escaping a detached
//   task aborts (simulation actors must handle their own errors).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/log.h"
#include "sim/arena.h"
#include "sim/audit.h"
#include "sim/simulation.h"

namespace dufs::sim {

namespace internal {

struct TaskPromiseBase {
  Simulation* sim = Simulation::Current();
  std::coroutine_handle<> continuation;
  bool detached = false;
  std::exception_ptr exception;
  // Links this frame into its Simulation's detached registry while spawned
  // (intrusive, so Spawn/completion never touch the heap).
  DetachedNode detached_node;

  // Frames come from the thread-local slab arena (free cells recycle in two
  // pointer moves; see arena.h). The pointer returned here is the frame
  // start — the same address coroutine_handle<>::address() reports — so the
  // DUFS_AUDIT registry can match schedule/resume/destroy events to
  // allocations, which requires the arena to add no allocation header.
  static void* operator new(std::size_t bytes) {
    void* frame = Arena::ThreadLocal().Allocate(bytes);
    audit::FrameAllocated(frame, bytes);
    return frame;
  }
  static void operator delete(void* frame, std::size_t bytes) {
    audit::FrameFreed(frame);
    Arena::ThreadLocal().Free(frame, bytes);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  void unhandled_exception() {
    if (detached) {
      DUFS_LOG(Error) << "exception escaped detached sim task";
      std::terminate();
    }
    exception = std::current_exception();
  }
};

template <typename Promise>
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& p = h.promise();
    audit::FrameCompleted(h.address());
    if (p.detached) {
      Simulation* sim = p.sim;
      if (sim != nullptr) sim->UnregisterDetached(&p.detached_node);
      h.destroy();
      return std::noop_coroutine();
    }
    if (p.continuation) return p.continuation;
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

}  // namespace internal

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    internal::TaskFinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return h_ != nullptr; }

  // Transfers frame ownership (Simulation::Spawn uses this).
  handle_type Release() { return std::exchange(h_, nullptr); }

  auto operator co_await() && {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;  // start the child now
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        DUFS_CHECK(p.value.has_value());
        return std::move(*p.value);
      }
    };
    DUFS_CHECK(h_ != nullptr);
    return Awaiter{h_};
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  handle_type h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    internal::TaskFinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_void() {}
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return h_ != nullptr; }
  handle_type Release() { return std::exchange(h_, nullptr); }

  auto operator co_await() && {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    DUFS_CHECK(h_ != nullptr);
    return Awaiter{h_};
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  handle_type h_;
};

inline void Simulation::Spawn(Task<void> task) {
  auto h = task.Release();
  DUFS_CHECK(h != nullptr);
  h.promise().detached = true;
  h.promise().sim = this;
  h.promise().detached_node.frame = h.address();
  RegisterDetached(&h.promise().detached_node);
  CurrentSimulationScope scope(this);
  // Run until first suspension (or completion, which frees the frame). With
  // profiling on, SpawnGuard rewinds any frames the body leaves pushed at
  // its first suspension and runs the per-dispatch sampling tick.
  if (!prof::internal::Active()) {
    h.resume();
  } else {
    prof::SpawnGuard prof_guard;
    h.resume();
  }
}

// Test/bench helper: spawn `task`, run the simulation until it completes
// (stopping the event loop right after), and return its result.
template <typename T>
T RunTask(Simulation& sim, Task<T> task) {
  std::optional<T> out;
  {
    CurrentSimulationScope scope(&sim);
    sim.Spawn([](Simulation& s, Task<T> t, std::optional<T>& o) -> Task<void> {
      o.emplace(co_await std::move(t));
      s.RequestStop();
    }(sim, std::move(task), out));
  }
  sim.Run();
  sim.ClearStop();
  DUFS_CHECK(out.has_value());
  return std::move(*out);
}

inline void RunTask(Simulation& sim, Task<void> task) {
  bool done = false;
  {
    CurrentSimulationScope scope(&sim);
    sim.Spawn([](Simulation& s, Task<void> t, bool& d) -> Task<void> {
      co_await std::move(t);
      d = true;
      s.RequestStop();
    }(sim, std::move(task), done));
  }
  sim.Run();
  sim.ClearStop();
  DUFS_CHECK(done);
}

}  // namespace dufs::sim
