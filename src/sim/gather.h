// Structured concurrency for the simulator: WhenAll launches a set of child
// tasks concurrently and resumes the awaiting coroutine once every child has
// finished.
//
//   std::vector<sim::Task<Result<Foo>>> tasks;
//   for (...) tasks.push_back(FetchOne(...));
//   std::vector<Result<Foo>> results = co_await sim::WhenAll(std::move(tasks));
//
// * Results come back in input order, one per task.
// * `limit` bounds the number of children in flight (0 = all at once); the
//   remaining tasks start as earlier ones complete, preserving result order.
// * Exceptions: every child runs to completion (or teardown); the first
//   exception thrown by any child is rethrown from the WhenAll await after
//   all children have settled. Status/Result errors are ordinary values.
// * Teardown: children run as detached frames registered with the
//   Simulation, so Simulation::Shutdown() reclaims any child still
//   suspended mid-gather; shared state is refcounted and never dangles.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/log.h"
#include "sim/future.h"
#include "sim/task.h"

namespace dufs::sim {

namespace internal {

template <typename T>
struct GatherState {
  std::vector<Task<T>> tasks;
  std::vector<std::optional<T>> results;
  std::size_t next = 0;       // next task index to start
  std::size_t remaining = 0;  // tasks not yet finished
  std::exception_ptr first_exception;
  Promise<bool> done;
};

template <>
struct GatherState<void> {
  std::vector<Task<void>> tasks;
  std::size_t next = 0;
  std::size_t remaining = 0;
  std::exception_ptr first_exception;
  Promise<bool> done;
};

// One worker drains task indices in order; `workers` of them run
// concurrently, so at most `workers` children are in flight.
template <typename T>
Task<void> GatherWorker(std::shared_ptr<GatherState<T>> st) {
  while (st->next < st->tasks.size()) {
    const std::size_t i = st->next++;
    try {
      if constexpr (std::is_void_v<T>) {
        co_await std::move(st->tasks[i]);
      } else {
        st->results[i].emplace(co_await std::move(st->tasks[i]));
      }
    } catch (...) {
      if (!st->first_exception) {
        st->first_exception = std::current_exception();
      }
    }
    if (--st->remaining == 0) st->done.Set(true);
  }
}

}  // namespace internal

template <typename T>
Task<std::vector<T>> WhenAll(std::vector<Task<T>> tasks,
                             std::size_t limit = 0) {
  if (tasks.empty()) co_return std::vector<T>{};
  Simulation* sim = Simulation::Current();
  DUFS_CHECK(sim != nullptr);

  auto st = std::make_shared<internal::GatherState<T>>();
  st->tasks = std::move(tasks);
  st->results.resize(st->tasks.size());
  st->remaining = st->tasks.size();
  auto [future, promise] = MakeFuture<bool>(*sim);
  st->done = promise;

  const std::size_t workers =
      limit == 0 ? st->tasks.size() : std::min(limit, st->tasks.size());
  for (std::size_t w = 0; w < workers; ++w) {
    sim->Spawn(internal::GatherWorker<T>(st));
  }
  co_await std::move(future);

  if (st->first_exception) std::rethrow_exception(st->first_exception);
  std::vector<T> out;
  out.reserve(st->results.size());
  for (auto& r : st->results) {
    DUFS_CHECK(r.has_value());
    out.push_back(std::move(*r));
  }
  co_return out;
}

// void specialization: await completion of every task, no results.
inline Task<void> WhenAll(std::vector<Task<void>> tasks,
                          std::size_t limit = 0) {
  if (tasks.empty()) co_return;
  Simulation* sim = Simulation::Current();
  DUFS_CHECK(sim != nullptr);

  auto st = std::make_shared<internal::GatherState<void>>();
  st->tasks = std::move(tasks);
  st->remaining = st->tasks.size();
  auto [future, promise] = MakeFuture<bool>(*sim);
  st->done = promise;

  const std::size_t workers =
      limit == 0 ? st->tasks.size() : std::min(limit, st->tasks.size());
  for (std::size_t w = 0; w < workers; ++w) {
    sim->Spawn(internal::GatherWorker<void>(st));
  }
  co_await std::move(future);
  if (st->first_exception) std::rethrow_exception(st->first_exception);
}

}  // namespace dufs::sim
