// The unit of simulated network traffic.
#pragma once

#include <cstdint>
#include <vector>

namespace dufs::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t rpc_id = 0;
  std::uint16_t method = 0;   // service-scoped method id; 0 on responses
  bool is_response = false;
  std::vector<std::uint8_t> payload;

  // Ethernet/IP/TCP + our RPC framing. Added to the payload for the NIC
  // bandwidth model.
  static constexpr std::size_t kHeaderBytes = 78;
  std::size_t WireSize() const { return payload.size() + kHeaderBytes; }
};

}  // namespace dufs::net
