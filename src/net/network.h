// Simulated cluster: nodes with CPU / NIC / disk resources, and a network
// that moves Messages between them with 1 GigE costs. Supports failure
// injection (node crash/restart, pairwise partitions).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/perf_model.h"
#include "obs/obs.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace dufs::net {

class Network;

// One machine. Owned by the Network; refer to it by NodeId.
class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, std::string name, NodeModel model);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  const NodeModel& model() const { return model_; }
  // Mutable access for mid-run fault injection (e.g. a degrading disk):
  // DiskWrite/TxTime read the model at call time, so changes take effect
  // for every subsequent I/O on this node.
  NodeModel& mutable_model() { return model_; }

  bool up() const { return up_; }
  std::uint64_t incarnation() const { return incarnation_; }

  // Occupies one core for `cpu_time`. Queues behind other work when all
  // cores are busy — this is how server-side contention emerges.
  sim::Task<void> Compute(sim::Duration cpu_time);

  // Synchronous disk write (journal commit). Serializes on the disk device.
  sim::Task<void> DiskWrite(std::size_t bytes);

  // Inbound-message sink, installed by the RPC endpoint.
  void SetSink(std::function<void(Message)> sink) { sink_ = std::move(sink); }
  void Deliver(Message msg);

  // Failure injection. Crash drops all queued state at the endpoint level
  // (the RPC layer watches the incarnation); restart bumps the incarnation.
  void Crash();
  void Restart();

  sim::Resource& egress() { return egress_; }
  sim::Resource& ingress() { return ingress_; }
  sim::Resource& cpu() { return cpu_; }

  // NIC instrumentation handles (serialization wait vs. wire time). Stored
  // on the Node — stable storage, already hot in Transfer's cache — so the
  // per-message path needs no lookup and no handle copies. Default handles
  // write to the shared dummy cells until Network::AttachObs installs real
  // ones.
  struct NicObs {
    obs::NodeObs node;
    obs::Histogram tx_wait;  // time queued behind the egress NIC, ns
    obs::Histogram tx_time;  // serialization (wire) time, ns
    obs::Histogram rx_wait;  // time queued behind the ingress NIC, ns
  };
  NicObs& nic_obs() { return nic_obs_; }

  // Traffic accounting for experiments.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;

 private:
  sim::Simulation& sim_;
  NodeId id_;
  std::string name_;
  NodeModel model_;
  bool up_ = true;
  std::uint64_t incarnation_ = 1;
  sim::Resource cpu_;
  sim::Resource egress_;
  sim::Resource ingress_;
  sim::Resource disk_;
  std::function<void(Message)> sink_;
  NicObs nic_obs_;
};

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_(sim) {}

  NodeId AddNode(std::string name, NodeModel model = NodeModel{});
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

  // Asynchronously moves the message: serializes on the source NIC, waits
  // propagation latency, serializes on the destination NIC, then delivers.
  // Messages to crashed or partitioned destinations are silently dropped
  // (the RPC layer turns that into a timeout).
  void Send(Message msg);

  // Pairwise partition control (symmetric).
  void Partition(NodeId a, NodeId b);
  void Heal(NodeId a, NodeId b);
  void HealAll();
  bool Partitioned(NodeId a, NodeId b) const;

  sim::Simulation& sim() { return sim_; }

  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

  // Optional: per-node NIC metrics (serialization wait vs. wire time) and
  // nic-tx / nic-rx trace spans. Nodes added later are picked up in
  // AddNode.
  void AttachObs(obs::Observability* obs);

 private:
  sim::Task<void> Transfer(Message msg);
  void InstallNicObs(Node& node);

  sim::Simulation& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  obs::Observability* obs_ = nullptr;
};

}  // namespace dufs::net
