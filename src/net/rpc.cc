#include "net/rpc.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace dufs::net {

RpcEndpoint::RpcEndpoint(Network& net, NodeId self) : net_(net), self_(self) {
  net_.node(self_).SetSink([this](Message msg) { OnMessage(std::move(msg)); });
}

void RpcEndpoint::RegisterHandler(std::uint16_t method, Handler handler) {
  DUFS_CHECK(handlers_.emplace(method, std::move(handler)).second);
}

sim::Task<RpcResult> RpcEndpoint::Call(NodeId dst, std::uint16_t method,
                                       Payload request,
                                       sim::Duration timeout) {
  if (!node().up()) {
    co_return Status(StatusCode::kNotConnected, "local node is down");
  }
  const std::uint64_t id = next_rpc_id_++;
  ++calls_sent_;
  auto [future, promise] = sim::MakeFuture<RpcResult>(sim());
  pending_.emplace(id, promise);

  Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.rpc_id = id;
  msg.method = method;
  msg.payload = std::move(request);
  net_.Send(std::move(msg));

  // The timeout races the response; FutureState's first-writer-wins makes
  // this safe without cancellation plumbing.
  sim().ScheduleFn(timeout, [this, id, promise]() mutable {
    if (promise.Set(Status(StatusCode::kTimeout, "rpc deadline exceeded"))) {
      pending_.erase(id);
    }
  });

  RpcResult result = co_await std::move(future);
  co_return result;
}

void RpcEndpoint::Notify(NodeId dst, std::uint16_t method, Payload request) {
  if (!node().up()) return;
  Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.rpc_id = 0;  // one-way
  msg.method = method;
  msg.payload = std::move(request);
  net_.Send(std::move(msg));
}

void RpcEndpoint::FailPending(StatusCode code) {
  auto pending = std::move(pending_);
  pending_.clear();
  // Resolve in rpc_id order: hash order would make the waiters' resumption
  // sequence (and thus the whole event schedule) stdlib-dependent.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending.size());
  for (const auto& [id, promise] : pending) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    pending[id].Set(Status(code, "connection reset"));
  }
}

void RpcEndpoint::OnMessage(Message msg) {
  if (msg.is_response) {
    auto it = pending_.find(msg.rpc_id);
    if (it == pending_.end()) return;  // raced with the timeout
    auto promise = it->second;
    pending_.erase(it);
    promise.Set(std::move(msg.payload));
    return;
  }

  auto it = handlers_.find(msg.method);
  if (it == handlers_.end()) {
    if (msg.rpc_id != 0) {
      // No such service: reply with an empty error frame is not expressible
      // at this layer (payload-only responses), so we simply drop and let
      // the caller time out — mirroring a connection refused + retry.
      DUFS_LOG(Warn) << node().name() << ": no handler for method "
                     << msg.method;
    }
    return;
  }
  ++calls_handled_;
  sim::CurrentSimulationScope scope(&sim());
  sim().Spawn(RunHandler(&it->second, std::move(msg), node().incarnation()));
}

sim::Task<void> RpcEndpoint::RunHandler(Handler* handler, Message msg,
                                        std::uint64_t incarnation) {
  RpcResult result = co_await (*handler)(msg.src, std::move(msg.payload));
  if (msg.rpc_id == 0) co_return;  // one-way
  // A handler that raced a crash/restart must not leak a reply from the
  // previous incarnation.
  if (!node().up() || node().incarnation() != incarnation) co_return;
  if (!result.ok()) {
    // Errors travel as dropped replies (callers time out). Services that
    // need typed errors encode them in their own response payloads; a
    // Status here means the service itself failed abnormally.
    DUFS_LOG(Debug) << node().name() << ": handler error "
                    << result.status().ToString();
    co_return;
  }
  Message reply;
  reply.src = self_;
  reply.dst = msg.src;
  reply.rpc_id = msg.rpc_id;
  reply.is_response = true;
  reply.payload = std::move(result).value();
  net_.Send(std::move(reply));
}

}  // namespace dufs::net
