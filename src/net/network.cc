#include "net/network.h"

#include <algorithm>
#include <utility>

namespace dufs::net {

Node::Node(sim::Simulation& sim, NodeId id, std::string name, NodeModel model)
    : sim_(sim),
      id_(id),
      name_(std::move(name)),
      model_(model),
      cpu_(sim, model.cores),
      egress_(sim, 1),
      ingress_(sim, 1),
      disk_(sim, 1) {}

sim::Task<void> Node::Compute(sim::Duration cpu_time) {
  auto guard = co_await cpu_.Acquire();
  co_await sim_.Delay(cpu_time);
}

sim::Task<void> Node::DiskWrite(std::size_t bytes) {
  auto guard = co_await disk_.Acquire();
  co_await sim_.Delay(model_.disk.WriteTime(bytes));
}

void Node::Deliver(Message msg) {
  if (!up_) return;
  ++messages_received;
  bytes_received += msg.WireSize();
  if (sink_) sink_(std::move(msg));
}

void Node::Crash() { up_ = false; }

void Node::Restart() {
  up_ = true;
  ++incarnation_;
}

NodeId Network::AddNode(std::string name, NodeModel model) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(sim_, id, std::move(name), model));
  if (obs_ != nullptr) InstallNicObs(*nodes_.back());
  return id;
}

Node& Network::node(NodeId id) {
  DUFS_CHECK(id < nodes_.size());
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  DUFS_CHECK(id < nodes_.size());
  return *nodes_[id];
}

void Network::Send(Message msg) {
  DUFS_CHECK(msg.src < nodes_.size() && msg.dst < nodes_.size());
  sim::CurrentSimulationScope scope(&sim_);
  sim_.Spawn(Transfer(std::move(msg)));
}

void Network::AttachObs(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  for (auto& node : nodes_) InstallNicObs(*node);
}

void Network::InstallNicObs(Node& node) {
  Node::NicObs& n = node.nic_obs();
  n.node = obs_->Node(node.name());
  n.tx_wait = n.node.histogram("nic.tx_wait_ns");
  n.tx_time = n.node.histogram("nic.tx_ns");
  n.rx_wait = n.node.histogram("nic.rx_wait_ns");
}

sim::Task<void> Network::Transfer(Message msg) {
  Node& src = node(msg.src);
  if (!src.up()) co_return;  // sender died before the packet left

  // Spawned synchronously from Send, so the sender's armed trace id is
  // still current here. The Node (and its NicObs handles) is stable
  // storage, safe to reference across suspensions.
  const bool recording = obs_ != nullptr && obs_->tracer().recording();
  const bool traced = recording && obs_->tracer().enabled();
  const obs::TraceId trace = recording ? obs_->tracer().current() : 0;
  Node::NicObs& src_obs = src.nic_obs();

  const std::size_t wire = msg.WireSize();
  {
    // Source NIC serialization.
    const sim::SimTime t0 = sim_.now();
    auto guard = co_await src.egress().Acquire();
    const sim::SimTime sent_at = sim_.now();
    co_await sim_.Delay(src.model().nic.TxTime(wire));
    src_obs.tx_wait.Record(sent_at - t0);
    src_obs.tx_time.Record(sim_.now() - sent_at);
    if (recording) {
      // wait_ns also rides the Complete tail so flight records keep the
      // nic-wait/wire split without an arg vector.
      std::vector<obs::Tracer::Arg> args;
      if (traced) {
        args = {{"wait_ns", {}, sent_at - t0, false},
                {"tx_ns", {}, sim_.now() - sent_at, false},
                {"bytes", {}, static_cast<std::int64_t>(wire), false}};
      }
      obs_->tracer().Complete(src_obs.node.track, "nic-tx", "net", t0,
                              sim_.now() - t0, trace, std::move(args),
                              /*wait_ns=*/sent_at - t0);
    }
  }
  ++src.messages_sent;
  src.bytes_sent += wire;

  co_await sim_.Delay(src.model().nic.base_latency);

  if (Partitioned(msg.src, msg.dst)) {
    ++messages_dropped_;
    co_return;
  }
  Node& dst = node(msg.dst);
  if (!dst.up()) {
    ++messages_dropped_;
    co_return;
  }
  Node::NicObs& dst_obs = dst.nic_obs();
  {
    // Destination NIC serialization (receive-side bottleneck for fan-in).
    const sim::SimTime t0 = sim_.now();
    auto guard = co_await dst.ingress().Acquire();
    const sim::SimTime rx_at = sim_.now();
    co_await sim_.Delay(dst.model().nic.TxTime(wire));
    dst_obs.rx_wait.Record(rx_at - t0);
    if (recording) {
      std::vector<obs::Tracer::Arg> args;
      if (traced) {
        args = {{"wait_ns", {}, rx_at - t0, false},
                {"bytes", {}, static_cast<std::int64_t>(wire), false}};
      }
      obs_->tracer().Complete(dst_obs.node.track, "nic-rx", "net", t0,
                              sim_.now() - t0, trace, std::move(args),
                              /*wait_ns=*/rx_at - t0);
    }
  }
  if (!dst.up() || Partitioned(msg.src, msg.dst)) {
    ++messages_dropped_;
    co_return;  // crashed or cut while the bytes were in flight
  }
  ++messages_delivered_;
  dst.Deliver(std::move(msg));
}

void Network::Partition(NodeId a, NodeId b) {
  partitions_.insert({std::min(a, b), std::max(a, b)});
}

void Network::Heal(NodeId a, NodeId b) {
  partitions_.erase({std::min(a, b), std::max(a, b)});
}

void Network::HealAll() { partitions_.clear(); }

bool Network::Partitioned(NodeId a, NodeId b) const {
  return partitions_.count({std::min(a, b), std::max(a, b)}) > 0;
}

}  // namespace dufs::net
