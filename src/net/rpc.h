// RPC on top of the simulated network.
//
// One RpcEndpoint per node. Services register coroutine handlers keyed by a
// 16-bit method id; clients issue Call() and receive Result<Payload> — a
// kTimeout/kUnavailable Status when the peer is down or partitioned.
// rpc_id 0 marks one-way notifications (no response is generated).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/network.h"
#include "sim/future.h"
#include "sim/task.h"

namespace dufs::net {

using Payload = std::vector<std::uint8_t>;
using RpcResult = Result<Payload>;

class RpcEndpoint {
 public:
  // Coroutine invoked per inbound request. The handler models its own CPU /
  // disk time via the owning Node.
  using Handler =
      std::function<sim::Task<RpcResult>(NodeId from, Payload request)>;

  RpcEndpoint(Network& net, NodeId self);

  NodeId self() const { return self_; }
  Network& network() { return net_; }
  Node& node() { return net_.node(self_); }
  sim::Simulation& sim() { return net_.sim(); }

  void RegisterHandler(std::uint16_t method, Handler handler);
  bool HasHandler(std::uint16_t method) const {
    return handlers_.count(method) > 0;
  }

  // Request/response with a deadline. Fails fast with kNotConnected if this
  // node is down.
  sim::Task<RpcResult> Call(NodeId dst, std::uint16_t method, Payload request,
                            sim::Duration timeout = sim::Sec(4));

  // Fire-and-forget notification (ZAB COMMIT, heartbeats).
  void Notify(NodeId dst, std::uint16_t method, Payload request);

  // Fails all in-flight outbound calls (invoked from the node crash hook).
  void FailPending(StatusCode code);

  std::uint64_t calls_sent() const { return calls_sent_; }
  std::uint64_t calls_handled() const { return calls_handled_; }

 private:
  void OnMessage(Message msg);
  sim::Task<void> RunHandler(Handler* handler, Message msg,
                             std::uint64_t incarnation);

  Network& net_;
  NodeId self_;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t calls_sent_ = 0;
  std::uint64_t calls_handled_ = 0;
  std::unordered_map<std::uint64_t, sim::Promise<RpcResult>> pending_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
};

}  // namespace dufs::net
