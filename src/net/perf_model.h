// Calibration constants for the simulated cluster.
//
// Defaults model the paper's testbed: dual Xeon E5335 nodes (8 cores),
// 1 GigE networking, SATA disks. These are the *only* knobs that turn real
// data-structure operations into throughput curves, so every experiment's
// shape can be traced back to a constant here (see DESIGN.md §4).
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace dufs::net {

struct NicModel {
  // ~1 GigE goodput after TCP/IP framing overheads.
  double bandwidth_bytes_per_sec = 112e6;
  // One-way propagation + kernel/TCP stack traversal per message.
  sim::Duration base_latency = sim::Us(60);
  // Fixed per-message CPU/DMA cost on the sending side (syscall, copy).
  sim::Duration per_message_overhead = sim::Us(5);

  sim::Duration TxTime(std::size_t wire_bytes) const {
    const double secs =
        static_cast<double>(wire_bytes) / bandwidth_bytes_per_sec;
    return per_message_overhead +
           static_cast<sim::Duration>(secs *
                                      static_cast<double>(sim::kSecond));
  }
};

struct DiskModel {
  // SATA 250 GB spindle: a synchronous journal commit costs a few ms, but
  // servers batch commits (group commit), so the per-batch cost dominates.
  sim::Duration sync_latency = sim::Ms(2.0);
  double bandwidth_bytes_per_sec = 70e6;

  sim::Duration WriteTime(std::size_t bytes) const {
    const double secs = static_cast<double>(bytes) / bandwidth_bytes_per_sec;
    return sync_latency +
           static_cast<sim::Duration>(secs *
                                      static_cast<double>(sim::kSecond));
  }
};

struct NodeModel {
  std::size_t cores = 8;
  NicModel nic;
  DiskModel disk;
};

}  // namespace dufs::net
