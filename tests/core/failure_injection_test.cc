// Failure injection across the full DUFS stack: network partitions, server
// crashes mid-workload, leader elections under load. Invariants: no
// acknowledged operation is lost, replicas converge, and the namespace
// never corrupts (verified against what the workload believes it created).
#include <gtest/gtest.h>

#include <set>

#include "mdtest/testbed.h"
#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::core {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

TestbedConfig FailoverConfig() {
  TestbedConfig config;
  config.zk_servers = 5;
  config.client_nodes = 2;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 2;
  config.zk_failure_detection = true;
  return config;
}

// Drives mkdir ops while faults are injected; returns the set of paths the
// client believes were acknowledged.
sim::Task<void> Workload(Testbed& tb, int count, sim::Duration gap,  // dufs-lint: allow(coro-ref-param)
                         std::set<std::string>* acked) {
  for (int i = 0; i < count; ++i) {
    const std::string path = "/w" + std::to_string(i);
    auto st = co_await tb.client(0).dufs->Mkdir(path, 0755);
    if (st.ok()) acked->insert(path);
    co_await tb.sim().Delay(gap);
  }
}

// `tb`/`acked` live in the test body, which runs the sim to completion.
sim::Task<void> VerifyAcked(Testbed& tb, const std::set<std::string>& acked) {  // dufs-lint: allow(coro-ref-param)
  for (const auto& path : acked) {
    auto attr = co_await tb.client(1).dufs->GetAttr(path);
    EXPECT_TRUE(attr.ok()) << "acknowledged dir lost: " << path;
  }
}

TEST(FailureInjectionTest, LeaderCrashMidWorkloadLosesNoAckedOps) {
  Testbed tb(FailoverConfig());
  tb.MountAll();
  std::set<std::string> acked;
  {
    sim::CurrentSimulationScope scope(&tb.sim());
    tb.sim().Spawn(Workload(tb, 60, sim::Ms(20), &acked));
    // Kill the initial leader mid-stream.
    tb.sim().ScheduleFn(sim::Ms(400), [&tb] {
      tb.net().node(tb.zk_nodes()[0]).Crash();
    });
  }
  tb.sim().Run(tb.sim().now() + sim::Sec(8));
  EXPECT_GT(acked.size(), 20u);  // progress resumed after the election
  sim::RunTask(tb.sim(), VerifyAcked(tb, acked));
}

TEST(FailureInjectionTest, PartitionedFollowerCatchesUp) {
  Testbed tb(FailoverConfig());
  tb.MountAll();
  // Cut follower 4 off from everyone.
  for (std::size_t i = 0; i < tb.zk_server_count(); ++i) {
    if (i != 4) tb.net().Partition(tb.zk_nodes()[4], tb.zk_nodes()[i]);
  }
  for (std::size_t c = 0; c < tb.client_count(); ++c) {
    tb.net().Partition(tb.zk_nodes()[4], tb.client(c).node);
  }
  std::set<std::string> acked;
  sim::RunTask(tb.sim(), Workload(tb, 30, sim::Ms(5), &acked));
  EXPECT_EQ(acked.size(), 30u);  // quorum 3/5 unaffected

  // Heal; the follower must resync via the leader's committed log.
  tb.net().HealAll();
  tb.sim().Run(tb.sim().now() + sim::Sec(4));
  std::uint64_t fp = tb.zk_server(0).db().Fingerprint();
  EXPECT_EQ(tb.zk_server(4).db().Fingerprint(), fp);
}

TEST(FailureInjectionTest, ClientPartitionedFromSessionServerFailsOver) {
  Testbed tb(FailoverConfig());
  tb.MountAll();
  // Client 0's session server is zk[0]; cut only that path.
  tb.net().Partition(tb.client(0).node, tb.zk_nodes()[0]);
  std::set<std::string> acked;
  sim::RunTask(tb.sim(), Workload(tb, 10, sim::Ms(1), &acked));
  // The ZkClient retries against other ensemble members.
  EXPECT_EQ(acked.size(), 10u);
  sim::RunTask(tb.sim(), VerifyAcked(tb, acked));
}

TEST(FailureInjectionTest, BackendCrashMidCreateRollsBackMetadata) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 1;
  config.backend = BackendKind::kLustre;
  config.backend_instances = 2;
  Testbed tb(config);
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    // Create files until one lands on instance 1, then crash instance 1's
    // MDS and keep creating: creates placed there fail *cleanly*.
    t.net().node(t.lustre(1)->mds_node()).Crash();
    int ok = 0, failed = 0;
    for (int i = 0; i < 12; ++i) {
      auto created = co_await fs.Create("/f" + std::to_string(i), 0644);
      if (created.ok()) {
        ++ok;
      } else {
        ++failed;
        // The znode must have been rolled back: the name is free again
        // (and does not dangle as metadata-without-data).
        auto attr = co_await fs.GetAttr("/f" + std::to_string(i));
        EXPECT_EQ(attr.code(), StatusCode::kNotFound) << i;
      }
    }
    EXPECT_GT(ok, 0);      // placements on the healthy instance succeed
    EXPECT_GT(failed, 0);  // placements on the dead instance fail cleanly
  }(tb));
}

TEST(FailureInjectionTest, MessageLossWindowOnlyDelaysCommits) {
  Testbed tb(FailoverConfig());
  tb.MountAll();
  std::set<std::string> acked;
  {
    sim::CurrentSimulationScope scope(&tb.sim());
    tb.sim().Spawn(Workload(tb, 40, sim::Ms(10), &acked));
    // A 150ms total partition between the leader and followers 1+2 (quorum
    // loss) that heals before the client gives up.
    tb.sim().ScheduleFn(sim::Ms(100), [&tb] {
      tb.net().Partition(tb.zk_nodes()[0], tb.zk_nodes()[1]);
      tb.net().Partition(tb.zk_nodes()[0], tb.zk_nodes()[2]);
      tb.net().Partition(tb.zk_nodes()[0], tb.zk_nodes()[3]);
      tb.net().Partition(tb.zk_nodes()[0], tb.zk_nodes()[4]);
    });
    tb.sim().ScheduleFn(sim::Ms(250), [&tb] { tb.net().HealAll(); });
  }
  tb.sim().Run(tb.sim().now() + sim::Sec(10));
  // Every op eventually succeeded (client retries span the window).
  EXPECT_GT(acked.size(), 35u);
  sim::RunTask(tb.sim(), VerifyAcked(tb, acked));
}

}  // namespace
}  // namespace dufs::core
