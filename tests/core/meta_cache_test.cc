// MetaCache unit tests (LRU/TTL/negative-entry mechanics) plus full-stack
// coherence tests: one client's mutation must invalidate another client's
// cached entry through the one-shot ZooKeeper watch, well before the TTL
// staleness bound kicks in.
#include "core/meta_cache.h"

#include <gtest/gtest.h>

#include "mdtest/testbed.h"
#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::core {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

MetaRecord DirRecord() { return MetaRecord::Dir(0755); }

zk::ZnodeStat StatWithVersion(std::int32_t v) {
  zk::ZnodeStat stat;
  stat.version = v;
  return stat;
}

void AdvanceTime(sim::Simulation& sim, sim::Duration d) {
  sim.ScheduleFn(d, [] {});
  sim.Run();
}

TEST(MetaCacheTest, HitMissAndLruStats) {
  sim::Simulation sim;
  MetaCache cache(sim, {.capacity = 8});
  EXPECT_EQ(cache.Lookup("/a"), nullptr);
  cache.PutPositive("/a", DirRecord(), StatWithVersion(3));
  const auto* hit = cache.Lookup("/a");
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->negative);
  EXPECT_EQ(hit->stat.version, 3);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MetaCacheTest, NegativeEntries) {
  sim::Simulation sim;
  MetaCache cache(sim, {});
  cache.PutNegative("/gone");
  const auto* hit = cache.Lookup("/gone");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->negative);
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  // A later positive put replaces the tombstone in place.
  cache.PutPositive("/gone", DirRecord(), StatWithVersion(0));
  ASSERT_NE(cache.Lookup("/gone"), nullptr);
  EXPECT_FALSE(cache.Lookup("/gone")->negative);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MetaCacheTest, NegativeEntriesCanBeDisabled) {
  sim::Simulation sim;
  MetaCache cache(sim, {.negative_entries = false});
  cache.PutNegative("/gone");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("/gone"), nullptr);
}

TEST(MetaCacheTest, LruBoundEvictsOldest) {
  sim::Simulation sim;
  MetaCache cache(sim, {.capacity = 4});
  for (int i = 0; i < 6; ++i) {
    cache.PutPositive("/n" + std::to_string(i), DirRecord(),
                      StatWithVersion(i));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.Lookup("/n0"), nullptr);
  EXPECT_EQ(cache.Lookup("/n1"), nullptr);
  EXPECT_NE(cache.Lookup("/n5"), nullptr);
}

TEST(MetaCacheTest, LookupRefreshesLruPosition) {
  sim::Simulation sim;
  MetaCache cache(sim, {.capacity = 2});
  cache.PutPositive("/old", DirRecord(), StatWithVersion(0));
  cache.PutPositive("/mid", DirRecord(), StatWithVersion(0));
  ASSERT_NE(cache.Lookup("/old"), nullptr);  // /mid is now the LRU victim
  cache.PutPositive("/new", DirRecord(), StatWithVersion(0));
  EXPECT_NE(cache.Lookup("/old"), nullptr);
  EXPECT_EQ(cache.Lookup("/mid"), nullptr);
}

TEST(MetaCacheTest, TtlExpiresEntries) {
  sim::Simulation sim;
  MetaCache cache(sim, {.ttl = sim::Ms(100)});
  cache.PutPositive("/a", DirRecord(), StatWithVersion(0));
  AdvanceTime(sim, sim::Ms(50));
  EXPECT_NE(cache.Lookup("/a"), nullptr);  // still fresh
  AdvanceTime(sim, sim::Ms(100));
  EXPECT_EQ(cache.Lookup("/a"), nullptr);  // lapsed
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MetaCacheTest, InvalidateSubtreeDropsDescendantsOnly) {
  sim::Simulation sim;
  MetaCache cache(sim, {});
  cache.PutPositive("/a", DirRecord(), StatWithVersion(0));
  cache.PutPositive("/a/x", DirRecord(), StatWithVersion(0));
  cache.PutPositive("/a/x/y", DirRecord(), StatWithVersion(0));
  cache.PutPositive("/ab", DirRecord(), StatWithVersion(0));  // sibling prefix
  cache.InvalidateSubtree("/a");
  EXPECT_EQ(cache.Lookup("/a"), nullptr);
  EXPECT_EQ(cache.Lookup("/a/x"), nullptr);
  EXPECT_EQ(cache.Lookup("/a/x/y"), nullptr);
  EXPECT_NE(cache.Lookup("/ab"), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 3u);
}

TEST(MetaCacheTest, MemoryAccountingTracksContent) {
  sim::Simulation sim;
  MetaCache cache(sim, {});
  EXPECT_EQ(cache.EstimateMemoryBytes(), 0u);
  cache.PutPositive("/a", DirRecord(), StatWithVersion(0));
  const std::size_t one = cache.EstimateMemoryBytes();
  EXPECT_GT(one, 0u);
  cache.PutPositive("/b", DirRecord(), StatWithVersion(0));
  EXPECT_GT(cache.EstimateMemoryBytes(), one);
  cache.Clear();
  EXPECT_EQ(cache.EstimateMemoryBytes(), 0u);
}

// ------------------------------------------------------ coherence (2 clients)

TestbedConfig CoherenceConfig() {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 2;
  // A deliberately long TTL: if these tests pass, it is the watch (not the
  // staleness bound) doing the invalidation.
  config.dufs.meta_cache.ttl = sim::Sec(30);
  return config;
}

TEST(MetaCacheCoherenceTest, CachedStatCostsNoZkRequests) {
  Testbed tb(CoherenceConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& dufs = *t.client(0).dufs;
    auto& zk = *t.client(0).zk;
    CO_ASSERT_TRUE((co_await dufs.Mkdir("/d", 0755)).ok());
    CO_ASSERT_TRUE((co_await dufs.GetAttr("/d")).ok());  // fills the cache
    const std::uint64_t before = zk.requests_sent();
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_TRUE((co_await dufs.GetAttr("/d")).ok());
    }
    EXPECT_EQ(zk.requests_sent(), before);  // all eight served from cache
    EXPECT_GE(t.client(0).dufs->meta_cache().stats().hits, 8u);
  }(tb));
}

TEST(MetaCacheCoherenceTest, RemoteUnlinkInvalidatesViaWatchBeforeTtl) {
  Testbed tb(CoherenceConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& writer = *t.client(0).dufs;
    auto& reader = *t.client(1).dufs;
    CO_ASSERT_TRUE((co_await writer.Create("/f", 0644)).ok());
    CO_ASSERT_TRUE((co_await reader.GetAttr("/f")).ok());  // reader caches /f
    const auto invalidations_before =
        reader.meta_cache().stats().invalidations;
    CO_ASSERT_TRUE((co_await writer.Unlink("/f")).ok());
    co_await t.sim().Delay(sim::Ms(10));  // watch notification propagation
    EXPECT_GT(reader.meta_cache().stats().invalidations,
              invalidations_before);
    auto attr = co_await reader.GetAttr("/f");
    EXPECT_EQ(attr.code(), StatusCode::kNotFound);  // no stale positive hit
  }(tb));
}

TEST(MetaCacheCoherenceTest, RemoteCreateRefutesNegativeEntryViaWatch) {
  Testbed tb(CoherenceConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& writer = *t.client(0).dufs;
    auto& reader = *t.client(1).dufs;
    auto miss = co_await reader.GetAttr("/late");  // caches a negative entry
    CO_ASSERT_EQ(miss.code(), StatusCode::kNotFound);
    CO_ASSERT_TRUE((co_await writer.Create("/late", 0644)).ok());
    co_await t.sim().Delay(sim::Ms(10));
    auto attr = co_await reader.GetAttr("/late");
    EXPECT_TRUE(attr.ok()) << attr.status();  // tombstone was dropped
  }(tb));
}

TEST(MetaCacheCoherenceTest, RemoteRenameInvalidatesViaWatchBeforeTtl) {
  Testbed tb(CoherenceConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& writer = *t.client(0).dufs;
    auto& reader = *t.client(1).dufs;
    CO_ASSERT_TRUE((co_await writer.Create("/f", 0644)).ok());
    CO_ASSERT_TRUE((co_await reader.GetAttr("/f")).ok());
    CO_ASSERT_TRUE((co_await writer.Rename("/f", "/g")).ok());
    co_await t.sim().Delay(sim::Ms(10));
    auto old_attr = co_await reader.GetAttr("/f");
    EXPECT_EQ(old_attr.code(), StatusCode::kNotFound);
    auto new_attr = co_await reader.GetAttr("/g");
    EXPECT_TRUE(new_attr.ok()) << new_attr.status();
  }(tb));
}

TEST(MetaCacheCoherenceTest, OwnMutationsInvalidateSynchronously) {
  Testbed tb(CoherenceConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& dufs = *t.client(0).dufs;
    CO_ASSERT_TRUE((co_await dufs.Create("/own", 0644)).ok());
    CO_ASSERT_TRUE((co_await dufs.GetAttr("/own")).ok());
    CO_ASSERT_TRUE((co_await dufs.Unlink("/own")).ok());
    // No delay: the client's own write dropped the entry synchronously.
    auto attr = co_await dufs.GetAttr("/own");
    EXPECT_EQ(attr.code(), StatusCode::kNotFound);
    CO_ASSERT_TRUE((co_await dufs.Chmod("/", 0700)).ok());
    auto root = co_await dufs.GetAttr("/");
    CO_ASSERT_TRUE(root.ok());
    EXPECT_EQ(root->mode, 0700u);
  }(tb));
}

TEST(MetaCacheCoherenceTest, DisabledCacheAlwaysFetches) {
  auto config = CoherenceConfig();
  config.dufs.enable_meta_cache = false;
  Testbed tb(config);
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& dufs = *t.client(0).dufs;
    auto& zk = *t.client(0).zk;
    CO_ASSERT_TRUE((co_await dufs.Mkdir("/d", 0755)).ok());
    const std::uint64_t before = zk.requests_sent();
    CO_ASSERT_TRUE((co_await dufs.GetAttr("/d")).ok());
    CO_ASSERT_TRUE((co_await dufs.GetAttr("/d")).ok());
    EXPECT_GE(zk.requests_sent(), before + 2);  // one Get per stat
    EXPECT_EQ(dufs.meta_cache().stats().hits, 0u);
  }(tb));
}

}  // namespace
}  // namespace dufs::core
